//! A tiny deterministic PRNG (SplitMix64).
//!
//! The workspace deliberately vendors no external crates, so the
//! generator carries its own pseudo-random stream. SplitMix64 is the
//! standard seed-expansion mixer: one 64-bit state word, one round of
//! multiply/xor-shift whitening per draw, full 2^64 period, and —
//! crucially for this crate — a fixed published constant set, so the
//! stream (and therefore every generated kernel) is reproducible from
//! the seed alone, forever, on every platform.

/// SplitMix64 stream. Every draw advances the state by a fixed odd
/// constant and whitens the result; equal seeds give equal streams.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A stream starting from `seed`.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // The modulo bias over a 64-bit draw is < 2^-32 for every n this
        // crate uses; determinism matters here, statistical perfection
        // does not.
        self.next_u64() % n
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform pick from a nonempty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// True with probability `percent` / 100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Weighted pick: returns the index of the chosen weight.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        debug_assert!(total > 0);
        let mut roll = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if roll < w {
                return i;
            }
            roll -= w;
        }
        weights.len() - 1
    }
}

/// One-shot mix of several seed words into a single stream seed, used to
/// derive independent argument/memory streams from a kernel seed.
pub fn mix(words: &[u64]) -> u64 {
    let mut r = Rng::new(0x5157_4F52_4B5F_4D49);
    let mut acc = 0u64;
    for &w in words {
        acc = acc.rotate_left(17) ^ w.wrapping_add(r.next_u64());
    }
    Rng::new(acc).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_and_weighted_stay_in_bounds() {
        let mut r = Rng::new(42);
        for _ in 0..1000 {
            let v = r.range(3, 9);
            assert!((3..=9).contains(&v));
            let i = r.weighted(&[1, 5, 2]);
            assert!(i < 3);
        }
    }

    #[test]
    fn mix_depends_on_every_word() {
        assert_ne!(mix(&[1, 2]), mix(&[2, 1]));
        assert_ne!(mix(&[1]), mix(&[1, 0]));
    }
}
