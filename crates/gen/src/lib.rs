//! isax-gen: seeded, deterministic kernel generation and the curated
//! domain corpora.
//!
//! This crate widens the workload surface the pipeline is tested
//! against, along three axes:
//!
//! * [`stress`] — the pathological explorer-stress corpus, ported
//!   byte-identically from the retired `kernels/stress/generate.py`;
//! * [`curated`] — hand-designed graph-traversal and video/DSP kernels
//!   with independent Rust reference oracles;
//! * [`generate`] — a seeded random program generator, parameterized by
//!   [`profile::GenDomain`], that emits verifier-clean, lint-clean,
//!   terminating multi-block `.isax` programs from a few to thousands
//!   of blocks.
//!
//! Everything is deterministic: the only entropy source is
//! [`rng::Rng`], a SplitMix64 stream derived purely from the caller's
//! seed, so `isax gen --seed N` reproduces a kernel bit-for-bit on any
//! host and at any thread count. The headline consumer is the
//! differential-oracle harness in `tests/gen_sweep.rs`, which runs the
//! interpreter on each generated program before and after
//! customization/compilation and demands identical results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curated;
pub mod emit;
pub mod generate;
pub mod profile;
pub mod rng;
pub mod stress;

pub use curated::{curated, curated_by_name, Curated};
pub use emit::FnEmit;
pub use generate::{generate, seeded_args, seeded_memory, GenConfig, NPARAMS};
pub use profile::{profile, GenDomain, Pattern, Profile, RegionKind};
pub use rng::{mix, Rng};
pub use stress::{stress_kernel, STRESS};
