//! The seeded program generator.
//!
//! [`generate`] is a pure function from a [`GenConfig`] to `.isax` text:
//! equal configs give byte-equal kernels, on every platform, at every
//! thread count. The emitted program is correct by construction along
//! four axes the test harness then re-checks from the outside:
//!
//! * **verifier-clean** — mutable state registers (accumulator,
//!   checksum, memory base, loop counters) are all defined in the entry
//!   block, which dominates everything; chain temporaries never escape
//!   their block; blocks form a linear chain of regions so every block
//!   is reachable and every branch target exists.
//! * **lint-clean** (`IC0801`–`IC0805`) — shift amounts are immediates
//!   in `1..=31`; every compare keeps at least one parameter (interval
//!   top) or same-shaped operand, so no outcome is provable; every
//!   definition is consumed by the chain, the accumulator fold, a store
//!   or a terminator; and the chain tracks *wideness* — whether a value
//!   is still unconstrained in the value-range/known-bits domains — and
//!   re-widens narrowed values with a parameter `xor` before the next
//!   link, so no operand chain ever folds to a provable constant.
//! * **terminating** — loop trip counts are *data-derived* (`and` of a
//!   parameter with a small mask, plus two) so the dataflow analyses
//!   cannot fold the exit compare, yet they are bounded by construction:
//!   no generated kernel executes more than ~40 dynamic instructions
//!   per block.
//! * **deterministic to drive** — [`seeded_args`] and [`seeded_memory`]
//!   derive the oracle inputs from the same seed, so a failing sweep
//!   case reproduces from its `(domain, seed, blocks)` triple alone.

use crate::emit::FnEmit;
use crate::profile::{profile, GenDomain, Pattern, Profile, RegionKind};
use crate::rng::{mix, Rng};
use isax_machine::Memory;

/// Number of parameters every generated kernel takes.
pub const NPARAMS: usize = 3;

/// Masks for plain `and`/`or` links: small windows plus the classic
/// butterfly constants. `u32::MAX` is deliberately absent so `or` can
/// never pin a value to a provable constant.
const MASKS: [u32; 10] = [3, 7, 15, 31, 63, 127, 255, 4095, 65535, 0x00FF_00FF];

/// Bit-reverse butterfly stages: `(mask, shift)`.
const BREV_STAGES: [(u32, u32); 4] = [
    (0x5555_5555, 1),
    (0x3333_3333, 2),
    (0x0F0F_0F0F, 4),
    (0x00FF_00FF, 8),
];

/// The reflected CRC-32 polynomial.
const CRC_POLY: u32 = 0xEDB8_8320;

/// What to generate: the reproducibility triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// PRNG seed.
    pub seed: u64,
    /// Domain profile.
    pub domain: GenDomain,
    /// Requested total block count (clamped to at least 3: entry,
    /// one region, return).
    pub blocks: usize,
}

impl GenConfig {
    /// Effective block count after clamping.
    pub fn effective_blocks(&self) -> usize {
        self.blocks.max(3)
    }

    /// The generated function's name, derived from the triple so a
    /// kernel file names its own reproduction recipe.
    pub fn entry_name(&self) -> String {
        format!(
            "gen_{}_s{}_n{}",
            self.domain.name(),
            self.seed,
            self.effective_blocks()
        )
    }
}

/// Deterministic arguments for driving a generated kernel's oracle run.
pub fn seeded_args(seed: u64) -> Vec<u32> {
    let mut r = Rng::new(mix(&[seed, 0xA55A]));
    (0..NPARAMS).map(|_| r.next_u32()).collect()
}

/// Deterministic initial memory: every word a generated kernel can
/// address (the base mask is 1020, load/store offsets stay under 132)
/// is seeded, so loads read interesting values and stores diff cleanly.
pub fn seeded_memory(seed: u64) -> Memory {
    let mut r = Rng::new(mix(&[seed, 0x3EED]));
    let mut mem = Memory::new();
    for addr in (0..1400u32).step_by(4) {
        mem.store32(addr, r.next_u32());
    }
    mem
}

/// Generates one kernel as parser-canonical `.isax` text.
pub fn generate(cfg: &GenConfig) -> String {
    Gen::new(cfg).run()
}

struct Gen {
    rng: Rng,
    prof: Profile,
    f: FnEmit,
    /// Effective total block count (entry + regions + return).
    total: usize,
    /// Accumulator register: updated by every region, always
    /// data-dependent on the parameters (interval top).
    acc: String,
    /// Secondary checksum register, second return value.
    chk: String,
    /// Word-aligned memory base (`v2 & 1020`).
    base: String,
    /// One counter register per planned loop region, defined in `b0`.
    ctrs: Vec<String>,
    next_ctr: usize,
}

impl Gen {
    fn new(cfg: &GenConfig) -> Gen {
        let total = cfg.effective_blocks();
        let domain_id = match cfg.domain {
            GenDomain::Graph => 1,
            GenDomain::Dsp => 2,
            GenDomain::Mixed => 3,
        };
        Gen {
            rng: Rng::new(mix(&[cfg.seed, domain_id, total as u64])),
            prof: profile(cfg.domain),
            f: FnEmit::new(&cfg.entry_name(), NPARAMS as u32),
            total,
            acc: String::new(),
            chk: String::new(),
            base: String::new(),
            ctrs: Vec::new(),
            next_ctr: 0,
        }
    }

    fn run(mut self) -> String {
        let plan = self.plan();
        self.entry_block(&plan);
        let mut bi = 1;
        for kind in &plan {
            bi = self.region(*kind, bi);
        }
        self.ret_block(bi);
        self.f.text_multi(&["v0", "v1", "v2"])
    }

    /// Decides the region sequence up front so the entry block can
    /// define every loop counter before any loop runs.
    fn plan(&mut self) -> Vec<RegionKind> {
        // Blocks 1..total-1 hold regions; block total-1 is the return.
        let total = self.total;
        let mut plan = Vec::new();
        let mut used = 1usize;
        while used + 1 < total {
            let remaining = total - 1 - used;
            let kind = if remaining >= 4 {
                match self.rng.weighted(&self.prof.region_weights) {
                    0 => RegionKind::Straight,
                    1 => RegionKind::Loop,
                    _ => RegionKind::Diamond,
                }
            } else if self.rng.chance(50) {
                RegionKind::Straight
            } else {
                RegionKind::Loop
            };
            used += match kind {
                RegionKind::Straight | RegionKind::Loop => 1,
                RegionKind::Diamond => 4,
            };
            plan.push(kind);
        }
        plan
    }

    fn pick_param(&mut self) -> &'static str {
        ["v0", "v1", "v2"][self.rng.below(3) as usize]
    }

    /// `b0`: weight, state-register definitions, counter inits, `jmp b1`.
    fn entry_block(&mut self, plan: &[RegionKind]) {
        let w = self.rng.range(1, 50);
        self.f.block(0, w);
        self.acc = self.f.op("xor", &["v0", "v1"]);
        self.chk = self.f.op("add", &["v0", "v2"]);
        self.base = self.f.op("and", &["v2", "#1020"]);
        let loops = plan.iter().filter(|k| **k == RegionKind::Loop).count();
        for _ in 0..loops {
            let mask = *self.rng.pick(&["#3", "#7", "#15"]);
            let p = self.pick_param();
            let c0 = self.f.op("and", &[p, mask]);
            let ctr = self.f.op("add", &[&c0, "#2"]);
            self.ctrs.push(ctr);
        }
        self.f.jmp(1);
    }

    /// Emits one region starting at block `bi`; returns the next index.
    fn region(&mut self, kind: RegionKind, bi: usize) -> usize {
        match kind {
            RegionKind::Straight => {
                let w = self.rng.range(10, 500);
                self.f.block(bi, w);
                self.body(2, 7);
                self.f.jmp(bi + 1);
                bi + 1
            }
            RegionKind::Loop => {
                let w = self.rng.range(500, 20_000);
                self.f.block(bi, w);
                self.body(2, 6);
                let ctr = self.ctrs[self.next_ctr].clone();
                self.next_ctr += 1;
                self.f.op_into(&ctr, "sub", &[&ctr, "#1"]);
                let cond = self.f.op("ne", &[&ctr, "#0"]);
                self.f.br(&cond, bi, bi + 1);
                bi + 1
            }
            RegionKind::Diamond => {
                let wh = self.rng.range(10, 500);
                self.f.block(bi, wh);
                self.body(1, 3);
                let p = self.pick_param();
                let acc = self.acc.clone();
                let cond = self.f.op("ltu", &[p, &acc]);
                self.f.br(&cond, bi + 1, bi + 2);
                let wt = self.rng.range(5, wh.max(6));
                self.f.block(bi + 1, wt);
                self.body(1, 3);
                self.f.jmp(bi + 3);
                self.f.block(bi + 2, wh.saturating_sub(wt).max(1));
                self.body(1, 3);
                self.f.jmp(bi + 3);
                let wj = self.rng.range(10, 500);
                self.f.block(bi + 3, wj);
                self.body(1, 2);
                self.f.jmp(bi + 4);
                bi + 4
            }
        }
    }

    /// The trailing block: fold the memory base into the checksum (so
    /// `base` is live even when no region drew a load or store), then
    /// the two-value return.
    fn ret_block(&mut self, bi: usize) {
        let w = self.rng.range(1, 50);
        self.f.block(bi, w);
        self.body(1, 2);
        let (chk, base) = (self.chk.clone(), self.base.clone());
        self.f.op_into(&chk, "xor", &[&chk, &base]);
        let acc = self.acc.clone();
        self.f.ret(&[&acc, &chk]);
    }

    /// A chain of `lo..=hi` pattern links folded into the accumulator,
    /// an optional checksum update, and an optional store.
    fn body(&mut self, lo: u64, hi: u64) {
        let len = self.rng.range(lo, hi);
        let mut prev = self.acc.clone();
        let mut wide = true;
        for _ in 0..len {
            if !wide {
                // The previous link narrowed the value (a mask or a
                // shift pinned bits the dataflow analyses can see).
                // Re-widen before chaining, or a later mask/shift could
                // fold to a provable constant (IC0804).
                let p = self.pick_param();
                prev = self.f.op("xor", &[&prev, p]);
            }
            (prev, wide) = self.link(prev);
        }
        let fold = *self.rng.pick(&["add", "xor"]);
        let acc = self.acc.clone();
        self.f.op_into(&acc, fold, &[&prev, &acc]);
        if self.rng.chance(40) {
            let chk = self.chk.clone();
            self.f.op_into(&chk, "xor", &[&chk, &acc]);
        }
        if self.rng.chance(self.prof.store_percent) {
            let off = self.rng.below(33) * 4;
            let base = self.base.clone();
            let a0 = self.f.op("add", &[&base, &format!("#{off}")]);
            self.f.stw(&a0, &acc);
        }
    }

    /// One chain link: `prev -> (value, wide)`, per the profile's
    /// pattern mix. The boolean reports whether the output is *wide* —
    /// able to take any 32-bit value with no bit statically determined,
    /// given a wide `prev` — which callers must restore (by xoring in a
    /// parameter) before feeding a narrow value to the next link. Every
    /// composite pattern is wide: each is a bijection in `prev` (brev
    /// butterflies, CRC rounds and rotates are invertible) or folds in
    /// a free register (a parameter, or the top-valued checksum), so a
    /// sound range/bits analysis learns nothing about the output.
    fn link(&mut self, prev: String) -> (String, bool) {
        let weights: Vec<u32> = self.prof.patterns.iter().map(|&(_, w)| w).collect();
        let pat = self.prof.patterns[self.rng.weighted(&weights)].0;
        let out = match pat {
            Pattern::Plain => return self.plain(&prev),
            Pattern::Umin => {
                let p = self.pick_param();
                let c = self.f.op("ltu", &[&prev, p]);
                self.f.op("sel", &[&c, &prev, p])
            }
            Pattern::Adiff => {
                let p = self.pick_param();
                let d1 = self.f.op("sub", &[&prev, p]);
                let d2 = self.f.op("sub", &[p, &prev]);
                let c = self.f.op("ltu", &[&prev, p]);
                self.f.op("sel", &[&c, &d2, &d1])
            }
            Pattern::Madd => {
                let p = self.pick_param();
                let t = self.f.op("mul", &[&prev, p]);
                let chk = self.chk.clone();
                self.f.op("add", &[&t, &chk])
            }
            Pattern::Sad => {
                let p = self.pick_param();
                let a = self.f.op("zxtb", &[&prev]);
                let b = self.f.op("zxtb", &[p]);
                let d1 = self.f.op("sub", &[&a, &b]);
                let d2 = self.f.op("sub", &[&b, &a]);
                let c = self.f.op("ltu", &[&a, &b]);
                let s = self.f.op("sel", &[&c, &d2, &d1]);
                let chk = self.chk.clone();
                self.f.op("add", &[&s, &chk])
            }
            Pattern::BrevStage => {
                let (mask, k) = *self.rng.pick(&BREV_STAGES);
                let m = format!("#{mask}");
                let k = format!("#{k}");
                let t1 = self.f.op("and", &[&prev, &m]);
                let t2 = self.f.op("shl", &[&t1, &k]);
                let t3 = self.f.op("shr", &[&prev, &k]);
                let t4 = self.f.op("and", &[&t3, &m]);
                self.f.op("or", &[&t2, &t4])
            }
            Pattern::CrcStep => {
                let b = self.f.op("and", &[&prev, "#1"]);
                let z = self.f.op("sub", &["#0", &b]);
                let m = self.f.op("and", &[&z, &format!("#{CRC_POLY}")]);
                let t = self.f.op("shr", &[&prev, "#1"]);
                self.f.op("xor", &[&t, &m])
            }
            Pattern::RorDiamond => {
                let p = self.pick_param();
                let k = self.rng.range(1, 31);
                let t = self.f.op("xor", &[&prev, p]);
                let l = self.f.op("shl", &[&t, &format!("#{k}")]);
                let r = self.f.op("shr", &[&t, &format!("#{}", 32 - k)]);
                self.f.op("or", &[&l, &r])
            }
            Pattern::Load => {
                let off = self.rng.below(33) * 4;
                let base = self.base.clone();
                let a0 = self.f.op("add", &[&base, &format!("#{off}")]);
                let v = self.f.op("ldw", &[&a0]);
                self.f.op("xor", &[&prev, &v])
            }
        };
        (out, true)
    }

    /// A plain ALU link. Masks and shifts *narrow* the value — they pin
    /// bits a known-bits analysis tracks — so those report `wide =
    /// false`; add/sub/xor/mul (odd immediates are invertible mod 2^32)
    /// and any op drawing a parameter stay wide.
    fn plain(&mut self, prev: &str) -> (String, bool) {
        let mnem = *self.rng.pick(self.prof.alu);
        let (src2, wide) = match mnem {
            "shl" | "shr" | "sar" => (format!("#{}", self.rng.range(1, 31)), false),
            "ror" => (format!("#{}", self.rng.range(1, 31)), true),
            "and" | "or" => {
                if self.rng.chance(30) {
                    (self.pick_param().to_string(), true)
                } else {
                    (format!("#{}", self.rng.pick(&MASKS)), false)
                }
            }
            "mul" => {
                if self.rng.chance(40) {
                    (self.pick_param().to_string(), true)
                } else {
                    (format!("#{}", self.rng.range(1, 15) * 2 + 1), true)
                }
            }
            _ => {
                if self.rng.chance(50) {
                    (self.pick_param().to_string(), true)
                } else {
                    (format!("#{}", self.rng.range(1, 97)), true)
                }
            }
        };
        (self.f.op(mnem, &[prev, &src2]), wide)
    }
}
