//! Domain profiles: what kind of program the generator emits.
//!
//! A profile is a weighted grammar over *composite patterns* — the
//! multi-operation idioms a domain's hot loops are made of — plus a
//! plain-ALU opcode mix and region-shape weights. Two profiles are
//! hand-designed after real accelerator targets:
//!
//! * **graph** — Dijkstra/A*-style traversal: unsigned-minimum
//!   (`ltu`+`sel`) relaxations, absolute-difference heuristics, and
//!   pointer-chasing loads (the UMIN/ADIFF custom-instruction family);
//! * **dsp** — video/DSP inner loops: multiply-accumulate, sum of
//!   absolute differences, bit-reverse stages and CRC rounds (the
//!   MADD/SAD/BREV family).
//!
//! **mixed** draws from both, approximating a whole-application blend.

/// The generator's domain axis (distinct from the paper's four
/// benchmark-suite domains in `isax-workloads`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenDomain {
    /// Graph-traversal shapes: unsigned-min, abs-diff, gather loads.
    Graph,
    /// Video/DSP shapes: madd, sad, bit-reverse, crc, rotates.
    Dsp,
    /// A blend of both.
    Mixed,
}

impl GenDomain {
    /// All domains, in CLI order.
    pub const ALL: [GenDomain; 3] = [GenDomain::Graph, GenDomain::Dsp, GenDomain::Mixed];

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            GenDomain::Graph => "graph",
            GenDomain::Dsp => "dsp",
            GenDomain::Mixed => "mixed",
        }
    }

    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<GenDomain> {
        GenDomain::ALL.into_iter().find(|d| d.name() == s)
    }
}

impl std::fmt::Display for GenDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A composite dataflow idiom the chain emitter can inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// One plain binary ALU op from the profile's opcode mix.
    Plain,
    /// Unsigned minimum: `ltu` + `sel` (Dijkstra/Prim relaxation).
    Umin,
    /// Absolute difference: two `sub`s, `ltu`, `sel` (A* heuristic).
    Adiff,
    /// Multiply-accumulate: `mul` + `add` (FIR/dot-product step).
    Madd,
    /// Byte sum-of-absolute-differences: `zxtb` pair + abs-diff + `add`.
    Sad,
    /// One bit-reverse butterfly: mask/shift/merge at a power-of-two lane.
    BrevStage,
    /// One reflected CRC-32 round: lsb test, mask, shift, xor.
    CrcStep,
    /// A rotate diamond: `xor` + `shl`/`shr` pair + `or`.
    RorDiamond,
    /// A word load folded into the chain (gather traffic).
    Load,
}

/// The shape of one control-flow region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// One straight-line block.
    Straight,
    /// One self-looping block with a data-derived trip count.
    Loop,
    /// Four blocks: a branch head, two arms, a join.
    Diamond,
}

/// Everything domain-specific the generator consults.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Which domain this is.
    pub domain: GenDomain,
    /// Composite patterns with draw weights.
    pub patterns: &'static [(Pattern, u32)],
    /// Plain-ALU mnemonics for [`Pattern::Plain`] links.
    pub alu: &'static [&'static str],
    /// Percent chance a region ends by storing the accumulator.
    pub store_percent: u64,
    /// Region-shape draw weights: `[straight, loop, diamond]`.
    pub region_weights: [u32; 3],
}

/// The profile for a domain.
pub fn profile(domain: GenDomain) -> Profile {
    match domain {
        GenDomain::Graph => Profile {
            domain,
            patterns: &[
                (Pattern::Umin, 24),
                (Pattern::Adiff, 16),
                (Pattern::Load, 14),
                (Pattern::Plain, 46),
            ],
            alu: &["add", "sub", "and", "or", "xor", "shr"],
            store_percent: 25,
            region_weights: [40, 35, 25],
        },
        GenDomain::Dsp => Profile {
            domain,
            patterns: &[
                (Pattern::Madd, 18),
                (Pattern::Sad, 12),
                (Pattern::BrevStage, 12),
                (Pattern::CrcStep, 12),
                (Pattern::RorDiamond, 14),
                (Pattern::Load, 6),
                (Pattern::Plain, 26),
            ],
            alu: &["add", "mul", "xor", "shl", "shr", "sar"],
            store_percent: 20,
            region_weights: [55, 35, 10],
        },
        GenDomain::Mixed => Profile {
            domain,
            patterns: &[
                (Pattern::Umin, 10),
                (Pattern::Adiff, 8),
                (Pattern::Madd, 10),
                (Pattern::Sad, 6),
                (Pattern::BrevStage, 7),
                (Pattern::CrcStep, 7),
                (Pattern::RorDiamond, 9),
                (Pattern::Load, 9),
                (Pattern::Plain, 34),
            ],
            alu: &["add", "sub", "mul", "and", "or", "xor", "shl", "shr", "sar"],
            store_percent: 22,
            region_weights: [45, 35, 20],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_names_round_trip() {
        for d in GenDomain::ALL {
            assert_eq!(GenDomain::parse(d.name()), Some(d));
        }
        assert_eq!(GenDomain::parse("audio"), None);
    }

    #[test]
    fn pattern_weights_are_positive() {
        for d in GenDomain::ALL {
            let p = profile(d);
            assert!(p.patterns.iter().all(|&(_, w)| w > 0));
            assert!(!p.alu.is_empty());
        }
    }
}
