//! Textual `.isax` emission.
//!
//! [`FnEmit`] is a line-level assembler for the parser's canonical
//! format — the exact byte shape `Function`'s `Display` produces, which
//! is also the shape the historical `kernels/stress/generate.py` script
//! emitted. Keeping emission at the text layer (instead of building IR
//! and printing it) lets the stress-corpus port reproduce the checked-in
//! files byte-for-byte and makes `parse -> Display` a fixpoint for every
//! generated kernel by construction.

/// An in-progress function body: monotonically numbered virtual
/// registers plus the emitted lines (instructions, block headers and
/// terminators alike).
#[derive(Debug, Clone)]
pub struct FnEmit {
    name: String,
    next: u32,
    lines: Vec<String>,
}

impl FnEmit {
    /// A new function named `name` whose first `nparams` registers are
    /// the parameters (`v0..v{nparams-1}`).
    pub fn new(name: &str, nparams: u32) -> Self {
        FnEmit {
            name: name.to_string(),
            next: nparams,
            lines: Vec::new(),
        }
    }

    /// Allocates the next virtual register name.
    pub fn reg(&mut self) -> String {
        let r = format!("v{}", self.next);
        self.next += 1;
        r
    }

    /// Emits `mnem dst, srcs...` into a fresh register and returns it.
    pub fn op(&mut self, mnem: &str, srcs: &[&str]) -> String {
        let d = self.reg();
        self.lines
            .push(format!("    {mnem} {d}, {}", srcs.join(", ")));
        d
    }

    /// Emits `mnem dst, srcs...` into an existing register (a
    /// redefinition — the IR is pre-SSA, so this is how generated
    /// kernels model accumulators and loop counters).
    pub fn op_into(&mut self, dst: &str, mnem: &str, srcs: &[&str]) {
        self.lines
            .push(format!("    {mnem} {dst}, {}", srcs.join(", ")));
    }

    /// Emits a store (`stw`/`sth`/`stb` have no destination register).
    pub fn store(&mut self, mnem: &str, addr: &str, val: &str) {
        self.lines.push(format!("    {mnem} {addr}, {val}"));
    }

    /// Emits a word store.
    pub fn stw(&mut self, addr: &str, val: &str) {
        self.store("stw", addr, val);
    }

    /// Emits a block header: `b3:  ; weight 1000`.
    pub fn block(&mut self, index: usize, weight: u64) {
        self.lines.push(format!("b{index}:  ; weight {weight}"));
    }

    /// Emits `jmp bN`.
    pub fn jmp(&mut self, target: usize) {
        self.lines.push(format!("    jmp b{target}"));
    }

    /// Emits `br cond, bT, bF`.
    pub fn br(&mut self, cond: &str, taken: usize, not_taken: usize) {
        self.lines
            .push(format!("    br {cond}, b{taken}, b{not_taken}"));
    }

    /// Emits `ret v...`.
    pub fn ret(&mut self, vals: &[&str]) {
        self.lines.push(format!("    ret {}", vals.join(", ")));
    }

    /// Renders a single-block function: the historical stress-corpus
    /// shape (`func .. / b0: ; weight W / lines / trailing newline`).
    pub fn text(&self, weight: u64, params: &[&str]) -> String {
        let mut out = format!("func {}({})\n", self.name, params.join(", "));
        out.push_str(&format!("b0:  ; weight {weight}\n"));
        out.push_str(&self.lines.join("\n"));
        out.push('\n');
        out
    }

    /// Renders a multi-block function whose block headers and
    /// terminators were emitted inline via [`FnEmit::block`] and friends.
    pub fn text_multi(&self, params: &[&str]) -> String {
        let mut out = format!("func {}({})\n", self.name, params.join(", "));
        out.push_str(&self.lines.join("\n"));
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_block_shape_matches_the_parser_canonical_form() {
        let mut f = FnEmit::new("kern", 2);
        let t = f.op("xor", &["v0", "v1"]);
        let u = f.op("shl", &[&t, "#5"]);
        f.stw("v0", &u);
        f.ret(&[&u]);
        let text = f.text(10, &["v0", "v1"]);
        assert_eq!(
            text,
            "func kern(v0, v1)\n\
             b0:  ; weight 10\n    \
             xor v2, v0, v1\n    \
             shl v3, v2, #5\n    \
             stw v0, v3\n    \
             ret v3\n"
        );
        let p = isax_ir::parse_program(&text).expect("parses and verifies");
        assert_eq!(p.functions[0].to_string(), text, "Display fixpoint");
    }

    #[test]
    fn multi_block_shape_round_trips() {
        let mut f = FnEmit::new("two", 1);
        f.block(0, 1);
        let c = f.op("ltu", &["v0", "#7"]);
        f.br(&c, 1, 2);
        f.block(1, 5);
        let a = f.op("add", &["v0", "#1"]);
        f.op_into(&a, "xor", &[&a, "v0"]);
        f.jmp(3);
        f.block(2, 5);
        f.jmp(3);
        f.block(3, 1);
        f.ret(&["v0"]);
        let text = f.text_multi(&["v0"]);
        let p = isax_ir::parse_program(&text).expect("parses and verifies");
        assert_eq!(p.functions[0].to_string(), text);
    }
}
