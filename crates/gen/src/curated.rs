//! Curated graph-traversal and video/DSP kernels with reference oracles.
//!
//! These are the hand-designed counterparts of the generator's domain
//! profiles: small, realistic hot blocks whose dominant idioms are the
//! custom-instruction families the accelerator literature names for
//! each domain — unsigned minimum (UMIN) and absolute difference
//! (ADIFF) for Dijkstra/Prim/A* traversal, and SAD / multiply-
//! accumulate / bit-reverse CRC for video codecs.
//!
//! Every kernel carries a **reference oracle**: an independent Rust
//! implementation of the same function over the same seeded inputs.
//! The differential harness (`tests/gen_sweep.rs`) demands three-way
//! agreement — oracle, interpreter on the original, interpreter on the
//! customized/compiled rewrite — so a miscompile has to fool two
//! unrelated implementations at once to slip through.
//!
//! The checked-in files under `kernels/graph/` and `kernels/dsp/`
//! regenerate byte-identically from [`Curated::text`] (pinned by the
//! harness; use `isax gen --curated <name>` to rewrite one).

use crate::emit::FnEmit;
use crate::rng::{mix, Rng};
use isax_machine::Memory;

/// One curated kernel: the `.isax` source, its seeded input recipe, and
/// the independent oracle.
pub struct Curated {
    /// Kernel (and entry function, and file stem) name.
    pub name: &'static str,
    /// `"graph"` or `"dsp"` — the `kernels/` subdirectory.
    pub domain: &'static str,
    /// Regenerates the `.isax` source text.
    pub text: fn() -> String,
    /// Seeds the initial memory image for a run.
    pub init_memory: fn(&mut Memory, u64),
    /// Derives the argument vector for a run.
    pub args: fn(u64) -> Vec<u32>,
    /// Reference implementation: same args and memory, expected return
    /// values, with any stores applied to `mem` exactly as the kernel
    /// would apply them.
    pub oracle: fn(&[u32], &mut Memory) -> Vec<u32>,
}

/// The whole curated corpus, graph kernels first.
pub fn curated() -> Vec<Curated> {
    vec![
        Curated {
            name: "dijkstra_relax",
            domain: "graph",
            text: dijkstra_relax_text,
            init_memory: |mem, seed| fill_words(mem, 0x100, 16, seed, 0xD1),
            args: |seed| {
                let mut r = Rng::new(mix(&[seed, 0xD2]));
                vec![r.next_u32() % 4096, r.next_u32(), 0x100]
            },
            oracle: dijkstra_relax_oracle,
        },
        Curated {
            name: "astar_fscore",
            domain: "graph",
            text: astar_fscore_text,
            init_memory: |mem, seed| fill_words(mem, 0x100, 24, seed, 0xA1),
            args: |seed| {
                let mut r = Rng::new(mix(&[seed, 0xA2]));
                vec![r.next_u32() % 1024, r.next_u32() % 1024, 0x100]
            },
            oracle: astar_fscore_oracle,
        },
        Curated {
            name: "prim_minedge",
            domain: "graph",
            text: prim_minedge_text,
            init_memory: |mem, seed| fill_words(mem, 0x100, 8, seed, 0xB1),
            args: |seed| {
                let mut r = Rng::new(mix(&[seed, 0xB2]));
                vec![r.next_u32(), 0, 0x100]
            },
            oracle: prim_minedge_oracle,
        },
        Curated {
            name: "sad16",
            domain: "dsp",
            text: sad16_text,
            init_memory: |mem, seed| fill_bytes(mem, 0x100, 32, seed, 0xC1),
            args: |seed| {
                let mut r = Rng::new(mix(&[seed, 0xC2]));
                vec![r.next_u32(), 0, 0x100]
            },
            oracle: sad16_oracle,
        },
        Curated {
            name: "fir8",
            domain: "dsp",
            text: fir8_text,
            init_memory: |mem, seed| fill_words(mem, 0x100, 16, seed, 0xE1),
            args: |seed| {
                let mut r = Rng::new(mix(&[seed, 0xE2]));
                vec![r.next_u32(), 0, 0x100]
            },
            oracle: fir8_oracle,
        },
        Curated {
            name: "crc_brev",
            domain: "dsp",
            text: crc_brev_text,
            init_memory: |_, _| {},
            args: |seed| {
                let mut r = Rng::new(mix(&[seed, 0xF1]));
                vec![r.next_u32(), r.next_u32(), 0]
            },
            oracle: crc_brev_oracle,
        },
    ]
}

/// Looks up a curated kernel by name.
pub fn curated_by_name(name: &str) -> Option<Curated> {
    curated().into_iter().find(|c| c.name == name)
}

fn fill_words(mem: &mut Memory, base: u32, n: u32, seed: u64, salt: u64) {
    let mut r = Rng::new(mix(&[seed, salt]));
    for i in 0..n {
        mem.store32(base + 4 * i, r.next_u32());
    }
}

fn fill_bytes(mem: &mut Memory, base: u32, n: u32, seed: u64, salt: u64) {
    let mut r = Rng::new(mix(&[seed, salt]));
    for i in 0..n {
        mem.store8(base + i, (r.next_u32() & 0xFF) as u8);
    }
}

const HOT_WEIGHT: u64 = 100_000;

// ---- graph: dijkstra_relax ------------------------------------------------
//
// Relax eight outgoing edges of one node: `dist[k] = min(dist[k],
// dist_u + w[k])` with the unsigned-min `ltu`+`sel` idiom, folding every
// new distance into a rotating checksum. Layout at `base` (= v2):
// 8 edge weights, then 8 tentative distances.

fn dijkstra_relax_text() -> String {
    let mut f = FnEmit::new("dijkstra_relax", 3);
    let mut acc = "v1".to_string();
    for k in 0..8u32 {
        let wa = f.op("add", &["v2", &format!("#{}", 4 * k)]);
        let w = f.op("ldw", &[&wa]);
        let da = f.op("add", &["v2", &format!("#{}", 32 + 4 * k)]);
        let d = f.op("ldw", &[&da]);
        let alt = f.op("add", &["v0", &w]);
        let c = f.op("ltu", &[&alt, &d]);
        let nd = f.op("sel", &[&c, &alt, &d]);
        f.stw(&da, &nd);
        let rot = f.op("ror", &[&acc, "#7"]);
        acc = f.op("xor", &[&rot, &nd]);
    }
    f.ret(&[&acc]);
    f.text(HOT_WEIGHT, &["v0", "v1", "v2"])
}

fn dijkstra_relax_oracle(args: &[u32], mem: &mut Memory) -> Vec<u32> {
    let (dist_u, salt, base) = (args[0], args[1], args[2]);
    let mut acc = salt;
    for k in 0..8u32 {
        let w = mem.load32(base + 4 * k);
        let d = mem.load32(base + 32 + 4 * k);
        let alt = dist_u.wrapping_add(w);
        let nd = if alt < d { alt } else { d };
        mem.store32(base + 32 + 4 * k, nd);
        acc = acc.rotate_right(7) ^ nd;
    }
    vec![acc]
}

// ---- graph: astar_fscore --------------------------------------------------
//
// Scan eight frontier nodes: Manhattan-distance heuristic via two
// ADIFF patterns, `f = g + |x - x0| + |y - y0|`, tracking the minimum
// f-score with UMIN. Layout at `base`: 8 (x, y) pairs, then 8 g-costs.

fn astar_fscore_text() -> String {
    let mut f = FnEmit::new("astar_fscore", 3);
    let mut best = String::new();
    for k in 0..8u32 {
        let xa = f.op("add", &["v2", &format!("#{}", 8 * k)]);
        let x = f.op("ldw", &[&xa]);
        let ya = f.op("add", &["v2", &format!("#{}", 8 * k + 4)]);
        let y = f.op("ldw", &[&ya]);
        let ga = f.op("add", &["v2", &format!("#{}", 64 + 4 * k)]);
        let g = f.op("ldw", &[&ga]);
        let dx1 = f.op("sub", &[&x, "v0"]);
        let dx2 = f.op("sub", &["v0", &x]);
        let cx = f.op("ltu", &[&x, "v0"]);
        let dx = f.op("sel", &[&cx, &dx2, &dx1]);
        let dy1 = f.op("sub", &[&y, "v1"]);
        let dy2 = f.op("sub", &["v1", &y]);
        let cy = f.op("ltu", &[&y, "v1"]);
        let dy = f.op("sel", &[&cy, &dy2, &dy1]);
        let h = f.op("add", &[&dx, &dy]);
        let fs = f.op("add", &[&g, &h]);
        if k == 0 {
            best = fs;
        } else {
            let c = f.op("ltu", &[&fs, &best]);
            best = f.op("sel", &[&c, &fs, &best]);
        }
    }
    f.ret(&[&best]);
    f.text(HOT_WEIGHT, &["v0", "v1", "v2"])
}

fn astar_fscore_oracle(args: &[u32], mem: &mut Memory) -> Vec<u32> {
    let (x0, y0, base) = (args[0], args[1], args[2]);
    let adiff = |a: u32, b: u32| {
        if a < b {
            b.wrapping_sub(a)
        } else {
            a.wrapping_sub(b)
        }
    };
    let mut best = 0u32;
    for k in 0..8u32 {
        let x = mem.load32(base + 8 * k);
        let y = mem.load32(base + 8 * k + 4);
        let g = mem.load32(base + 64 + 4 * k);
        let fs = g.wrapping_add(adiff(x, x0).wrapping_add(adiff(y, y0)));
        best = if k == 0 || fs < best { fs } else { best };
    }
    vec![best]
}

// ---- graph: prim_minedge --------------------------------------------------
//
// Scan eight candidate edges for the lightest one (UMIN chain), and
// build a bitmask recording at which steps the running minimum equaled
// the scanned weight — the "which edge won" bookkeeping of Prim's
// algorithm. Two return values exercise multi-output kernels.

fn prim_minedge_text() -> String {
    let mut f = FnEmit::new("prim_minedge", 3);
    let mut bits = f.op("shr", &["v0", "#28"]);
    let wa0 = f.op("add", &["v2", "#0"]);
    let mut best = f.op("ldw", &[&wa0]);
    for k in 1..8u32 {
        let wa = f.op("add", &["v2", &format!("#{}", 4 * k)]);
        let w = f.op("ldw", &[&wa]);
        let c = f.op("ltu", &[&w, &best]);
        let nb = f.op("sel", &[&c, &w, &best]);
        let e = f.op("eq", &[&nb, &w]);
        let s = f.op("shl", &[&bits, "#1"]);
        bits = f.op("or", &[&s, &e]);
        best = nb;
    }
    f.ret(&[&best, &bits]);
    f.text(HOT_WEIGHT, &["v0", "v1", "v2"])
}

fn prim_minedge_oracle(args: &[u32], mem: &mut Memory) -> Vec<u32> {
    let (salt, base) = (args[0], args[2]);
    let mut bits = salt >> 28;
    let mut best = mem.load32(base);
    for k in 1..8u32 {
        let w = mem.load32(base + 4 * k);
        let nb = if w < best { w } else { best };
        let e = u32::from(nb == w);
        bits = (bits << 1) | e;
        best = nb;
    }
    vec![best, bits]
}

// ---- dsp: sad16 -----------------------------------------------------------
//
// Sum of absolute differences over two 16-byte rows (motion-estimation
// inner loop): unsigned byte loads, the ADIFF idiom per pair, running
// accumulation. Layout at `base`: row a, then row b.

fn sad16_text() -> String {
    let mut f = FnEmit::new("sad16", 3);
    let mut acc = f.op("shr", &["v0", "#24"]);
    for k in 0..16u32 {
        let aa = f.op("add", &["v2", &format!("#{k}")]);
        let a = f.op("ldbu", &[&aa]);
        let ba = f.op("add", &["v2", &format!("#{}", 16 + k)]);
        let b = f.op("ldbu", &[&ba]);
        let d1 = f.op("sub", &[&a, &b]);
        let d2 = f.op("sub", &[&b, &a]);
        let c = f.op("ltu", &[&a, &b]);
        let s = f.op("sel", &[&c, &d2, &d1]);
        acc = f.op("add", &[&acc, &s]);
    }
    f.ret(&[&acc]);
    f.text(HOT_WEIGHT, &["v0", "v1", "v2"])
}

fn sad16_oracle(args: &[u32], mem: &mut Memory) -> Vec<u32> {
    let (salt, base) = (args[0], args[2]);
    let mut acc = salt >> 24;
    for k in 0..16u32 {
        let a = u32::from(mem.load8(base + k));
        let b = u32::from(mem.load8(base + 16 + k));
        let d = if a < b {
            b.wrapping_sub(a)
        } else {
            a.wrapping_sub(b)
        };
        acc = acc.wrapping_add(d);
    }
    vec![acc]
}

// ---- dsp: fir8 ------------------------------------------------------------
//
// An 8-tap FIR step over 16-bit samples: `zxth` narrowing, multiply-
// accumulate per tap, arithmetic shift-down of the result. Layout at
// `base`: 8 coefficient words, then 8 sample words.

fn fir8_text() -> String {
    let mut f = FnEmit::new("fir8", 3);
    let mut acc = "v0".to_string();
    for k in 0..8u32 {
        let ha = f.op("add", &["v2", &format!("#{}", 4 * k)]);
        let hw = f.op("ldw", &[&ha]);
        let h16 = f.op("zxth", &[&hw]);
        let xa = f.op("add", &["v2", &format!("#{}", 32 + 4 * k)]);
        let xw = f.op("ldw", &[&xa]);
        let x16 = f.op("zxth", &[&xw]);
        let m = f.op("mul", &[&x16, &h16]);
        acc = f.op("add", &[&acc, &m]);
    }
    let r = f.op("sar", &[&acc, "#6"]);
    f.ret(&[&r]);
    f.text(HOT_WEIGHT, &["v0", "v1", "v2"])
}

fn fir8_oracle(args: &[u32], mem: &mut Memory) -> Vec<u32> {
    let (seed_acc, base) = (args[0], args[2]);
    let mut acc = seed_acc;
    for k in 0..8u32 {
        let h = mem.load32(base + 4 * k) & 0xFFFF;
        let x = mem.load32(base + 32 + 4 * k) & 0xFFFF;
        acc = acc.wrapping_add(x.wrapping_mul(h));
    }
    vec![((acc as i32) >> 6) as u32]
}

// ---- dsp: crc_brev --------------------------------------------------------
//
// Bit-reverse one word with the classic five-stage butterfly network
// (the BREV custom instruction's software expansion), fold it into a
// running CRC, and run eight reflected CRC-32 rounds.

fn crc_brev_text() -> String {
    let mut f = FnEmit::new("crc_brev", 3);
    let mut v = "v0".to_string();
    for (mask, k) in [
        (0x5555_5555u32, 1u32),
        (0x3333_3333, 2),
        (0x0F0F_0F0F, 4),
        (0x00FF_00FF, 8),
    ] {
        let m = format!("#{mask}");
        let ks = format!("#{k}");
        let t1 = f.op("shr", &[&v, &ks]);
        let t2 = f.op("and", &[&t1, &m]);
        let t3 = f.op("and", &[&v, &m]);
        let t4 = f.op("shl", &[&t3, &ks]);
        v = f.op("or", &[&t2, &t4]);
    }
    let brev = f.op("ror", &[&v, "#16"]);
    let mut crc = f.op("xor", &["v1", &brev]);
    for _ in 0..8 {
        let b = f.op("and", &[&crc, "#1"]);
        let z = f.op("sub", &["#0", &b]);
        let m = f.op("and", &[&z, "#3988292384"]);
        let t = f.op("shr", &[&crc, "#1"]);
        crc = f.op("xor", &[&t, &m]);
    }
    f.ret(&[&crc]);
    f.text(HOT_WEIGHT, &["v0", "v1", "v2"])
}

fn crc_brev_oracle(args: &[u32], _mem: &mut Memory) -> Vec<u32> {
    let (data, crc_in) = (args[0], args[1]);
    let mut crc = crc_in ^ data.reverse_bits();
    for _ in 0..8 {
        let m = 0u32.wrapping_sub(crc & 1) & 0xEDB8_8320;
        crc = (crc >> 1) ^ m;
    }
    vec![crc]
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_machine::run;

    /// Every curated kernel: parses, Display-fixpoints, and the
    /// interpreter agrees with the independent oracle on several seeds
    /// (return values and final memory).
    #[test]
    fn oracles_agree_with_the_interpreter() {
        for k in curated() {
            let text = (k.text)();
            let p = isax_ir::parse_program(&text).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert_eq!(
                p.functions[0].to_string(),
                text,
                "{}: Display fixpoint",
                k.name
            );
            for seed in 0..6u64 {
                let args = (k.args)(seed);
                let mut mem_run = Memory::new();
                (k.init_memory)(&mut mem_run, seed);
                let mut mem_oracle = mem_run.clone();
                let out = run(&p, k.name, &args, &mut mem_run, 1_000_000)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", k.name));
                let expect = (k.oracle)(&args, &mut mem_oracle);
                assert_eq!(out.ret, expect, "{} seed {seed}: return values", k.name);
                assert_eq!(mem_run, mem_oracle, "{} seed {seed}: final memory", k.name);
            }
        }
    }

    #[test]
    fn corpus_covers_both_domains() {
        let ks = curated();
        assert!(ks.iter().filter(|k| k.domain == "graph").count() >= 2);
        assert!(ks.iter().filter(|k| k.domain == "dsp").count() >= 3);
        assert!(curated_by_name("sad16").is_some());
        assert!(curated_by_name("quicksort").is_none());
    }
}
