//! The pathological stress corpus, ported from
//! `kernels/stress/generate.py` (now retired).
//!
//! Each kernel is designed so the guided explorer's candidate space —
//! connected convex subgraphs within the paper's 5-input/3-output port
//! limits — exceeds 10^6 examined subgraphs on its hot block, while the
//! whole file stays small enough to parse instantly. They exist to
//! exercise isax-guard: a bounded run must terminate with a degradation
//! report and a sound partial result (see `tests/stress_guard.rs`).
//!
//! The port is byte-identical to the Python script's output — the
//! checked-in `kernels/stress/*.isax` files regenerate exactly (pinned
//! by `tests/gen_sweep.rs`), so explorer baselines keyed to those files
//! stay valid. Regenerate with `isax gen --stress <name>`.

use crate::emit::FnEmit;

/// A long chain of rotate diamonds (`xor -> shl/shr -> or`).
///
/// Any window of the chain is a candidate, and every `shl`/`shr` inside
/// a window can be excluded for +1 input — combinatorially many shapes
/// per window, times ~190 window positions.
pub fn deep_chain() -> String {
    let mut f = FnEmit::new("deep_chain", 2);
    let (mut acc, k) = ("v0".to_string(), "v1");
    for _ in 0..190 {
        let t = f.op("xor", &[&acc, k]);
        let l = f.op("shl", &[&t, "#5"]);
        let r = f.op("shr", &[&t, "#27"]);
        acc = f.op("or", &[&l, &r]);
    }
    f.ret(&[&acc]);
    f.text(100_000, &["v0", "v1"])
}

/// A chain of 4-way fanout stages.
///
/// Every stage fans one value out to four independent single-op branches
/// and reduces them with a two-level or-tree. Each branch (and each
/// reducer) can be excluded from a window for +1 input, so a window of k
/// stages contributes C(6k, <=3) shapes — far more per window than the
/// plain diamond chain.
pub fn wide_fanout() -> String {
    let mut f = FnEmit::new("wide_fanout", 2);
    let (mut acc, k) = ("v0".to_string(), "v1");
    for _ in 0..95 {
        let t = f.op("xor", &[&acc, k]);
        let b1 = f.op("shl", &[&t, "#1"]);
        let b2 = f.op("shr", &[&t, "#3"]);
        let b3 = f.op("add", &[&t, "#9"]);
        let b4 = f.op("xor", &[&t, "#21"]);
        let c1 = f.op("or", &[&b1, &b2]);
        let c2 = f.op("or", &[&b3, &b4]);
        acc = f.op("or", &[&c1, &c2]);
    }
    f.ret(&[&acc]);
    f.text(100_000, &["v0", "v1"])
}

/// An all-commutative diamond chain.
///
/// Topologically like [`deep_chain`] (a chain of single-parent,
/// single-child excludable side pairs, which is the shape that makes
/// the candidate space explode under the 5-in/3-out port caps), but
/// every node is a commutative op. Matching its candidates back into
/// the program forces VF2 to consider operand swaps at every level,
/// so this is the permutation-matching stress.
pub fn dense_clique() -> String {
    let mut f = FnEmit::new("dense_clique", 2);
    let (mut acc, k) = ("v0".to_string(), "v1");
    for i in 0..190u64 {
        let t = f.op("add", &[&acc, k]);
        let l = f.op("and", &[&t, &format!("#{}", (i % 30) + 1)]);
        let r = f.op("or", &[&t, &format!("#{}", (i % 28) + 2)]);
        acc = f.op("xor", &[&l, &r]);
    }
    f.ret(&[&acc]);
    f.text(100_000, &["v0", "v1"])
}

/// Alternating memory / ALU segments.
///
/// Each segment loads a word, runs a rotate-diamond chain seeded by it,
/// and stores the result. Loads and stores are CFU-ineligible under the
/// baseline library, so each ALU island explores independently — but
/// all islands live in one block (one DFG, one meter), so their
/// candidate spaces accumulate against a single budget. The ld/st fence
/// around every island also makes this the memory-ordering stress for
/// the scheduler.
pub fn mem_alu_ladder() -> String {
    let mut f = FnEmit::new("mem_alu_ladder", 2);
    let (base, mut acc) = ("v0", "v1".to_string());
    for seg in 0..20u64 {
        let a0 = f.op("add", &[base, &format!("#{}", seg * 64)]);
        let a = f.op("ldw", &[&a0]);
        let mut t = f.op("xor", &[&a, &acc]);
        for _ in 0..24 {
            let u = f.op("xor", &[&t, &acc]);
            let l = f.op("shl", &[&u, "#7"]);
            let r = f.op("shr", &[&u, "#25"]);
            t = f.op("or", &[&l, &r]);
        }
        acc = t;
        f.stw(&a0, &acc);
    }
    f.ret(&[&acc]);
    f.text(100_000, &["v0", "v1"])
}

/// A named stress-kernel recipe: `(name, regenerator)`.
pub type StressRecipe = (&'static str, fn() -> String);

/// Name/generator table for the whole corpus, in the order the Python
/// script wrote the files.
pub const STRESS: [StressRecipe; 4] = [
    ("deep_chain", deep_chain),
    ("wide_fanout", wide_fanout),
    ("dense_clique", dense_clique),
    ("mem_alu_ladder", mem_alu_ladder),
];

/// Regenerates one stress kernel by name.
pub fn stress_kernel(name: &str) -> Option<String> {
    STRESS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, gen)| gen())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stress_kernel_parses_and_verifies() {
        for (name, gen) in STRESS {
            let text = gen();
            let p = isax_ir::parse_program(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(p.functions[0].name, name);
            assert_eq!(p.functions[0].to_string(), text, "{name}: Display fixpoint");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(stress_kernel("deep_chain").is_some());
        assert!(stress_kernel("nope").is_none());
    }
}
