//! Property-based checks of the generator's correctness-by-construction
//! claims: for *every* `(seed, domain, blocks)` triple, the emitted
//! kernel must parse and verify, be a `parse -> Display` fixpoint, come
//! out clean under the static lint (`IC0801`–`IC0805` and friends),
//! terminate under the interpreter, and regenerate byte-identically.

use isax_gen::{generate, seeded_args, seeded_memory, GenConfig, GenDomain};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn any_domain() -> impl Strategy<Value = GenDomain> {
    (0usize..3).prop_map(|i| GenDomain::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(64))]

    #[test]
    fn generated_kernels_verify_lint_clean_and_round_trip(
        seed in any::<u64>(),
        domain in any_domain(),
        blocks in 0usize..48,
    ) {
        let cfg = GenConfig { seed, domain, blocks };
        let text = generate(&cfg);

        // Parses, and the parser's embedded verifier accepts it.
        let p = isax_ir::parse_program(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(p.functions.len(), 1);
        prop_assert_eq!(&p.functions[0].name, &cfg.entry_name());
        prop_assert_eq!(p.functions[0].blocks.len(), cfg.effective_blocks());

        // Canonical text: parse -> Display is a byte fixpoint.
        prop_assert_eq!(p.functions[0].to_string(), text);

        // Clean under the whole static lint, warnings included.
        let report = isax::lint_program(&p);
        prop_assert!(
            report.diagnostics().is_empty(),
            "lint findings on {}: {:?}",
            cfg.entry_name(),
            report.diagnostics()
        );
    }

    #[test]
    fn generated_kernels_terminate_on_seeded_inputs(
        seed in any::<u64>(),
        domain in any_domain(),
        blocks in 0usize..32,
    ) {
        let cfg = GenConfig { seed, domain, blocks };
        let p = isax_ir::parse_program(&generate(&cfg)).unwrap();
        let args = seeded_args(seed);
        let mut mem = seeded_memory(seed);
        // Trip counts are bounded by construction (<= 17 per loop), so
        // a generous linear fuel budget must always suffice.
        let fuel = 10_000 * cfg.effective_blocks() as u64;
        let out = run_ok(&p, &cfg.entry_name(), &args, &mut mem, fuel)?;
        prop_assert_eq!(out.ret.len(), 2, "acc and chk are both returned");
    }

    #[test]
    fn generation_is_deterministic(
        seed in any::<u64>(),
        domain in any_domain(),
        blocks in 0usize..64,
    ) {
        let cfg = GenConfig { seed, domain, blocks };
        prop_assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn nearby_seeds_differ(seed in any::<u64>()) {
        let a = GenConfig { seed, domain: GenDomain::Mixed, blocks: 8 };
        let b = GenConfig { seed: seed.wrapping_add(1), ..a };
        prop_assert_ne!(generate(&a), generate(&b));
    }
}

fn run_ok(
    p: &isax_ir::Program,
    entry: &str,
    args: &[u32],
    mem: &mut isax_machine::Memory,
    fuel: u64,
) -> Result<isax_machine::ExecOutcome, TestCaseError> {
    isax_machine::run(p, entry, args, mem, fuel)
        .map_err(|e| TestCaseError::fail(format!("execution failed: {e}")))
}
