//! Property-based checks of the serve layer's two foundational claims:
//!
//! * the wire codec is **total and lossless** — `encode → decode` is the
//!   identity for every representable frame, encoded frames never
//!   contain a raw newline (so the framing cannot break, whatever bytes
//!   the kernel text holds), and `decode` never panics on arbitrary
//!   input;
//! * the content-addressed cache **linearizes** — when many threads
//!   race `insert` on one key, every thread observes the same canonical
//!   artifact, the one a subsequent `lookup` returns.

use isax_json::Value;
use isax_serve::{
    decode_request, decode_response, encode_request, encode_response, frame_id, ArtifactCache,
    Artifacts, CacheKey, ErrorCode, Frame, Reply, Request, Response, WireError,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Strings over the full scalar-value space, biased toward the bytes
/// that stress a line protocol: newlines, quotes, backslashes, NULs and
/// astral-plane characters all appear.
fn any_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u32>(), 0..32).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| match c % 8 {
                0 => '\n',
                1 => '"',
                2 => '\\',
                3 => '\u{0}',
                4 => '\r',
                _ => char::from_u32(c % 0x2_FFFF).unwrap_or('\u{FFFD}'),
            })
            .collect()
    })
}

fn any_opt_u64() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), any::<u64>()).prop_map(|(some, v)| if some { Some(v) } else { None })
}

fn any_opt_string() -> impl Strategy<Value = Option<String>> {
    (any::<bool>(), any_string()).prop_map(|(some, v)| if some { Some(v) } else { None })
}

/// Finite floats only: JSON has no Inf/NaN spelling (the writer emits
/// `null` for them, deliberately lossy), so the identity claim is
/// scoped to finite values.
fn finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let f = f64::from_bits(bits);
        if f.is_finite() {
            f
        } else {
            15.25
        }
    })
}

fn any_request() -> impl Strategy<Value = Request> {
    (
        0usize..5,
        any_string(),
        any_string(),
        any_string(),
        finite_f64(),
        (any::<bool>(), any::<bool>(), any_opt_u64()),
    )
        .prop_map(
            |(which, kernel, name, mdes, budget, (flag_a, flag_b, work_budget))| match which {
                0 => Request::Customize {
                    kernel,
                    name,
                    budget,
                    multifunction: flag_a,
                    work_budget,
                },
                1 => Request::Compile {
                    kernel,
                    name,
                    mdes,
                    subsumed: flag_a,
                    wildcard: flag_b,
                    work_budget,
                },
                2 => Request::Stats,
                3 => Request::Metrics,
                _ => Request::Shutdown,
            },
        )
}

fn any_artifacts() -> impl Strategy<Value = Artifacts> {
    (
        any_opt_string(),
        any_opt_string(),
        any_opt_string(),
        any_opt_u64(),
        any_opt_u64(),
        proptest::collection::vec(any_string(), 0..4),
    )
        .prop_map(
            |(mdes, assembly, prov, baseline_cycles, custom_cycles, degraded)| Artifacts {
                mdes,
                assembly,
                prov,
                baseline_cycles,
                custom_cycles,
                degraded,
            },
        )
}

const ALL_CODES: [ErrorCode; 8] = [
    ErrorCode::MalformedFrame,
    ErrorCode::BadRequest,
    ErrorCode::OversizedFrame,
    ErrorCode::TruncatedFrame,
    ErrorCode::Busy,
    ErrorCode::ParseError,
    ErrorCode::BadMdes,
    ErrorCode::ShuttingDown,
];

/// A JSON leaf whose print → parse cycle is the identity: finite
/// floats, and integers in the variant the parser picks (`Int` up to
/// `i64::MAX`, `UInt` strictly above).
fn any_json_leaf() -> impl Strategy<Value = Value> {
    (
        0usize..6,
        any::<i64>(),
        any::<u64>(),
        finite_f64(),
        any_string(),
        any::<bool>(),
    )
        .prop_map(|(which, i, u, f, s, b)| match which {
            0 => Value::Null,
            1 => Value::Bool(b),
            2 => Value::Int(i),
            3 => Value::UInt(i64::MAX as u64 + 1 + (u >> 1)),
            4 => Value::Float(f),
            _ => Value::Str(s),
        })
}

/// A stats-shaped document: an object with unique, sorted keys whose
/// values are round-trippable leaves or arrays of leaves.
fn any_stats() -> impl Strategy<Value = Value> {
    let entry = (
        any_string(),
        0usize..3,
        any_json_leaf(),
        proptest::collection::vec(any_json_leaf(), 0..4),
    );
    proptest::collection::vec(entry, 0..5).prop_map(|entries| {
        let map: BTreeMap<String, Value> = entries
            .into_iter()
            .map(|(key, which, leaf, arr)| {
                let v = if which == 0 { Value::Array(arr) } else { leaf };
                (key, v)
            })
            .collect();
        Value::Object(map.into_iter().collect())
    })
}

fn any_reply() -> impl Strategy<Value = Reply> {
    (
        0usize..5,
        any::<bool>(),
        any_artifacts(),
        any_stats(),
        0usize..ALL_CODES.len(),
        any_string(),
    )
        .prop_map(
            |(which, cached, artifacts, stats, code, message)| match which {
                0 => Reply::Artifacts { cached, artifacts },
                1 => Reply::Stats(stats),
                2 => Reply::Shutdown,
                3 => Reply::Metrics(message.clone()),
                _ => Reply::Error(WireError {
                    code: ALL_CODES[code],
                    message,
                }),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(128))]

    /// `encode_request → decode_request` is the identity, and the
    /// encoded line is newline-free however hostile the payload
    /// strings are — the framing invariant the whole protocol rests on.
    #[test]
    fn request_round_trip(id in any::<u64>(), request in any_request()) {
        let frame = Frame { id, request: request.clone() };
        let line = encode_request(&frame);
        prop_assert!(!line.contains('\n'), "raw newline breaks framing: {line:?}");
        prop_assert!(!line.contains('\r'), "raw CR breaks framing: {line:?}");
        let back = decode_request(&line)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back, frame);
        prop_assert_eq!(frame_id(&line), id);
    }

    /// `encode_response → decode_response` is the identity and is
    /// likewise newline-free.
    #[test]
    fn response_round_trip(id in any::<u64>(), reply in any_reply()) {
        let resp = Response { id, reply: reply.clone() };
        let line = encode_response(&resp);
        prop_assert!(!line.contains('\n'), "raw newline breaks framing: {line:?}");
        let back = decode_response(&line)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back, resp);
    }

    /// The decoders are total: arbitrary text — valid JSON or garbage —
    /// always produces `Ok` or a structured `Err` with a documented
    /// code, never a panic.
    #[test]
    fn decode_never_panics_on_arbitrary_text(line in any_string()) {
        let _ = frame_id(&line);
        if let Err(e) = decode_request(&line) {
            prop_assert!(matches!(
                e.code,
                ErrorCode::MalformedFrame | ErrorCode::BadRequest
            ));
        }
        if let Err(e) = decode_response(&line) {
            prop_assert!(matches!(
                e.code,
                ErrorCode::MalformedFrame | ErrorCode::BadRequest
            ));
        }
    }

    /// Same totality over arbitrary *bytes* pushed through lossy UTF-8
    /// (the server reads frames as lossy text, so this is exactly the
    /// input space a hostile client controls).
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = frame_id(&line);
        let _ = decode_request(&line);
        let _ = decode_response(&line);
    }

    /// Every error code's wire spelling parses back to itself.
    #[test]
    fn error_codes_round_trip(which in 0usize..ALL_CODES.len()) {
        let code = ALL_CODES[which];
        prop_assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
    }

    /// Concurrent `insert` races on one key linearize: every racing
    /// thread gets the *same* canonical `Arc` even when their payloads
    /// differ, and `lookup` afterwards returns that same artifact. (In
    /// production, payloads for one key are identical by construction —
    /// the pipeline is deterministic — so first-insert-wins is
    /// indistinguishable from any other tie-break; this test feeds
    /// deliberately different payloads to make a linearization failure
    /// visible.)
    #[test]
    fn cache_insert_linearizes_under_races(
        kernel in any::<u64>(),
        config in any::<u64>(),
        threads in 2usize..8,
    ) {
        let cache = Arc::new(ArtifactCache::new());
        let key = CacheKey { kernel, config };
        let winners: Vec<Arc<Artifacts>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let cache = Arc::clone(&cache);
                    scope.spawn(move || {
                        cache.insert(
                            key,
                            Artifacts {
                                mdes: Some(format!("payload from thread {t}")),
                                ..Artifacts::default()
                            },
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let canonical = cache.lookup(key).expect("inserted key must be present");
        for w in &winners {
            prop_assert!(
                Arc::ptr_eq(w, &canonical),
                "a racing insert observed a non-canonical artifact"
            );
        }
        prop_assert_eq!(cache.len(), 1);
        // Distinct keys never alias.
        let other = CacheKey { kernel: kernel.wrapping_add(1), config };
        prop_assert!(cache.lookup(other).is_none());
    }
}
