//! Per-request telemetry: deterministic request ids, the structured
//! newline-JSON access log, and the server metrics registry.
//!
//! # Request ids
//!
//! Every frame the server reads gets an id derived only from its
//! arrival sequence number and a fingerprint of its bytes —
//! `<seq>-<fnv64(frame) as hex>` — never from wall-clock time or
//! randomness, so the same request script produces the same ids at any
//! worker count. The sequence number is also pushed into
//! `isax_trace::set_request` while the request runs, tagging every
//! span and counter the pipeline emits (and, via `isax_graph::par`,
//! everything its nested workers emit) with the request.
//!
//! # Access log
//!
//! One compact-JSON line per request — accepted, busy-rejected, or
//! malformed — written exactly once, by whichever thread finished the
//! request (workers for queued work, connection threads for control
//! requests and protocol errors). Configured by `--access-log` /
//! `ISAX_SERVE_LOG` with the shared `0`/`off`/`1`/path grammar
//! ([`isax_trace::parse_env_value`]); the summary form writes to
//! stderr.
//!
//! # Metrics registry
//!
//! [`ServeMetrics`] holds what the `stats` document alone could not
//! say: gauges (inflight, queue high-water, uptime), per-error-code
//! counters, and the latency [`Hist`]s (queue wait, per-stage service
//! time, end-to-end) behind the `metrics` exposition.

use crate::protocol::ErrorCode;
use isax_json::{object, Value};
use isax_trace::{EnvMode, Hist};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Parses `ISAX_SERVE_LOG` with the shared observability grammar.
pub fn access_mode() -> EnvMode {
    match std::env::var("ISAX_SERVE_LOG") {
        Ok(v) => isax_trace::parse_env_value(&v),
        Err(_) => EnvMode::Off,
    }
}

/// The deterministic request id: arrival sequence plus a content
/// fingerprint of the frame bytes. No clock, no randomness.
#[must_use]
pub fn request_id(seq: u64, content_fp: u64) -> String {
    format!("{seq}-{content_fp:016x}")
}

/// One finished request, as recorded in the access log.
#[derive(Debug, Clone)]
pub struct AccessRecord {
    /// Arrival sequence number (1-based, equals the `received` counter
    /// at read time).
    pub seq: u64,
    /// Deterministic request id ([`request_id`]).
    pub id: String,
    /// Request kind: `customize`, `compile`, `stats`, `metrics`,
    /// `shutdown`, or `frame` for bytes that never decoded.
    pub kind: &'static str,
    /// Application name for work requests.
    pub name: Option<String>,
    /// `ok`, or the wire error code.
    pub outcome: &'static str,
    /// Served from the artifact cache?
    pub cached: bool,
    /// Admitted work-unit budget (after clamping), when governed.
    pub admitted: Option<u64>,
    /// Number of degradation records in the response.
    pub degraded: u64,
    /// Time spent queued, in microseconds (0 for inline requests).
    pub queue_us: u64,
    /// Per-stage service time, in stage execution order.
    pub stages: Vec<(&'static str, u64)>,
    /// Receipt-to-response-ready latency in microseconds.
    pub total_us: u64,
}

impl AccessRecord {
    /// Renders the record as one compact JSON line (no newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut fields: Vec<(&'static str, Value)> = vec![
            ("seq", Value::from(self.seq)),
            ("id", Value::from(self.id.clone())),
            ("req", Value::from(self.kind)),
        ];
        if let Some(name) = &self.name {
            fields.push(("name", Value::from(name.clone())));
        }
        fields.push(("outcome", Value::from(self.outcome)));
        if self.cached {
            fields.push(("cached", Value::Bool(true)));
        }
        if let Some(u) = self.admitted {
            fields.push(("admitted", Value::from(u)));
        }
        if self.degraded > 0 {
            fields.push(("degraded", Value::from(self.degraded)));
        }
        fields.push(("queue_us", Value::from(self.queue_us)));
        if !self.stages.is_empty() {
            fields.push((
                "stages_us",
                object(
                    self.stages
                        .iter()
                        .map(|(k, v)| (k.to_string(), Value::from(*v))),
                ),
            ));
        }
        fields.push(("total_us", Value::from(self.total_us)));
        object(fields).to_string_compact()
    }
}

enum AccessSink {
    Stderr,
    File(std::io::BufWriter<std::fs::File>),
}

/// The access-log writer: serialized, line-buffered, exactly one line
/// per finished request.
pub struct AccessLog {
    sink: Mutex<AccessSink>,
    lines: AtomicU64,
}

impl AccessLog {
    /// Opens the sink for `mode`; `None` when the log is off.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures for the path form.
    pub fn open(mode: &EnvMode) -> std::io::Result<Option<AccessLog>> {
        let sink = match mode {
            EnvMode::Off => return Ok(None),
            EnvMode::Summary => AccessSink::Stderr,
            EnvMode::Path(p) => {
                AccessSink::File(std::io::BufWriter::new(std::fs::File::create(p)?))
            }
        };
        Ok(Some(AccessLog {
            sink: Mutex::new(sink),
            lines: AtomicU64::new(0),
        }))
    }

    /// Appends one record. Never panics; write errors are swallowed
    /// (telemetry must not take down request processing).
    pub fn write(&self, rec: &AccessRecord) {
        let line = rec.to_line();
        self.lines.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut sink) = self.sink.lock() {
            match &mut *sink {
                AccessSink::Stderr => eprintln!("{line}"),
                AccessSink::File(f) => {
                    let _ = writeln!(f, "{line}");
                    let _ = f.flush();
                }
            }
        }
    }

    /// Number of records written so far.
    pub fn lines(&self) -> u64 {
        self.lines.load(Ordering::Relaxed)
    }
}

/// The latency histograms behind the exposition, all in microseconds
/// except `admitted_units` (work units — request-derived, so it lands
/// in the deterministic exposition section).
#[derive(Debug, Default, Clone)]
pub struct HistSet {
    /// Time jobs spent in the bounded queue.
    pub queue_wait_us: Hist,
    /// Receipt-to-response-ready latency of queued work.
    pub e2e_us: Hist,
    /// Admitted (post-clamp) work-unit budgets; 0 for ungoverned.
    pub admitted_units: Hist,
    /// Per-stage service time.
    pub stages: BTreeMap<&'static str, Hist>,
}

/// Gauges, per-error-code counters and histograms for one server.
pub struct ServeMetrics {
    started: Instant,
    inflight: AtomicU64,
    queue_high_water: AtomicU64,
    by_code: [AtomicU64; ErrorCode::ALL.len()],
    hists: Mutex<HistSet>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            started: Instant::now(),
            inflight: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            by_code: Default::default(),
            hists: Mutex::new(HistSet::default()),
        }
    }
}

impl ServeMetrics {
    /// Seconds since the server started.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Work requests currently being processed by workers.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Marks a work request entering processing.
    pub fn enter(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a work request leaving processing.
    pub fn leave(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Raises the queue-depth high-water mark to at least `depth`.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// The queue-depth high-water mark.
    pub fn queue_high_water(&self) -> u64 {
        self.queue_high_water.load(Ordering::Relaxed)
    }

    /// Counts one error of the given code.
    pub fn count_error(&self, code: ErrorCode) {
        self.by_code[code.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// The per-code error counters, in [`ErrorCode::ALL`] order.
    pub fn by_code(&self) -> Vec<(ErrorCode, u64)> {
        ErrorCode::ALL
            .iter()
            .map(|c| (*c, self.by_code[c.index()].load(Ordering::Relaxed)))
            .collect()
    }

    /// Sum of every per-code error counter.
    pub fn errors_total(&self) -> u64 {
        self.by_code.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Runs `f` with the histogram set locked.
    pub fn with_hists<T>(&self, f: impl FnOnce(&mut HistSet) -> T) -> T {
        let mut guard = self.hists.lock().expect("hist lock");
        f(&mut guard)
    }

    /// A snapshot of the histogram set.
    pub fn hists(&self) -> HistSet {
        self.with_hists(|h| h.clone())
    }
}
