//! The threaded job server.
//!
//! One accept thread hands each connection to a connection thread; work
//! requests (`customize`/`compile`) flow through a **bounded queue**
//! onto a fixed pool of worker threads, while control requests
//! (`stats`/`shutdown`) are answered inline on the connection thread so
//! a saturated server stays observable and stoppable. A full queue is
//! backpressure: the request is rejected immediately with a `busy`
//! error rather than buffered without bound.
//!
//! **Admission control** is an isax-guard budget: when
//! [`ServeConfig::max_work_units`] is set, every admitted request runs
//! under `Guard::with_units(min(requested, cap))` — no single request
//! can exceed the server's per-request compute allowance; it degrades
//! gracefully (sound prefix + `Degradation` records in the response)
//! instead of monopolizing a worker.
//!
//! **Determinism**: each worker runs the same [`isax::Customizer`]
//! pipeline the CLI runs, over the same shared context; inner pipeline
//! stages still fan out through `isax_graph::par` exactly as in the
//! one-shot CLI, so every artifact byte matches the serial CLI output
//! (`tests/serve.rs` proves this). Provenance recording is enabled for
//! the server's whole lifetime — per-request logs ride on stage return
//! values, so concurrent requests never interleave.

use crate::cache::{fnv64, kernel_fingerprint, ArtifactCache, CacheKey, ConfigHasher};
use crate::protocol::{
    decode_request, encode_response, frame_id, Artifacts, ErrorCode, Frame, Reply, Request,
    Response, WireError, MAX_FRAME_BYTES,
};
use crate::telemetry::{access_mode, request_id, AccessLog, AccessRecord, HistSet, ServeMetrics};
use isax::{Customizer, MatchMode, MatchOptions, Mdes, SharedContext};
use isax_json::{object, Value};
use isax_trace::{EnvMode, Expo, Section};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Parses `ISAX_SERVE_STATS` with the shared observability grammar
/// (re-exported from `isax-trace`, the same table `ISAX_TRACE` and
/// `ISAX_PROV` use): off values disable the shutdown stats dump,
/// summary values print one line to stderr, anything else is a path the
/// final stats JSON is written to.
pub fn stats_mode() -> EnvMode {
    match std::env::var("ISAX_SERVE_STATS") {
        Ok(v) => isax_trace::parse_env_value(&v),
        Err(_) => EnvMode::Off,
    }
}

/// Parses `ISAX_FLAME` with the shared observability grammar: when the
/// server runs with stats recording, a path here gets the folded-stack
/// flamegraph of the server's whole life written at shutdown.
pub fn flame_mode() -> EnvMode {
    match std::env::var("ISAX_FLAME") {
        Ok(v) => isax_trace::parse_env_value(&v),
        Err(_) => EnvMode::Off,
    }
}

/// Server configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker threads draining the queue. Defaults to
    /// `isax_graph::par::thread_count()` (the `ISAX_THREADS` pool
    /// width).
    pub workers: usize,
    /// Bounded-queue capacity; a full queue rejects with `busy`.
    pub queue_cap: usize,
    /// Per-request admission cap in isax-guard work units: requests run
    /// under `min(requested, cap)`; `None` admits ungoverned requests
    /// as-is.
    pub max_work_units: Option<u64>,
    /// Per-frame byte cap (requests over this get `oversized-frame`).
    pub max_frame_bytes: usize,
    /// What to do with final stats at shutdown (`ISAX_SERVE_STATS`).
    pub stats: EnvMode,
    /// Access-log destination (`--access-log` / `ISAX_SERVE_LOG`): one
    /// JSON line per request, exactly once.
    pub access_log: EnvMode,
    /// Path the Prometheus metrics snapshot is written to at shutdown
    /// (`--metrics-out`).
    pub metrics_out: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: isax_graph::par::thread_count(),
            queue_cap: 64,
            max_work_units: None,
            max_frame_bytes: MAX_FRAME_BYTES,
            stats: stats_mode(),
            access_log: access_mode(),
            metrics_out: None,
        }
    }
}

/// One stage's latency aggregate, in microseconds.
#[derive(Debug, Default, Clone, Copy)]
struct LatencyAgg {
    sum_us: u64,
    count: u64,
    max_us: u64,
}

impl LatencyAgg {
    fn add(&mut self, us: u64) {
        self.sum_us += us;
        self.count += 1;
        self.max_us = self.max_us.max(us);
    }

    fn to_value(self) -> Value {
        object([
            ("sum_us", Value::from(self.sum_us)),
            ("count", Value::from(self.count)),
            ("max_us", Value::from(self.max_us)),
        ])
    }
}

#[derive(Debug, Default)]
struct StatsAgg {
    stages: BTreeMap<&'static str, LatencyAgg>,
}

struct Job {
    frame: Frame,
    reply: mpsc::Sender<String>,
    /// Arrival sequence number (doubles as the trace request tag).
    seq: u64,
    /// Deterministic request id for the access log.
    rid: String,
    /// When the frame was read off the socket (end-to-end latency base).
    received_at: Instant,
    /// When the job entered the queue (queue-wait base).
    enqueued_at: Instant,
}

/// Per-request work telemetry, filled while the request runs.
#[derive(Debug, Default)]
struct WorkInfo {
    stages: Vec<(&'static str, u64)>,
    admitted: Option<u64>,
}

struct Shared {
    ctx: Arc<SharedContext>,
    cfg: ServeConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    cache: ArtifactCache,
    stats: Mutex<StatsAgg>,
    received: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    busy_rejected: AtomicU64,
    clamped: AtomicU64,
    recorder: Option<Arc<isax_trace::Recorder>>,
    metrics: ServeMetrics,
    access: Option<AccessLog>,
}

impl Shared {
    fn record_stage(&self, info: &mut WorkInfo, stage: &'static str, us: u64) {
        self.stats
            .lock()
            .expect("stats lock")
            .stages
            .entry(stage)
            .or_default()
            .add(us);
        self.metrics
            .with_hists(|h| h.stages.entry(stage).or_default().record(us));
        info.stages.push((stage, us));
    }

    /// Writes one access-log record (no-op when the log is off).
    fn log_access(&self, rec: &AccessRecord) {
        if let Some(log) = &self.access {
            log.write(rec);
        }
    }

    /// Counts one protocol/pipeline error, both in the legacy total and
    /// the per-code counter (their sum equality is a tested invariant).
    fn count_error(&self, code: ErrorCode) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.metrics.count_error(code);
    }

    /// The live statistics snapshot the `stats` request returns.
    fn stats_value(&self) -> Value {
        let queue_depth = self.queue.lock().expect("queue lock").len();
        let latency: Vec<(String, Value)> = self
            .stats
            .lock()
            .expect("stats lock")
            .stages
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.to_value()))
            .collect();
        let by_code = object(
            self.metrics
                .by_code()
                .into_iter()
                .map(|(c, n)| (c.as_str().to_string(), Value::from(n))),
        );
        let mut fields = vec![
            ("uptime_s", Value::Float(self.metrics.uptime_s())),
            (
                "queue",
                object([
                    ("depth", Value::from(queue_depth as u64)),
                    ("capacity", Value::from(self.cfg.queue_cap as u64)),
                    ("workers", Value::from(self.cfg.workers as u64)),
                    ("high_water", Value::from(self.metrics.queue_high_water())),
                ]),
            ),
            (
                "requests",
                object([
                    (
                        "received",
                        Value::from(self.received.load(Ordering::Relaxed)),
                    ),
                    (
                        "completed",
                        Value::from(self.completed.load(Ordering::Relaxed)),
                    ),
                    ("errors", Value::from(self.errors.load(Ordering::Relaxed))),
                    (
                        "busy_rejected",
                        Value::from(self.busy_rejected.load(Ordering::Relaxed)),
                    ),
                    ("inflight", Value::from(self.metrics.inflight())),
                    ("by_code", by_code),
                ]),
            ),
            (
                "cache",
                object([
                    ("entries", Value::from(self.cache.len() as u64)),
                    ("hits", Value::from(self.cache.hits())),
                    ("misses", Value::from(self.cache.misses())),
                    ("hit_rate", Value::Float(self.cache.hit_rate())),
                ]),
            ),
            (
                "admission",
                object([
                    (
                        "max_work_units",
                        match self.cfg.max_work_units {
                            Some(u) => Value::from(u),
                            None => Value::Null,
                        },
                    ),
                    (
                        "clamped_requests",
                        Value::from(self.clamped.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            ("latency_us", object(latency)),
        ];
        if let Some(rec) = &self.recorder {
            let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
            for e in rec.events() {
                if let isax_trace::Event::Counter { name, value, .. } = e {
                    *totals.entry(name).or_default() += value;
                }
            }
            fields.push((
                "trace_counters",
                object(
                    totals
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), Value::from(v))),
                ),
            ));
        }
        object(fields)
    }

    /// The Prometheus text exposition. Metric families are emitted in
    /// a fixed (alphabetical) order within each section; everything
    /// before [`isax_trace::WALL_MARKER`] is fed only from
    /// request-derived values, so for the same request stream it is
    /// byte-identical at any worker count (`tests/serve.rs` asserts
    /// this serial-vs-4-workers).
    fn metrics_text(&self) -> String {
        let hists = self.metrics.hists();
        let mut e = Expo::new();
        let det = Section::Deterministic;
        let wall = Section::WallClock;
        e.counter(
            det,
            "isax_serve_admission_clamped_total",
            "Requests whose work budget was clamped to the admission cap",
            self.clamped.load(Ordering::Relaxed),
        );
        e.hist(
            det,
            "isax_serve_admitted_units",
            "Admitted (post-clamp) per-request work-unit budgets (0 = ungoverned)",
            &hists.admitted_units,
        );
        e.gauge(
            det,
            "isax_serve_cache_entries",
            "Artifact-cache entries",
            self.cache.len() as u64,
        );
        e.counter(
            det,
            "isax_serve_cache_hits_total",
            "Artifact-cache hits",
            self.cache.hits(),
        );
        e.counter(
            det,
            "isax_serve_cache_misses_total",
            "Artifact-cache misses",
            self.cache.misses(),
        );
        let by_code = self.metrics.by_code();
        let pairs: Vec<(&str, u64)> = by_code.iter().map(|(c, n)| (c.as_str(), *n)).collect();
        e.counter_by_label(
            det,
            "isax_serve_errors_total",
            "Failed requests by wire error code",
            "code",
            &pairs,
        );
        e.counter(
            det,
            "isax_serve_requests_completed_total",
            "Successfully answered requests (work and control)",
            self.completed.load(Ordering::Relaxed),
        );
        e.counter(
            det,
            "isax_serve_requests_received_total",
            "Frames read off client sockets",
            self.received.load(Ordering::Relaxed),
        );
        e.hist(
            wall,
            "isax_serve_e2e_us",
            "Receipt-to-response-ready latency of queued work, microseconds",
            &hists.e2e_us,
        );
        e.gauge(
            wall,
            "isax_serve_inflight",
            "Work requests currently being processed",
            self.metrics.inflight(),
        );
        e.gauge(
            wall,
            "isax_serve_queue_capacity",
            "Bounded-queue capacity",
            self.cfg.queue_cap as u64,
        );
        e.gauge(
            wall,
            "isax_serve_queue_depth",
            "Jobs currently queued",
            self.queue.lock().expect("queue lock").len() as u64,
        );
        e.gauge(
            wall,
            "isax_serve_queue_high_water",
            "Highest observed queue depth",
            self.metrics.queue_high_water(),
        );
        e.hist(
            wall,
            "isax_serve_queue_wait_us",
            "Time jobs spent queued, microseconds",
            &hists.queue_wait_us,
        );
        for (stage, h) in &hists.stages {
            let name = format!("isax_serve_stage_{stage}_us");
            let help = format!("Service time of the {stage} stage, microseconds");
            e.hist(wall, &name, &help, h);
        }
        e.gauge_f64(
            wall,
            "isax_serve_uptime_seconds",
            "Seconds since the server started",
            self.metrics.uptime_s(),
        );
        e.gauge(
            wall,
            "isax_serve_workers",
            "Worker threads draining the queue",
            self.cfg.workers as u64,
        );
        e.render()
    }

    /// Clamps a requested work budget to the admission cap. The
    /// admitted value is request-derived (no clocks), so its histogram
    /// lands in the deterministic exposition section.
    fn admit(&self, requested: Option<u64>) -> Option<u64> {
        let admitted = match (requested, self.cfg.max_work_units) {
            (Some(r), Some(cap)) => {
                if r > cap {
                    self.clamped.fetch_add(1, Ordering::Relaxed);
                }
                Some(r.min(cap))
            }
            (Some(r), None) => Some(r),
            (None, Some(cap)) => Some(cap),
            (None, None) => None,
        };
        self.metrics
            .with_hists(|h| h.admitted_units.record(admitted.unwrap_or(0)));
        admitted
    }

    /// Runs one admitted work request, mirroring the CLI code paths
    /// byte for byte.
    fn process(&self, frame: Frame, info: &mut WorkInfo) -> Response {
        let id = frame.id;
        match self.try_process(frame, info) {
            Ok((cached, artifacts)) => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                Response {
                    id,
                    reply: Reply::Artifacts { cached, artifacts },
                }
            }
            Err(e) => {
                self.count_error(e.code);
                Response {
                    id,
                    reply: Reply::Error(e),
                }
            }
        }
    }

    fn try_process(
        &self,
        frame: Frame,
        info: &mut WorkInfo,
    ) -> Result<(bool, Artifacts), WireError> {
        match frame.request {
            Request::Customize {
                kernel,
                name,
                budget,
                multifunction,
                work_budget,
            } => {
                let t = Instant::now();
                let program = isax_ir::parse_program(&kernel)
                    .map_err(|e| WireError::new(ErrorCode::ParseError, e.to_string()))?;
                self.record_stage(info, "parse", t.elapsed().as_micros() as u64);
                let admitted = self.admit(work_budget);
                info.admitted = admitted;
                let key = CacheKey {
                    kernel: kernel_fingerprint(&program),
                    config: ConfigHasher::new("customize")
                        .field("name", name.as_bytes())
                        .f64("budget", budget)
                        .bool("multifunction", multifunction)
                        .u64("work_units", admitted.unwrap_or(u64::MAX))
                        .finish(),
                };
                if let Some(hit) = self.cache.lookup(key) {
                    return Ok((true, (*hit).clone()));
                }
                let mut cz = Customizer::with_context(self.ctx.clone());
                if let Some(u) = admitted {
                    cz.guard = cz.guard.clone().with_units(u);
                }
                let t = Instant::now();
                let analysis = cz.analyze(&program);
                self.record_stage(info, "analyze", t.elapsed().as_micros() as u64);
                let t = Instant::now();
                let (mdes, sel) = if multifunction {
                    cz.select_multifunction(&name, &analysis, budget)
                } else {
                    cz.select(&name, &analysis, budget)
                };
                self.record_stage(info, "select", t.elapsed().as_micros() as u64);
                let mdes_json = mdes
                    .to_json()
                    .map_err(|e| WireError::new(ErrorCode::BadRequest, e.to_string()))?;
                let mut plog = analysis.prov.clone();
                plog.merge(sel.prov.clone());
                let mut prov = isax::build_report(&name, &plog).to_string_pretty();
                prov.push('\n');
                let degraded = analysis
                    .degradations
                    .iter()
                    .chain(sel.degradations.iter())
                    .map(ToString::to_string)
                    .collect();
                let artifacts = Artifacts {
                    mdes: Some(mdes_json),
                    prov: Some(prov),
                    degraded,
                    ..Artifacts::default()
                };
                Ok((false, (*self.cache.insert(key, artifacts)).clone()))
            }
            Request::Compile {
                kernel,
                name,
                mdes,
                subsumed,
                wildcard,
                work_budget,
            } => {
                let t = Instant::now();
                let program = isax_ir::parse_program(&kernel)
                    .map_err(|e| WireError::new(ErrorCode::ParseError, e.to_string()))?;
                self.record_stage(info, "parse", t.elapsed().as_micros() as u64);
                let parsed_mdes = Mdes::from_json(&mdes)
                    .map_err(|e| WireError::new(ErrorCode::BadMdes, e.to_string()))?;
                let admitted = self.admit(work_budget);
                info.admitted = admitted;
                let key = CacheKey {
                    kernel: kernel_fingerprint(&program),
                    config: ConfigHasher::new("compile")
                        .field("name", name.as_bytes())
                        .field("mdes", mdes.as_bytes())
                        .bool("subsumed", subsumed)
                        .bool("wildcard", wildcard)
                        .u64("work_units", admitted.unwrap_or(u64::MAX))
                        .finish(),
                };
                if let Some(hit) = self.cache.lookup(key) {
                    return Ok((true, (*hit).clone()));
                }
                let mut cz = Customizer::with_context(self.ctx.clone());
                if let Some(u) = admitted {
                    cz.guard = cz.guard.clone().with_units(u);
                }
                let matching = MatchOptions {
                    mode: if wildcard {
                        MatchMode::Wildcard
                    } else {
                        MatchMode::Exact
                    },
                    allow_subsumed: subsumed,
                };
                let t = Instant::now();
                let ev = cz.evaluate(&program, &parsed_mdes, matching);
                self.record_stage(info, "evaluate", t.elapsed().as_micros() as u64);
                let assembly: String = ev
                    .compiled
                    .program
                    .functions
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n");
                let mut prov = isax::build_report(&name, &ev.compiled.prov).to_string_pretty();
                prov.push('\n');
                let artifacts = Artifacts {
                    assembly: Some(assembly),
                    prov: Some(prov),
                    baseline_cycles: Some(ev.baseline_cycles),
                    custom_cycles: Some(ev.custom_cycles),
                    degraded: ev
                        .compiled
                        .degradations
                        .iter()
                        .map(ToString::to_string)
                        .collect(),
                    ..Artifacts::default()
                };
                Ok((false, (*self.cache.insert(key, artifacts)).clone()))
            }
            // Control requests never reach the queue.
            Request::Stats | Request::Metrics | Request::Shutdown => Err(WireError::new(
                ErrorCode::BadRequest,
                "control request on the work queue",
            )),
        }
    }
}

/// A running server. Dropping it initiates shutdown and joins every
/// thread the server owns.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    // Provenance recording stays on for the server's lifetime so worker
    // threads never race an enable/disable edge mid-request.
    _prov: isax_prov::EnableGuard,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn spawn(cfg: ServeConfig) -> std::io::Result<Server> {
        Server::spawn_with_context(cfg, Arc::new(SharedContext::new()))
    }

    /// [`Server::spawn`] over a caller-built shared context.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn spawn_with_context(
        cfg: ServeConfig,
        ctx: Arc<SharedContext>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let recorder = match cfg.stats {
            EnvMode::Off => None,
            _ => Some(isax_trace::Recorder::install()),
        };
        let workers_n = cfg.workers.max(1);
        let access = AccessLog::open(&cfg.access_log)?;
        let shared = Arc::new(Shared {
            ctx,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: ArtifactCache::new(),
            stats: Mutex::new(StatsAgg::default()),
            received: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            busy_rejected: AtomicU64::new(0),
            clamped: AtomicU64::new(0),
            recorder,
            metrics: ServeMetrics::default(),
            access,
        });
        let workers = (0..workers_n)
            .map(|_| {
                let sh = shared.clone();
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        let accept = {
            let sh = shared.clone();
            std::thread::spawn(move || accept_loop(&listener, &sh))
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
            _prov: isax_prov::enable(),
        })
    }

    /// The bound address (read the port from here when binding to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A host-side statistics snapshot (same document the `stats`
    /// request returns).
    pub fn stats_value(&self) -> Value {
        self.shared.stats_value()
    }

    /// A host-side metrics snapshot (same text the `metrics` request
    /// returns): Prometheus text exposition, deterministic section
    /// first.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// A host-side snapshot of the latency histograms (queue wait,
    /// end-to-end, per-stage, admitted units).
    pub fn hists(&self) -> HistSet {
        self.shared.metrics.hists()
    }

    /// Access-log records written so far (0 when the log is off).
    pub fn access_log_lines(&self) -> u64 {
        self.shared.access.as_ref().map_or(0, AccessLog::lines)
    }

    /// Asks the server to stop: no new work is admitted, queued work
    /// drains, the accept loop wakes and exits.
    pub fn initiate_shutdown(&self) {
        initiate_shutdown(&self.shared, self.addr);
    }

    /// Blocks until the server has fully stopped (accept loop and every
    /// worker joined), then delivers the final stats per
    /// [`ServeConfig::stats`].
    pub fn join(mut self) {
        self.join_inner();
    }

    /// Initiates shutdown and waits for it to complete.
    pub fn shutdown(self) {
        self.initiate_shutdown();
        self.join();
    }

    fn join_inner(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
            // Accept loop exit implies the shutdown flag is set; wake
            // and join the workers, then deliver final stats.
            self.shared.queue_cv.notify_all();
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
            let stats = self.shared.stats_value();
            match &self.shared.cfg.stats {
                EnvMode::Off => {}
                EnvMode::Summary => {
                    eprintln!(
                        "isax serve: {} completed, {} errors, cache hit rate {:.2}",
                        stats
                            .get("requests")
                            .and_then(|r| r.get("completed"))
                            .and_then(Value::as_u64)
                            .unwrap_or(0),
                        stats
                            .get("requests")
                            .and_then(|r| r.get("errors"))
                            .and_then(Value::as_u64)
                            .unwrap_or(0),
                        stats
                            .get("cache")
                            .and_then(|c| c.get("hit_rate"))
                            .and_then(Value::as_f64)
                            .unwrap_or(0.0),
                    );
                }
                EnvMode::Path(p) => {
                    let mut text = stats.to_string_pretty();
                    text.push('\n');
                    if let Err(e) = std::fs::write(p, text) {
                        eprintln!("isax serve: could not write stats to {p}: {e}");
                    }
                }
            }
            if let Some(path) = &self.shared.cfg.metrics_out {
                if let Err(e) = std::fs::write(path, self.shared.metrics_text()) {
                    eprintln!("isax serve: could not write metrics to {path}: {e}");
                }
            }
            if let Some(rec) = &self.shared.recorder {
                match flame_mode() {
                    EnvMode::Off => {}
                    EnvMode::Summary => eprint!("{}", rec.folded_stacks()),
                    EnvMode::Path(p) => {
                        if let Err(e) = std::fs::write(&p, rec.folded_stacks()) {
                            eprintln!("isax serve: could not write folded stacks to {p}: {e}");
                        }
                    }
                }
                isax_trace::uninstall();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.initiate_shutdown();
        self.join_inner();
    }
}

fn initiate_shutdown(shared: &Arc<Shared>, addr: SocketAddr) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue_cv.notify_all();
    // Wake the accept loop: it checks the flag after every accept, so a
    // throwaway local connection gets it to exit.
    let _ = TcpStream::connect(addr);
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.queue_cv.wait(q).expect("queue wait");
            }
        };
        let Some(job) = job else { return };
        let queue_us = job.enqueued_at.elapsed().as_micros() as u64;
        let kind = match &job.frame.request {
            Request::Customize { .. } => "customize",
            Request::Compile { .. } => "compile",
            _ => "control",
        };
        let name = match &job.frame.request {
            Request::Customize { name, .. } | Request::Compile { name, .. } => Some(name.clone()),
            _ => None,
        };
        shared.metrics.enter();
        // Tag every span/counter the pipeline emits with this request.
        isax_trace::set_request(job.seq);
        let mut info = WorkInfo::default();
        let resp = shared.process(job.frame, &mut info);
        isax_trace::set_request(0);
        shared.metrics.leave();
        let total_us = job.received_at.elapsed().as_micros() as u64;
        shared.metrics.with_hists(|h| {
            h.queue_wait_us.record(queue_us);
            h.e2e_us.record(total_us);
        });
        let (outcome, cached, degraded) = match &resp.reply {
            Reply::Artifacts { cached, artifacts } => ("ok", *cached, artifacts.degraded.len()),
            Reply::Error(e) => (e.code.as_str(), false, 0),
            _ => ("ok", false, 0),
        };
        shared.log_access(&AccessRecord {
            seq: job.seq,
            id: job.rid,
            kind,
            name,
            outcome,
            cached,
            admitted: info.admitted,
            degraded: degraded as u64,
            queue_us,
            stages: info.stages,
            total_us,
        });
        // A closed reply channel means the client hung up; the work
        // (and its cache entry) is still done.
        let _ = job.reply.send(encode_response(&resp));
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let sh = shared.clone();
                std::thread::spawn(move || connection_loop(stream, &sh));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// What reading one frame produced.
enum FrameRead {
    /// A complete line (without the `\n`).
    Line(String),
    /// The line exceeded the frame cap; the rest was discarded.
    Oversized,
    /// The stream ended mid-line.
    Truncated,
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated frame with a byte cap. On overflow the
/// remainder of the line is discarded so the connection can keep
/// serving subsequent frames.
fn read_frame(reader: &mut BufReader<TcpStream>, cap: usize) -> std::io::Result<FrameRead> {
    let mut line: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(if oversized {
                FrameRead::Oversized
            } else if line.is_empty() {
                FrameRead::Eof
            } else {
                FrameRead::Truncated
            });
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |i| i + 1);
        if !oversized {
            let body = newline.map_or(take, |i| i);
            if line.len() + body > cap {
                oversized = true;
                line.clear();
            } else {
                line.extend_from_slice(&buf[..body]);
            }
        }
        reader.consume(take);
        if newline.is_some() {
            return Ok(if oversized {
                FrameRead::Oversized
            } else {
                FrameRead::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
    }
}

/// Writes an access-log record for a request the connection thread
/// finished itself (control requests and protocol errors).
fn log_inline(
    shared: &Arc<Shared>,
    seq: u64,
    rid: &str,
    kind: &'static str,
    outcome: &'static str,
    received_at: Instant,
) {
    shared.log_access(&AccessRecord {
        seq,
        id: rid.to_string(),
        kind,
        name: None,
        outcome,
        cached: false,
        admitted: None,
        degraded: 0,
        queue_us: 0,
        stages: Vec::new(),
        total_us: received_at.elapsed().as_micros() as u64,
    });
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        // Every non-empty frame gets an arrival sequence number (the
        // `received` counter) and a deterministic request id derived
        // from that sequence plus a content fingerprint — no clocks,
        // no randomness, so a request script replays to the same ids.
        let (seq, rid, frame, received_at) =
            match read_frame(&mut reader, shared.cfg.max_frame_bytes) {
                Ok(FrameRead::Line(line)) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let received_at = Instant::now();
                    let seq = shared.received.fetch_add(1, Ordering::Relaxed) + 1;
                    let rid = request_id(seq, fnv64(line.as_bytes()));
                    match decode_request(&line) {
                        Ok(frame) => (seq, rid, frame, received_at),
                        Err(e) => {
                            shared.count_error(e.code);
                            log_inline(shared, seq, &rid, "frame", e.code.as_str(), received_at);
                            if respond(&mut writer, frame_id(&line), Reply::Error(e)).is_err() {
                                return;
                            }
                            continue;
                        }
                    }
                }
                Ok(FrameRead::Oversized) => {
                    let received_at = Instant::now();
                    let seq = shared.received.fetch_add(1, Ordering::Relaxed) + 1;
                    let rid = request_id(seq, 0);
                    shared.count_error(ErrorCode::OversizedFrame);
                    log_inline(
                        shared,
                        seq,
                        &rid,
                        "frame",
                        ErrorCode::OversizedFrame.as_str(),
                        received_at,
                    );
                    let e = WireError::new(
                        ErrorCode::OversizedFrame,
                        format!("frame exceeds {} bytes", shared.cfg.max_frame_bytes),
                    );
                    if respond(&mut writer, 0, Reply::Error(e)).is_err() {
                        return;
                    }
                    continue;
                }
                Ok(FrameRead::Truncated) => {
                    let received_at = Instant::now();
                    let seq = shared.received.fetch_add(1, Ordering::Relaxed) + 1;
                    let rid = request_id(seq, 0);
                    shared.count_error(ErrorCode::TruncatedFrame);
                    log_inline(
                        shared,
                        seq,
                        &rid,
                        "frame",
                        ErrorCode::TruncatedFrame.as_str(),
                        received_at,
                    );
                    let e = WireError::new(ErrorCode::TruncatedFrame, "stream ended mid-frame");
                    let _ = respond(&mut writer, 0, Reply::Error(e));
                    return;
                }
                Ok(FrameRead::Eof) | Err(_) => return,
            };
        match frame.request {
            Request::Stats => {
                shared.completed.fetch_add(1, Ordering::Relaxed);
                log_inline(shared, seq, &rid, "stats", "ok", received_at);
                if respond(&mut writer, frame.id, Reply::Stats(shared.stats_value())).is_err() {
                    return;
                }
            }
            Request::Metrics => {
                shared.completed.fetch_add(1, Ordering::Relaxed);
                log_inline(shared, seq, &rid, "metrics", "ok", received_at);
                if respond(&mut writer, frame.id, Reply::Metrics(shared.metrics_text())).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                shared.completed.fetch_add(1, Ordering::Relaxed);
                log_inline(shared, seq, &rid, "shutdown", "ok", received_at);
                let _ = respond(&mut writer, frame.id, Reply::Shutdown);
                // The accepted socket's local address is the listener's
                // address, which the shutdown self-connect needs.
                let addr = writer
                    .local_addr()
                    .unwrap_or_else(|_| SocketAddr::from(([127, 0, 0, 1], 0)));
                initiate_shutdown(shared, addr);
                return;
            }
            _ => {
                let kind = match &frame.request {
                    Request::Customize { .. } => "customize",
                    _ => "compile",
                };
                if shared.shutdown.load(Ordering::SeqCst) {
                    shared.count_error(ErrorCode::ShuttingDown);
                    log_inline(
                        shared,
                        seq,
                        &rid,
                        kind,
                        ErrorCode::ShuttingDown.as_str(),
                        received_at,
                    );
                    let e = WireError::new(ErrorCode::ShuttingDown, "server is shutting down");
                    if respond(&mut writer, frame.id, Reply::Error(e)).is_err() {
                        return;
                    }
                    continue;
                }
                let (tx, rx) = mpsc::channel();
                let enqueued = {
                    let mut q = shared.queue.lock().expect("queue lock");
                    if q.len() >= shared.cfg.queue_cap {
                        false
                    } else {
                        q.push_back(Job {
                            frame: Frame {
                                id: frame.id,
                                request: frame.request,
                            },
                            reply: tx,
                            seq,
                            rid: rid.clone(),
                            received_at,
                            enqueued_at: Instant::now(),
                        });
                        shared.metrics.observe_queue_depth(q.len() as u64);
                        true
                    }
                };
                if !enqueued {
                    shared.busy_rejected.fetch_add(1, Ordering::Relaxed);
                    shared.count_error(ErrorCode::Busy);
                    log_inline(
                        shared,
                        seq,
                        &rid,
                        kind,
                        ErrorCode::Busy.as_str(),
                        received_at,
                    );
                    let e = WireError::new(ErrorCode::Busy, "work queue is full");
                    if respond(&mut writer, frame.id, Reply::Error(e)).is_err() {
                        return;
                    }
                    continue;
                }
                shared.queue_cv.notify_one();
                match rx.recv() {
                    Ok(line) => {
                        if write_line(&mut writer, &line).is_err() {
                            return;
                        }
                    }
                    // Worker pool went away mid-request (shutdown race):
                    // the job was dropped unprocessed, so the worker
                    // never logged it — account for it here.
                    Err(_) => {
                        shared.count_error(ErrorCode::ShuttingDown);
                        log_inline(
                            shared,
                            seq,
                            &rid,
                            kind,
                            ErrorCode::ShuttingDown.as_str(),
                            received_at,
                        );
                        let e = WireError::new(ErrorCode::ShuttingDown, "server stopped");
                        let _ = respond(&mut writer, frame.id, Reply::Error(e));
                        return;
                    }
                }
            }
        }
    }
}

fn respond(writer: &mut TcpStream, id: u64, reply: Reply) -> std::io::Result<()> {
    write_line(writer, &encode_response(&Response { id, reply }))
}

fn write_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}
