//! The wire protocol: newline-delimited JSON frames over a byte stream.
//!
//! Every frame is one line — a compact (single-line) JSON object
//! terminated by `\n`. Kernel text and artifacts travel as JSON strings,
//! so embedded newlines are escaped and the framing never breaks. The
//! codec is total: [`decode_request`] and [`decode_response`] return a
//! structured [`WireError`] for any byte sequence, never panic (the
//! underlying `isax_json` parser is depth-capped and fuzz-clean), and
//! encode ∘ decode is the identity (see the crate's proptests).
//!
//! Request grammar (fields beyond `req` and `id` per request kind):
//!
//! ```text
//! {"req":"customize","id":N,"kernel":S,"name":S,
//!  "budget":F?,"multifunction":B?,"work_budget":N?}
//! {"req":"compile","id":N,"kernel":S,"name":S,"mdes":S,
//!  "subsumed":B?,"wildcard":B?,"work_budget":N?}
//! {"req":"stats","id":N}
//! {"req":"metrics","id":N}
//! {"req":"shutdown","id":N}
//! ```
//!
//! Response grammar:
//!
//! ```text
//! {"id":N,"ok":true,"cached":B,"artifacts":{...}}
//! {"id":N,"ok":true,"stats":{...}}
//! {"id":N,"ok":true,"metrics":S}
//! {"id":N,"ok":true,"shutdown":true}
//! {"id":N,"ok":false,"error":{"code":S,"message":S}}
//! ```

use isax_json::{object, Value};

/// Default cap on one frame's encoded size. Large enough for any kernel
/// in the corpora (the biggest generated kernel is well under 1 MiB),
/// small enough that a runaway client cannot balloon server memory.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// One request, without its frame id.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Analyze + select: produce an MDES and a provenance report.
    Customize {
        /// Kernel source in the textual IR format.
        kernel: String,
        /// Application name stamped into the MDES and the prov report.
        name: String,
        /// Area budget in adders.
        budget: f64,
        /// Use multifunction-family selection.
        multifunction: bool,
        /// Requested work-unit budget (the server may clamp it down).
        work_budget: Option<u64>,
    },
    /// Compile a kernel against an MDES: produce customized assembly,
    /// cycle counts and a provenance report.
    Compile {
        /// Kernel source in the textual IR format.
        kernel: String,
        /// Application name stamped into the prov report.
        name: String,
        /// The MDES document (JSON text, as emitted by `customize`).
        mdes: String,
        /// Enable subsumed-subgraph matching.
        subsumed: bool,
        /// Enable opcode-class wildcard matching.
        wildcard: bool,
        /// Requested work-unit budget (the server may clamp it down).
        work_budget: Option<u64>,
    },
    /// Live server statistics.
    Stats,
    /// A metrics snapshot in Prometheus text exposition format.
    Metrics,
    /// Graceful shutdown: the server acknowledges, drains the queue and
    /// stops accepting.
    Shutdown,
}

/// A request together with its frame id (echoed in the response).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Client-chosen correlation id; `0` when absent or unparseable.
    pub id: u64,
    /// The request payload.
    pub request: Request,
}

/// Machine-readable failure category carried in error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not valid JSON.
    MalformedFrame,
    /// Valid JSON, but not a request the grammar recognizes.
    BadRequest,
    /// The frame exceeded the server's size cap.
    OversizedFrame,
    /// The connection ended mid-frame (bytes with no terminating `\n`).
    TruncatedFrame,
    /// The bounded work queue is full; retry later.
    Busy,
    /// The kernel text did not parse as IR.
    ParseError,
    /// The `mdes` field did not parse as a machine description.
    BadMdes,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
}

impl ErrorCode {
    /// Every error code, in a fixed order (used for per-code counters
    /// and deterministic exposition line order).
    pub const ALL: [ErrorCode; 8] = [
        ErrorCode::MalformedFrame,
        ErrorCode::BadRequest,
        ErrorCode::OversizedFrame,
        ErrorCode::TruncatedFrame,
        ErrorCode::Busy,
        ErrorCode::ParseError,
        ErrorCode::BadMdes,
        ErrorCode::ShuttingDown,
    ];

    /// The code's position in [`ErrorCode::ALL`].
    pub fn index(self) -> usize {
        ErrorCode::ALL
            .iter()
            .position(|c| *c == self)
            .expect("every code is in ALL")
    }

    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed-frame",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::OversizedFrame => "oversized-frame",
            ErrorCode::TruncatedFrame => "truncated-frame",
            ErrorCode::Busy => "busy",
            ErrorCode::ParseError => "parse-error",
            ErrorCode::BadMdes => "bad-mdes",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "malformed-frame" => ErrorCode::MalformedFrame,
            "bad-request" => ErrorCode::BadRequest,
            "oversized-frame" => ErrorCode::OversizedFrame,
            "truncated-frame" => ErrorCode::TruncatedFrame,
            "busy" => ErrorCode::Busy,
            "parse-error" => ErrorCode::ParseError,
            "bad-mdes" => ErrorCode::BadMdes,
            "shutting-down" => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

/// A structured protocol-level error (also the decode-failure type).
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Failure category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Shorthand constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for WireError {}

/// The artifacts a work request produces. `customize` fills `mdes`;
/// `compile` fills `assembly` and the cycle counts; both fill `prov`
/// and `degraded`. Every string is byte-identical to what the CLI
/// writes for the same inputs (that is the serve-vs-CLI differential
/// suite's whole claim).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Artifacts {
    /// The MDES document (`Mdes::to_json`).
    pub mdes: Option<String>,
    /// Customized assembly (functions joined by `\n`, the `--emit`
    /// format).
    pub assembly: Option<String>,
    /// The provenance report (`build_report(..).to_string_pretty()`
    /// plus a trailing newline, the `--prov-out` format).
    pub prov: Option<String>,
    /// Baseline cycle estimate (compile only).
    pub baseline_cycles: Option<u64>,
    /// Customized cycle estimate (compile only).
    pub custom_cycles: Option<u64>,
    /// One rendered `Degradation` per governance event, in stage order —
    /// the same lines the CLI prints prefixed with `degraded: `.
    pub degraded: Vec<String>,
}

/// Response payload variants.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A completed work request.
    Artifacts {
        /// Served from the content-addressed cache?
        cached: bool,
        /// The artifacts.
        artifacts: Artifacts,
    },
    /// A statistics snapshot.
    Stats(Value),
    /// A metrics snapshot: Prometheus text exposition.
    Metrics(String),
    /// Shutdown acknowledged.
    Shutdown,
    /// The request failed.
    Error(WireError),
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id, echoed back (`0` when it was unreadable).
    pub id: u64,
    /// The payload.
    pub reply: Reply,
}

fn opt_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_u64)
}

fn opt_bool(v: &Value, key: &str, default: bool) -> bool {
    v.get(key).and_then(Value::as_bool).unwrap_or(default)
}

fn req_str(v: &Value, key: &str) -> Result<String, WireError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| {
            WireError::new(
                ErrorCode::BadRequest,
                format!("missing or non-string `{key}` field"),
            )
        })
}

/// Encodes a request frame as one line (no trailing newline).
pub fn encode_request(frame: &Frame) -> String {
    let mut fields: Vec<(&'static str, Value)> = Vec::new();
    match &frame.request {
        Request::Customize {
            kernel,
            name,
            budget,
            multifunction,
            work_budget,
        } => {
            fields.push(("req", Value::from("customize")));
            fields.push(("id", Value::from(frame.id)));
            fields.push(("kernel", Value::from(kernel.clone())));
            fields.push(("name", Value::from(name.clone())));
            fields.push(("budget", Value::Float(*budget)));
            fields.push(("multifunction", Value::Bool(*multifunction)));
            if let Some(u) = work_budget {
                fields.push(("work_budget", Value::from(*u)));
            }
        }
        Request::Compile {
            kernel,
            name,
            mdes,
            subsumed,
            wildcard,
            work_budget,
        } => {
            fields.push(("req", Value::from("compile")));
            fields.push(("id", Value::from(frame.id)));
            fields.push(("kernel", Value::from(kernel.clone())));
            fields.push(("name", Value::from(name.clone())));
            fields.push(("mdes", Value::from(mdes.clone())));
            fields.push(("subsumed", Value::Bool(*subsumed)));
            fields.push(("wildcard", Value::Bool(*wildcard)));
            if let Some(u) = work_budget {
                fields.push(("work_budget", Value::from(*u)));
            }
        }
        Request::Stats => {
            fields.push(("req", Value::from("stats")));
            fields.push(("id", Value::from(frame.id)));
        }
        Request::Metrics => {
            fields.push(("req", Value::from("metrics")));
            fields.push(("id", Value::from(frame.id)));
        }
        Request::Shutdown => {
            fields.push(("req", Value::from("shutdown")));
            fields.push(("id", Value::from(frame.id)));
        }
    }
    object(fields).to_string_compact()
}

/// The id of a frame whose body may be unusable: best-effort, `0` when
/// the line is not JSON or has no numeric `id`.
pub fn frame_id(line: &str) -> u64 {
    isax_json::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(Value::as_u64))
        .unwrap_or(0)
}

/// Decodes a request line.
///
/// # Errors
///
/// [`ErrorCode::MalformedFrame`] for non-JSON, [`ErrorCode::BadRequest`]
/// for JSON that is not a request. Never panics, whatever the bytes.
pub fn decode_request(line: &str) -> Result<Frame, WireError> {
    let v = isax_json::parse(line)
        .map_err(|e| WireError::new(ErrorCode::MalformedFrame, e.to_string()))?;
    if v.as_object().is_none() {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            "frame is not a JSON object",
        ));
    }
    let id = opt_u64(&v, "id").unwrap_or(0);
    let req = v
        .get("req")
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::new(ErrorCode::BadRequest, "missing `req` field"))?;
    let request = match req {
        "customize" => Request::Customize {
            kernel: req_str(&v, "kernel")?,
            name: req_str(&v, "name")?,
            budget: v.get("budget").and_then(Value::as_f64).unwrap_or(15.0),
            multifunction: opt_bool(&v, "multifunction", false),
            work_budget: opt_u64(&v, "work_budget"),
        },
        "compile" => Request::Compile {
            kernel: req_str(&v, "kernel")?,
            name: req_str(&v, "name")?,
            mdes: req_str(&v, "mdes")?,
            subsumed: opt_bool(&v, "subsumed", false),
            wildcard: opt_bool(&v, "wildcard", false),
            work_budget: opt_u64(&v, "work_budget"),
        },
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                format!("unknown request `{other}`"),
            ))
        }
    };
    Ok(Frame { id, request })
}

fn artifacts_to_value(a: &Artifacts) -> Value {
    let mut fields: Vec<(&'static str, Value)> = Vec::new();
    if let Some(s) = &a.mdes {
        fields.push(("mdes", Value::from(s.clone())));
    }
    if let Some(s) = &a.assembly {
        fields.push(("assembly", Value::from(s.clone())));
    }
    if let Some(s) = &a.prov {
        fields.push(("prov", Value::from(s.clone())));
    }
    if let Some(n) = a.baseline_cycles {
        fields.push(("baseline_cycles", Value::from(n)));
    }
    if let Some(n) = a.custom_cycles {
        fields.push(("custom_cycles", Value::from(n)));
    }
    fields.push((
        "degraded",
        Value::Array(a.degraded.iter().cloned().map(Value::from).collect()),
    ));
    object(fields)
}

fn artifacts_from_value(v: &Value) -> Result<Artifacts, WireError> {
    let degraded = v
        .get("degraded")
        .and_then(Value::as_array)
        .unwrap_or(&[])
        .iter()
        .map(|d| {
            d.as_str().map(str::to_string).ok_or_else(|| {
                WireError::new(ErrorCode::BadRequest, "non-string degradation entry")
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let s = |key: &str| v.get(key).and_then(Value::as_str).map(str::to_string);
    Ok(Artifacts {
        mdes: s("mdes"),
        assembly: s("assembly"),
        prov: s("prov"),
        baseline_cycles: opt_u64(v, "baseline_cycles"),
        custom_cycles: opt_u64(v, "custom_cycles"),
        degraded,
    })
}

/// Encodes a response frame as one line (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    let v = match &resp.reply {
        Reply::Artifacts { cached, artifacts } => object([
            ("id", Value::from(resp.id)),
            ("ok", Value::Bool(true)),
            ("cached", Value::Bool(*cached)),
            ("artifacts", artifacts_to_value(artifacts)),
        ]),
        Reply::Stats(stats) => object([
            ("id", Value::from(resp.id)),
            ("ok", Value::Bool(true)),
            ("stats", stats.clone()),
        ]),
        Reply::Metrics(text) => object([
            ("id", Value::from(resp.id)),
            ("ok", Value::Bool(true)),
            ("metrics", Value::from(text.clone())),
        ]),
        Reply::Shutdown => object([
            ("id", Value::from(resp.id)),
            ("ok", Value::Bool(true)),
            ("shutdown", Value::Bool(true)),
        ]),
        Reply::Error(e) => object([
            ("id", Value::from(resp.id)),
            ("ok", Value::Bool(false)),
            (
                "error",
                object([
                    ("code", Value::from(e.code.as_str())),
                    ("message", Value::from(e.message.clone())),
                ]),
            ),
        ]),
    };
    v.to_string_compact()
}

/// Decodes a response line.
///
/// # Errors
///
/// [`ErrorCode::MalformedFrame`] / [`ErrorCode::BadRequest`] exactly as
/// [`decode_request`]; never panics.
pub fn decode_response(line: &str) -> Result<Response, WireError> {
    let v = isax_json::parse(line)
        .map_err(|e| WireError::new(ErrorCode::MalformedFrame, e.to_string()))?;
    if v.as_object().is_none() {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            "frame is not a JSON object",
        ));
    }
    let id = opt_u64(&v, "id").unwrap_or(0);
    let ok = v
        .get("ok")
        .and_then(Value::as_bool)
        .ok_or_else(|| WireError::new(ErrorCode::BadRequest, "missing `ok` field"))?;
    let reply = if !ok {
        let e = v
            .get("error")
            .ok_or_else(|| WireError::new(ErrorCode::BadRequest, "error response without body"))?;
        let code = e
            .get("code")
            .and_then(Value::as_str)
            .and_then(ErrorCode::parse)
            .ok_or_else(|| WireError::new(ErrorCode::BadRequest, "unknown error code"))?;
        Reply::Error(WireError::new(
            code,
            e.get("message").and_then(Value::as_str).unwrap_or(""),
        ))
    } else if let Some(a) = v.get("artifacts") {
        Reply::Artifacts {
            cached: opt_bool(&v, "cached", false),
            artifacts: artifacts_from_value(a)?,
        }
    } else if let Some(s) = v.get("stats") {
        Reply::Stats(s.clone())
    } else if let Some(m) = v.get("metrics").and_then(Value::as_str) {
        Reply::Metrics(m.to_string())
    } else if opt_bool(&v, "shutdown", false) {
        Reply::Shutdown
    } else {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            "ok response without a recognized payload",
        ));
    };
    Ok(Response { id, reply })
}
