//! A small blocking client, used by the differential tests, `loadgen`
//! and anything else that wants to talk to an `isax serve` instance
//! from Rust without hand-rolling the framing.

use crate::protocol::{
    decode_response, encode_request, Artifacts, ErrorCode, Frame, Reply, Request, Response,
    WireError,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to a server. One request is in flight at a
/// time (send, then read the matching response).
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            next_id: 1,
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// I/O failures and undecodable responses surface as `WireError`s.
    pub fn request(&mut self, request: Request) -> Result<Response, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        let line = encode_request(&Frame { id, request });
        self.send_raw(&line)
    }

    /// Sends a pre-encoded (possibly malformed, for tests) frame and
    /// blocks for one response line.
    ///
    /// # Errors
    ///
    /// I/O failures and undecodable responses surface as `WireError`s.
    pub fn send_raw(&mut self, line: &str) -> Result<Response, WireError> {
        let io_err = |e: std::io::Error| WireError::new(ErrorCode::TruncatedFrame, e.to_string());
        self.writer.write_all(line.as_bytes()).map_err(io_err)?;
        self.writer.write_all(b"\n").map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        self.read_response()
    }

    /// Reads one response line (used after half-close tests where the
    /// request had no terminating newline).
    ///
    /// # Errors
    ///
    /// I/O failures and undecodable responses surface as `WireError`s.
    pub fn read_response(&mut self) -> Result<Response, WireError> {
        let mut resp_line = String::new();
        let n = self
            .reader
            .read_line(&mut resp_line)
            .map_err(|e| WireError::new(ErrorCode::TruncatedFrame, e.to_string()))?;
        if n == 0 {
            return Err(WireError::new(
                ErrorCode::TruncatedFrame,
                "server closed the connection",
            ));
        }
        decode_response(resp_line.trim_end_matches('\n'))
    }

    /// Sends `request` and unwraps an artifact reply, erroring on
    /// anything else.
    ///
    /// # Errors
    ///
    /// Transport errors and server error replies.
    pub fn artifacts(&mut self, request: Request) -> Result<(bool, Artifacts), WireError> {
        match self.request(request)?.reply {
            Reply::Artifacts { cached, artifacts } => Ok((cached, artifacts)),
            Reply::Error(e) => Err(e),
            other => Err(WireError::new(
                ErrorCode::BadRequest,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// Fetches the Prometheus-text metrics exposition.
    ///
    /// # Errors
    ///
    /// Transport errors and server error replies.
    pub fn metrics(&mut self) -> Result<String, WireError> {
        match self.request(Request::Metrics)?.reply {
            Reply::Metrics(text) => Ok(text),
            Reply::Error(e) => Err(e),
            other => Err(WireError::new(
                ErrorCode::BadRequest,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// Half-closes the write side, so the server sees EOF (used by the
    /// truncated-frame tests).
    ///
    /// # Errors
    ///
    /// Propagates socket shutdown failures.
    pub fn shutdown_write(&mut self) -> std::io::Result<()> {
        self.writer.shutdown(std::net::Shutdown::Write)
    }

    /// Writes raw bytes without framing (for truncation tests).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }
}
