//! The content-addressed artifact cache.
//!
//! Artifacts are keyed by **canonical kernel fingerprint** plus
//! **config hash**. The kernel fingerprint hashes the *parsed-then-
//! re-printed* IR text, not the request bytes, so two requests that
//! differ only in whitespace or comments address the same entry. The
//! config hash folds in every request knob that can change the output
//! bytes (request kind, app name, area budget, matching flags, the MDES
//! text for compiles, and the admitted work budget). The server's
//! shared context is fixed for its lifetime, so it needs no key bits.
//!
//! Insertion is **first-insert-wins**: when two requests race to fill
//! the same key, the first `insert` published is the entry everyone —
//! including the losing computer — gets back. With a deterministic
//! pipeline both computed the same bytes anyway; first-insert-wins
//! makes the linearization obvious and testable (the proptests race
//! deliberately-different payloads and assert one canonical winner).

use crate::protocol::Artifacts;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// 64-bit FNV-1a over a byte string: tiny, dependency-free, and stable
/// across platforms — exactly what a cache key (not a security
/// boundary) needs.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A cache key: (canonical kernel fingerprint, config hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Fingerprint of the canonicalized kernel text.
    pub kernel: u64,
    /// Hash of every output-affecting request knob.
    pub config: u64,
}

/// Fingerprints a parsed program by its canonical printed form (each
/// function's `Display`, joined by `\n` — the same text the assembly
/// emitter writes), so lexical noise in the request never splits cache
/// entries.
pub fn kernel_fingerprint(program: &isax_ir::Program) -> u64 {
    let canonical: String = program
        .functions
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    fnv64(canonical.as_bytes())
}

/// Incrementally hashes the config half of a [`CacheKey`].
#[derive(Debug, Clone)]
pub struct ConfigHasher(u64);

impl ConfigHasher {
    /// Starts a hash with a request-kind discriminator.
    pub fn new(kind: &str) -> ConfigHasher {
        ConfigHasher(fnv64(kind.as_bytes()))
    }

    /// Folds in a labeled byte string.
    pub fn field(mut self, label: &str, bytes: &[u8]) -> ConfigHasher {
        // Labels and lengths are folded in so field boundaries cannot
        // alias ("ab"+"c" vs "a"+"bc").
        self.0 = self.0.wrapping_mul(0x100_0000_01b3) ^ fnv64(label.as_bytes());
        self.0 = self.0.wrapping_mul(0x100_0000_01b3) ^ (bytes.len() as u64);
        self.0 = self.0.wrapping_mul(0x100_0000_01b3) ^ fnv64(bytes);
        self
    }

    /// Folds in a `u64`.
    pub fn u64(self, label: &str, v: u64) -> ConfigHasher {
        self.field(label, &v.to_le_bytes())
    }

    /// Folds in an `f64` by its bit pattern (so `-0.0` and `0.0` are
    /// distinct keys, matching the pipeline's bit-exact determinism).
    pub fn f64(self, label: &str, v: f64) -> ConfigHasher {
        self.u64(label, v.to_bits())
    }

    /// Folds in a bool.
    pub fn bool(self, label: &str, v: bool) -> ConfigHasher {
        self.u64(label, u64::from(v))
    }

    /// The finished hash.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// A concurrent, first-insert-wins artifact cache.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    map: Mutex<HashMap<CacheKey, Arc<Artifacts>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// Looks up `key`, counting a hit or a miss.
    pub fn lookup(&self, key: CacheKey) -> Option<Arc<Artifacts>> {
        let found = self.map.lock().expect("cache lock").get(&key).cloned();
        match found {
            Some(a) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(a)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publishes `artifacts` under `key` unless an entry already exists,
    /// and returns the canonical entry either way (first insert wins).
    pub fn insert(&self, key: CacheKey, artifacts: Artifacts) -> Arc<Artifacts> {
        self.map
            .lock()
            .expect("cache lock")
            .entry(key)
            .or_insert_with(|| Arc::new(artifacts))
            .clone()
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0.0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}
