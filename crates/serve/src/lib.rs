//! `isax serve`: instruction-set customization as a long-running
//! service.
//!
//! The one-shot CLI rebuilds the hardware library, machine model and
//! exploration config for every invocation and throws every artifact
//! away afterwards. This crate keeps both: a threaded job server wraps
//! the [`isax::Customizer`] pipeline around one immutable
//! [`isax::SharedContext`] and a **content-addressed artifact cache**,
//! so repeated kernels are served from cache byte-identically and
//! concurrent requests share all read-only state.
//!
//! The moving parts, each in its own module:
//!
//! - [`protocol`] — newline-delimited JSON frames (`customize` /
//!   `compile` / `stats` / `shutdown`), a total, panic-free codec over
//!   `isax-json`;
//! - [`cache`] — canonical kernel fingerprint + config hash keys over a
//!   first-insert-wins concurrent map;
//! - [`server`] — the bounded work queue, worker pool, isax-guard
//!   admission control and stats endpoint;
//! - [`telemetry`] — deterministic request ids, the structured access
//!   log, latency histograms and the metrics registry behind the
//!   Prometheus-text `metrics` exposition;
//! - [`client`] — a small blocking client for tests and `loadgen`.
//!
//! The correctness claim is external: `tests/serve.rs` (repo root)
//! proves every artifact a concurrent server returns is byte-identical
//! to what the serial CLI writes for the same request.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;
pub mod telemetry;

pub use cache::{fnv64, kernel_fingerprint, ArtifactCache, CacheKey, ConfigHasher};
pub use client::Client;
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, frame_id, Artifacts,
    ErrorCode, Frame, Reply, Request, Response, WireError, MAX_FRAME_BYTES,
};
pub use server::{stats_mode, ServeConfig, Server};
pub use telemetry::{access_mode, request_id, AccessLog, AccessRecord, HistSet, ServeMetrics};

/// The shared observability env-var grammar (`ISAX_SERVE_STATS` here,
/// `ISAX_TRACE`/`ISAX_PROV` elsewhere), re-exported from its canonical
/// home in `isax-trace`.
pub use isax_trace::{parse_env_value, EnvMode};
