//! Machine-side substrate: functional execution and performance summary.
//!
//! This crate hosts the pieces of the evaluation machine that sit *next
//! to* the compiler back end:
//!
//! * [`interp`] — a functional interpreter for `isax-ir` programs
//!   (including custom instructions via their registered semantics) with a
//!   byte-addressed sparse [`Memory`]. It provides the ground truth the
//!   test suite uses to prove that custom-instruction replacement
//!   preserves program behaviour and that the workload kernels implement
//!   their reference algorithms.
//! * [`report`] — speedup bookkeeping shared by the figure-regeneration
//!   harness.
//! * [`sim`] — a cycle-stepped timing simulation that charges each
//!   dynamically executed block its scheduled VLIW length, used to
//!   validate the profile-weighted estimates.
//!
//! The VLIW resource model and cycle estimator live in `isax-compiler`
//! (scheduling *is* the estimate, as in the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interp;
pub mod report;
pub mod sim;

pub use interp::{run, run_both, run_observed, ExecError, ExecOutcome, Memory, Observation};
pub use report::SpeedupReport;
pub use sim::{simulate, SimResult};
