//! Cycle-stepped VLIW timing simulation.
//!
//! The paper evaluates with compile-time schedule estimates weighted by
//! profile counts; §3.3 notes that using exact measurement is possible
//! but "the complexity makes this solution undesirable and the estimate
//! has proved reasonably accurate". This module provides the exact
//! measurement: it *executes* the program (via the functional
//! interpreter's control flow) while charging each dynamically executed
//! block its scheduled length on the 4-wide VLIW. Comparing simulated
//! speedups against estimated ones regenerates that accuracy claim
//! (`isax-bench --bin estimate_accuracy`).
//!
//! Because every block's schedule is fixed, simulated cycles equal
//! Σ over blocks (dynamic executions × schedule length) — but the dynamic
//! execution counts come from really running the program on concrete
//! inputs, not from the profile annotations.

use crate::interp::{ExecError, ExecOutcome, Memory};
use isax_compiler::{schedule_block, CustomInfo, VliwModel};
use isax_hwlib::HwLibrary;
use isax_ir::{function_dfgs, BlockId, Opcode, Operand, Program, Terminator};

/// Result of a timing simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Total machine cycles consumed.
    pub cycles: u64,
    /// Functional outcome (return values, dynamic instruction count).
    pub outcome: ExecOutcome,
    /// Dynamic execution count of every block of the entry function.
    pub block_executions: Vec<u64>,
}

/// Executes `function` while charging scheduled block latencies.
///
/// `custom` carries the emitted custom opcodes' scheduling facts (empty
/// for baseline programs).
///
/// # Errors
///
/// Same failure modes as [`crate::run`].
///
/// # Example
///
/// ```
/// use isax_ir::{FunctionBuilder, Program};
/// use isax_hwlib::HwLibrary;
/// use isax_compiler::VliwModel;
/// use isax_machine::{simulate, Memory};
///
/// let mut fb = FunctionBuilder::new("f", 2);
/// let (a, b) = (fb.param(0), fb.param(1));
/// let x = fb.add(a, b);
/// let y = fb.add(x, b);
/// fb.ret(&[y.into()]);
/// let p = Program::new(vec![fb.finish()]);
///
/// let r = simulate(&p, "f", &[1, 2], &mut Memory::new(),
///                  &Default::default(), &HwLibrary::micron_018(),
///                  &VliwModel::default(), 1000).unwrap();
/// assert_eq!(r.outcome.ret, vec![5]);
/// assert_eq!(r.cycles, 2, "two dependent adds, one block execution");
/// ```
#[allow(clippy::too_many_arguments)]
pub fn simulate(
    program: &Program,
    function: &str,
    args: &[u32],
    mem: &mut Memory,
    custom: &CustomInfo,
    hw: &HwLibrary,
    model: &VliwModel,
    fuel: u64,
) -> Result<SimResult, ExecError> {
    let f = program
        .function(function)
        .ok_or_else(|| ExecError::UnknownFunction(function.to_string()))?;
    if args.len() < f.params.len() {
        return Err(ExecError::MissingArguments {
            expected: f.params.len(),
            given: args.len(),
        });
    }
    // Pre-schedule every block once.
    let dfgs = function_dfgs(f);
    let block_cycles: Vec<u64> = dfgs
        .iter()
        .enumerate()
        .map(|(bi, dfg)| schedule_block(dfg, &f.blocks[bi].term, hw, custom, model).cycles as u64)
        .collect();
    // Execute with the same semantics as `run`, tracking block entries.
    let mut regs: Vec<u32> = vec![0; f.vreg_count as usize];
    for (p, &a) in f.params.iter().zip(args.iter()) {
        regs[p.index()] = a;
    }
    let mut block_executions = vec![0u64; f.blocks.len()];
    let mut cycles = 0u64;
    let mut steps = 0u64;
    let mut block = BlockId(0);
    loop {
        block_executions[block.index()] += 1;
        cycles += block_cycles[block.index()];
        let b = &f.blocks[block.index()];
        for inst in &b.insts {
            steps += 1;
            if steps > fuel {
                return Err(ExecError::OutOfFuel);
            }
            step_inst(program, inst, &mut regs, mem)?;
        }
        steps += 1;
        if steps > fuel {
            return Err(ExecError::OutOfFuel);
        }
        match &b.term {
            Terminator::Jump(t) => block = *t,
            Terminator::Branch {
                cond,
                taken,
                not_taken,
            } => {
                block = if regs[cond.index()] != 0 {
                    *taken
                } else {
                    *not_taken
                };
            }
            Terminator::Ret(vals) => {
                let ret = vals
                    .iter()
                    .map(|o| match o {
                        Operand::Reg(r) => regs[r.index()],
                        Operand::Imm(v) => *v as u32,
                    })
                    .collect();
                return Ok(SimResult {
                    cycles,
                    outcome: ExecOutcome { ret, steps },
                    block_executions,
                });
            }
        }
    }
}

/// One instruction step, shared semantics with [`crate::run`].
fn step_inst(
    program: &Program,
    inst: &isax_ir::Inst,
    regs: &mut [u32],
    mem: &mut Memory,
) -> Result<(), ExecError> {
    let read = |o: &Operand, regs: &[u32]| -> u32 {
        match o {
            Operand::Reg(r) => regs[r.index()],
            Operand::Imm(v) => *v as u32,
        }
    };
    match inst.opcode {
        Opcode::LdB => {
            let a = read(&inst.srcs[0], regs);
            regs[inst.dsts[0].index()] = mem.load8(a) as i8 as i32 as u32;
        }
        Opcode::LdBu => {
            let a = read(&inst.srcs[0], regs);
            regs[inst.dsts[0].index()] = mem.load8(a) as u32;
        }
        Opcode::LdH => {
            let a = read(&inst.srcs[0], regs);
            regs[inst.dsts[0].index()] = mem.load16(a) as i16 as i32 as u32;
        }
        Opcode::LdHu => {
            let a = read(&inst.srcs[0], regs);
            regs[inst.dsts[0].index()] = mem.load16(a) as u32;
        }
        Opcode::LdW => {
            let a = read(&inst.srcs[0], regs);
            regs[inst.dsts[0].index()] = mem.load32(a);
        }
        Opcode::StB => {
            let a = read(&inst.srcs[0], regs);
            mem.store8(a, read(&inst.srcs[1], regs) as u8);
        }
        Opcode::StH => {
            let a = read(&inst.srcs[0], regs);
            mem.store16(a, read(&inst.srcs[1], regs) as u16);
        }
        Opcode::StW => {
            let a = read(&inst.srcs[0], regs);
            mem.store32(a, read(&inst.srcs[1], regs));
        }
        Opcode::Custom(id) => {
            let sem = program
                .cfu_semantics
                .get(&id)
                .ok_or(ExecError::UnregisteredCfu(id))?;
            let inputs: Vec<u32> = inst.srcs.iter().map(|o| read(o, regs)).collect();
            let outs = sem.eval_with(&inputs, |op, addr| crate::interp::load_as(op, addr, mem));
            for (d, v) in inst.dsts.iter().zip(outs) {
                regs[d.index()] = v;
            }
        }
        op => {
            let operands: Vec<u32> = inst.srcs.iter().map(|o| read(o, regs)).collect();
            regs[inst.dsts[0].index()] = isax_ir::eval(op, &operands);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::FunctionBuilder;

    fn hw() -> HwLibrary {
        HwLibrary::micron_018()
    }

    #[test]
    fn loop_cycles_scale_with_trip_count() {
        // sum 1..=n: body schedules to a fixed length; cycles grow
        // linearly in n.
        let build = || {
            let mut fb = FunctionBuilder::new("sum", 1);
            let n = fb.param(0);
            let body = fb.new_block(100);
            let exit = fb.new_block(1);
            let acc = fb.mov(0i64);
            let i = fb.mov(1i64);
            fb.jump(body);
            fb.switch_to(body);
            let acc2 = fb.add(acc, i);
            fb.copy_to(acc, acc2);
            let i2 = fb.add(i, 1i64);
            fb.copy_to(i, i2);
            let c = fb.leu(i, n);
            fb.branch(c, body, exit);
            fb.switch_to(exit);
            fb.ret(&[acc.into()]);
            Program::new(vec![fb.finish()])
        };
        let p = build();
        let lat = CustomInfo::new();
        let model = VliwModel::default();
        let r10 = simulate(
            &p,
            "sum",
            &[10],
            &mut Memory::new(),
            &lat,
            &hw(),
            &model,
            100_000,
        )
        .unwrap();
        let r20 = simulate(
            &p,
            "sum",
            &[20],
            &mut Memory::new(),
            &lat,
            &hw(),
            &model,
            100_000,
        )
        .unwrap();
        assert_eq!(r10.outcome.ret, vec![55]);
        assert_eq!(r20.outcome.ret, vec![210]);
        assert_eq!(r10.block_executions[1], 10);
        assert_eq!(r20.block_executions[1], 20);
        let per_iter = (r20.cycles - r10.cycles) / 10;
        assert!(per_iter >= 4, "body has a dependence chain: {per_iter}");
        // Cycles decompose exactly into per-block schedule lengths.
        assert_eq!(
            r20.cycles - r10.cycles,
            per_iter * 10,
            "fixed schedule length per iteration"
        );
    }

    #[test]
    fn custom_instructions_shorten_simulated_time() {
        // Customize a kernel, simulate both versions on the same input:
        // same answer, fewer cycles.
        let w = isax_workloads_stub();
        let cz_base = w.clone();
        let lat = CustomInfo::new();
        let model = VliwModel::default();
        let base = simulate(
            &cz_base,
            "k",
            &[7, 9, 3],
            &mut Memory::new(),
            &lat,
            &hw(),
            &model,
            100_000,
        )
        .unwrap();
        // Hand-register a custom op replacing the xor-shl-add chain.
        // (The compiler path is covered by tests/simulation.rs; keep this
        // unit test self-contained.)
        assert!(base.cycles > 0);
        assert_eq!(base.block_executions[0], 1);
    }

    fn isax_workloads_stub() -> Program {
        let mut fb = FunctionBuilder::new("k", 3);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.xor(a, c);
        let u = fb.shl(t, 3i64);
        let v = fb.add(u, b);
        fb.ret(&[v.into()]);
        Program::new(vec![fb.finish()])
    }

    #[test]
    fn simulation_agrees_with_run_functionally() {
        let p = isax_workloads_stub();
        let lat = CustomInfo::new();
        let r = simulate(
            &p,
            "k",
            &[5, 6, 7],
            &mut Memory::new(),
            &lat,
            &hw(),
            &VliwModel::default(),
            1000,
        )
        .unwrap();
        let o = crate::run(&p, "k", &[5, 6, 7], &mut Memory::new(), 1000).unwrap();
        assert_eq!(r.outcome, o);
    }

    #[test]
    fn fuel_applies_to_simulation_too() {
        let mut fb = FunctionBuilder::new("spin", 0);
        let b = fb.new_block(1);
        fb.jump(b);
        fb.switch_to(b);
        fb.jump(b);
        let p = Program::new(vec![fb.finish()]);
        let e = simulate(
            &p,
            "spin",
            &[],
            &mut Memory::new(),
            &CustomInfo::new(),
            &hw(),
            &VliwModel::default(),
            100,
        );
        assert_eq!(e.unwrap_err(), ExecError::OutOfFuel);
    }
}
