//! Speedup bookkeeping used by the experiment harness.

/// One (application, CFU set) performance measurement.
///
/// # Example
///
/// ```
/// use isax_machine::SpeedupReport;
///
/// let r = SpeedupReport::new("blowfish", "blowfish", 15.0, 10_000, 6_200);
/// assert!((r.speedup - 1.6129).abs() < 1e-3);
/// assert!(r.is_native());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupReport {
    /// Application that was compiled.
    pub app: String,
    /// Application whose CFUs were used ("cross compilation" when it
    /// differs from `app`).
    pub cfu_source: String,
    /// Area budget of the CFU set, in adders.
    pub budget: f64,
    /// Baseline cycle estimate.
    pub baseline_cycles: u64,
    /// Customized cycle estimate.
    pub custom_cycles: u64,
    /// `baseline / custom`.
    pub speedup: f64,
}

impl SpeedupReport {
    /// Builds a report, computing the speedup ratio.
    pub fn new(
        app: &str,
        cfu_source: &str,
        budget: f64,
        baseline_cycles: u64,
        custom_cycles: u64,
    ) -> Self {
        SpeedupReport {
            app: app.to_string(),
            cfu_source: cfu_source.to_string(),
            budget,
            baseline_cycles,
            custom_cycles,
            speedup: if custom_cycles == 0 {
                1.0
            } else {
                baseline_cycles as f64 / custom_cycles as f64
            },
        }
    }

    /// True when the application runs on its own CFUs.
    pub fn is_native(&self) -> bool {
        self.app == self.cfu_source
    }
}

impl std::fmt::Display for SpeedupReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on {}-CFUs @ {:>4.1} adders: {:.3}x ({} -> {})",
            self.app,
            self.cfu_source,
            self.budget,
            self.speedup,
            self.baseline_cycles,
            self.custom_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_custom_cycles_is_unity() {
        let r = SpeedupReport::new("a", "b", 1.0, 100, 0);
        assert_eq!(r.speedup, 1.0);
        assert!(!r.is_native());
    }

    #[test]
    fn display_contains_key_facts() {
        let r = SpeedupReport::new("sha", "rijndael", 15.0, 200, 150);
        let s = r.to_string();
        assert!(s.contains("sha"));
        assert!(s.contains("rijndael"));
        assert!(s.contains("1.333"));
    }
}
