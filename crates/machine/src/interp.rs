//! Functional interpreter for `isax-ir` programs.
//!
//! The paper evaluates performance with compile-time schedule estimates;
//! *correctness* of the compiler's pattern replacement, however, deserves
//! stronger evidence than inspection. This interpreter executes programs —
//! including custom instructions, via the semantics the replacement pass
//! registered — so the test suite can require that a kernel computes
//! **identical results before and after customization** on arbitrary
//! inputs. It also validates the workload kernels against native Rust
//! reference implementations (CRC-32, ADPCM, SHA-1 rounds, ...).

use isax_ir::{eval, BlockId, Opcode, Operand, Program, Terminator, VReg};
use std::collections::BTreeMap;

/// Byte-addressed little-endian sparse memory.
///
/// # Example
///
/// ```
/// use isax_machine::Memory;
///
/// let mut m = Memory::new();
/// m.store32(0x100, 0xdead_beef);
/// assert_eq!(m.load32(0x100), 0xdead_beef);
/// assert_eq!(m.load8(0x100), 0xef); // little-endian
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    bytes: BTreeMap<u32, u8>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Reads one byte (unmapped bytes read as zero).
    pub fn load8(&self, addr: u32) -> u8 {
        *self.bytes.get(&addr).unwrap_or(&0)
    }

    /// Reads a little-endian 16-bit value.
    pub fn load16(&self, addr: u32) -> u16 {
        self.load8(addr) as u16 | ((self.load8(addr.wrapping_add(1)) as u16) << 8)
    }

    /// Reads a little-endian 32-bit value.
    pub fn load32(&self, addr: u32) -> u32 {
        self.load16(addr) as u32 | ((self.load16(addr.wrapping_add(2)) as u32) << 16)
    }

    /// Writes one byte.
    pub fn store8(&mut self, addr: u32, v: u8) {
        self.bytes.insert(addr, v);
    }

    /// Writes a little-endian 16-bit value.
    pub fn store16(&mut self, addr: u32, v: u16) {
        self.store8(addr, v as u8);
        self.store8(addr.wrapping_add(1), (v >> 8) as u8);
    }

    /// Writes a little-endian 32-bit value.
    pub fn store32(&mut self, addr: u32, v: u32) {
        self.store16(addr, v as u16);
        self.store16(addr.wrapping_add(2), (v >> 16) as u16);
    }

    /// Writes a slice of words starting at `addr` (4 bytes apart).
    pub fn store_words(&mut self, addr: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.store32(addr.wrapping_add(4 * i as u32), w);
        }
    }

    /// Writes a byte slice starting at `addr`.
    pub fn store_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.store8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads `n` words starting at `addr`.
    pub fn load_words(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| self.load32(addr.wrapping_add(4 * i as u32)))
            .collect()
    }
}

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The requested function does not exist.
    UnknownFunction(String),
    /// Fewer arguments than parameters were supplied.
    MissingArguments {
        /// Parameters expected.
        expected: usize,
        /// Arguments given.
        given: usize,
    },
    /// The fuel budget ran out (probable infinite loop).
    OutOfFuel,
    /// A custom opcode had no registered semantics.
    UnregisteredCfu(u16),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            ExecError::MissingArguments { expected, given } => {
                write!(f, "expected {expected} arguments, got {given}")
            }
            ExecError::OutOfFuel => write!(f, "fuel exhausted (infinite loop?)"),
            ExecError::UnregisteredCfu(id) => write!(f, "cfu{id} has no semantics"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of a successful run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Values the function returned.
    pub ret: Vec<u32>,
    /// Instructions executed (dynamic count, terminators included).
    pub steps: u64,
}

/// Executes `function` of `program` with the given arguments and memory.
///
/// `fuel` bounds the number of dynamic instructions (use a few million
/// for the workload kernels).
///
/// # Errors
///
/// See [`ExecError`]. Loads/stores to unmapped memory are defined (zero
/// fill), so programs cannot fault.
///
/// # Example
///
/// ```
/// use isax_ir::{FunctionBuilder, Program};
/// use isax_machine::{run, Memory};
///
/// let mut fb = FunctionBuilder::new("mac", 3);
/// let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
/// let m = fb.mul(a, b);
/// let s = fb.add(m, c);
/// fb.ret(&[s.into()]);
/// let p = Program::new(vec![fb.finish()]);
///
/// let out = run(&p, "mac", &[3, 4, 5], &mut Memory::new(), 1000).unwrap();
/// assert_eq!(out.ret, vec![17]);
/// ```
pub fn run(
    program: &Program,
    function: &str,
    args: &[u32],
    mem: &mut Memory,
    fuel: u64,
) -> Result<ExecOutcome, ExecError> {
    run_observed(program, function, args, mem, fuel, |_| {})
}

/// One register write observed during an instrumented run: instruction
/// `inst` of `block` assigned `value` to `reg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Block index the defining instruction lives in.
    pub block: usize,
    /// Instruction index within the block.
    pub inst: usize,
    /// Register written.
    pub reg: VReg,
    /// Concrete value written.
    pub value: u32,
}

/// [`run`] with an observer invoked on **every register definition** the
/// program executes, in program order. This is the hook the value-range
/// soundness checker uses: each observed value must be contained in the
/// statically computed interval and known-bits facts for its definition
/// site. The plain [`run`] passes a no-op closure, which the optimizer
/// erases, so uninstrumented execution pays nothing.
pub fn run_observed(
    program: &Program,
    function: &str,
    args: &[u32],
    mem: &mut Memory,
    fuel: u64,
    mut observe: impl FnMut(Observation),
) -> Result<ExecOutcome, ExecError> {
    let f = program
        .function(function)
        .ok_or_else(|| ExecError::UnknownFunction(function.to_string()))?;
    if args.len() < f.params.len() {
        return Err(ExecError::MissingArguments {
            expected: f.params.len(),
            given: args.len(),
        });
    }
    let mut regs: Vec<u32> = vec![0; f.vreg_count as usize];
    for (p, &a) in f.params.iter().zip(args.iter()) {
        regs[p.index()] = a;
    }
    let mut steps = 0u64;
    let mut block = BlockId(0);
    loop {
        let bi = block.index();
        let b = &f.blocks[bi];
        for (ii, inst) in b.insts.iter().enumerate() {
            steps += 1;
            if steps > fuel {
                return Err(ExecError::OutOfFuel);
            }
            let read = |o: &Operand, regs: &[u32]| -> u32 {
                match o {
                    Operand::Reg(r) => regs[r.index()],
                    Operand::Imm(v) => *v as u32,
                }
            };
            match inst.opcode {
                op if op.is_load() => {
                    let a = read(&inst.srcs[0], &regs);
                    let v = load_as(op, a, mem);
                    regs[inst.dsts[0].index()] = v;
                    observe(Observation {
                        block: bi,
                        inst: ii,
                        reg: inst.dsts[0],
                        value: v,
                    });
                }
                Opcode::StB => {
                    let a = read(&inst.srcs[0], &regs);
                    let v = read(&inst.srcs[1], &regs);
                    mem.store8(a, v as u8);
                }
                Opcode::StH => {
                    let a = read(&inst.srcs[0], &regs);
                    let v = read(&inst.srcs[1], &regs);
                    mem.store16(a, v as u16);
                }
                Opcode::StW => {
                    let a = read(&inst.srcs[0], &regs);
                    let v = read(&inst.srcs[1], &regs);
                    mem.store32(a, v);
                }
                Opcode::Custom(id) => {
                    let sem = program
                        .cfu_semantics
                        .get(&id)
                        .ok_or(ExecError::UnregisteredCfu(id))?;
                    let inputs: Vec<u32> = inst.srcs.iter().map(|o| read(o, &regs)).collect();
                    let outs = sem.eval_with(&inputs, |op, addr| load_as(op, addr, mem));
                    for (d, v) in inst.dsts.iter().zip(outs) {
                        regs[d.index()] = v;
                        observe(Observation {
                            block: bi,
                            inst: ii,
                            reg: *d,
                            value: v,
                        });
                    }
                }
                op => {
                    let operands: Vec<u32> = inst.srcs.iter().map(|o| read(o, &regs)).collect();
                    let v = eval(op, &operands);
                    regs[inst.dsts[0].index()] = v;
                    observe(Observation {
                        block: bi,
                        inst: ii,
                        reg: inst.dsts[0],
                        value: v,
                    });
                }
            }
        }
        steps += 1;
        if steps > fuel {
            return Err(ExecError::OutOfFuel);
        }
        match &b.term {
            Terminator::Jump(t) => block = *t,
            Terminator::Branch {
                cond,
                taken,
                not_taken,
            } => {
                block = if regs[cond.index()] != 0 {
                    *taken
                } else {
                    *not_taken
                };
            }
            Terminator::Ret(vals) => {
                let ret = vals
                    .iter()
                    .map(|o| match o {
                        Operand::Reg(r) => regs[r.index()],
                        Operand::Imm(v) => *v as u32,
                    })
                    .collect();
                return Ok(ExecOutcome { ret, steps });
            }
        }
    }
}

/// Performs a load with the opcode's width/sign semantics (shared by the
/// scalar loads and load-bearing custom units).
pub(crate) fn load_as(op: Opcode, addr: u32, mem: &Memory) -> u32 {
    match op {
        Opcode::LdB => mem.load8(addr) as i8 as i32 as u32,
        Opcode::LdBu => mem.load8(addr) as u32,
        Opcode::LdH => mem.load16(addr) as i16 as i32 as u32,
        Opcode::LdHu => mem.load16(addr) as u32,
        Opcode::LdW => mem.load32(addr),
        _ => panic!("{op} is not a load"),
    }
}

/// Reads a register after running — convenience used by a few tests.
pub fn reg(outcome: &ExecOutcome, i: usize) -> u32 {
    outcome.ret[i]
}

/// Asserts two programs compute the same function: runs both on the same
/// arguments and initial memory, returns both outcomes for inspection.
///
/// # Errors
///
/// Propagates the first execution error from either program.
pub fn run_both(
    a: &Program,
    b: &Program,
    function: &str,
    args: &[u32],
    mem_init: &Memory,
    fuel: u64,
) -> Result<(ExecOutcome, ExecOutcome, Memory, Memory), ExecError> {
    let mut ma = mem_init.clone();
    let mut mb = mem_init.clone();
    let oa = run(a, function, args, &mut ma, fuel)?;
    let ob = run(b, function, args, &mut mb, fuel)?;
    Ok((oa, ob, ma, mb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::{CfuSemantics, FunctionBuilder, SemOp, SemSrc};

    #[test]
    fn loop_sums_correctly() {
        // sum = Σ i for i in 1..=n
        let mut fb = FunctionBuilder::new("sum", 1);
        let n = fb.param(0);
        let body = fb.new_block(100);
        let exit = fb.new_block(1);
        let acc = fb.mov(0i64);
        let i = fb.mov(1i64);
        fb.jump(body);
        fb.switch_to(body);
        let acc2 = fb.add(acc, i);
        fb.copy_to(acc, acc2);
        let i2 = fb.add(i, 1i64);
        fb.copy_to(i, i2);
        let c = fb.leu(i, n);
        fb.branch(c, body, exit);
        fb.switch_to(exit);
        fb.ret(&[acc.into()]);
        let p = Program::new(vec![fb.finish()]);
        let out = run(&p, "sum", &[10], &mut Memory::new(), 10_000).unwrap();
        assert_eq!(out.ret, vec![55]);
    }

    #[test]
    fn memory_roundtrip_through_ir() {
        let mut fb = FunctionBuilder::new("m", 2);
        let (addr, v) = (fb.param(0), fb.param(1));
        fb.stw(addr, v);
        let b = fb.ldw(addr);
        let c = fb.ldbu(addr); // low byte, little-endian
        fb.ret(&[b.into(), c.into()]);
        let p = Program::new(vec![fb.finish()]);
        let out = run(&p, "m", &[0x40, 0x1234_56AB], &mut Memory::new(), 100).unwrap();
        assert_eq!(out.ret, vec![0x1234_56AB, 0xAB]);
    }

    #[test]
    fn custom_instruction_executes_registered_semantics() {
        let mut fb = FunctionBuilder::new("c", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        fb.push(isax_ir::Inst::new(
            Opcode::Custom(7),
            vec![isax_ir::VReg(2)],
            vec![a.into(), b.into()],
        ));
        fb.ret(&[isax_ir::VReg(2).into()]);
        let mut f = fb.finish();
        f.vreg_count = 3;
        let mut p = Program::new(vec![f]);
        p.cfu_semantics.insert(
            7,
            CfuSemantics {
                ops: vec![
                    SemOp {
                        opcode: Opcode::Xor,
                        srcs: vec![SemSrc::Input(0), SemSrc::Input(1)],
                    },
                    SemOp {
                        opcode: Opcode::Shl,
                        srcs: vec![SemSrc::Node(0), SemSrc::Imm(4)],
                    },
                ],
                outputs: vec![1],
                inputs: 2,
            },
        );
        let out = run(&p, "c", &[0xF0, 0x0F], &mut Memory::new(), 100).unwrap();
        assert_eq!(out.ret, vec![0xFF0]);
    }

    #[test]
    fn unregistered_cfu_is_an_error() {
        let mut fb = FunctionBuilder::new("c", 1);
        let a = fb.param(0);
        fb.push(isax_ir::Inst::new(
            Opcode::Custom(3),
            vec![isax_ir::VReg(1)],
            vec![a.into()],
        ));
        fb.ret(&[]);
        let mut f = fb.finish();
        f.vreg_count = 2;
        let p = Program::new(vec![f]);
        assert_eq!(
            run(&p, "c", &[1], &mut Memory::new(), 100),
            Err(ExecError::UnregisteredCfu(3))
        );
    }

    #[test]
    fn fuel_stops_infinite_loops() {
        let mut fb = FunctionBuilder::new("spin", 0);
        let body = fb.new_block(1);
        fb.jump(body);
        fb.switch_to(body);
        fb.jump(body);
        let p = Program::new(vec![fb.finish()]);
        assert_eq!(
            run(&p, "spin", &[], &mut Memory::new(), 1000),
            Err(ExecError::OutOfFuel)
        );
    }

    #[test]
    fn unknown_function_and_bad_args() {
        let mut fb = FunctionBuilder::new("f", 2);
        let a = fb.param(0);
        fb.ret(&[a.into()]);
        let p = Program::new(vec![fb.finish()]);
        assert!(matches!(
            run(&p, "nope", &[], &mut Memory::new(), 10),
            Err(ExecError::UnknownFunction(_))
        ));
        assert_eq!(
            run(&p, "f", &[1], &mut Memory::new(), 10),
            Err(ExecError::MissingArguments {
                expected: 2,
                given: 1
            })
        );
    }

    #[test]
    fn sign_extending_loads() {
        let mut fb = FunctionBuilder::new("lds", 1);
        let a = fb.param(0);
        let sb = fb.ldb(a);
        let sh = fb.ldh(a);
        fb.ret(&[sb.into(), sh.into()]);
        let p = Program::new(vec![fb.finish()]);
        let mut mem = Memory::new();
        mem.store16(0x10, 0x80FF);
        let out = run(&p, "lds", &[0x10], &mut mem, 100).unwrap();
        assert_eq!(out.ret, vec![0xFFFF_FFFF, 0xFFFF_80FF]);
    }
}
