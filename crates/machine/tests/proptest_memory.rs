//! Properties of the byte-addressed little-endian memory.

use isax_machine::Memory;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(256))]

    #[test]
    fn word_roundtrip(addr in any::<u32>(), v in any::<u32>()) {
        let mut m = Memory::new();
        m.store32(addr, v);
        prop_assert_eq!(m.load32(addr), v);
        // Little-endian byte order.
        prop_assert_eq!(m.load8(addr) as u32, v & 0xFF);
        prop_assert_eq!(m.load8(addr.wrapping_add(3)) as u32, v >> 24);
    }

    #[test]
    fn half_roundtrip(addr in any::<u32>(), v in any::<u16>()) {
        let mut m = Memory::new();
        m.store16(addr, v);
        prop_assert_eq!(m.load16(addr), v);
    }

    #[test]
    fn disjoint_words_do_not_interfere(a in any::<u32>(), b in any::<u32>(),
                                       va in any::<u32>(), vb in any::<u32>()) {
        prop_assume!(a.abs_diff(b) >= 4 && a.abs_diff(b) <= u32::MAX - 4);
        let mut m = Memory::new();
        m.store32(a, va);
        m.store32(b, vb);
        prop_assert_eq!(m.load32(b), vb);
        if b.abs_diff(a) >= 4 {
            prop_assert_eq!(m.load32(a), va);
        }
    }

    #[test]
    fn unwritten_memory_reads_zero(addr in any::<u32>()) {
        let m = Memory::new();
        prop_assert_eq!(m.load32(addr), 0);
        prop_assert_eq!(m.load8(addr), 0);
    }

    #[test]
    fn bulk_helpers_agree_with_scalar_ops(base in any::<u32>(),
                                          words in proptest::collection::vec(any::<u32>(), 1..16)) {
        prop_assume!(base <= u32::MAX - 4 * words.len() as u32);
        let mut m = Memory::new();
        m.store_words(base, &words);
        prop_assert_eq!(m.load_words(base, words.len()), words.clone());
        for (i, &w) in words.iter().enumerate() {
            prop_assert_eq!(m.load32(base + 4 * i as u32), w);
        }
    }
}
