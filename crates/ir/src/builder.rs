//! Ergonomic construction of IR functions.
//!
//! The thirteen benchmark kernels in `isax-workloads` are authored through
//! this builder, so it aims for the readability of straight-line
//! pseudo-assembly:
//!
//! ```
//! use isax_ir::FunctionBuilder;
//!
//! let mut fb = FunctionBuilder::new("hash_step", 2);
//! let h = fb.param(0);
//! let c = fb.param(1);
//! let t = fb.shl(h, 5i64);       // h << 5
//! let t = fb.add(t, h);          // h*33
//! let h2 = fb.xor(t, c);         // ^ c
//! fb.ret(&[h2.into()]);
//! let f = fb.finish();
//! assert_eq!(f.blocks[0].insts.len(), 3);
//! ```

use crate::block::{BasicBlock, BlockId, Terminator};
use crate::inst::{Inst, Operand, VReg};
use crate::opcode::Opcode;
use crate::Function;

/// Incremental builder for a [`Function`].
///
/// Blocks are created with [`FunctionBuilder::new_block`] and filled by
/// switching the insertion point with [`FunctionBuilder::switch_to`]. The
/// entry block (id 0, weight 1) exists from the start.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    params: Vec<VReg>,
    blocks: Vec<BasicBlock>,
    current: BlockId,
    next_vreg: u32,
    /// Blocks whose terminator has been explicitly set.
    terminated: Vec<bool>,
}

macro_rules! binop {
    ($(#[$doc:meta] $name:ident => $op:ident),* $(,)?) => {
        $(
            #[$doc]
            pub fn $name(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
                self.op2(Opcode::$op, a.into(), b.into())
            }
        )*
    };
}

macro_rules! unop {
    ($(#[$doc:meta] $name:ident => $op:ident),* $(,)?) => {
        $(
            #[$doc]
            pub fn $name(&mut self, a: impl Into<Operand>) -> VReg {
                self.op1(Opcode::$op, a.into())
            }
        )*
    };
}

impl FunctionBuilder {
    /// Starts a function with `nparams` parameter registers. The insertion
    /// point is the entry block.
    pub fn new(name: &str, nparams: u32) -> Self {
        FunctionBuilder {
            name: name.to_string(),
            params: (0..nparams).map(VReg).collect(),
            blocks: vec![BasicBlock::new(1)],
            current: BlockId(0),
            next_vreg: nparams,
            terminated: vec![false],
        }
    }

    /// The `i`-th parameter register.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> VReg {
        self.params[i]
    }

    /// Allocates a fresh virtual register without defining it (useful for
    /// loop-carried values initialised along multiple paths).
    pub fn fresh(&mut self) -> VReg {
        let r = VReg(self.next_vreg);
        self.next_vreg += 1;
        r
    }

    /// Creates a new empty block with the given profile weight.
    pub fn new_block(&mut self, weight: u64) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock::new(weight));
        self.terminated.push(false);
        id
    }

    /// Sets the profile weight of the entry block.
    pub fn set_entry_weight(&mut self, weight: u64) {
        self.blocks[0].weight = weight;
    }

    /// Moves the insertion point.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(b.index() < self.blocks.len(), "unknown block {b}");
        self.current = b;
    }

    /// The block currently being filled.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Appends a raw instruction at the insertion point.
    pub fn push(&mut self, inst: Inst) {
        self.blocks[self.current.index()].insts.push(inst);
    }

    fn def(&mut self) -> VReg {
        self.fresh()
    }

    fn op2(&mut self, op: Opcode, a: Operand, b: Operand) -> VReg {
        let d = self.def();
        self.push(Inst::new(op, vec![d], vec![a, b]));
        d
    }

    fn op1(&mut self, op: Opcode, a: Operand) -> VReg {
        let d = self.def();
        self.push(Inst::new(op, vec![d], vec![a]));
        d
    }

    binop! {
        /// `a + b`
        add => Add,
        /// `a - b`
        sub => Sub,
        /// `a * b` (low 32 bits)
        mul => Mul,
        /// `a / b` (signed)
        div => Div,
        /// `a % b` (signed)
        rem => Rem,
        /// `a & b`
        and => And,
        /// `a | b`
        or => Or,
        /// `a ^ b`
        xor => Xor,
        /// `a & !b`
        andn => AndN,
        /// `a << b`
        shl => Shl,
        /// `a >> b` (logical)
        shr => Shr,
        /// `a >> b` (arithmetic)
        sar => Sar,
        /// `rotate_right(a, b)`
        ror => Ror,
        /// `a == b`
        eq => Eq,
        /// `a != b`
        ne => Ne,
        /// `a < b` (signed)
        lt => Lt,
        /// `a <= b` (signed)
        le => Le,
        /// `a > b` (signed)
        gt => Gt,
        /// `a >= b` (signed)
        ge => Ge,
        /// `a < b` (unsigned)
        ltu => Ltu,
        /// `a <= b` (unsigned)
        leu => Leu,
        /// `a > b` (unsigned)
        gtu => Gtu,
        /// `a >= b` (unsigned)
        geu => Geu,
    }

    unop! {
        /// bitwise complement
        not_ => Not,
        /// register copy / immediate materialization
        mov => Mov,
        /// sign-extend low byte
        sxtb => SxtB,
        /// sign-extend low half
        sxth => SxtH,
        /// zero-extend low byte
        zxtb => ZxtB,
        /// zero-extend low half
        zxth => ZxtH,
        /// load signed byte
        ldb => LdB,
        /// load unsigned byte
        ldbu => LdBu,
        /// load signed half
        ldh => LdH,
        /// load unsigned half
        ldhu => LdHu,
        /// load word
        ldw => LdW,
    }

    /// `cond != 0 ? a : b`
    pub fn select(
        &mut self,
        cond: impl Into<Operand>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> VReg {
        let d = self.def();
        self.push(Inst::new(
            Opcode::Select,
            vec![d],
            vec![cond.into(), a.into(), b.into()],
        ));
        d
    }

    /// `mem8[addr] = val`
    pub fn stb(&mut self, addr: impl Into<Operand>, val: impl Into<Operand>) {
        self.push(Inst::new(
            Opcode::StB,
            vec![],
            vec![addr.into(), val.into()],
        ));
    }

    /// `mem16[addr] = val`
    pub fn sth(&mut self, addr: impl Into<Operand>, val: impl Into<Operand>) {
        self.push(Inst::new(
            Opcode::StH,
            vec![],
            vec![addr.into(), val.into()],
        ));
    }

    /// `mem32[addr] = val`
    pub fn stw(&mut self, addr: impl Into<Operand>, val: impl Into<Operand>) {
        self.push(Inst::new(
            Opcode::StW,
            vec![],
            vec![addr.into(), val.into()],
        ));
    }

    /// Redefines an *existing* register: `dst = src`. This is how
    /// loop-carried values are expressed in this non-SSA IR.
    pub fn copy_to(&mut self, dst: VReg, src: impl Into<Operand>) {
        self.push(Inst::new(Opcode::Mov, vec![dst], vec![src.into()]));
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: VReg, taken: BlockId, not_taken: BlockId) {
        self.terminate(Terminator::Branch {
            cond,
            taken,
            not_taken,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, vals: &[Operand]) {
        self.terminate(Terminator::Ret(vals.to_vec()));
    }

    fn terminate(&mut self, t: Terminator) {
        let c = self.current.index();
        assert!(
            !self.terminated[c],
            "block {} terminated twice",
            self.current
        );
        self.blocks[c].term = t;
        self.terminated[c] = true;
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics if any block was left unterminated.
    pub fn finish(self) -> Function {
        for (i, t) in self.terminated.iter().enumerate() {
            assert!(*t, "block b{i} of {} left unterminated", self.name);
        }
        Function {
            name: self.name,
            params: self.params,
            blocks: self.blocks,
            vreg_count: self.next_vreg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;

    #[test]
    fn straight_line() {
        let mut fb = FunctionBuilder::new("f", 2);
        let a = fb.param(0);
        let b = fb.param(1);
        let t = fb.xor(a, b);
        let u = fb.shl(t, 3i64);
        fb.ret(&[u.into()]);
        let f = fb.finish();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].insts.len(), 2);
        assert_eq!(f.blocks[0].insts[0].opcode, Opcode::Xor);
        assert_eq!(f.vreg_count, 4);
    }

    #[test]
    fn stores_have_no_defs() {
        let mut fb = FunctionBuilder::new("f", 2);
        let addr = fb.param(0);
        let v = fb.param(1);
        fb.stw(addr, v);
        fb.ret(&[]);
        let f = fb.finish();
        assert!(f.blocks[0].insts[0].dsts.is_empty());
    }

    #[test]
    fn multi_block_with_loop() {
        let mut fb = FunctionBuilder::new("f", 1);
        let n = fb.param(0);
        let body = fb.new_block(10);
        let exit = fb.new_block(1);
        fb.jump(body);
        fb.switch_to(body);
        let n2 = fb.sub(n, 1i64);
        fb.copy_to(n, n2);
        let c = fb.ne(n, 0i64);
        fb.branch(c, body, exit);
        fb.switch_to(exit);
        fb.ret(&[n.into()]);
        let f = fb.finish();
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.blocks[1].weight, 10);
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_termination_panics() {
        let mut fb = FunctionBuilder::new("f", 0);
        fb.ret(&[]);
        fb.ret(&[]);
    }

    #[test]
    #[should_panic(expected = "left unterminated")]
    fn unterminated_block_panics() {
        let mut fb = FunctionBuilder::new("f", 0);
        let _b = fb.new_block(1);
        fb.ret(&[]);
        let _ = fb.finish();
    }

    #[test]
    fn fresh_registers_do_not_collide() {
        let mut fb = FunctionBuilder::new("f", 3);
        let r1 = fb.fresh();
        let r2 = fb.fresh();
        assert_ne!(r1, r2);
        assert!(r1.0 >= 3);
        fb.ret(&[]);
    }
}
