//! Functions, the control-flow graph and liveness analysis.

use crate::block::{BasicBlock, BlockId};
use crate::inst::VReg;
use std::collections::BTreeSet;

/// A function: named, with parameter registers and a CFG of basic blocks.
/// Block 0 is the entry.
///
/// # Example
///
/// ```
/// use isax_ir::{Function, FunctionBuilder};
///
/// let mut fb = FunctionBuilder::new("double", 1);
/// let x = fb.param(0);
/// let d = fb.add(x, x);
/// fb.ret(&[d.into()]);
/// let f: Function = fb.finish();
/// assert_eq!(f.name, "double");
/// assert_eq!(f.blocks.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (used in reports and the experiment index).
    pub name: String,
    /// Parameter registers, live into the entry block.
    pub params: Vec<VReg>,
    /// Basic blocks; index 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// One past the highest virtual register number in use.
    pub vreg_count: u32,
}

/// Per-block live-in/live-out register sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Liveness {
    /// `live_in[b]`: registers whose values are needed on entry to block `b`.
    pub live_in: Vec<BTreeSet<VReg>>,
    /// `live_out[b]`: registers whose values are needed after block `b`.
    pub live_out: Vec<BTreeSet<VReg>>,
}

impl Function {
    /// Predecessor lists of every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                preds[s.index()].push(BlockId(i as u32));
            }
        }
        preds
    }

    /// Total number of instructions across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Classic backward iterative liveness over the CFG.
    ///
    /// Within a block, uses and defs are processed in reverse order; the
    /// terminator's uses count as uses at the end of the block.
    pub fn liveness(&self) -> Liveness {
        let n = self.blocks.len();
        // use[b]: used before any def in b; def[b]: defined in b.
        let mut use_set = vec![BTreeSet::new(); n];
        let mut def_set = vec![BTreeSet::new(); n];
        for (bi, b) in self.blocks.iter().enumerate() {
            for inst in &b.insts {
                for (_, r) in inst.reg_srcs() {
                    if !def_set[bi].contains(&r) {
                        use_set[bi].insert(r);
                    }
                }
                for &d in &inst.dsts {
                    def_set[bi].insert(d);
                }
            }
            for r in b.term.uses() {
                if !def_set[bi].contains(&r) {
                    use_set[bi].insert(r);
                }
            }
        }
        let mut live_in: Vec<BTreeSet<VReg>> = vec![BTreeSet::new(); n];
        let mut live_out: Vec<BTreeSet<VReg>> = vec![BTreeSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..n).rev() {
                let mut out = BTreeSet::new();
                for s in self.blocks[bi].term.successors() {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn = use_set[bi].clone();
                for &r in &out {
                    if !def_set[bi].contains(&r) {
                        inn.insert(r);
                    }
                }
                if out != live_out[bi] || inn != live_in[bi] {
                    live_out[bi] = out;
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }
}

impl std::fmt::Display for Function {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "func {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        writeln!(f, ")")?;
        for (bi, b) in self.blocks.iter().enumerate() {
            writeln!(f, "b{bi}:  ; weight {}", b.weight)?;
            for inst in &b.insts {
                writeln!(f, "    {inst}")?;
            }
            match &b.term {
                crate::block::Terminator::Jump(t) => writeln!(f, "    jmp {t}")?,
                crate::block::Terminator::Branch {
                    cond,
                    taken,
                    not_taken,
                } => writeln!(f, "    br {cond}, {taken}, {not_taken}")?,
                crate::block::Terminator::Ret(vals) => {
                    write!(f, "    ret")?;
                    for (i, v) in vals.iter().enumerate() {
                        write!(f, "{} {v}", if i == 0 { "" } else { "," })?;
                    }
                    writeln!(f)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Terminator;
    use crate::builder::FunctionBuilder;

    /// loop: acc = acc + x; i = i - 1; if i != 0 goto loop else exit
    fn loop_function() -> Function {
        let mut fb = FunctionBuilder::new("loop", 2);
        let x = fb.param(0);
        let n = fb.param(1);
        let body = fb.new_block(100);
        let exit = fb.new_block(1);

        // entry
        let acc0 = fb.mov(0i64);
        fb.jump(body);

        fb.switch_to(body);
        // Non-SSA loop-carried values: redefinitions of acc and i.
        let acc = fb.add(acc0, x);
        fb.copy_to(acc0, acc); // acc0 = acc
        let n2 = fb.sub(n, 1i64);
        fb.copy_to(n, n2);
        let c = fb.ne(n, 0i64);
        fb.branch(c, body, exit);

        fb.switch_to(exit);
        fb.ret(&[acc0.into()]);
        fb.finish()
    }

    #[test]
    fn predecessors_of_loop() {
        let f = loop_function();
        let preds = f.predecessors();
        // body (block 1) has preds entry (0) and itself.
        assert!(preds[1].contains(&BlockId(0)));
        assert!(preds[1].contains(&BlockId(1)));
        // exit (block 2) has pred body.
        assert_eq!(preds[2], vec![BlockId(1)]);
    }

    #[test]
    fn liveness_carries_loop_variables() {
        let f = loop_function();
        let lv = f.liveness();
        let x = f.params[0];
        let n = f.params[1];
        // x and n are live into the loop body.
        assert!(lv.live_in[1].contains(&x));
        assert!(lv.live_in[1].contains(&n));
        // x is live out of the body (used again next iteration).
        assert!(lv.live_out[1].contains(&x));
    }

    #[test]
    fn ret_values_are_live() {
        let f = loop_function();
        let lv = f.liveness();
        // The returned accumulator is live into the exit block.
        let Terminator::Ret(vals) = &f.blocks[2].term else {
            panic!("exit must return")
        };
        let r = vals[0].reg().unwrap();
        assert!(lv.live_in[2].contains(&r));
    }

    #[test]
    fn display_smoke() {
        let f = loop_function();
        let s = f.to_string();
        assert!(s.contains("func loop"));
        assert!(s.contains("weight 100"));
        assert!(s.contains("br "));
    }
}
