//! Programs and registered custom-instruction semantics.

use crate::function::Function;
use crate::opcode::{self, Opcode};
use std::collections::BTreeMap;

/// Source of one input of a semantic node inside a [`CfuSemantics`] DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemSrc {
    /// The `i`-th input operand of the custom instruction.
    Input(u8),
    /// The result of an earlier node in the semantics DAG.
    Node(u16),
    /// A constant hardwired into the function unit.
    Imm(i64),
}

/// One operation inside a custom instruction's semantics DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemOp {
    /// Primitive operation. Loads are permitted when the hardware library
    /// allows memory inside CFUs (the paper's §6 relaxation); stores,
    /// branches and nested customs never are.
    pub opcode: Opcode,
    /// Where each operand comes from.
    pub srcs: Vec<SemSrc>,
}

/// Executable semantics of a custom function unit: a DAG of primitive
/// operations in topological order, plus which node values the instruction
/// writes to its destination registers.
///
/// Registered in the [`Program`] when the compiler replaces a subgraph, and
/// looked up by the functional interpreter — this is what lets the test
/// suite *prove* that replacement preserved program behaviour.
///
/// # Example
///
/// ```
/// use isax_ir::{CfuSemantics, Opcode, SemOp, SemSrc};
///
/// // cfu(a, b) = (a << 2) + b
/// let sem = CfuSemantics {
///     ops: vec![
///         SemOp { opcode: Opcode::Shl, srcs: vec![SemSrc::Input(0), SemSrc::Imm(2)] },
///         SemOp { opcode: Opcode::Add, srcs: vec![SemSrc::Node(0), SemSrc::Input(1)] },
///     ],
///     outputs: vec![1],
///     inputs: 2,
/// };
/// assert_eq!(sem.eval(&[3, 5]), vec![17]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfuSemantics {
    /// Operations in topological order (a node may only reference earlier
    /// nodes).
    pub ops: Vec<SemOp>,
    /// Indices into `ops` whose values are written to destination
    /// registers, in destination order.
    pub outputs: Vec<u16>,
    /// Number of input operands the instruction takes.
    pub inputs: u8,
}

impl CfuSemantics {
    /// Evaluates a pure (load-free) DAG on the given input values.
    ///
    /// # Panics
    ///
    /// Panics if `args` is shorter than `inputs`, if a node references a
    /// later node, or if the DAG contains memory/custom opcodes — use
    /// [`CfuSemantics::eval_with`] for load-bearing units.
    pub fn eval(&self, args: &[u32]) -> Vec<u32> {
        self.eval_with(args, |op, _| panic!("cfu semantics contain memory op {op}"))
    }

    /// Evaluates the DAG, resolving load operations through `load`
    /// (`load(opcode, address)` must honour the opcode's width and sign
    /// semantics). The DAG never contains stores, so evaluation order
    /// within the unit cannot matter.
    ///
    /// # Panics
    ///
    /// Panics if `args` is shorter than `inputs`, if a node references a
    /// later node, or if a store/custom opcode appears.
    pub fn eval_with(&self, args: &[u32], mut load: impl FnMut(Opcode, u32) -> u32) -> Vec<u32> {
        assert!(
            args.len() >= self.inputs as usize,
            "cfu expects {} inputs, got {}",
            self.inputs,
            args.len()
        );
        let mut vals: Vec<u32> = Vec::with_capacity(self.ops.len());
        for (i, op) in self.ops.iter().enumerate() {
            let operands: Vec<u32> = op
                .srcs
                .iter()
                .map(|s| match *s {
                    SemSrc::Input(k) => args[k as usize],
                    SemSrc::Node(n) => {
                        assert!((n as usize) < i, "semantics DAG not topological");
                        vals[n as usize]
                    }
                    SemSrc::Imm(v) => v as u32,
                })
                .collect();
            let value = if op.opcode.is_load() {
                load(op.opcode, operands[0])
            } else {
                opcode::eval(op.opcode, &operands)
            };
            vals.push(value);
        }
        self.outputs.iter().map(|&o| vals[o as usize]).collect()
    }

    /// Number of load operations inside the unit (0 for pure DAGs).
    pub fn load_count(&self) -> u32 {
        self.ops.iter().filter(|o| o.opcode.is_load()).count() as u32
    }
}

/// A whole application: functions plus the semantics of any custom
/// instructions the compiler has introduced.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The functions of the application.
    pub functions: Vec<Function>,
    /// Semantics for each `Opcode::Custom(id)` present in the code.
    pub cfu_semantics: BTreeMap<u16, CfuSemantics>,
}

impl Program {
    /// Creates a program from functions, with no custom instructions.
    pub fn new(functions: Vec<Function>) -> Self {
        Program {
            functions,
            cfu_semantics: BTreeMap::new(),
        }
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(|f| f.inst_count()).sum()
    }
}

impl FromIterator<Function> for Program {
    fn from_iter<T: IntoIterator<Item = Function>>(iter: T) -> Self {
        Program::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantics_eval_diamond() {
        // out = (a ^ b) << 3 | (a ^ b) >> 29  — a rotate built from a diamond.
        let sem = CfuSemantics {
            ops: vec![
                SemOp {
                    opcode: Opcode::Xor,
                    srcs: vec![SemSrc::Input(0), SemSrc::Input(1)],
                },
                SemOp {
                    opcode: Opcode::Shl,
                    srcs: vec![SemSrc::Node(0), SemSrc::Imm(3)],
                },
                SemOp {
                    opcode: Opcode::Shr,
                    srcs: vec![SemSrc::Node(0), SemSrc::Imm(29)],
                },
                SemOp {
                    opcode: Opcode::Or,
                    srcs: vec![SemSrc::Node(1), SemSrc::Node(2)],
                },
            ],
            outputs: vec![3],
            inputs: 2,
        };
        let a = 0x1234_5678u32;
        let b = 0x0F0F_0F0Fu32;
        assert_eq!(sem.eval(&[a, b]), vec![(a ^ b).rotate_left(3)]);
    }

    #[test]
    fn semantics_multiple_outputs() {
        // cfu(a, b) -> (a + b, a - b)
        let sem = CfuSemantics {
            ops: vec![
                SemOp {
                    opcode: Opcode::Add,
                    srcs: vec![SemSrc::Input(0), SemSrc::Input(1)],
                },
                SemOp {
                    opcode: Opcode::Sub,
                    srcs: vec![SemSrc::Input(0), SemSrc::Input(1)],
                },
            ],
            outputs: vec![0, 1],
            inputs: 2,
        };
        assert_eq!(sem.eval(&[10, 3]), vec![13, 7]);
    }

    #[test]
    #[should_panic(expected = "not topological")]
    fn forward_reference_rejected() {
        let sem = CfuSemantics {
            ops: vec![SemOp {
                opcode: Opcode::Not,
                srcs: vec![SemSrc::Node(0)],
            }],
            outputs: vec![0],
            inputs: 0,
        };
        let _ = sem.eval(&[]);
    }

    #[test]
    fn load_bearing_semantics_use_the_callback() {
        // cfu(a) = mem32[a] + 1
        let sem = CfuSemantics {
            ops: vec![
                SemOp {
                    opcode: Opcode::LdW,
                    srcs: vec![SemSrc::Input(0)],
                },
                SemOp {
                    opcode: Opcode::Add,
                    srcs: vec![SemSrc::Node(0), SemSrc::Imm(1)],
                },
            ],
            outputs: vec![1],
            inputs: 1,
        };
        assert_eq!(sem.load_count(), 1);
        let out = sem.eval_with(&[0x40], |op, addr| {
            assert_eq!(op, Opcode::LdW);
            assert_eq!(addr, 0x40);
            99
        });
        assert_eq!(out, vec![100]);
    }

    #[test]
    #[should_panic(expected = "contain memory op")]
    fn pure_eval_rejects_loads() {
        let sem = CfuSemantics {
            ops: vec![SemOp {
                opcode: Opcode::LdW,
                srcs: vec![SemSrc::Input(0)],
            }],
            outputs: vec![0],
            inputs: 1,
        };
        let _ = sem.eval(&[0]);
    }

    #[test]
    fn program_lookup() {
        use crate::builder::FunctionBuilder;
        let mut fb = FunctionBuilder::new("f", 1);
        let x = fb.param(0);
        fb.ret(&[x.into()]);
        let p = Program::new(vec![fb.finish()]);
        assert!(p.function("f").is_some());
        assert!(p.function("g").is_none());
        assert_eq!(p.inst_count(), 0);
    }
}
