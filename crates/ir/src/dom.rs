//! Dominance and definite-assignment analyses over the CFG.
//!
//! Two flow-sensitive facts underpin the verifier and the `isax-check`
//! diagnostic passes:
//!
//! * **Dominators** ([`Dominators`]): block `a` dominates block `b` when
//!   every path from the entry to `b` passes through `a`. Computed with
//!   the Cooper–Harvey–Kennedy iterative algorithm over a reverse
//!   postorder of the CFG.
//! * **Definite assignment** ([`definite_assignment`]): the set of
//!   registers guaranteed to have been written on *every* path reaching a
//!   block's entry. This is a forward must-analysis (intersection over
//!   predecessors), which — unlike a pure dominance lookup — accepts a
//!   register defined on both arms of a diamond and used after the join,
//!   while still flagging a definition that exists on only one arm. The
//!   IR is not SSA, so this is the right notion of "defined before use".

use crate::inst::VReg;
use crate::Function;
use std::collections::BTreeSet;

/// The dominator tree of a function's CFG.
///
/// # Example
///
/// ```
/// use isax_ir::{dom::Dominators, FunctionBuilder};
///
/// // entry -> {then, else} -> join
/// let mut fb = FunctionBuilder::new("d", 1);
/// let x = fb.param(0);
/// let then_b = fb.new_block(1);
/// let else_b = fb.new_block(1);
/// let join = fb.new_block(1);
/// let c = fb.ne(x, 0i64);
/// fb.branch(c, then_b, else_b);
/// fb.switch_to(then_b);
/// fb.jump(join);
/// fb.switch_to(else_b);
/// fb.jump(join);
/// fb.switch_to(join);
/// fb.ret(&[]);
/// let f = fb.finish();
///
/// let dt = Dominators::compute(&f);
/// assert!(dt.dominates(0, 3), "entry dominates the join");
/// assert!(!dt.dominates(1, 3), "one arm does not dominate the join");
/// assert_eq!(dt.idom(3), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// Immediate dominator of each block; `None` for the entry and for
    /// unreachable blocks.
    idom: Vec<Option<usize>>,
    /// Whether each block is reachable from the entry.
    reachable: Vec<bool>,
}

impl Dominators {
    /// Computes the dominator tree of `f`'s CFG (block 0 is the entry).
    pub fn compute(f: &Function) -> Dominators {
        let n = f.blocks.len();
        let rpo = reverse_postorder(f);
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i;
        }
        let mut reachable = vec![false; n];
        for &b in &rpo {
            reachable[b] = true;
        }
        let preds = predecessors_clamped(f);
        let mut idom: Vec<Option<usize>> = vec![None; n];
        if n == 0 {
            return Dominators { idom, reachable };
        }
        idom[0] = Some(0); // sentinel: the entry is its own dominator
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // Fold the intersection over processed, reachable preds.
                let mut new_idom: Option<usize> = None;
                for p in preds[b].iter().copied() {
                    if !reachable[p] || idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(q) => intersect(p, q, &idom, &rpo_index),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        idom[0] = None; // drop the sentinel: the entry has no idom
        Dominators { idom, reachable }
    }

    /// Immediate dominator of block `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: usize) -> Option<usize> {
        self.idom.get(b).copied().flatten()
    }

    /// True if block `b` is reachable from the entry.
    pub fn is_reachable(&self, b: usize) -> bool {
        self.reachable.get(b).copied().unwrap_or(false)
    }

    /// True if `a` dominates `b` (reflexively). Unreachable blocks are
    /// dominated by nothing and dominate nothing.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

/// Walks both fingers up the dominator tree until they meet
/// (Cooper–Harvey–Kennedy `intersect`, with comparisons in RPO index
/// space).
fn intersect(mut a: usize, mut b: usize, idom: &[Option<usize>], rpo_index: &[usize]) -> usize {
    while a != b {
        while rpo_index[a] > rpo_index[b] {
            a = idom[a].expect("processed block has an idom");
        }
        while rpo_index[b] > rpo_index[a] {
            b = idom[b].expect("processed block has an idom");
        }
    }
    a
}

/// Predecessor lists that tolerate malformed CFGs: terminator targets at
/// or past the block count (which the verifier reports separately) are
/// simply skipped rather than panicking.
pub(crate) fn predecessors_clamped(f: &Function) -> Vec<Vec<usize>> {
    let n = f.blocks.len();
    let mut preds = vec![Vec::new(); n];
    for (i, b) in f.blocks.iter().enumerate() {
        for s in b.term.successors() {
            if s.index() < n {
                preds[s.index()].push(i);
            }
        }
    }
    preds
}

/// Reverse postorder of the blocks reachable from the entry.
pub(crate) fn reverse_postorder(f: &Function) -> Vec<usize> {
    let n = f.blocks.len();
    if n == 0 {
        return Vec::new();
    }
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS: (block, next successor index to try).
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    visited[0] = true;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs: Vec<usize> = f.blocks[b]
            .term
            .successors()
            .into_iter()
            .map(|s| s.index())
            .collect();
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if s < n && !visited[s] {
                visited[s] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Per-block definite-assignment sets: `at_entry[b]` is the set of
/// registers written on **every** path from the entry to `b`'s first
/// instruction (parameters count as assigned). `None` marks a block
/// unreachable from the entry, for which no flow-sensitive claim holds.
///
/// # Example
///
/// ```
/// use isax_ir::{dom::definite_assignment, FunctionBuilder};
///
/// // x is assigned on only one arm of a diamond.
/// let mut fb = FunctionBuilder::new("d", 1);
/// let p = fb.param(0);
/// let then_b = fb.new_block(1);
/// let else_b = fb.new_block(1);
/// let join = fb.new_block(1);
/// let c = fb.ne(p, 0i64);
/// fb.branch(c, then_b, else_b);
/// fb.switch_to(then_b);
/// let x = fb.add(p, 1i64);
/// fb.jump(join);
/// fb.switch_to(else_b);
/// fb.jump(join);
/// fb.switch_to(join);
/// fb.ret(&[]);
/// let f = fb.finish();
///
/// let da = definite_assignment(&f);
/// let join_in = da.at_entry[3].as_ref().unwrap();
/// assert!(join_in.contains(&p), "parameters are always assigned");
/// assert!(!join_in.contains(&x), "x is missing on the else path");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefiniteAssignment {
    /// Definitely-assigned register set at each block's entry (`None` for
    /// unreachable blocks).
    pub at_entry: Vec<Option<BTreeSet<VReg>>>,
}

/// Runs the forward must-analysis: `in[entry] = params`, and
/// `in[b] = ∩ over reachable preds p of (in[p] ∪ defs(p))`, iterated to a
/// fixpoint in reverse postorder.
pub fn definite_assignment(f: &Function) -> DefiniteAssignment {
    let n = f.blocks.len();
    let rpo = reverse_postorder(f);
    let preds = predecessors_clamped(f);
    let defs: Vec<BTreeSet<VReg>> = f.blocks.iter().map(|b| b.defs().collect()).collect();
    let mut at_entry: Vec<Option<BTreeSet<VReg>>> = vec![None; n];
    if n == 0 {
        return DefiniteAssignment { at_entry };
    }
    at_entry[0] = Some(f.params.iter().copied().collect());
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            // Intersect over predecessors whose facts are available; a
            // pred still at ⊤ (None within a loop's first sweep) is
            // skipped, which is the standard optimistic initialization.
            let mut acc: Option<BTreeSet<VReg>> = None;
            for p in preds[b].iter().copied() {
                let Some(in_p) = &at_entry[p] else { continue };
                let mut out_p: BTreeSet<VReg> = in_p.clone();
                out_p.extend(defs[p].iter().copied());
                acc = Some(match acc {
                    None => out_p,
                    Some(a) => a.intersection(&out_p).copied().collect(),
                });
            }
            if acc.is_some() && at_entry[b] != acc {
                at_entry[b] = acc;
                changed = true;
            }
        }
    }
    DefiniteAssignment { at_entry }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    /// entry -> body <-> body -> exit (a counted loop).
    fn loop_function() -> Function {
        let mut fb = FunctionBuilder::new("loop", 2);
        let x = fb.param(0);
        let n = fb.param(1);
        let body = fb.new_block(100);
        let exit = fb.new_block(1);
        let acc0 = fb.mov(0i64);
        fb.jump(body);
        fb.switch_to(body);
        let acc = fb.add(acc0, x);
        fb.copy_to(acc0, acc);
        let n2 = fb.sub(n, 1i64);
        fb.copy_to(n, n2);
        let c = fb.ne(n, 0i64);
        fb.branch(c, body, exit);
        fb.switch_to(exit);
        fb.ret(&[acc0.into()]);
        fb.finish()
    }

    #[test]
    fn entry_dominates_everything() {
        let f = loop_function();
        let dt = Dominators::compute(&f);
        for b in 0..f.blocks.len() {
            assert!(dt.dominates(0, b), "entry must dominate b{b}");
        }
        assert_eq!(dt.idom(1), Some(0));
        assert_eq!(dt.idom(2), Some(1));
        assert_eq!(dt.idom(0), None);
    }

    #[test]
    fn self_loop_does_not_dominate_exit_over_entry() {
        let f = loop_function();
        let dt = Dominators::compute(&f);
        assert!(dt.dominates(1, 2), "body dominates exit");
        assert!(!dt.dominates(2, 1));
    }

    #[test]
    fn unreachable_block_is_flagged() {
        let mut fb = FunctionBuilder::new("u", 0);
        let dead = fb.new_block(1);
        fb.ret(&[]);
        fb.switch_to(dead);
        fb.ret(&[]);
        let f = fb.finish();
        let dt = Dominators::compute(&f);
        assert!(dt.is_reachable(0));
        assert!(!dt.is_reachable(1));
        assert!(!dt.dominates(0, 1));
        let da = definite_assignment(&f);
        assert!(da.at_entry[1].is_none());
    }

    #[test]
    fn loop_carried_values_stay_assigned() {
        let f = loop_function();
        let da = definite_assignment(&f);
        // acc0 is defined in the entry, so it is definitely assigned at
        // the body and at the exit despite the back edge.
        let acc0 = crate::VReg(2);
        assert!(da.at_entry[1].as_ref().unwrap().contains(&acc0));
        assert!(da.at_entry[2].as_ref().unwrap().contains(&acc0));
    }

    #[test]
    fn diamond_requires_both_arms() {
        let mut fb = FunctionBuilder::new("d", 1);
        let p = fb.param(0);
        let then_b = fb.new_block(1);
        let else_b = fb.new_block(1);
        let join = fb.new_block(1);
        let c = fb.ne(p, 0i64);
        fb.branch(c, then_b, else_b);
        fb.switch_to(then_b);
        let x = fb.add(p, 1i64); // only on the then arm
        fb.jump(join);
        fb.switch_to(else_b);
        let y = fb.add(p, 2i64);
        fb.copy_to(x, y); // x also defined here -> both arms define x
        fb.jump(join);
        fb.switch_to(join);
        fb.ret(&[]);
        let f = fb.finish();
        let da = definite_assignment(&f);
        let join_in = da.at_entry[3].as_ref().unwrap();
        assert!(join_in.contains(&x), "x is assigned on both arms");
        assert!(!join_in.contains(&y), "y only exists on the else arm");
    }
}
