//! Basic blocks, terminators and profile weights.

use crate::inst::{Inst, Operand, VReg};
/// Index of a basic block inside a [`crate::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Dense index of the block.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Control transfer at the end of a block.
///
/// Branches never appear *inside* blocks: the paper's system forbids custom
/// instructions from containing branches or crossing control-flow
/// boundaries, and representing control flow purely as terminators makes
/// that restriction structural.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on `cond != 0`.
    Branch {
        /// Condition register (taken when non-zero).
        cond: VReg,
        /// Target when the condition is non-zero.
        taken: BlockId,
        /// Target when the condition is zero.
        not_taken: BlockId,
    },
    /// Function return with the produced values.
    Ret(Vec<Operand>),
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                taken, not_taken, ..
            } => vec![*taken, *not_taken],
            Terminator::Ret(_) => vec![],
        }
    }

    /// Registers read by the terminator.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Terminator::Jump(_) => vec![],
            Terminator::Branch { cond, .. } => vec![*cond],
            Terminator::Ret(vals) => vals.iter().filter_map(|o| o.reg()).collect(),
        }
    }
}

/// A basic block: straight-line instructions, a terminator, and a profile
/// weight (dynamic execution count from profiling).
///
/// # Example
///
/// ```
/// use isax_ir::{BasicBlock, BlockId, Inst, Opcode, Terminator, VReg};
///
/// let mut b = BasicBlock::new(1000);
/// b.insts.push(Inst::new(Opcode::Add, vec![VReg(2)], vec![VReg(0).into(), VReg(1).into()]));
/// b.term = Terminator::Ret(vec![VReg(2).into()]);
/// assert_eq!(b.weight, 1000);
/// assert_eq!(b.term.successors(), vec![]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Straight-line instructions in program order (unscheduled).
    pub insts: Vec<Inst>,
    /// Control transfer out of the block.
    pub term: Terminator,
    /// Profile weight: how many times this block executes in the profiled
    /// run. Drives the value estimate of every candidate found here.
    pub weight: u64,
}

impl BasicBlock {
    /// Creates an empty block with the given profile weight, terminated by
    /// an empty return (builders overwrite the terminator).
    pub fn new(weight: u64) -> Self {
        BasicBlock {
            insts: Vec::new(),
            term: Terminator::Ret(vec![]),
            weight,
        }
    }

    /// Registers defined anywhere in the block.
    pub fn defs(&self) -> impl Iterator<Item = VReg> + '_ {
        self.insts.iter().flat_map(|i| i.dsts.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;

    #[test]
    fn terminator_successors_and_uses() {
        let j = Terminator::Jump(BlockId(3));
        assert_eq!(j.successors(), vec![BlockId(3)]);
        assert!(j.uses().is_empty());

        let br = Terminator::Branch {
            cond: VReg(5),
            taken: BlockId(1),
            not_taken: BlockId(2),
        };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(br.uses(), vec![VReg(5)]);

        let r = Terminator::Ret(vec![VReg(1).into(), Operand::Imm(0)]);
        assert!(r.successors().is_empty());
        assert_eq!(r.uses(), vec![VReg(1)]);
    }

    #[test]
    fn block_defs() {
        let mut b = BasicBlock::new(1);
        b.insts.push(Inst::new(
            Opcode::Add,
            vec![VReg(1)],
            vec![VReg(0).into(), VReg(0).into()],
        ));
        b.insts.push(Inst::new(
            Opcode::StW,
            vec![],
            vec![VReg(1).into(), VReg(0).into()],
        ));
        assert_eq!(b.defs().collect::<Vec<_>>(), vec![VReg(1)]);
    }
}
