//! Generic RISC intermediate representation for the `isax` suite.
//!
//! The MICRO-2003 customization system consumes "profiled assembly code
//! \[that\] has not been scheduled and has not passed through register
//! allocation". This crate defines exactly that input language:
//!
//! * a small ARM7-like operation set ([`Opcode`]) with the structural
//!   properties later stages query — commutativity, identity elements,
//!   wildcard classes, issue slots;
//! * unscheduled instructions over virtual registers ([`Inst`], [`VReg`]);
//! * basic blocks with profile weights and explicit terminators
//!   ([`BasicBlock`], [`Terminator`]) forming a CFG ([`Function`],
//!   [`Program`]);
//! * per-block dataflow graphs with dependence, slack, convexity and
//!   port-count analysis ([`Dfg`]) — the data structure every pipeline
//!   stage is built around;
//! * an ergonomic [`FunctionBuilder`] used to author the benchmark
//!   kernels, and a [`verify`] pass that catches malformed IR.
//!
//! # Example: build a kernel and inspect its dataflow graph
//!
//! ```
//! use isax_ir::{Dfg, FunctionBuilder, function_dfgs};
//!
//! let mut fb = FunctionBuilder::new("round", 2);
//! let x = fb.param(0);
//! let k = fb.param(1);
//! let t = fb.xor(x, k);
//! let r = fb.ror(t, 7i64);
//! let y = fb.add(r, k);
//! fb.ret(&[y.into()]);
//! let f = fb.finish();
//!
//! let dfgs = function_dfgs(&f);
//! assert_eq!(dfgs[0].len(), 3);
//! let info = dfgs[0].schedule_info(|_| 1);
//! assert_eq!(info.length, 3); // a pure dependence chain
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod builder;
pub mod dataflow;
pub mod dfg;
pub mod dom;
pub mod function;
pub mod inst;
pub mod opcode;
pub mod parse;
pub mod program;
pub mod verify;

pub use block::{BasicBlock, BlockId, Terminator};
pub use builder::FunctionBuilder;
pub use dataflow::{
    analyze_function, effective_widths, effective_widths_from, solve, Domain, Facts, Interval,
    KnownBits, SolveStats,
};
pub use dfg::{function_dfgs, Dfg, DfgLabel, SlackInfo};
pub use dom::{definite_assignment, DefiniteAssignment, Dominators};
pub use function::{Function, Liveness};
pub use inst::{Inst, Operand, VReg};
pub use opcode::{eval, FuKind, OpClass, Opcode};
pub use parse::{parse_function, parse_program, ParseError};
pub use program::{CfuSemantics, Program, SemOp, SemSrc};
pub use verify::{verify_function, verify_program, VerifyCode, VerifyError};
