//! Textual assembly parser — the inverse of the IR `Display` impls.
//!
//! The paper's toolflow consumes "profiled assembly code"; this module
//! makes that interface real: kernels can be authored (or dumped and
//! re-read) as plain text. The grammar is exactly what
//! [`crate::Function`]'s `Display` emits:
//!
//! ```text
//! func dot_product(v0, v1, v2)
//! b0:  ; weight 1
//!     mov v3, #0
//!     jmp b1
//! b1:  ; weight 4096
//!     ldw v4, v0
//!     ldw v5, v1
//!     mul v6, v4, v5
//!     add v3, v3, v6
//!     add v0, v0, #4
//!     add v1, v1, #4
//!     sub v2, v2, #1
//!     ne v7, v2, #0
//!     br v7, b1, b2
//! b2:  ; weight 1
//!     ret v3
//! ```
//!
//! Custom instructions print their variable shape as
//! `cfu3 v1, v2 <- v0, #4` (destinations, arrow, sources) and parse the
//! same way. Whole programs are sequences of `func` items.

use crate::block::{BasicBlock, BlockId, Terminator};
use crate::inst::{Inst, Operand, VReg};
use crate::opcode::Opcode;
use crate::program::Program;
use crate::Function;

/// A parse failure with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn opcode_by_mnemonic(m: &str) -> Option<Opcode> {
    Opcode::from_mnemonic(m)
}

fn parse_vreg(tok: &str, line: usize) -> Result<VReg, ParseError> {
    tok.strip_prefix('v')
        .and_then(|n| n.parse::<u32>().ok())
        .map(VReg)
        .ok_or(ParseError {
            line,
            message: format!("expected a register, got `{tok}`"),
        })
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseError> {
    if let Some(imm) = tok.strip_prefix('#') {
        imm.parse::<i64>()
            .map(Operand::Imm)
            .map_err(|_| ParseError {
                line,
                message: format!("bad immediate `{tok}`"),
            })
    } else {
        parse_vreg(tok, line).map(Operand::Reg)
    }
}

fn parse_block_id(tok: &str, line: usize) -> Result<BlockId, ParseError> {
    tok.strip_prefix('b')
        .and_then(|n| n.parse::<u32>().ok())
        .map(BlockId)
        .ok_or(ParseError {
            line,
            message: format!("expected a block label, got `{tok}`"),
        })
}

fn split_operands(rest: &str) -> Vec<&str> {
    rest.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect()
}

/// Parses one instruction line (no terminators).
fn parse_inst(line_no: usize, text: &str) -> Result<Inst, ParseError> {
    let text = text.trim();
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let Some(op) = opcode_by_mnemonic(mnemonic) else {
        return err(line_no, format!("unknown mnemonic `{mnemonic}`"));
    };
    if op.is_custom() {
        // cfuN d0, d1 <- s0, s1, ...
        let (dst_part, src_part) = match rest.split_once("<-") {
            Some((d, s)) => (d.trim(), s.trim()),
            None => return err(line_no, "custom instruction needs `<-`"),
        };
        let dsts = split_operands(dst_part)
            .into_iter()
            .map(|t| parse_vreg(t, line_no))
            .collect::<Result<Vec<_>, _>>()?;
        let srcs = split_operands(src_part)
            .into_iter()
            .map(|t| parse_operand(t, line_no))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Inst::new(op, dsts, srcs));
    }
    let toks = split_operands(rest);
    let (ndst, nsrc) = (op.result_count(), op.arity());
    if toks.len() != ndst + nsrc {
        return err(
            line_no,
            format!(
                "{mnemonic} expects {} operands, got {}",
                ndst + nsrc,
                toks.len()
            ),
        );
    }
    let dsts = toks[..ndst]
        .iter()
        .map(|t| parse_vreg(t, line_no))
        .collect::<Result<Vec<_>, _>>()?;
    let srcs = toks[ndst..]
        .iter()
        .map(|t| parse_operand(t, line_no))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Inst::new(op, dsts, srcs))
}

/// Parses a function in the `Display` format.
///
/// # Errors
///
/// Reports the first syntax problem with its line number. The result is
/// additionally checked by [`crate::verify_function`]; verification
/// failures are reported on the `func` line.
///
/// # Example
///
/// ```
/// use isax_ir::parse_function;
///
/// let f = parse_function(
///     "func double(v0)\n\
///      b0:  ; weight 7\n\
///      \tadd v1, v0, v0\n\
///      \tret v1\n",
/// )?;
/// assert_eq!(f.name, "double");
/// assert_eq!(f.blocks[0].weight, 7);
/// # Ok::<(), isax_ir::parse::ParseError>(())
/// ```
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    let mut lines = text.lines().enumerate().peekable();
    // Header: func name(v0, v1, ...)
    let (hline, header) = loop {
        match lines.next() {
            Some((n, l)) if l.trim().is_empty() => {
                let _ = n;
                continue;
            }
            Some((n, l)) => break (n + 1, l.trim()),
            None => return err(1, "empty input"),
        }
    };
    let Some(sig) = header.strip_prefix("func ") else {
        return err(hline, "expected `func name(...)`");
    };
    let Some((name, params_part)) = sig.split_once('(') else {
        return err(hline, "expected `(` in function header");
    };
    let Some(params_part) = params_part.strip_suffix(')') else {
        return err(hline, "expected `)` in function header");
    };
    let params = split_operands(params_part)
        .into_iter()
        .map(|t| parse_vreg(t, hline))
        .collect::<Result<Vec<_>, _>>()?;

    let mut blocks: Vec<BasicBlock> = Vec::new();
    let mut terminated: Vec<bool> = Vec::new();
    let mut max_reg: u32 = params.iter().map(|r| r.0 + 1).max().unwrap_or(0);
    let note_inst = |inst: &Inst, max_reg: &mut u32| {
        for &d in &inst.dsts {
            *max_reg = (*max_reg).max(d.0 + 1);
        }
        for (_, r) in inst.reg_srcs() {
            *max_reg = (*max_reg).max(r.0 + 1);
        }
    };
    for (n0, raw) in lines {
        let line_no = n0 + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        // Block header: bN:  ; weight W
        if let Some(rest) = line.strip_prefix('b') {
            if let Some((num, tail)) = rest.split_once(':') {
                if let Ok(idx) = num.parse::<u32>() {
                    if idx as usize != blocks.len() {
                        return err(line_no, format!("expected block b{}", blocks.len()));
                    }
                    let weight = tail
                        .split_once("weight")
                        .and_then(|(_, w)| w.trim().parse::<u64>().ok())
                        .unwrap_or(1);
                    blocks.push(BasicBlock::new(weight));
                    terminated.push(false);
                    continue;
                }
            }
        }
        if blocks.is_empty() {
            return err(line_no, "instruction before the first block label");
        }
        let bi = blocks.len() - 1;
        if terminated[bi] {
            return err(line_no, "instruction after the block terminator");
        }
        // Terminators.
        let (head, rest) = match line.split_once(char::is_whitespace) {
            Some((h, r)) => (h, r.trim()),
            None => (line, ""),
        };
        match head {
            "jmp" => {
                blocks[bi].term = Terminator::Jump(parse_block_id(rest, line_no)?);
                terminated[bi] = true;
            }
            "br" => {
                let toks = split_operands(rest);
                if toks.len() != 3 {
                    return err(line_no, "br expects `cond, taken, not_taken`");
                }
                let cond = parse_vreg(toks[0], line_no)?;
                max_reg = max_reg.max(cond.0 + 1);
                blocks[bi].term = Terminator::Branch {
                    cond,
                    taken: parse_block_id(toks[1], line_no)?,
                    not_taken: parse_block_id(toks[2], line_no)?,
                };
                terminated[bi] = true;
            }
            "ret" => {
                let vals = split_operands(rest)
                    .into_iter()
                    .map(|t| parse_operand(t, line_no))
                    .collect::<Result<Vec<_>, _>>()?;
                for v in &vals {
                    if let Some(r) = v.reg() {
                        max_reg = max_reg.max(r.0 + 1);
                    }
                }
                blocks[bi].term = Terminator::Ret(vals);
                terminated[bi] = true;
            }
            _ => {
                let inst = parse_inst(line_no, line)?;
                note_inst(&inst, &mut max_reg);
                blocks[bi].insts.push(inst);
            }
        }
    }
    if blocks.is_empty() {
        return err(hline, "function has no blocks");
    }
    if let Some(bi) = terminated.iter().position(|t| !t) {
        return err(hline, format!("block b{bi} has no terminator"));
    }
    let f = Function {
        name: name.trim().to_string(),
        params,
        blocks,
        vreg_count: max_reg,
    };
    if let Err(problems) = crate::verify::verify_function(&f) {
        return err(hline, format!("verification failed: {}", problems[0]));
    }
    Ok(f)
}

/// Parses a program: one or more `func` items.
///
/// Custom-instruction semantics are not part of the textual form; parsed
/// programs start with an empty semantics table (customization introduces
/// customs later).
///
/// # Errors
///
/// Reports the first syntax or verification problem.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut functions = Vec::new();
    let mut current = String::new();
    let mut start_line = 1usize;
    for (n0, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("func ") && !current.trim().is_empty() {
            functions.push(offset_parse(&current, start_line)?);
            current.clear();
            start_line = n0 + 1;
        }
        current.push_str(line);
        current.push('\n');
    }
    if !current.trim().is_empty() {
        functions.push(offset_parse(&current, start_line)?);
    }
    if functions.is_empty() {
        return err(1, "no functions found");
    }
    Ok(Program::new(functions))
}

fn offset_parse(text: &str, start_line: usize) -> Result<Function, ParseError> {
    parse_function(text).map_err(|e| ParseError {
        line: e.line + start_line - 1,
        message: e.message,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn sample() -> Function {
        let mut fb = FunctionBuilder::new("kern", 2);
        fb.set_entry_weight(3);
        let (a, b) = (fb.param(0), fb.param(1));
        let body = fb.new_block(500);
        let exit = fb.new_block(2);
        let acc = fb.mov(0i64);
        fb.jump(body);
        fb.switch_to(body);
        let v = fb.ldw(a);
        let t = fb.xor(v, b);
        let acc2 = fb.add(acc, t);
        fb.copy_to(acc, acc2);
        let a2 = fb.add(a, 4i64);
        fb.copy_to(a, a2);
        let c = fb.ne(a, 64i64);
        fb.branch(c, body, exit);
        fb.switch_to(exit);
        fb.stw(b, acc);
        fb.ret(&[acc.into(), Operand::Imm(0)]);
        fb.finish()
    }

    #[test]
    fn round_trip_display_parse() {
        let f = sample();
        let text = f.to_string();
        let parsed = parse_function(&text).expect("parses");
        assert_eq!(parsed.name, f.name);
        assert_eq!(parsed.params, f.params);
        assert_eq!(parsed.blocks, f.blocks);
        // And the round trip is a fixpoint.
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn parses_custom_instructions() {
        let f = parse_function(
            "func c(v0, v1)\n\
             b0:  ; weight 9\n\
             \tcfu4 v2, v3 <- v0, v1, #12\n\
             \tret v2, v3\n",
        )
        .unwrap();
        let inst = &f.blocks[0].insts[0];
        assert_eq!(inst.opcode, Opcode::Custom(4));
        assert_eq!(inst.dsts.len(), 2);
        assert_eq!(inst.srcs[2], Operand::Imm(12));
        // Display round-trips the arrow form.
        assert!(inst.to_string().contains("<-"));
        let again = parse_function(&f.to_string()).unwrap();
        assert_eq!(again.blocks, f.blocks);
    }

    #[test]
    fn program_round_trip() {
        let f1 = sample();
        let mut fb = FunctionBuilder::new("other", 1);
        let x = fb.param(0);
        let y = fb.not_(x);
        fb.ret(&[y.into()]);
        let f2 = fb.finish();
        let text = format!("{f1}\n{f2}");
        let p = parse_program(&text).expect("parses");
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.functions[0].blocks, f1.blocks);
        assert_eq!(p.functions[1].name, "other");
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_function(
            "func f(v0)\n\
             b0:  ; weight 1\n\
             \tfrobnicate v1, v0\n\
             \tret\n",
        )
        .unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn wrong_operand_count_is_reported() {
        let e = parse_function(
            "func f(v0)\n\
             b0:\n\
             \tadd v1, v0\n\
             \tret\n",
        )
        .unwrap_err();
        assert!(e.message.contains("expects 3 operands"));
    }

    #[test]
    fn missing_terminator_is_reported() {
        let e = parse_function(
            "func f(v0)\n\
             b0:\n\
             \tadd v1, v0, v0\n",
        )
        .unwrap_err();
        assert!(e.message.contains("no terminator"));
    }

    #[test]
    fn undefined_register_fails_verification() {
        let e = parse_function(
            "func f(v0)\n\
             b0:\n\
             \tadd v1, v9, v0\n\
             \tret v1\n",
        )
        .unwrap_err();
        assert!(e.message.contains("verification failed"), "{e}");
    }

    #[test]
    fn weight_defaults_to_one() {
        let f = parse_function(
            "func f(v0)\n\
             b0:\n\
             \tret v0\n",
        )
        .unwrap();
        assert_eq!(f.blocks[0].weight, 1);
    }

    #[test]
    fn workload_kernels_round_trip() {
        // The thirteen benchmark kernels all survive dump + re-parse.
        // (Checked here for one; tests/parser.rs covers the full suite.)
        let f = sample();
        let text = f.to_string();
        let back = parse_function(&text).unwrap();
        assert_eq!(back, f);
    }
}
