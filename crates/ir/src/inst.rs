//! Virtual registers, operands and instructions.

use crate::opcode::Opcode;
/// A virtual register.
///
/// The input to the customization pipeline is deliberately *pre* register
/// allocation ("the code ... has not passed through register allocation,
/// which is important so that false dependences within the DFG are not
/// created"), so the IR names an unbounded supply of virtual registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl VReg {
    /// Dense index of the register.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A source operand: a virtual register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Value produced by an instruction (or live into the function).
    Reg(VReg),
    /// Immediate constant; 32-bit payloads are stored sign-agnostically as
    /// `i64` so both signed (`-5`) and unsigned (`0xFFFF_FFFF`) spellings
    /// round-trip. The verifier rejects values outside the representable
    /// window (`IC0109`, see [`Operand::IMM_MIN`]/[`Operand::IMM_MAX`]),
    /// so evaluation's `as u32` narrowing never silently wraps.
    Imm(i64),
}

impl Operand {
    /// Smallest representable immediate (`i32::MIN`).
    pub const IMM_MIN: i64 = i32::MIN as i64;
    /// Largest representable immediate (`u32::MAX`): unsigned spellings
    /// up to 32 bits are accepted alongside negative signed ones.
    pub const IMM_MAX: i64 = u32::MAX as i64;

    /// True when `v` fits the 32-bit immediate window — representable as
    /// either an `i32` or a `u32`, the two spellings `as u32` narrowing
    /// preserves exactly.
    pub fn imm_in_range(v: i64) -> bool {
        (Operand::IMM_MIN..=Operand::IMM_MAX).contains(&v)
    }
    /// Returns the register, if this is a register operand.
    pub fn reg(self) -> Option<VReg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// Returns the immediate, if this is an immediate operand.
    pub fn imm(self) -> Option<i64> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(v) => Some(v),
        }
    }

    /// True if this is an immediate operand.
    pub fn is_imm(self) -> bool {
        matches!(self, Operand::Imm(_))
    }
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Imm(v as i64)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v as i64)
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// One (unscheduled) assembly instruction.
///
/// Most operations define exactly one register; stores define none and
/// custom-function-unit invocations may define up to the machine's output
/// port limit.
///
/// # Example
///
/// ```
/// use isax_ir::{Inst, Opcode, Operand, VReg};
///
/// let i = Inst::new(Opcode::Add, vec![VReg(2)], vec![VReg(0).into(), Operand::Imm(4)]);
/// assert_eq!(i.to_string(), "add v2, v0, #4");
/// assert_eq!(i.dst(), Some(VReg(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation.
    pub opcode: Opcode,
    /// Destination registers.
    pub dsts: Vec<VReg>,
    /// Source operands, in port order.
    pub srcs: Vec<Operand>,
}

impl Inst {
    /// Creates an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the operand or result count contradicts the opcode (custom
    /// opcodes are exempt — their shape is dictated by the machine
    /// description).
    pub fn new(opcode: Opcode, dsts: Vec<VReg>, srcs: Vec<Operand>) -> Self {
        if !opcode.is_custom() {
            assert_eq!(
                srcs.len(),
                opcode.arity(),
                "{opcode} expects {} sources, got {}",
                opcode.arity(),
                srcs.len()
            );
            assert_eq!(
                dsts.len(),
                opcode.result_count(),
                "{opcode} expects {} destinations, got {}",
                opcode.result_count(),
                dsts.len()
            );
        }
        Inst { opcode, dsts, srcs }
    }

    /// First (usually only) destination register.
    pub fn dst(&self) -> Option<VReg> {
        self.dsts.first().copied()
    }

    /// Iterates over the register source operands (skipping immediates),
    /// yielding `(port, reg)`.
    pub fn reg_srcs(&self) -> impl Iterator<Item = (u8, VReg)> + '_ {
        self.srcs
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.reg().map(|r| (i as u8, r)))
    }

    /// The immediates hardwired into this instruction, as `(port, value)`.
    pub fn imm_srcs(&self) -> impl Iterator<Item = (u8, i64)> + '_ {
        self.srcs
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.imm().map(|v| (i as u8, v)))
    }
}

impl std::fmt::Display for Inst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.opcode)?;
        let mut first = true;
        for d in &self.dsts {
            write!(f, "{} {d}", if first { "" } else { "," })?;
            first = false;
        }
        // Custom operations have a variable shape, so the textual form
        // separates destinations from sources explicitly.
        if self.opcode.is_custom() {
            write!(f, " <-")?;
            first = true;
        }
        for s in &self.srcs {
            write!(f, "{} {s}", if first { "" } else { "," })?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_store() {
        let st = Inst::new(Opcode::StW, vec![], vec![VReg(1).into(), VReg(2).into()]);
        assert_eq!(st.to_string(), "stw v1, v2");
        assert_eq!(st.dst(), None);
    }

    #[test]
    fn reg_and_imm_sources() {
        let i = Inst::new(
            Opcode::Shl,
            vec![VReg(9)],
            vec![VReg(3).into(), 4i64.into()],
        );
        assert_eq!(i.reg_srcs().collect::<Vec<_>>(), vec![(0, VReg(3))]);
        assert_eq!(i.imm_srcs().collect::<Vec<_>>(), vec![(1, 4)]);
    }

    #[test]
    #[should_panic(expected = "expects 2 sources")]
    fn arity_is_enforced() {
        let _ = Inst::new(Opcode::Add, vec![VReg(0)], vec![VReg(1).into()]);
    }

    #[test]
    #[should_panic(expected = "expects 0 destinations")]
    fn store_has_no_destination() {
        let _ = Inst::new(
            Opcode::StW,
            vec![VReg(0)],
            vec![VReg(1).into(), VReg(2).into()],
        );
    }

    #[test]
    fn custom_shape_is_free() {
        let i = Inst::new(
            Opcode::Custom(0),
            vec![VReg(1), VReg(2)],
            vec![VReg(3).into(), VReg(4).into(), VReg(5).into(), 7i64.into()],
        );
        assert_eq!(i.dsts.len(), 2);
        assert_eq!(i.srcs.len(), 4);
    }

    #[test]
    fn operand_conversions() {
        let o: Operand = VReg(3).into();
        assert_eq!(o.reg(), Some(VReg(3)));
        let o: Operand = 5i32.into();
        assert_eq!(o.imm(), Some(5));
        assert!(o.is_imm());
        let o: Operand = 0xFFFF_FFFFu32.into();
        assert_eq!(o.imm(), Some(0xFFFF_FFFF));
    }
}
