//! The primitive operation set of the generic RISC target.
//!
//! The paper's system consumes "profiled assembly code" for "a generic RISC
//! architecture, such as Add, Or, and Load" with an instruction set
//! "similar to ... the ARM-7". This module defines that operation set
//! together with the structural properties every later stage queries:
//! operand arity, commutativity, identity elements (for subsumed-subgraph
//! contraction), opcode classes (for wildcard generalization) and the VLIW
//! function-unit slot each operation issues to.

/// Which VLIW issue slot an operation occupies.
///
/// The baseline machine of the paper is a four-wide VLIW issuing one
/// integer, one floating-point, one memory and one branch operation per
/// cycle; custom function units share the **integer** slot so speedups are
/// attributable to the custom instructions rather than to added issue
/// width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuKind {
    /// Integer ALU slot (also used by custom function units).
    Int,
    /// Floating-point slot (present in the machine model; unused by the
    /// integer kernels).
    Float,
    /// Memory (load/store) slot.
    Mem,
    /// Branch slot (occupied by block terminators).
    Branch,
}

/// Wildcard opcode classes (§5, "opcode classes are groups of opcodes that
/// can match each node of a CFU graph").
///
/// Operations in the same class are "similar in their hardware
/// implementation or ... can be added with little cost overhead", so a CFU
/// node can be generalized to its class to make the unit multifunctional.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Adders: `ADD` and `SUB` share a carry chain.
    AddSub,
    /// Bitwise logic: `AND`, `OR`, `XOR`, `ANDN`, `NOT`.
    Logical,
    /// Barrel-shifter family: `SHL`, `SHR`, `SAR`, `ROR`.
    Shift,
    /// Comparisons producing 0/1.
    Compare,
    /// Multiply/divide array.
    MulDiv,
    /// Select / conditional-move.
    Select,
    /// Moves and sub-word extensions (wiring).
    Move,
    /// Memory accesses (never inside a CFU).
    Mem,
}

/// A primitive operation of the baseline instruction set.
///
/// # Example
///
/// ```
/// use isax_ir::{Opcode, OpClass};
///
/// assert!(Opcode::Add.is_commutative());
/// assert!(!Opcode::Sub.is_commutative());
/// assert_eq!(Opcode::Add.class(), OpClass::AddSub);
/// assert_eq!(Opcode::Add.arity(), 2);
/// assert!(Opcode::LdW.is_memory());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    /// `d = a + b` (wrapping 32-bit).
    Add,
    /// `d = a - b`.
    Sub,
    /// `d = a * b` (low 32 bits).
    Mul,
    /// `d = a / b` (signed; traps on zero in hardware, defined as 0 here).
    Div,
    /// `d = a % b` (signed; 0 when `b == 0`).
    Rem,
    /// `d = a & b`.
    And,
    /// `d = a | b`.
    Or,
    /// `d = a ^ b`.
    Xor,
    /// `d = a & !b` (ARM `BIC`).
    AndN,
    /// `d = !a` (bitwise complement).
    Not,
    /// `d = a << (b & 31)`.
    Shl,
    /// `d = a >> (b & 31)` (logical).
    Shr,
    /// `d = a >> (b & 31)` (arithmetic).
    Sar,
    /// `d = rotate_right(a, b & 31)`.
    Ror,
    /// `d = (a == b) ? 1 : 0`.
    Eq,
    /// `d = (a != b) ? 1 : 0`.
    Ne,
    /// `d = (a < b) ? 1 : 0` (signed).
    Lt,
    /// `d = (a <= b) ? 1 : 0` (signed).
    Le,
    /// `d = (a > b) ? 1 : 0` (signed).
    Gt,
    /// `d = (a >= b) ? 1 : 0` (signed).
    Ge,
    /// `d = (a < b) ? 1 : 0` (unsigned).
    Ltu,
    /// `d = (a <= b) ? 1 : 0` (unsigned).
    Leu,
    /// `d = (a > b) ? 1 : 0` (unsigned).
    Gtu,
    /// `d = (a >= b) ? 1 : 0` (unsigned).
    Geu,
    /// `d = c != 0 ? a : b` (3 inputs: c, a, b).
    Select,
    /// `d = a` (register copy or immediate materialization).
    Mov,
    /// `d = sign_extend_8(a)`.
    SxtB,
    /// `d = sign_extend_16(a)`.
    SxtH,
    /// `d = a & 0xFF`.
    ZxtB,
    /// `d = a & 0xFFFF`.
    ZxtH,
    /// `d = sign_extend_8(mem[a])`.
    LdB,
    /// `d = zero_extend_8(mem[a])`.
    LdBu,
    /// `d = sign_extend_16(mem[a])`.
    LdH,
    /// `d = zero_extend_16(mem[a])`.
    LdHu,
    /// `d = mem32[a]`.
    LdW,
    /// `mem8[a] = b`.
    StB,
    /// `mem16[a] = b`.
    StH,
    /// `mem32[a] = b`.
    StW,
    /// Custom function unit invocation; the payload is the CFU id from the
    /// machine description. Inserted only by the compiler's replacement
    /// pass — never written by hand.
    Custom(u16),
}

impl Opcode {
    /// All non-custom opcodes, in declaration order.
    pub const ALL: [Opcode; 38] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Rem,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::AndN,
        Opcode::Not,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::Sar,
        Opcode::Ror,
        Opcode::Eq,
        Opcode::Ne,
        Opcode::Lt,
        Opcode::Le,
        Opcode::Gt,
        Opcode::Ge,
        Opcode::Ltu,
        Opcode::Leu,
        Opcode::Gtu,
        Opcode::Geu,
        Opcode::Select,
        Opcode::Mov,
        Opcode::SxtB,
        Opcode::SxtH,
        Opcode::ZxtB,
        Opcode::ZxtH,
        Opcode::LdB,
        Opcode::LdBu,
        Opcode::LdH,
        Opcode::LdHu,
        Opcode::LdW,
        Opcode::StB,
        Opcode::StH,
        Opcode::StW,
    ];

    /// Number of source operands.
    pub fn arity(self) -> usize {
        use Opcode::*;
        match self {
            Not | Mov | SxtB | SxtH | ZxtB | ZxtH | LdB | LdBu | LdH | LdHu | LdW => 1,
            Select => 3,
            Custom(_) => usize::MAX, // variable; validated against the MDES
            _ => 2,
        }
    }

    /// Number of destination registers (0 for stores, 1 otherwise; custom
    /// operations are variable).
    pub fn result_count(self) -> usize {
        use Opcode::*;
        match self {
            StB | StH | StW => 0,
            Custom(_) => usize::MAX,
            _ => 1,
        }
    }

    /// True when the operand order is semantically irrelevant.
    pub fn is_commutative(self) -> bool {
        use Opcode::*;
        matches!(self, Add | Mul | And | Or | Xor | Eq | Ne)
    }

    /// True for loads and stores.
    pub fn is_memory(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// True for loads.
    pub fn is_load(self) -> bool {
        use Opcode::*;
        matches!(self, LdB | LdBu | LdH | LdHu | LdW)
    }

    /// True for stores.
    pub fn is_store(self) -> bool {
        use Opcode::*;
        matches!(self, StB | StH | StW)
    }

    /// True for the custom-instruction pseudo-opcode.
    pub fn is_custom(self) -> bool {
        matches!(self, Opcode::Custom(_))
    }

    /// The issue slot this operation occupies.
    pub fn fu(self) -> FuKind {
        if self.is_memory() {
            FuKind::Mem
        } else {
            // Custom function units deliberately share the integer slot.
            FuKind::Int
        }
    }

    /// Wildcard class of the operation.
    pub fn class(self) -> OpClass {
        use Opcode::*;
        match self {
            Add | Sub => OpClass::AddSub,
            And | Or | Xor | AndN | Not => OpClass::Logical,
            Shl | Shr | Sar | Ror => OpClass::Shift,
            Eq | Ne | Lt | Le | Gt | Ge | Ltu | Leu | Gtu | Geu => OpClass::Compare,
            Mul | Div | Rem => OpClass::MulDiv,
            Select => OpClass::Select,
            Mov | SxtB | SxtH | ZxtB | ZxtH => OpClass::Move,
            LdB | LdBu | LdH | LdHu | LdW | StB | StH | StW => OpClass::Mem,
            Custom(_) => OpClass::Move, // never classed in practice
        }
    }

    /// Identity-element description used by subsumed-subgraph contraction:
    /// if `Some((pass, ident))`, setting source port `1 - pass` — or, for
    /// one-input shapes, the documented constant — to `ident` makes the
    /// operation forward source port `pass` unchanged.
    ///
    /// Examples: `x + 0 = x`, `x - 0 = x`, `x ^ 0 = x`, `x | 0 = x`,
    /// `x & 0xFFFF_FFFF = x`, `x << 0 = x`, `x * 1 = x`.
    ///
    /// Commutative operations may pass either port; this returns the
    /// canonical `(pass = 0, ident)` and callers consult
    /// [`Opcode::is_commutative`] for the symmetric case.
    pub fn identity(self) -> Option<(u8, u32)> {
        use Opcode::*;
        match self {
            Add | Or | Xor => Some((0, 0)),
            Sub => Some((0, 0)),
            And => Some((0, u32::MAX)),
            AndN => Some((0, 0)),
            Shl | Shr | Sar | Ror => Some((0, 0)),
            Mul => Some((0, 1)),
            _ => None,
        }
    }

    /// Parses the [`Display`](std::fmt::Display) form back into an
    /// opcode: a plain mnemonic like `"add"`, or `"cfu<id>"` for custom
    /// units. Inverse of `to_string()` for every opcode.
    pub fn from_mnemonic(m: &str) -> Option<Opcode> {
        if let Some(id) = m.strip_prefix("cfu") {
            return id.parse::<u16>().ok().map(Opcode::Custom);
        }
        Opcode::ALL.into_iter().find(|op| op.mnemonic() == m)
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            And => "and",
            Or => "or",
            Xor => "xor",
            AndN => "andn",
            Not => "not",
            Shl => "shl",
            Shr => "shr",
            Sar => "sar",
            Ror => "ror",
            Eq => "eq",
            Ne => "ne",
            Lt => "lt",
            Le => "le",
            Gt => "gt",
            Ge => "ge",
            Ltu => "ltu",
            Leu => "leu",
            Gtu => "gtu",
            Geu => "geu",
            Select => "sel",
            Mov => "mov",
            SxtB => "sxtb",
            SxtH => "sxth",
            ZxtB => "zxtb",
            ZxtH => "zxth",
            LdB => "ldb",
            LdBu => "ldbu",
            LdH => "ldh",
            LdHu => "ldhu",
            LdW => "ldw",
            StB => "stb",
            StH => "sth",
            StW => "stw",
            Custom(_) => "cfu",
        }
    }
}

impl std::fmt::Display for Opcode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Opcode::Custom(id) = self {
            write!(f, "cfu{id}")
        } else {
            f.write_str(self.mnemonic())
        }
    }
}

/// Evaluates a (non-memory, non-custom) opcode on 32-bit values.
///
/// This is the single source of truth for operation semantics: the
/// functional interpreter, the custom-instruction expansion evaluator and
/// the subsumption identity checks all call it.
///
/// # Panics
///
/// Panics if called with a memory or custom opcode, or with the wrong
/// number of operands.
pub fn eval(op: Opcode, args: &[u32]) -> u32 {
    use Opcode::*;
    let a = |i: usize| args[i];
    let s = |i: usize| args[i] as i32;
    match op {
        Add => a(0).wrapping_add(a(1)),
        Sub => a(0).wrapping_sub(a(1)),
        Mul => a(0).wrapping_mul(a(1)),
        Div => {
            if a(1) == 0 {
                0
            } else if s(0) == i32::MIN && s(1) == -1 {
                s(0) as u32
            } else {
                (s(0) / s(1)) as u32
            }
        }
        Rem => {
            if a(1) == 0 || (s(0) == i32::MIN && s(1) == -1) {
                0
            } else {
                (s(0) % s(1)) as u32
            }
        }
        And => a(0) & a(1),
        Or => a(0) | a(1),
        Xor => a(0) ^ a(1),
        AndN => a(0) & !a(1),
        Not => !a(0),
        Shl => a(0).wrapping_shl(a(1) & 31),
        Shr => a(0).wrapping_shr(a(1) & 31),
        Sar => (s(0) >> (a(1) & 31)) as u32,
        Ror => a(0).rotate_right(a(1) & 31),
        Eq => (a(0) == a(1)) as u32,
        Ne => (a(0) != a(1)) as u32,
        Lt => (s(0) < s(1)) as u32,
        Le => (s(0) <= s(1)) as u32,
        Gt => (s(0) > s(1)) as u32,
        Ge => (s(0) >= s(1)) as u32,
        Ltu => (a(0) < a(1)) as u32,
        Leu => (a(0) <= a(1)) as u32,
        Gtu => (a(0) > a(1)) as u32,
        Geu => (a(0) >= a(1)) as u32,
        Select => {
            if a(0) != 0 {
                a(1)
            } else {
                a(2)
            }
        }
        Mov => a(0),
        SxtB => a(0) as u8 as i8 as i32 as u32,
        SxtH => a(0) as u16 as i16 as i32 as u32,
        ZxtB => a(0) & 0xFF,
        ZxtH => a(0) & 0xFFFF,
        LdB | LdBu | LdH | LdHu | LdW | StB | StH | StW => {
            panic!("memory opcode {op} cannot be evaluated without a memory")
        }
        Custom(id) => panic!("custom opcode cfu{id} requires registered semantics"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_semantics() {
        for op in Opcode::ALL {
            if op.is_memory() || op == Opcode::Select {
                continue;
            }
            let args = vec![5u32; op.arity()];
            let _ = eval(op, &args); // must not panic
        }
    }

    #[test]
    fn commutative_ops_commute_in_eval() {
        for op in Opcode::ALL {
            if !op.is_commutative() {
                continue;
            }
            for (x, y) in [(3u32, 9u32), (0, u32::MAX), (0x8000_0000, 1)] {
                assert_eq!(eval(op, &[x, y]), eval(op, &[y, x]), "{op}");
            }
        }
    }

    #[test]
    fn identities_actually_pass_through() {
        for op in Opcode::ALL {
            let Some((pass, ident)) = op.identity() else {
                continue;
            };
            assert_eq!(pass, 0, "canonical pass port is 0");
            for x in [0u32, 1, 42, 0xdead_beef, u32::MAX] {
                let out = eval(op, &[x, ident]);
                assert_eq!(out, x, "{op} with identity {ident:#x} must pass x");
            }
        }
    }

    #[test]
    fn shift_semantics() {
        assert_eq!(eval(Opcode::Shl, &[1, 4]), 16);
        assert_eq!(eval(Opcode::Shr, &[0x8000_0000, 31]), 1);
        assert_eq!(eval(Opcode::Sar, &[0x8000_0000, 31]), u32::MAX);
        assert_eq!(eval(Opcode::Ror, &[0x1, 1]), 0x8000_0000);
        // shift amounts are masked to 5 bits, like ARM/RISC cores
        assert_eq!(eval(Opcode::Shl, &[1, 33]), 2);
    }

    #[test]
    fn division_edge_cases_are_total() {
        assert_eq!(eval(Opcode::Div, &[7, 0]), 0);
        assert_eq!(eval(Opcode::Rem, &[7, 0]), 0);
        assert_eq!(
            eval(Opcode::Div, &[i32::MIN as u32, (-1i32) as u32]),
            i32::MIN as u32
        );
        assert_eq!(eval(Opcode::Rem, &[i32::MIN as u32, (-1i32) as u32]), 0);
    }

    #[test]
    fn sign_extensions() {
        assert_eq!(eval(Opcode::SxtB, &[0x80]), 0xFFFF_FF80);
        assert_eq!(eval(Opcode::SxtH, &[0x8000]), 0xFFFF_8000);
        assert_eq!(eval(Opcode::ZxtB, &[0x1FF]), 0xFF);
        assert_eq!(eval(Opcode::ZxtH, &[0x1_FFFF]), 0xFFFF);
    }

    #[test]
    fn comparisons_signed_vs_unsigned() {
        let neg1 = (-1i32) as u32;
        assert_eq!(eval(Opcode::Lt, &[neg1, 1]), 1);
        assert_eq!(eval(Opcode::Ltu, &[neg1, 1]), 0);
        assert_eq!(eval(Opcode::Ge, &[neg1, 1]), 0);
        assert_eq!(eval(Opcode::Geu, &[neg1, 1]), 1);
    }

    #[test]
    fn select_picks_by_condition() {
        assert_eq!(eval(Opcode::Select, &[1, 10, 20]), 10);
        assert_eq!(eval(Opcode::Select, &[0, 10, 20]), 20);
        assert_eq!(eval(Opcode::Select, &[0xFFFF, 10, 20]), 10);
    }

    #[test]
    fn fu_slots() {
        assert_eq!(Opcode::Add.fu(), FuKind::Int);
        assert_eq!(Opcode::LdW.fu(), FuKind::Mem);
        assert_eq!(Opcode::StB.fu(), FuKind::Mem);
        assert_eq!(Opcode::Custom(3).fu(), FuKind::Int);
    }

    #[test]
    #[should_panic(expected = "memory opcode")]
    fn eval_rejects_memory_ops() {
        let _ = eval(Opcode::LdW, &[0]);
    }

    #[test]
    fn display_custom() {
        assert_eq!(Opcode::Custom(7).to_string(), "cfu7");
        assert_eq!(Opcode::AndN.to_string(), "andn");
    }
}
