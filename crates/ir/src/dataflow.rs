//! Forward dataflow analysis over the CFG: value ranges and known bits.
//!
//! The hardware library prices every primitive at full 32-bit width, but
//! real kernels compute mostly-narrow values — masked bytes, loop
//! counters, 0/1 compare results. This module provides the semantic
//! analysis layer that recovers those facts statically:
//!
//! * a generic, deterministic forward worklist solver ([`solve`]) over
//!   any [`Domain`] — meet (join) at CFG merges, widening at blocks
//!   revisited more than [`WIDEN_AFTER`] times so loops terminate, block
//!   iteration in the same reverse postorder the dominance analysis in
//!   [`crate::dom`] uses;
//! * an **interval** (value-range) domain ([`Interval`]): each register
//!   is over-approximated by an unsigned `[lo, hi]` range;
//! * a **known-bits** domain ([`KnownBits`]): a tri-state per-bit
//!   lattice (known-0 / known-1 / unknown) tracking bit-level facts the
//!   interval domain cannot express (masks, shifted fields);
//! * [`effective_widths`]: the per-instruction *effective operand width*
//!   derived from both analyses, which the width-aware costing mode
//!   feeds into `isax-hwlib` delay/area queries.
//!
//! Every transfer function is sound with respect to [`crate::eval`] —
//! the single source of truth for operation semantics — and the test
//! suite proves it by property test on random operands for every opcode
//! and by replaying interpreter runs against the computed facts.
//!
//! The boundary condition matches the interpreter exactly: parameters
//! are unknown (⊤) and every other register starts at the concrete value
//! 0, because `isax_machine::run` zero-fills the register file.
//!
//! # Example
//!
//! ```
//! use isax_ir::dataflow::{analyze_function, Interval};
//! use isax_ir::FunctionBuilder;
//!
//! let mut fb = FunctionBuilder::new("f", 1);
//! let x = fb.param(0);
//! let b = fb.zxtb(x);          // b ∈ [0, 255]
//! let y = fb.add(b, 1i64);     // y ∈ [1, 256]
//! fb.ret(&[y.into()]);
//! let f = fb.finish();
//!
//! let facts = analyze_function(&f);
//! let env = facts.intervals.entry[0].as_ref().unwrap();
//! let mut at_ret = env.clone();
//! // Replay the block to the end and look at y.
//! isax_ir::dataflow::replay_block(&f, 0, &mut at_ret);
//! assert_eq!(at_ret[y.index()], Interval::new(1, 256));
//! ```

use crate::dom::{predecessors_clamped, reverse_postorder};
use crate::inst::{Inst, Operand};
use crate::opcode::{eval, Opcode};
use crate::Function;

/// Number of times a block's input may change before the solver switches
/// from join to widening at that block. Small enough to terminate fast,
/// large enough to let short counting patterns settle exactly.
pub const WIDEN_AFTER: u32 = 3;

/// An abstract value domain for the forward solver.
///
/// Implementations must be *sound* over-approximations of the concrete
/// 32-bit semantics in [`crate::eval`]: whenever concrete inputs are
/// contained in the abstract arguments, the concrete result must be
/// contained in the abstract result.
pub trait Domain: Clone + PartialEq + std::fmt::Debug {
    /// The unconstrained value (⊤): contains every `u32`.
    fn top() -> Self;
    /// The singleton abstraction of a concrete value.
    fn constant(c: u32) -> Self;
    /// Least upper bound: contains every value either side contains.
    fn join(&self, other: &Self) -> Self;
    /// Widening: an upper bound of `self ∨ other` chosen so that chains
    /// of widenings stabilize quickly (loop termination).
    fn widen(&self, other: &Self) -> Self;
    /// Abstract transfer of a non-memory, non-custom opcode.
    fn transfer(op: Opcode, args: &[Self]) -> Self;
    /// Abstract result of a load opcode (the address tells us nothing,
    /// but the access width does).
    fn load(op: Opcode) -> Self;
    /// True when the concrete value is contained in the abstraction.
    fn contains(&self, v: u32) -> bool;
    /// `Some(c)` when the abstraction is the singleton `{c}`.
    fn as_constant(&self) -> Option<u32>;
}

/// An unsigned value-range abstraction: the register's value is known to
/// lie in `[lo, hi]` (inclusive, `lo <= hi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u32,
    /// Largest possible value.
    pub hi: u32,
}

impl Interval {
    /// The full range (⊤).
    pub const TOP: Interval = Interval {
        lo: 0,
        hi: u32::MAX,
    };

    /// Constructs `[lo, hi]`; panics if `lo > hi`.
    pub fn new(lo: u32, hi: u32) -> Interval {
        assert!(lo <= hi, "malformed interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Number of bits needed to represent every value in the range.
    pub fn width(&self) -> u8 {
        (32 - self.hi.leading_zeros()).max(1) as u8
    }

    /// The signed view of the range, when it does not straddle the
    /// signed wrap point (`0x7FFF_FFFF` → `0x8000_0000`). A straddling
    /// range maps to a *pair* of signed intervals, which this domain
    /// cannot represent, so `None` is returned and callers must assume
    /// the full signed range.
    fn signed(&self) -> Option<(i32, i32)> {
        let crosses = self.lo < 0x8000_0000 && self.hi >= 0x8000_0000;
        if crosses {
            None
        } else {
            Some((self.lo as i32, self.hi as i32))
        }
    }
}

/// Smallest all-ones mask covering `x` (0 for 0): the tight power-of-two
/// style upper bound for bitwise-or/xor results.
fn ones_mask(x: u32) -> u32 {
    if x == 0 {
        0
    } else {
        u32::MAX >> x.leading_zeros()
    }
}

impl Domain for Interval {
    fn top() -> Self {
        Interval::TOP
    }

    fn constant(c: u32) -> Self {
        Interval { lo: c, hi: c }
    }

    fn join(&self, other: &Self) -> Self {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    fn widen(&self, other: &Self) -> Self {
        // Any bound still moving after WIDEN_AFTER visits jumps straight
        // to its extreme; stable bounds are kept.
        Interval {
            lo: if other.lo < self.lo { 0 } else { self.lo },
            hi: if other.hi > self.hi {
                u32::MAX
            } else {
                self.hi
            },
        }
    }

    #[allow(clippy::too_many_lines)]
    fn transfer(op: Opcode, args: &[Self]) -> Self {
        use Opcode::*;
        // Constant folding first: with every argument a singleton the
        // concrete evaluator is the exact (and trivially sound) answer.
        if let Some(consts) = args
            .iter()
            .map(Interval::as_constant)
            .collect::<Option<Vec<u32>>>()
        {
            return Interval::constant(eval(op, &consts));
        }
        let a = args[0];
        let b = *args.get(1).unwrap_or(&Interval::TOP);
        match op {
            Add => {
                let (lo, hi) = (a.lo as u64 + b.lo as u64, a.hi as u64 + b.hi as u64);
                if hi <= u32::MAX as u64 {
                    Interval::new(lo as u32, hi as u32)
                } else {
                    Interval::TOP // the sum may wrap for some inputs
                }
            }
            Sub => {
                if a.lo >= b.hi {
                    Interval::new(a.lo - b.hi, a.hi - b.lo)
                } else {
                    Interval::TOP
                }
            }
            Mul => {
                let hi = a.hi as u64 * b.hi as u64;
                if hi <= u32::MAX as u64 {
                    Interval::new((a.lo as u64 * b.lo as u64) as u32, hi as u32)
                } else {
                    Interval::TOP
                }
            }
            Div => match (a.signed(), b.signed()) {
                // Non-negative dividend, strictly positive divisor: the
                // quotient is monotone and stays non-negative.
                (Some((alo, ahi)), Some((blo, bhi))) if alo >= 0 && blo >= 1 => {
                    Interval::new((alo / bhi) as u32, (ahi / blo) as u32)
                }
                _ => Interval::TOP,
            },
            Rem => match (a.signed(), b.signed()) {
                (Some((alo, _)), Some((blo, bhi))) if alo >= 0 && blo >= 1 => {
                    Interval::new(0, (bhi - 1) as u32)
                }
                _ => Interval::TOP,
            },
            And => Interval::new(0, a.hi.min(b.hi)),
            Or => Interval::new(a.lo.max(b.lo), ones_mask(a.hi | b.hi)),
            Xor => Interval::new(0, ones_mask(a.hi | b.hi)),
            AndN => Interval::new(0, a.hi),
            Not => Interval::new(!a.hi, !a.lo),
            Shl => {
                // Shift amounts are masked to 5 bits at evaluation; only
                // an unmasked-range amount keeps the monotone argument.
                if b.hi <= 31 {
                    let hi = (a.hi as u64) << b.hi;
                    if hi <= u32::MAX as u64 {
                        return Interval::new(a.lo << b.lo, hi as u32);
                    }
                }
                Interval::TOP
            }
            Shr => {
                if b.hi <= 31 {
                    Interval::new(a.lo >> b.hi, a.hi >> b.lo)
                } else {
                    Interval::TOP
                }
            }
            Sar => {
                // For non-negative values the arithmetic shift equals
                // the logical one.
                if a.hi < 0x8000_0000 && b.hi <= 31 {
                    Interval::new(a.lo >> b.hi, a.hi >> b.lo)
                } else {
                    Interval::TOP
                }
            }
            Ror => Interval::TOP,
            Eq => match () {
                // Disjoint ranges can never be equal.
                _ if a.hi < b.lo || b.hi < a.lo => Interval::constant(0),
                _ => Interval::new(0, 1),
            },
            Ne => match () {
                _ if a.hi < b.lo || b.hi < a.lo => Interval::constant(1),
                _ => Interval::new(0, 1),
            },
            Ltu => compare(a.hi < b.lo, a.lo >= b.hi),
            Leu => compare(a.hi <= b.lo, a.lo > b.hi),
            Gtu => compare(a.lo > b.hi, a.hi <= b.lo),
            Geu => compare(a.lo >= b.hi, a.hi < b.lo),
            Lt => signed_compare(a, b, |x, y| x < y, |x, y| x >= y),
            Le => signed_compare(a, b, |x, y| x <= y, |x, y| x > y),
            Gt => signed_compare(a, b, |x, y| x > y, |x, y| x <= y),
            Ge => signed_compare(a, b, |x, y| x >= y, |x, y| x < y),
            Select => {
                let c = a;
                let (t, e) = (args[1], args[2]);
                if c.lo >= 1 {
                    t // condition provably non-zero
                } else if c.as_constant() == Some(0) {
                    e
                } else {
                    t.join(&e)
                }
            }
            Mov => a,
            SxtB => {
                if a.hi <= 0x7F {
                    a // byte value non-negative: extension is identity
                } else if a.lo >= 0x80 && a.hi <= 0xFF {
                    Interval::new(0xFFFF_FF00 | a.lo, 0xFFFF_FF00 | a.hi)
                } else {
                    Interval::TOP
                }
            }
            SxtH => {
                if a.hi <= 0x7FFF {
                    a
                } else if a.lo >= 0x8000 && a.hi <= 0xFFFF {
                    Interval::new(0xFFFF_0000 | a.lo, 0xFFFF_0000 | a.hi)
                } else {
                    Interval::TOP
                }
            }
            ZxtB => {
                if a.hi <= 0xFF {
                    a
                } else {
                    Interval::new(0, 0xFF)
                }
            }
            ZxtH => {
                if a.hi <= 0xFFFF {
                    a
                } else {
                    Interval::new(0, 0xFFFF)
                }
            }
            LdB | LdBu | LdH | LdHu | LdW | StB | StH | StW | Custom(_) => {
                unreachable!("memory/custom opcodes do not go through transfer")
            }
        }
    }

    fn load(op: Opcode) -> Self {
        match op {
            Opcode::LdBu => Interval::new(0, 0xFF),
            Opcode::LdHu => Interval::new(0, 0xFFFF),
            // Sign-extending loads produce two disconnected ranges; a
            // single interval cannot do better than ⊤.
            _ => Interval::TOP,
        }
    }

    fn contains(&self, v: u32) -> bool {
        self.lo <= v && v <= self.hi
    }

    fn as_constant(&self) -> Option<u32> {
        (self.lo == self.hi).then_some(self.lo)
    }
}

/// `[1, 1]` when provably true, `[0, 0]` when provably false, `[0, 1]`
/// otherwise.
fn compare(always: bool, never: bool) -> Interval {
    if always {
        Interval::constant(1)
    } else if never {
        Interval::constant(0)
    } else {
        Interval::new(0, 1)
    }
}

/// Signed comparison over intervals: decidable only when neither range
/// straddles the signed wrap point.
fn signed_compare(
    a: Interval,
    b: Interval,
    always: impl Fn(i64, i64) -> bool,
    never: impl Fn(i64, i64) -> bool,
) -> Interval {
    match (a.signed(), b.signed()) {
        (Some((alo, ahi)), Some((blo, bhi))) => compare(
            always(ahi as i64, blo as i64) && always(alo as i64, bhi as i64),
            never(alo as i64, bhi as i64) && never(ahi as i64, blo as i64),
        ),
        _ => Interval::new(0, 1),
    }
}

/// A tri-state per-bit abstraction: bit `i` is *known* when `known`
/// has bit `i` set, in which case its value is bit `i` of `value`.
/// Unknown bits are 0 in `value` (invariant: `value & !known == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnownBits {
    /// Mask of known bit positions.
    pub known: u32,
    /// Values of the known bits (0 elsewhere).
    pub value: u32,
}

impl KnownBits {
    /// All bits unknown (⊤).
    pub const TOP: KnownBits = KnownBits { known: 0, value: 0 };

    /// Number of leading (high-order) bits known to be zero.
    pub fn leading_known_zeros(&self) -> u32 {
        // A bit counts only while every bit above it is known-zero too.
        (!self.known | self.value).leading_zeros()
    }

    /// Effective width implied by the known-zero prefix.
    pub fn width(&self) -> u8 {
        (32 - self.leading_known_zeros()).max(1) as u8
    }

    fn normalized(known: u32, value: u32) -> KnownBits {
        KnownBits {
            known,
            value: value & known,
        }
    }
}

impl Domain for KnownBits {
    fn top() -> Self {
        KnownBits::TOP
    }

    fn constant(c: u32) -> Self {
        KnownBits {
            known: u32::MAX,
            value: c,
        }
    }

    fn join(&self, other: &Self) -> Self {
        let known = self.known & other.known & !(self.value ^ other.value);
        KnownBits::normalized(known, self.value)
    }

    fn widen(&self, other: &Self) -> Self {
        // The known mask only ever loses bits, so the lattice has height
        // 32 and plain join already terminates.
        self.join(other)
    }

    #[allow(clippy::too_many_lines)]
    fn transfer(op: Opcode, args: &[Self]) -> Self {
        use Opcode::*;
        if let Some(consts) = args
            .iter()
            .map(KnownBits::as_constant)
            .collect::<Option<Vec<u32>>>()
        {
            return KnownBits::constant(eval(op, &consts));
        }
        let a = args[0];
        let b = *args.get(1).unwrap_or(&KnownBits::TOP);
        match op {
            And => {
                // Known-zero on either side forces the result bit.
                let known = (a.known & b.known) | (a.known & !a.value) | (b.known & !b.value);
                KnownBits::normalized(known, a.value & b.value)
            }
            Or => {
                let known = (a.known & b.known) | (a.known & a.value) | (b.known & b.value);
                KnownBits::normalized(known, a.value | b.value)
            }
            Xor => KnownBits::normalized(a.known & b.known, a.value ^ b.value),
            AndN => {
                let nb = KnownBits::normalized(b.known, !b.value);
                Self::transfer(And, &[a, nb])
            }
            Not => KnownBits::normalized(a.known, !a.value),
            Add | Sub => {
                // The low n bits of a sum/difference depend only on the
                // low n bits of the operands; the first unknown bit (or
                // its carry) poisons everything above.
                let n = (a.known & b.known).trailing_ones();
                let mask = low_mask(n);
                let raw = if op == Add {
                    a.value.wrapping_add(b.value)
                } else {
                    a.value.wrapping_sub(b.value)
                };
                KnownBits::normalized(mask, raw)
            }
            Mul => {
                let n = (a.known & b.known).trailing_ones();
                let mask = low_mask(n);
                KnownBits::normalized(mask, a.value.wrapping_mul(b.value))
            }
            Div | Rem => KnownBits::TOP,
            Shl => match b.as_constant() {
                Some(s) => {
                    let s = s & 31;
                    KnownBits::normalized((a.known << s) | low_mask(s), a.value << s)
                }
                None => KnownBits::TOP,
            },
            Shr => match b.as_constant() {
                Some(s) => {
                    let s = s & 31;
                    let known_top = if s == 0 { 0 } else { !(u32::MAX >> s) };
                    KnownBits::normalized((a.known >> s) | known_top, a.value >> s)
                }
                None => KnownBits::TOP,
            },
            Sar => match b.as_constant() {
                Some(s) => {
                    let s = s & 31;
                    if a.known >> 31 == 1 {
                        // Sign bit known: the copies shifted in are known.
                        let known_top = if s == 0 { 0 } else { !(u32::MAX >> s) };
                        let value = ((a.value as i32) >> s) as u32;
                        KnownBits::normalized((a.known >> s) | known_top, value)
                    } else {
                        let keep = if s == 0 { u32::MAX } else { u32::MAX >> s };
                        KnownBits::normalized(a.known >> s & keep, a.value >> s)
                    }
                }
                None => KnownBits::TOP,
            },
            Ror => match b.as_constant() {
                Some(s) => {
                    let s = s & 31;
                    KnownBits::normalized(a.known.rotate_right(s), a.value.rotate_right(s))
                }
                None => KnownBits::TOP,
            },
            Eq | Ne => {
                // A known differing bit decides (in)equality outright.
                let differs = (a.value ^ b.value) & a.known & b.known != 0;
                if differs {
                    KnownBits::constant((op == Ne) as u32)
                } else {
                    bool_result()
                }
            }
            Lt | Le | Gt | Ge | Ltu | Leu | Gtu | Geu => bool_result(),
            Select => {
                let c = a;
                let (t, e) = (args[1], args[2]);
                if c.known & c.value != 0 {
                    t // some bit of the condition is known one
                } else if c.as_constant() == Some(0) {
                    e
                } else {
                    t.join(&e)
                }
            }
            Mov => a,
            SxtB => extend(a, 8, true),
            SxtH => extend(a, 16, true),
            ZxtB => extend(a, 8, false),
            ZxtH => extend(a, 16, false),
            LdB | LdBu | LdH | LdHu | LdW | StB | StH | StW | Custom(_) => {
                unreachable!("memory/custom opcodes do not go through transfer")
            }
        }
    }

    fn load(op: Opcode) -> Self {
        match op {
            Opcode::LdBu => KnownBits::normalized(0xFFFF_FF00, 0),
            Opcode::LdHu => KnownBits::normalized(0xFFFF_0000, 0),
            _ => KnownBits::TOP,
        }
    }

    fn contains(&self, v: u32) -> bool {
        v & self.known == self.value
    }

    fn as_constant(&self) -> Option<u32> {
        (self.known == u32::MAX).then_some(self.value)
    }
}

/// Mask of the `n` low bits (`n` saturating at 32).
fn low_mask(n: u32) -> u32 {
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// A compare result: bit 0 unknown, everything above known zero.
fn bool_result() -> KnownBits {
    KnownBits {
        known: !1,
        value: 0,
    }
}

/// Sub-word extension: the low `bits` come from the operand; above, the
/// result is either the (possibly known) sign bit or known zero.
fn extend(a: KnownBits, bits: u32, signed: bool) -> KnownBits {
    let lo = low_mask(bits);
    let sign = 1u32 << (bits - 1);
    if signed {
        if a.known & sign != 0 {
            let fill = if a.value & sign != 0 { !lo } else { 0 };
            KnownBits::normalized((a.known & lo) | !lo, (a.value & lo) | fill)
        } else {
            // Unknown sign: everything at and above the sign position is
            // unknown; bits below keep their knownness.
            KnownBits::normalized(a.known & lo & !sign, a.value & lo)
        }
    } else {
        KnownBits::normalized((a.known & lo) | !lo, a.value & lo)
    }
}

/// Counters describing one [`solve`] run. Deterministic: the solver
/// visits blocks in reverse postorder regardless of thread count or
/// hash-map iteration order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Reachable blocks the solver computed facts for.
    pub blocks_solved: u64,
    /// Block transfer evaluations across all fixpoint rounds.
    pub iterations: u64,
    /// Per-register widening applications.
    pub widenings: u64,
}

impl SolveStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &SolveStats) {
        self.blocks_solved += other.blocks_solved;
        self.iterations += other.iterations;
        self.widenings += other.widenings;
    }
}

/// The fixpoint of one analysis over one function.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution<D> {
    /// Per-block entry environment, indexed by block then by register
    /// number. `None` marks a block unreachable from the entry.
    pub entry: Vec<Option<Vec<D>>>,
    /// Solver work counters.
    pub stats: SolveStats,
}

impl<D: Domain> Solution<D> {
    /// The environment in force just *before* instruction `inst` of
    /// `block` (replaying the block from its entry state). `None` when
    /// the block is unreachable.
    pub fn env_before(&self, f: &Function, block: usize, inst: usize) -> Option<Vec<D>> {
        let mut env = self.entry[block].clone()?;
        for i in &f.blocks[block].insts[..inst] {
            transfer_inst(i, &mut env);
        }
        Some(env)
    }
}

/// Applies one instruction's abstract semantics to the environment.
pub fn transfer_inst<D: Domain>(inst: &Inst, env: &mut [D]) {
    let op = inst.opcode;
    if op.is_store() {
        return;
    }
    if op.is_custom() {
        for d in &inst.dsts {
            env[d.index()] = D::top();
        }
        return;
    }
    if op.is_load() {
        env[inst.dsts[0].index()] = D::load(op);
        return;
    }
    let args: Vec<D> = inst
        .srcs
        .iter()
        .map(|o| match o {
            Operand::Reg(r) => env[r.index()].clone(),
            Operand::Imm(v) => D::constant(*v as u32),
        })
        .collect();
    env[inst.dsts[0].index()] = D::transfer(op, &args);
}

/// Replays `block`'s instructions over `env` in place (the whole block).
pub fn replay_block<D: Domain>(f: &Function, block: usize, env: &mut [D]) {
    for inst in &f.blocks[block].insts {
        transfer_inst(inst, env);
    }
}

/// Runs the forward worklist solver for domain `D` over `f`'s CFG.
///
/// Deterministic by construction: blocks are processed in reverse
/// postorder until a fixpoint, predecessors are folded in index order,
/// and widening kicks in at any block whose entry state is still
/// changing after [`WIDEN_AFTER`] recomputations.
pub fn solve<D: Domain>(f: &Function) -> Solution<D> {
    let n = f.blocks.len();
    let nregs = f.vreg_count as usize;
    let rpo = reverse_postorder(f);
    let preds = predecessors_clamped(f);
    let mut stats = SolveStats::default();

    // Boundary: parameters unknown, everything else the interpreter's
    // zero fill.
    let mut boundary: Vec<D> = vec![D::constant(0); nregs];
    for p in &f.params {
        boundary[p.index()] = D::top();
    }

    let mut entry: Vec<Option<Vec<D>>> = vec![None; n];
    let mut exit: Vec<Option<Vec<D>>> = vec![None; n];
    let mut visits: Vec<u32> = vec![0; n];

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            // New entry state: the boundary for the entry block, joined
            // with every already-computed predecessor exit.
            let mut new_in: Option<Vec<D>> = (b == 0).then(|| boundary.clone());
            for &p in &preds[b] {
                let Some(out_p) = &exit[p] else { continue };
                new_in = Some(match new_in {
                    None => out_p.clone(),
                    Some(acc) => acc
                        .iter()
                        .zip(out_p.iter())
                        .map(|(x, y)| x.join(y))
                        .collect(),
                });
            }
            let Some(mut new_in) = new_in else { continue };
            if let Some(old) = &entry[b] {
                if *old == new_in {
                    continue;
                }
                visits[b] += 1;
                if visits[b] > WIDEN_AFTER {
                    new_in = old
                        .iter()
                        .zip(new_in.iter())
                        .map(|(o, nv)| {
                            let w = o.widen(nv);
                            if w != *nv {
                                stats.widenings += 1;
                            }
                            w
                        })
                        .collect();
                    if *old == new_in {
                        continue;
                    }
                }
            }
            stats.iterations += 1;
            let mut out = new_in.clone();
            replay_block(f, b, &mut out);
            entry[b] = Some(new_in);
            exit[b] = Some(out);
            changed = true;
        }
    }
    stats.blocks_solved = entry.iter().filter(|e| e.is_some()).count() as u64;
    Solution { entry, stats }
}

/// Both concrete analyses over one function, solved to fixpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Facts {
    /// Value-range fixpoint.
    pub intervals: Solution<Interval>,
    /// Known-bits fixpoint.
    pub bits: Solution<KnownBits>,
}

impl Facts {
    /// Combined solver counters of both analyses.
    pub fn stats(&self) -> SolveStats {
        let mut s = self.intervals.stats;
        s.merge(&self.bits.stats);
        s
    }
}

/// Solves the interval and known-bits analyses for `f`.
pub fn analyze_function(f: &Function) -> Facts {
    Facts {
        intervals: solve::<Interval>(f),
        bits: solve::<KnownBits>(f),
    }
}

/// Effective width of a value described by both abstractions: the
/// tighter of the interval's magnitude bound and the known-bits
/// leading-zero run (never less than 1).
pub fn value_width(iv: &Interval, kb: &KnownBits) -> u8 {
    iv.width().min(kb.width())
}

/// Per-instruction effective operand widths for width-aware costing:
/// `widths[block][inst]` is the number of datapath bits instruction
/// `inst` of `block` actually exercises — the maximum of its source
/// operand widths and its result width. Instructions in unreachable
/// blocks (no facts) and custom operations get the full 32 bits.
pub fn effective_widths(f: &Function) -> Vec<Vec<u8>> {
    let facts = analyze_function(f);
    effective_widths_from(f, &facts)
}

/// [`effective_widths`] from an already-solved [`Facts`].
pub fn effective_widths_from(f: &Function, facts: &Facts) -> Vec<Vec<u8>> {
    f.blocks
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            let (Some(iv0), Some(kb0)) = (
                facts.intervals.entry[bi].as_ref(),
                facts.bits.entry[bi].as_ref(),
            ) else {
                return vec![32u8; b.insts.len()];
            };
            let mut iv = iv0.clone();
            let mut kb = kb0.clone();
            b.insts
                .iter()
                .map(|inst| {
                    let mut w: u8 = 1;
                    if !inst.opcode.is_custom() {
                        for o in &inst.srcs {
                            w = w.max(match o {
                                Operand::Reg(r) => value_width(&iv[r.index()], &kb[r.index()]),
                                Operand::Imm(v) => {
                                    let c = *v as u32;
                                    value_width(&Interval::constant(c), &KnownBits::constant(c))
                                }
                            });
                        }
                    } else {
                        w = 32;
                    }
                    transfer_inst(inst, &mut iv);
                    transfer_inst(inst, &mut kb);
                    for d in &inst.dsts {
                        w = w.max(value_width(&iv[d.index()], &kb[d.index()]));
                    }
                    w
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn straight(fb: FunctionBuilder) -> Function {
        fb.finish()
    }

    #[test]
    fn interval_constant_folding_and_masking() {
        let mut fb = FunctionBuilder::new("f", 1);
        let x = fb.param(0);
        let m = fb.and(x, 0xFFi64); // [0, 255]
        let y = fb.add(m, 10i64); // [10, 265]
        fb.ret(&[y.into()]);
        let f = straight(fb);
        let sol = solve::<Interval>(&f);
        let mut env = sol.entry[0].clone().unwrap();
        replay_block(&f, 0, &mut env);
        assert_eq!(env[m.index()], Interval::new(0, 0xFF));
        assert_eq!(env[y.index()], Interval::new(10, 0x109));
    }

    #[test]
    fn known_bits_track_masks_and_shifts() {
        let mut fb = FunctionBuilder::new("f", 1);
        let x = fb.param(0);
        let m = fb.and(x, 0xF0i64);
        let s = fb.shr(m, 4i64);
        fb.ret(&[s.into()]);
        let f = straight(fb);
        let sol = solve::<KnownBits>(&f);
        let mut env = sol.entry[0].clone().unwrap();
        replay_block(&f, 0, &mut env);
        // After `and #0xF0` every bit but 4..8 is known zero.
        assert_eq!(env[m.index()].known, !0xF0u32);
        assert_eq!(env[m.index()].value, 0);
        // After the shift the unknown nibble sits at bits 0..4.
        assert_eq!(env[s.index()].known, !0x0Fu32);
    }

    #[test]
    fn loop_counter_widens_and_terminates() {
        // for (i = 0; i != n; i++) — i's range must widen, not diverge.
        let mut fb = FunctionBuilder::new("loop", 1);
        let n = fb.param(0);
        let body = fb.new_block(100);
        let exit = fb.new_block(1);
        let i = fb.mov(0i64);
        fb.jump(body);
        fb.switch_to(body);
        let i2 = fb.add(i, 1i64);
        fb.copy_to(i, i2);
        let c = fb.ne(i, n);
        fb.branch(c, body, exit);
        fb.switch_to(exit);
        fb.ret(&[i.into()]);
        let f = fb.finish();
        let sol = solve::<Interval>(&f);
        assert!(sol.stats.widenings > 0, "loop must trigger widening");
        // The exit block still has sound facts.
        let env = sol.entry[2].as_ref().unwrap();
        assert!(env[i.index()].contains(1));
        assert!(env[i.index()].contains(100));
    }

    #[test]
    fn unreachable_blocks_have_no_facts() {
        let mut fb = FunctionBuilder::new("u", 1);
        let x = fb.param(0);
        let dead = fb.new_block(1);
        let live = fb.new_block(1);
        fb.jump(live);
        fb.switch_to(dead);
        fb.ret(&[]);
        fb.switch_to(live);
        fb.ret(&[x.into()]);
        let f = fb.finish();
        let sol = solve::<Interval>(&f);
        assert!(sol.entry[dead.index()].is_none());
        assert!(sol.entry[live.index()].is_some());
        assert_eq!(sol.stats.blocks_solved, 2);
    }

    #[test]
    fn diamond_join_unions_ranges() {
        let mut fb = FunctionBuilder::new("d", 1);
        let p = fb.param(0);
        let then_b = fb.new_block(1);
        let else_b = fb.new_block(1);
        let join = fb.new_block(1);
        let c = fb.ne(p, 0i64);
        let x = fb.mov(5i64);
        fb.branch(c, then_b, else_b);
        fb.switch_to(then_b);
        let t = fb.mov(10i64);
        fb.copy_to(x, t);
        fb.jump(join);
        fb.switch_to(else_b);
        fb.jump(join);
        fb.switch_to(join);
        fb.ret(&[x.into()]);
        let f = fb.finish();
        let sol = solve::<Interval>(&f);
        let env = sol.entry[join.index()].as_ref().unwrap();
        assert_eq!(env[x.index()], Interval::new(5, 10));
    }

    #[test]
    fn compare_results_are_one_bit() {
        let mut fb = FunctionBuilder::new("c", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let c = fb.ltu(a, b);
        fb.ret(&[c.into()]);
        let f = straight(fb);
        let facts = analyze_function(&f);
        let widths = effective_widths_from(&f, &facts);
        // The comparator itself chews on 32-bit inputs...
        assert_eq!(widths[0][0], 32);
        let mut env = facts.intervals.entry[0].clone().unwrap();
        replay_block(&f, 0, &mut env);
        // ...but its result is provably 0/1.
        assert_eq!(env[c.index()], Interval::new(0, 1));
    }

    #[test]
    fn effective_widths_shrink_for_byte_math() {
        let mut fb = FunctionBuilder::new("w", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let x = fb.zxtb(a);
        let y = fb.zxtb(b);
        let s = fb.add(x, y); // ≤ 510: 9 bits
        fb.ret(&[s.into()]);
        let f = straight(fb);
        let widths = effective_widths(&f);
        assert_eq!(widths[0][2], 9, "byte add needs 9 bits, not 32");
    }

    #[test]
    fn select_on_provable_condition_is_precise() {
        let mut fb = FunctionBuilder::new("s", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let one = fb.mov(1i64);
        let s = fb.select(one, a, b);
        fb.ret(&[s.into()]);
        let f = straight(fb);
        let sol = solve::<Interval>(&f);
        let mut env = sol.entry[0].clone().unwrap();
        // After the select, the result is exactly `a` (⊤ here), but the
        // transfer must not have joined in `b` — check via a constant.
        let mut fb2 = FunctionBuilder::new("s2", 0);
        let k1 = fb2.mov(7i64);
        let k2 = fb2.mov(9i64);
        let c = fb2.mov(1i64);
        let r = fb2.select(c, k1, k2);
        fb2.ret(&[r.into()]);
        let f2 = fb2.finish();
        let sol2 = solve::<Interval>(&f2);
        let mut env2 = sol2.entry[0].clone().unwrap();
        replay_block(&f2, 0, &mut env2);
        assert_eq!(env2[r.index()].as_constant(), Some(7));
        replay_block(&f, 0, &mut env);
        let _ = s;
    }

    #[test]
    fn env_before_matches_replay_prefix() {
        let mut fb = FunctionBuilder::new("p", 1);
        let x = fb.param(0);
        let a = fb.and(x, 0x3i64);
        let b = fb.add(a, 1i64);
        fb.ret(&[b.into()]);
        let f = straight(fb);
        let sol = solve::<Interval>(&f);
        let env = sol.env_before(&f, 0, 1).unwrap();
        assert_eq!(env[a.index()], Interval::new(0, 3));
    }
}
