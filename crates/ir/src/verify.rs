//! Structural validation of IR programs.
//!
//! The verifier catches malformed IR early — chiefly hand-authoring
//! mistakes in workload kernels and compiler-pass bugs (a replacement pass
//! that drops a definition, a terminator pointing at a removed block).

use crate::block::Terminator;
use crate::inst::VReg;
use crate::program::Program;
use crate::Function;
use std::collections::BTreeSet;

/// A single verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function the error occurred in.
    pub function: String,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "in {}: {}", self.function, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a function. Checks:
///
/// * operand/destination counts match each opcode's shape,
/// * terminator targets are in range,
/// * every used register has *some* definition (a parameter or a
///   definition in any block — the IR is not SSA, so flow-sensitive
///   undefined-use detection is done only for the entry block),
/// * virtual register numbers stay below `vreg_count`.
///
/// # Errors
///
/// Returns all problems found (empty `Ok` means the function is
/// well-formed).
pub fn verify_function(f: &Function) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    fn push_err(errors: &mut Vec<VerifyError>, fname: &str, msg: String) {
        errors.push(VerifyError {
            function: fname.to_string(),
            message: msg,
        });
    }
    macro_rules! err {
        ($($t:tt)*) => { push_err(&mut errors, &f.name, format!($($t)*)) };
    }

    let mut defined: BTreeSet<VReg> = f.params.iter().copied().collect();
    for b in &f.blocks {
        defined.extend(b.defs());
    }

    for (bi, b) in f.blocks.iter().enumerate() {
        // Flow-sensitive check in the entry block only (conservative but
        // catches the common authoring mistake).
        let mut seen: BTreeSet<VReg> = f.params.iter().copied().collect();
        for (ii, inst) in b.insts.iter().enumerate() {
            if !inst.opcode.is_custom() {
                if inst.srcs.len() != inst.opcode.arity() {
                    err!("b{bi}:{ii} {}: wrong operand count", inst.opcode);
                }
                if inst.dsts.len() != inst.opcode.result_count() {
                    err!("b{bi}:{ii} {}: wrong result count", inst.opcode);
                }
            }
            for (_, r) in inst.reg_srcs() {
                if r.0 >= f.vreg_count {
                    err!("b{bi}:{ii}: register {r} out of range");
                }
                if !defined.contains(&r) {
                    err!("b{bi}:{ii}: use of undefined register {r}");
                }
                if bi == 0 && !seen.contains(&r) && !defined_in_later_block(f, r) {
                    err!("b{bi}:{ii}: use of {r} before its definition");
                }
            }
            for &d in &inst.dsts {
                if d.0 >= f.vreg_count {
                    err!("b{bi}:{ii}: destination {d} out of range");
                }
                seen.insert(d);
            }
        }
        let check_target = |t: crate::BlockId, errors: &mut Vec<VerifyError>| {
            if t.index() >= f.blocks.len() {
                errors.push(VerifyError {
                    function: f.name.clone(),
                    message: format!("b{bi}: terminator targets unknown block {t}"),
                });
            }
        };
        match &b.term {
            Terminator::Jump(t) => check_target(*t, &mut errors),
            Terminator::Branch {
                cond,
                taken,
                not_taken,
            } => {
                check_target(*taken, &mut errors);
                check_target(*not_taken, &mut errors);
                if !defined.contains(cond) {
                    err!("b{bi}: branch on undefined register {cond}");
                }
            }
            Terminator::Ret(vals) => {
                for v in vals {
                    if let Some(r) = v.reg() {
                        if !defined.contains(&r) {
                            err!("b{bi}: return of undefined register {r}");
                        }
                    }
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn defined_in_later_block(f: &Function, r: VReg) -> bool {
    f.blocks.iter().skip(1).any(|b| b.defs().any(|d| d == r))
}

/// Verifies every function of a program, and that every custom opcode used
/// has registered semantics.
///
/// # Errors
///
/// Returns the concatenated error list from all functions.
pub fn verify_program(p: &Program) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    for f in &p.functions {
        if let Err(mut e) = verify_function(f) {
            errors.append(&mut e);
        }
        for (bi, b) in f.blocks.iter().enumerate() {
            for (ii, inst) in b.insts.iter().enumerate() {
                if let crate::Opcode::Custom(id) = inst.opcode {
                    if !p.cfu_semantics.contains_key(&id) {
                        errors.push(VerifyError {
                            function: f.name.clone(),
                            message: format!("b{bi}:{ii}: cfu{id} has no registered semantics"),
                        });
                    }
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Inst;
    use crate::opcode::Opcode;

    #[test]
    fn valid_function_passes() {
        let mut fb = FunctionBuilder::new("ok", 2);
        let a = fb.param(0);
        let b = fb.param(1);
        let c = fb.add(a, b);
        fb.ret(&[c.into()]);
        assert!(verify_function(&fb.finish()).is_ok());
    }

    #[test]
    fn undefined_use_detected() {
        let mut fb = FunctionBuilder::new("bad", 1);
        let a = fb.param(0);
        let ghost = VReg(99);
        fb.push(Inst::new(
            Opcode::Add,
            vec![VReg(50)],
            vec![a.into(), ghost.into()],
        ));
        fb.ret(&[]);
        let mut f = fb.finish();
        f.vreg_count = 100;
        let errs = verify_function(&f).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("undefined register v99")));
    }

    #[test]
    fn out_of_range_register_detected() {
        let mut fb = FunctionBuilder::new("bad", 1);
        let a = fb.param(0);
        fb.push(Inst::new(Opcode::Mov, vec![VReg(1000)], vec![a.into()]));
        fb.ret(&[]);
        let f = fb.finish();
        let errs = verify_function(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("out of range")));
    }

    #[test]
    fn bad_branch_target_detected() {
        let mut fb = FunctionBuilder::new("bad", 1);
        let a = fb.param(0);
        let c = fb.ne(a, 0i64);
        fb.branch(c, crate::BlockId(7), crate::BlockId(0));
        let f = fb.finish();
        let errs = verify_function(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unknown block b7")));
    }

    #[test]
    fn custom_without_semantics_detected() {
        let mut fb = FunctionBuilder::new("f", 1);
        let a = fb.param(0);
        fb.push(Inst::new(Opcode::Custom(3), vec![VReg(1)], vec![a.into()]));
        fb.ret(&[]);
        let mut f = fb.finish();
        f.vreg_count = 2;
        let p = Program::new(vec![f]);
        let errs = verify_program(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("cfu3 has no registered semantics")));
    }

    #[test]
    fn use_before_def_in_entry_detected() {
        let mut fb = FunctionBuilder::new("bad", 0);
        let r = fb.fresh();
        let _x = fb.add(r, 1i64); // r defined only *after* this use
        let r2 = fb.mov(5i64);
        fb.copy_to(r, r2);
        fb.ret(&[]);
        let f = fb.finish();
        let errs = verify_function(&f).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("before its definition")));
    }
}
