//! Structural validation of IR programs.
//!
//! The verifier catches malformed IR early — chiefly hand-authoring
//! mistakes in workload kernels and compiler-pass bugs (a replacement pass
//! that drops a definition, a terminator pointing at a removed block).
//! Errors are structured: each carries a stable diagnostic code (the
//! `IC01xx` range of the `isax-check` taxonomy) and a precise location, so
//! every layer of the pipeline can report uniformly.
//!
//! Definite-assignment checking is flow-sensitive over the whole CFG (via
//! [`crate::dom::definite_assignment`]): a use is accepted only when every
//! path from the entry assigns the register first. Parameters count as
//! assigned; a register defined on both arms of a diamond and used after
//! the join is fine, one defined on a single arm is not.

use crate::block::Terminator;
use crate::dom::definite_assignment;
use crate::inst::VReg;
use crate::program::Program;
use crate::Function;
use std::collections::BTreeSet;

/// What kind of malformation a [`VerifyError`] reports. Each variant maps
/// to a stable `IC01xx` diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VerifyCode {
    /// Operand count does not match the opcode's arity.
    OperandCount,
    /// Destination count does not match the opcode's result shape.
    ResultCount,
    /// A register number is at or above `vreg_count`.
    RegOutOfRange,
    /// A used register has no definition anywhere in the function.
    UndefinedUse,
    /// A used register is not definitely assigned on every path reaching
    /// the use (flow-sensitive; parameters count as assigned).
    UseBeforeDef,
    /// A terminator targets a block index that does not exist.
    BadTarget,
    /// A branch condition or returned register has no definition.
    UndefinedControlUse,
    /// A custom opcode has no registered semantics in the program.
    MissingSemantics,
    /// An immediate lies outside the representable 32-bit window
    /// (`i32::MIN ..= u32::MAX`), so evaluation would silently wrap it.
    ImmOutOfRange,
}

impl VerifyCode {
    /// The stable diagnostic code (`IC01xx`) for this error kind.
    pub const fn code(self) -> &'static str {
        match self {
            VerifyCode::OperandCount => "IC0101",
            VerifyCode::ResultCount => "IC0102",
            VerifyCode::RegOutOfRange => "IC0103",
            VerifyCode::UndefinedUse => "IC0104",
            VerifyCode::UseBeforeDef => "IC0105",
            VerifyCode::BadTarget => "IC0106",
            VerifyCode::UndefinedControlUse => "IC0107",
            VerifyCode::MissingSemantics => "IC0108",
            VerifyCode::ImmOutOfRange => "IC0109",
        }
    }
}

/// A single verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function the error occurred in.
    pub function: String,
    /// Which invariant was violated (maps to a stable `IC01xx` code).
    pub code: VerifyCode,
    /// Block the error occurred in, when attributable to one.
    pub block: Option<usize>,
    /// Instruction index within the block, when attributable to one
    /// (`None` for terminator errors).
    pub inst: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] in {}: ", self.code.code(), self.function)?;
        match (self.block, self.inst) {
            (Some(b), Some(i)) => write!(f, "b{b}:{i}: ")?,
            (Some(b), None) => write!(f, "b{b}: ")?,
            _ => {}
        }
        f.write_str(&self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a function. Checks:
///
/// * operand/destination counts match each opcode's shape,
/// * terminator targets are in range,
/// * every used register has *some* definition (a parameter or a
///   definition in any block),
/// * every use is **definitely assigned**: on every CFG path from the
///   entry to the use, the register was written first (flow-sensitive,
///   whole-CFG, via the dominance/definite-assignment analysis in
///   [`crate::dom`]; unreachable blocks are exempt),
/// * virtual register numbers stay below `vreg_count`.
///
/// # Errors
///
/// Returns all problems found (empty `Ok` means the function is
/// well-formed).
pub fn verify_function(f: &Function) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    let mut push = |code: VerifyCode, block: Option<usize>, inst: Option<usize>, msg: String| {
        errors.push(VerifyError {
            function: f.name.clone(),
            code,
            block,
            inst,
            message: msg,
        });
    };

    let mut defined: BTreeSet<VReg> = f.params.iter().copied().collect();
    for b in &f.blocks {
        defined.extend(b.defs());
    }
    let da = definite_assignment(f);

    for (bi, b) in f.blocks.iter().enumerate() {
        // Registers definitely assigned at the current point of the block.
        // Unreachable blocks get no flow-sensitive claim: seed them with
        // every definition so only the defined-anywhere checks fire.
        let mut assigned: BTreeSet<VReg> = match da.at_entry.get(bi).and_then(Option::as_ref) {
            Some(s) => s.clone(),
            None => defined.clone(),
        };
        for (ii, inst) in b.insts.iter().enumerate() {
            if !inst.opcode.is_custom() {
                if inst.srcs.len() != inst.opcode.arity() {
                    push(
                        VerifyCode::OperandCount,
                        Some(bi),
                        Some(ii),
                        format!("{}: wrong operand count", inst.opcode),
                    );
                }
                if inst.dsts.len() != inst.opcode.result_count() {
                    push(
                        VerifyCode::ResultCount,
                        Some(bi),
                        Some(ii),
                        format!("{}: wrong result count", inst.opcode),
                    );
                }
            }
            for (_, r) in inst.reg_srcs() {
                if r.0 >= f.vreg_count {
                    push(
                        VerifyCode::RegOutOfRange,
                        Some(bi),
                        Some(ii),
                        format!("register {r} out of range"),
                    );
                }
                if !defined.contains(&r) {
                    push(
                        VerifyCode::UndefinedUse,
                        Some(bi),
                        Some(ii),
                        format!("use of undefined register {r}"),
                    );
                } else if !assigned.contains(&r) {
                    push(
                        VerifyCode::UseBeforeDef,
                        Some(bi),
                        Some(ii),
                        format!("use of {r} before its definition on some path"),
                    );
                }
            }
            for (_, v) in inst.imm_srcs() {
                if !crate::Operand::imm_in_range(v) {
                    push(
                        VerifyCode::ImmOutOfRange,
                        Some(bi),
                        Some(ii),
                        format!("immediate #{v} outside the 32-bit range"),
                    );
                }
            }
            for &d in &inst.dsts {
                if d.0 >= f.vreg_count {
                    push(
                        VerifyCode::RegOutOfRange,
                        Some(bi),
                        Some(ii),
                        format!("destination {d} out of range"),
                    );
                }
                assigned.insert(d);
            }
        }
        let mut check_target = |t: crate::BlockId| {
            if t.index() >= f.blocks.len() {
                push(
                    VerifyCode::BadTarget,
                    Some(bi),
                    None,
                    format!("terminator targets unknown block {t}"),
                );
            }
        };
        match &b.term {
            Terminator::Jump(t) => check_target(*t),
            Terminator::Branch {
                cond,
                taken,
                not_taken,
            } => {
                check_target(*taken);
                check_target(*not_taken);
                if !defined.contains(cond) {
                    push(
                        VerifyCode::UndefinedControlUse,
                        Some(bi),
                        None,
                        format!("branch on undefined register {cond}"),
                    );
                } else if !assigned.contains(cond) {
                    push(
                        VerifyCode::UseBeforeDef,
                        Some(bi),
                        None,
                        format!("branch on {cond} before its definition on some path"),
                    );
                }
            }
            Terminator::Ret(vals) => {
                for v in vals {
                    if let Some(i) = v.imm() {
                        if !crate::Operand::imm_in_range(i) {
                            push(
                                VerifyCode::ImmOutOfRange,
                                Some(bi),
                                None,
                                format!("returned immediate #{i} outside the 32-bit range"),
                            );
                        }
                    }
                    if let Some(r) = v.reg() {
                        if !defined.contains(&r) {
                            push(
                                VerifyCode::UndefinedControlUse,
                                Some(bi),
                                None,
                                format!("return of undefined register {r}"),
                            );
                        } else if !assigned.contains(&r) {
                            push(
                                VerifyCode::UseBeforeDef,
                                Some(bi),
                                None,
                                format!("return of {r} before its definition on some path"),
                            );
                        }
                    }
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Verifies every function of a program, and that every custom opcode used
/// has registered semantics.
///
/// # Errors
///
/// Returns the concatenated error list from all functions.
pub fn verify_program(p: &Program) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    for f in &p.functions {
        if let Err(mut e) = verify_function(f) {
            errors.append(&mut e);
        }
        for (bi, b) in f.blocks.iter().enumerate() {
            for (ii, inst) in b.insts.iter().enumerate() {
                if let crate::Opcode::Custom(id) = inst.opcode {
                    if !p.cfu_semantics.contains_key(&id) {
                        errors.push(VerifyError {
                            function: f.name.clone(),
                            code: VerifyCode::MissingSemantics,
                            block: Some(bi),
                            inst: Some(ii),
                            message: format!("cfu{id} has no registered semantics"),
                        });
                    }
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{Inst, Operand};
    use crate::opcode::Opcode;

    #[test]
    fn valid_function_passes() {
        let mut fb = FunctionBuilder::new("ok", 2);
        let a = fb.param(0);
        let b = fb.param(1);
        let c = fb.add(a, b);
        fb.ret(&[c.into()]);
        assert!(verify_function(&fb.finish()).is_ok());
    }

    #[test]
    fn undefined_use_detected() {
        let mut fb = FunctionBuilder::new("bad", 1);
        let a = fb.param(0);
        let ghost = VReg(99);
        fb.push(Inst::new(
            Opcode::Add,
            vec![VReg(50)],
            vec![a.into(), ghost.into()],
        ));
        fb.ret(&[]);
        let mut f = fb.finish();
        f.vreg_count = 100;
        let errs = verify_function(&f).unwrap_err();
        let e = errs
            .iter()
            .find(|e| e.message.contains("undefined register v99"))
            .expect("undefined use reported");
        assert_eq!(e.code, VerifyCode::UndefinedUse);
        assert_eq!(e.code.code(), "IC0104");
        assert_eq!((e.block, e.inst), (Some(0), Some(0)));
    }

    #[test]
    fn out_of_range_register_detected() {
        let mut fb = FunctionBuilder::new("bad", 1);
        let a = fb.param(0);
        fb.push(Inst::new(Opcode::Mov, vec![VReg(1000)], vec![a.into()]));
        fb.ret(&[]);
        let f = fb.finish();
        let errs = verify_function(&f).unwrap_err();
        let e = errs
            .iter()
            .find(|e| e.message.contains("out of range"))
            .expect("range error reported");
        assert_eq!(e.code, VerifyCode::RegOutOfRange);
    }

    #[test]
    fn bad_branch_target_detected() {
        let mut fb = FunctionBuilder::new("bad", 1);
        let a = fb.param(0);
        let c = fb.ne(a, 0i64);
        fb.branch(c, crate::BlockId(7), crate::BlockId(0));
        let f = fb.finish();
        let errs = verify_function(&f).unwrap_err();
        let e = errs
            .iter()
            .find(|e| e.message.contains("unknown block b7"))
            .expect("target error reported");
        assert_eq!(e.code, VerifyCode::BadTarget);
        assert_eq!(e.block, Some(0));
        assert_eq!(e.inst, None);
    }

    #[test]
    fn custom_without_semantics_detected() {
        let mut fb = FunctionBuilder::new("f", 1);
        let a = fb.param(0);
        fb.push(Inst::new(Opcode::Custom(3), vec![VReg(1)], vec![a.into()]));
        fb.ret(&[]);
        let mut f = fb.finish();
        f.vreg_count = 2;
        let p = Program::new(vec![f]);
        let errs = verify_program(&p).unwrap_err();
        let e = errs
            .iter()
            .find(|e| e.message.contains("cfu3 has no registered semantics"))
            .expect("semantics error reported");
        assert_eq!(e.code, VerifyCode::MissingSemantics);
    }

    #[test]
    fn out_of_range_immediate_detected() {
        let mut fb = FunctionBuilder::new("imm", 1);
        let a = fb.param(0);
        fb.push(Inst::new(
            Opcode::Add,
            vec![VReg(1)],
            vec![a.into(), Operand::Imm(1_i64 << 33)],
        ));
        fb.ret(&[VReg(1).into()]);
        let f = fb.finish();
        let errs = verify_function(&f).unwrap_err();
        let e = errs
            .iter()
            .find(|e| e.code == VerifyCode::ImmOutOfRange)
            .expect("out-of-range immediate reported");
        assert_eq!(e.code.code(), "IC0109");
        assert_eq!((e.block, e.inst), (Some(0), Some(0)));

        // Both 32-bit spellings stay legal: u32::MAX and i32::MIN.
        let mut fb = FunctionBuilder::new("ok", 1);
        let a = fb.param(0);
        let x = fb.and(a, 0xFFFF_FFFFu32);
        let y = fb.add(x, i32::MIN);
        fb.ret(&[y.into()]);
        assert!(verify_function(&fb.finish()).is_ok());
    }

    #[test]
    fn out_of_range_return_immediate_detected() {
        let mut fb = FunctionBuilder::new("reti", 0);
        fb.ret(&[Operand::Imm(-(1_i64 << 40))]);
        let errs = verify_function(&fb.finish()).unwrap_err();
        assert_eq!(errs[0].code, VerifyCode::ImmOutOfRange);
        assert_eq!(errs[0].inst, None);
    }

    #[test]
    fn use_before_def_in_entry_detected() {
        let mut fb = FunctionBuilder::new("bad", 0);
        let r = fb.fresh();
        let _x = fb.add(r, 1i64); // r defined only *after* this use
        let r2 = fb.mov(5i64);
        fb.copy_to(r, r2);
        fb.ret(&[]);
        let f = fb.finish();
        let errs = verify_function(&f).unwrap_err();
        let e = errs
            .iter()
            .find(|e| e.message.contains("before its definition"))
            .expect("use-before-def reported");
        assert_eq!(e.code, VerifyCode::UseBeforeDef);
    }

    #[test]
    fn one_path_only_definition_detected() {
        // entry branches to then/else; only the then arm defines x; the
        // join uses it. The old entry-block-only check missed this.
        let mut fb = FunctionBuilder::new("onepath", 1);
        let p = fb.param(0);
        let then_b = fb.new_block(1);
        let else_b = fb.new_block(1);
        let join = fb.new_block(1);
        let c = fb.ne(p, 0i64);
        fb.branch(c, then_b, else_b);
        fb.switch_to(then_b);
        let x = fb.add(p, 1i64);
        fb.jump(join);
        fb.switch_to(else_b);
        fb.jump(join);
        fb.switch_to(join);
        let y = fb.add(x, 2i64); // x not assigned on the else path
        fb.ret(&[y.into()]);
        let f = fb.finish();
        let errs = verify_function(&f).unwrap_err();
        let e = errs
            .iter()
            .find(|e| e.code == VerifyCode::UseBeforeDef)
            .expect("one-path definition must be flagged");
        assert_eq!(e.block, Some(3));
        assert!(e.message.contains("before its definition"));
    }

    #[test]
    fn both_path_definitions_are_accepted() {
        // The same diamond, but both arms define x: the must-analysis
        // accepts the use after the join (a pure dominance lookup would
        // falsely reject it).
        let mut fb = FunctionBuilder::new("diamond", 1);
        let p = fb.param(0);
        let then_b = fb.new_block(1);
        let else_b = fb.new_block(1);
        let join = fb.new_block(1);
        let c = fb.ne(p, 0i64);
        fb.branch(c, then_b, else_b);
        fb.switch_to(then_b);
        let x = fb.add(p, 1i64);
        fb.jump(join);
        fb.switch_to(else_b);
        let t = fb.add(p, 2i64);
        fb.copy_to(x, t);
        fb.jump(join);
        fb.switch_to(join);
        let y = fb.add(x, 2i64);
        fb.ret(&[y.into()]);
        assert!(verify_function(&fb.finish()).is_ok());
    }

    #[test]
    fn loop_carried_redefinition_is_accepted() {
        // Non-SSA loop: acc is initialized before the loop and redefined
        // inside it; the body's use must not be flagged.
        let mut fb = FunctionBuilder::new("loop", 2);
        let x = fb.param(0);
        let n = fb.param(1);
        let body = fb.new_block(100);
        let exit = fb.new_block(1);
        let acc0 = fb.mov(0i64);
        fb.jump(body);
        fb.switch_to(body);
        let acc = fb.add(acc0, x);
        fb.copy_to(acc0, acc);
        let n2 = fb.sub(n, 1i64);
        fb.copy_to(n, n2);
        let c = fb.ne(n, 0i64);
        fb.branch(c, body, exit);
        fb.switch_to(exit);
        fb.ret(&[acc0.into()]);
        assert!(verify_function(&fb.finish()).is_ok());
    }

    #[test]
    fn display_includes_code_and_location() {
        let mut fb = FunctionBuilder::new("bad", 1);
        let a = fb.param(0);
        let c = fb.ne(a, 0i64);
        fb.branch(c, crate::BlockId(9), crate::BlockId(0));
        let errs = verify_function(&fb.finish()).unwrap_err();
        let s = errs[0].to_string();
        assert!(s.contains("IC0106"), "{s}");
        assert!(s.contains("in bad"), "{s}");
        assert!(s.contains("b0"), "{s}");
    }
}
