//! Per-block dataflow graphs with dependence analysis.
//!
//! The customization pipeline is organized around the dataflow graph of
//! each basic block: the explorer grows candidate subgraphs over its data
//! edges, the guide function consults its slack analysis, the compiler
//! matches CFU patterns against it, and the scheduler honours both its data
//! and its ordering (memory) edges.
//!
//! Nodes are instruction indices within the block. Edges come in two
//! flavours:
//!
//! * **data** edges carry a value from a producer to a consumer's operand
//!   port — these define candidate subgraphs;
//! * **ordering** edges serialize memory operations conservatively
//!   (store→load, store→store, load→store) — these constrain scheduling and
//!   replacement but never join a custom function unit.

use crate::block::BasicBlock;
use crate::inst::{Inst, VReg};
use isax_graph::{BitSet, DiGraph};
use std::collections::{BTreeMap, BTreeSet};

/// Structural label of a DFG node used for pattern matching: the opcode
/// plus any hardwired immediates.
///
/// Two nodes are match-compatible when their opcodes agree (or their
/// classes agree, in wildcard mode) and their immediate operands agree —
/// constants are baked into the function unit's wiring, so `x << 2` only
/// matches hardware built for a shift of 2 (unless the matcher is asked to
/// generalize constants).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DfgLabel {
    /// The operation.
    pub opcode: crate::Opcode,
    /// Hardwired immediates as `(port, value)`, sorted by port.
    pub imms: Vec<(u8, i64)>,
}

impl DfgLabel {
    /// Deterministic hash of the exact label (opcode + immediates), for
    /// use with [`isax_graph::canon::fingerprint`].
    pub fn key(&self) -> u64 {
        use std::fmt::Write as _;
        let mut h = isax_graph::canon::StrHasher::new();
        let _ = h.write_str(self.opcode.mnemonic());
        if let crate::Opcode::Custom(id) = self.opcode {
            let _ = write!(h, "{id}");
        }
        for (p, v) in &self.imms {
            let _ = write!(h, "#{p}:{v}");
        }
        h.finish()
    }

    /// Hash of the label generalized to its wildcard opcode class:
    /// operations in the same class (and with immediates on the same
    /// ports, values free) collide, which is what multifunction-CFU
    /// matching needs.
    pub fn class_key(&self) -> u64 {
        use std::fmt::Write as _;
        let mut h = isax_graph::canon::StrHasher::new();
        let _ = write!(h, "class{}", self.opcode.class() as u32);
        for (p, _) in &self.imms {
            let _ = write!(h, "#{p}");
        }
        h.finish()
    }

    /// Exact compatibility: same opcode and same hardwired immediates.
    pub fn matches_exact(&self, other: &DfgLabel) -> bool {
        self == other
    }

    /// Wildcard (opcode-class) compatibility: same class, immediates on
    /// the same ports (their values are generalized away — a barrel
    /// shifter covers every constant amount).
    pub fn matches_class(&self, other: &DfgLabel) -> bool {
        self.opcode.class() == other.opcode.class()
            && self.imms.len() == other.imms.len()
            && self
                .imms
                .iter()
                .zip(other.imms.iter())
                .all(|(a, b)| a.0 == b.0)
    }
}

/// The dataflow graph of one basic block.
///
/// # Example
///
/// ```
/// use isax_ir::{Dfg, FunctionBuilder};
///
/// let mut fb = FunctionBuilder::new("f", 2);
/// let a = fb.param(0);
/// let b = fb.param(1);
/// let t = fb.xor(a, b);
/// let u = fb.shl(t, 3i64);
/// fb.ret(&[u.into()]);
/// let f = fb.finish();
///
/// let dfg = Dfg::build(&f.blocks[0], &Default::default());
/// assert_eq!(dfg.len(), 2);
/// assert_eq!(dfg.data_succs(0), &[(1, 0)]); // xor feeds port 0 of shl
/// assert!(dfg.is_block_output(1));          // shl result is returned
/// ```
#[derive(Debug, Clone)]
pub struct Dfg {
    insts: Vec<Inst>,
    weight: u64,
    /// `(src, port)` per node: data predecessors.
    data_preds: Vec<Vec<(usize, u8)>>,
    /// `(dst, port-at-dst)` per node: data successors.
    data_succs: Vec<Vec<(usize, u8)>>,
    /// Ordering predecessors (memory serialization).
    order_preds: Vec<Vec<usize>>,
    /// Ordering successors.
    order_succs: Vec<Vec<usize>>,
    /// Anti/output-dependence predecessors (register reuse: a later
    /// definition must not move above earlier readers or definitions of
    /// the same register). Zero-latency scheduling constraints.
    anti_preds: Vec<Vec<usize>>,
    /// Anti/output-dependence successors.
    anti_succs: Vec<Vec<usize>>,
    /// `(port, reg)` operands read from outside the block.
    ext_inputs: Vec<Vec<(u8, VReg)>>,
    /// Node produces a value consumed after the block (live-out last def,
    /// or used by the terminator).
    block_output: Vec<bool>,
    /// Effective operation width of each node in bits, from the
    /// value-range/known-bits analysis ([`crate::dataflow`]). Defaults to
    /// full 32-bit width; only the width-aware costing mode attaches
    /// narrower values, so default-mode cost queries are untouched.
    widths: Vec<u8>,
}

impl Dfg {
    /// Builds the DFG of `block`. `live_out` is the block's live-out
    /// register set (from [`crate::Function::liveness`]); pass an empty set
    /// for single-block functions whose only consumer is the terminator.
    pub fn build(block: &BasicBlock, live_out: &BTreeSet<VReg>) -> Dfg {
        let n = block.insts.len();
        let mut dfg = Dfg {
            insts: block.insts.clone(),
            weight: block.weight,
            data_preds: vec![Vec::new(); n],
            data_succs: vec![Vec::new(); n],
            order_preds: vec![Vec::new(); n],
            order_succs: vec![Vec::new(); n],
            anti_preds: vec![Vec::new(); n],
            anti_succs: vec![Vec::new(); n],
            ext_inputs: vec![Vec::new(); n],
            block_output: vec![false; n],
            widths: vec![32; n],
        };
        // Data edges: last in-block definition reaches each use.
        let mut last_def: BTreeMap<VReg, usize> = BTreeMap::new();
        // Readers of the current definition of each register (for anti
        // dependences; the IR is not SSA).
        let mut readers: BTreeMap<VReg, Vec<usize>> = BTreeMap::new();
        // Memory ordering state.
        let mut last_store: Option<usize> = None;
        let mut loads_since_store: Vec<usize> = Vec::new();
        for (v, inst) in block.insts.iter().enumerate() {
            for (port, r) in inst.reg_srcs() {
                match last_def.get(&r) {
                    Some(&u) => {
                        dfg.data_preds[v].push((u, port));
                        dfg.data_succs[u].push((v, port));
                    }
                    None => dfg.ext_inputs[v].push((port, r)),
                }
                readers.entry(r).or_default().push(v);
            }
            if inst.opcode.is_load() {
                if let Some(s) = last_store {
                    dfg.add_order_edge(s, v);
                }
                loads_since_store.push(v);
            } else if inst.opcode.is_store() {
                if let Some(s) = last_store {
                    dfg.add_order_edge(s, v);
                }
                for &l in &loads_since_store {
                    dfg.add_order_edge(l, v);
                }
                loads_since_store.clear();
                last_store = Some(v);
            }
            for &d in &inst.dsts {
                // Anti dependences: earlier readers of d's current value
                // must stay above this redefinition; output dependence on
                // the previous definition.
                for &x in readers.get(&d).map(Vec::as_slice).unwrap_or(&[]) {
                    if x != v {
                        dfg.add_anti_edge(x, v);
                    }
                }
                readers.insert(d, Vec::new());
                if let Some(&u) = last_def.get(&d) {
                    if u != v {
                        dfg.add_anti_edge(u, v);
                    }
                }
                last_def.insert(d, v);
            }
        }
        // Block outputs: last defs of live-out registers and of registers
        // the terminator reads.
        let mut outputs: BTreeSet<VReg> = live_out.clone();
        outputs.extend(block.term.uses());
        for r in outputs {
            if let Some(&v) = last_def.get(&r) {
                dfg.block_output[v] = true;
            }
        }
        dfg
    }

    fn add_order_edge(&mut self, from: usize, to: usize) {
        self.order_succs[from].push(to);
        self.order_preds[to].push(from);
    }

    fn add_anti_edge(&mut self, from: usize, to: usize) {
        self.anti_succs[from].push(to);
        self.anti_preds[to].push(from);
    }

    /// Number of nodes (instructions) in the block.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the block has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Profile weight of the underlying block.
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// The instruction at node `v`.
    pub fn inst(&self, v: usize) -> &Inst {
        &self.insts[v]
    }

    /// Data predecessors `(src, port)` of `v`.
    pub fn data_preds(&self, v: usize) -> &[(usize, u8)] {
        &self.data_preds[v]
    }

    /// Data successors `(dst, port-at-dst)` of `v`.
    pub fn data_succs(&self, v: usize) -> &[(usize, u8)] {
        &self.data_succs[v]
    }

    /// Ordering predecessors of `v`.
    pub fn order_preds(&self, v: usize) -> &[usize] {
        &self.order_preds[v]
    }

    /// Ordering successors of `v`.
    pub fn order_succs(&self, v: usize) -> &[usize] {
        &self.order_succs[v]
    }

    /// Anti/output-dependence predecessors of `v` (must issue no later
    /// than `v`).
    pub fn anti_preds(&self, v: usize) -> &[usize] {
        &self.anti_preds[v]
    }

    /// Anti/output-dependence successors of `v`.
    pub fn anti_succs(&self, v: usize) -> &[usize] {
        &self.anti_succs[v]
    }

    /// Register operands of `v` read from outside the block.
    pub fn ext_inputs(&self, v: usize) -> &[(u8, VReg)] {
        &self.ext_inputs[v]
    }

    /// True if `v`'s value is consumed after the block ends.
    pub fn is_block_output(&self, v: usize) -> bool {
        self.block_output[v]
    }

    /// Effective operation width of node `v` in bits (32 unless the
    /// width-aware analysis attached narrower inferences).
    pub fn width(&self, v: usize) -> u8 {
        self.widths[v]
    }

    /// Attaches per-node effective widths from the dataflow analysis.
    /// `widths[i]` corresponds to instruction `i` of the block.
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the node count.
    pub fn set_widths(&mut self, widths: &[u8]) {
        assert_eq!(widths.len(), self.insts.len(), "one width per node");
        self.widths.copy_from_slice(widths);
    }

    /// The structural label of node `v` (opcode + hardwired immediates).
    pub fn label(&self, v: usize) -> DfgLabel {
        let inst = &self.insts[v];
        let mut imms: Vec<(u8, i64)> = inst.imm_srcs().collect();
        imms.sort_unstable();
        DfgLabel {
            opcode: inst.opcode,
            imms,
        }
    }

    /// Number of distinct register **input ports** a hardware
    /// implementation of `nodes` would need: distinct external registers
    /// plus distinct internal producers outside the set. Immediates are
    /// hardwired and cost nothing.
    pub fn input_count(&self, nodes: &BitSet) -> usize {
        let mut ext_regs: BTreeSet<VReg> = BTreeSet::new();
        let mut ext_nodes: BTreeSet<usize> = BTreeSet::new();
        for v in nodes.iter() {
            for &(port, r) in &self.ext_inputs[v] {
                let _ = port;
                ext_regs.insert(r);
            }
            for &(u, _) in &self.data_preds[v] {
                if !nodes.contains(u) {
                    ext_nodes.insert(u);
                }
            }
        }
        ext_regs.len() + ext_nodes.len()
    }

    /// Number of distinct register **output ports** needed: nodes in the
    /// set whose value escapes (a data successor outside the set, or a
    /// consumer after the block).
    pub fn output_count(&self, nodes: &BitSet) -> usize {
        nodes
            .iter()
            .filter(|&v| {
                self.block_output[v] || self.data_succs[v].iter().any(|&(d, _)| !nodes.contains(d))
            })
            .count()
    }

    /// Undirected data-edge neighbours of the node set (candidate growth
    /// directions), excluding members of the set itself.
    pub fn neighbours(&self, nodes: &BitSet) -> Vec<usize> {
        let mut out: BTreeSet<usize> = BTreeSet::new();
        for v in nodes.iter() {
            for &(u, _) in &self.data_preds[v] {
                if !nodes.contains(u) {
                    out.insert(u);
                }
            }
            for &(d, _) in &self.data_succs[v] {
                if !nodes.contains(d) {
                    out.insert(d);
                }
            }
        }
        out.into_iter().collect()
    }

    /// Dependence-length analysis used by the guide function's criticality
    /// category. `lat` supplies the baseline latency of each instruction.
    ///
    /// Both data and ordering edges participate: an operation pinned behind
    /// a store is not free to move even though no value flows.
    pub fn schedule_info(&self, lat: impl Fn(&Inst) -> u32) -> SlackInfo {
        let n = self.insts.len();
        let lats: Vec<u32> = self.insts.iter().map(lat).collect();
        let mut asap = vec![0u32; n];
        // Program order is a topological order: all edges point forward.
        for v in 0..n {
            let mut t = 0;
            for &(u, _) in &self.data_preds[v] {
                t = t.max(asap[u] + lats[u]);
            }
            for &u in &self.order_preds[v] {
                t = t.max(asap[u] + lats[u]);
            }
            for &u in &self.anti_preds[v] {
                t = t.max(asap[u]); // same-cycle issue is legal
            }
            asap[v] = t;
        }
        let length = (0..n).map(|v| asap[v] + lats[v]).max().unwrap_or(0);
        let mut alap = vec![0u32; n];
        for v in (0..n).rev() {
            let mut t = length;
            for &(d, _) in &self.data_succs[v] {
                t = t.min(alap[d]);
            }
            for &d in &self.order_succs[v] {
                t = t.min(alap[d]);
            }
            for &d in &self.anti_succs[v] {
                t = t.min(alap[d] + lats[v]); // may issue the same cycle
            }
            alap[v] = t - lats[v];
        }
        let slack = (0..n).map(|v| alap[v] - asap[v]).collect();
        SlackInfo {
            asap,
            alap,
            slack,
            length,
        }
    }

    /// True if replacing `nodes` by a single operation is legal: the set
    /// must be **convex** — no dependence path (data or ordering) from a
    /// member through a non-member back into a member. Non-convex sets
    /// would force the custom instruction to issue both before and after
    /// the external operation.
    pub fn is_convex(&self, nodes: &BitSet) -> bool {
        // Forward reachability from the set's external successors: if any
        // external node reachable from the set reaches back in, reject.
        let n = self.insts.len();
        let mut reaches_from_set = vec![false; n];
        // Process in program order (topological).
        for v in 0..n {
            if nodes.contains(v) {
                continue;
            }
            let mut hit = false;
            for &(u, _) in &self.data_preds[v] {
                if nodes.contains(u) || reaches_from_set[u] {
                    hit = true;
                    break;
                }
            }
            if !hit {
                for &u in self.order_preds[v].iter().chain(&self.anti_preds[v]) {
                    if nodes.contains(u) || reaches_from_set[u] {
                        hit = true;
                        break;
                    }
                }
            }
            reaches_from_set[v] = hit;
        }
        for v in nodes.iter() {
            for &(u, _) in &self.data_preds[v] {
                if !nodes.contains(u) && reaches_from_set[u] {
                    return false;
                }
            }
            for &u in self.order_preds[v].iter().chain(&self.anti_preds[v]) {
                if !nodes.contains(u) && reaches_from_set[u] {
                    return false;
                }
            }
        }
        true
    }

    /// Renders the DFG in Graphviz DOT syntax for inspection: data edges
    /// solid (labelled with the destination port), memory-ordering edges
    /// dashed, anti/output dependences dotted.
    ///
    /// ```sh
    /// dot -Tpng block.dot -o block.png
    /// ```
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = format!("digraph {name} {{\n");
        out.push_str("  node [shape=box, fontname=\"monospace\"];\n");
        for v in 0..self.insts.len() {
            out.push_str(&format!("  n{v} [label=\"{v}: {}\"];\n", self.insts[v]));
        }
        for (v, preds) in self.data_preds.iter().enumerate() {
            for &(u, port) in preds {
                out.push_str(&format!("  n{u} -> n{v} [label=\"{port}\"];\n"));
            }
        }
        for (v, preds) in self.order_preds.iter().enumerate() {
            for &u in preds {
                out.push_str(&format!("  n{u} -> n{v} [style=dashed, color=red];\n"));
            }
        }
        for (v, preds) in self.anti_preds.iter().enumerate() {
            for &u in preds {
                out.push_str(&format!("  n{u} -> n{v} [style=dotted, color=gray];\n"));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Exports the data-edge graph for pattern matching: node `i` of the
    /// result is node `i` of the DFG, labelled with opcode and hardwired
    /// immediates.
    pub fn to_digraph(&self) -> DiGraph<DfgLabel> {
        let mut g = DiGraph::with_capacity(self.insts.len());
        for v in 0..self.insts.len() {
            g.add_node(self.label(v));
        }
        for (v, preds) in self.data_preds.iter().enumerate() {
            for &(u, port) in preds {
                g.add_edge(
                    isax_graph::NodeId(u as u32),
                    isax_graph::NodeId(v as u32),
                    port,
                );
            }
        }
        g
    }
}

/// Result of [`Dfg::schedule_info`]: dependence-based timing bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlackInfo {
    /// Earliest start cycle of each node.
    pub asap: Vec<u32>,
    /// Latest start cycle of each node without lengthening the block.
    pub alap: Vec<u32>,
    /// `alap - asap`: how many cycles a node can slip. Zero means the node
    /// is on the critical path.
    pub slack: Vec<u32>,
    /// Dependence height of the block (cycles, unbounded resources).
    pub length: u32,
}

/// Builds the DFGs of every block of a function, wiring in liveness.
pub fn function_dfgs(f: &crate::Function) -> Vec<Dfg> {
    let lv = f.liveness();
    f.blocks
        .iter()
        .enumerate()
        .map(|(bi, b)| Dfg::build(b, &lv.live_out[bi]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::opcode::Opcode;

    fn unit_lat(_: &Inst) -> u32 {
        1
    }

    /// The running example: t = a ^ b; u = t << 3; w = t >> 29; r = u | w;
    /// plus an off-path add.
    fn example() -> Dfg {
        let mut fb = FunctionBuilder::new("f", 2);
        let a = fb.param(0);
        let b = fb.param(1);
        let t = fb.xor(a, b); // 0
        let u = fb.shl(t, 3i64); // 1
        let w = fb.shr(t, 29i64); // 2
        let r = fb.or(u, w); // 3
        let s = fb.add(a, 1i64); // 4 (off the critical path)
        let q = fb.xor(r, s); // 5
        fb.ret(&[q.into()]);
        let f = fb.finish();
        function_dfgs(&f).remove(0)
    }

    #[test]
    fn data_edges_follow_last_def() {
        let d = example();
        assert_eq!(d.data_preds(3), &[(1, 0), (2, 1)]);
        assert_eq!(d.data_succs(0).len(), 2);
        assert!(d.ext_inputs(0).len() == 2, "xor reads two params");
    }

    #[test]
    fn redefinition_splits_values() {
        let mut fb = FunctionBuilder::new("f", 1);
        let x = fb.param(0);
        let t = fb.add(x, 1i64); // node 0 defines t
        fb.copy_to(t, x); // node 1 redefines t
        let u = fb.add(t, 2i64); // node 2 must read node 1's def
        fb.ret(&[u.into()]);
        let f = fb.finish();
        let d = function_dfgs(&f).remove(0);
        assert_eq!(d.data_preds(2), &[(1, 0)]);
        assert!(d.data_succs(0).is_empty(), "old value is dead");
    }

    #[test]
    fn memory_ordering_edges() {
        let mut fb = FunctionBuilder::new("f", 2);
        let p = fb.param(0);
        let q = fb.param(1);
        let v0 = fb.ldw(p); // 0: load
        fb.stw(q, v0); // 1: store (after load)
        let v1 = fb.ldw(p); // 2: load (after store)
        fb.stw(q, v1); // 3: store (after load 2 and store 1)
        fb.ret(&[]);
        let f = fb.finish();
        let d = function_dfgs(&f).remove(0);
        assert_eq!(d.order_preds(1), &[0], "load -> store");
        assert_eq!(d.order_preds(2), &[1], "store -> load");
        assert_eq!(
            d.order_preds(3),
            &[1, 2],
            "store -> store and load -> store"
        );
    }

    #[test]
    fn block_outputs_from_liveness_and_terminator() {
        let mut fb = FunctionBuilder::new("f", 1);
        let x = fb.param(0);
        let next = fb.new_block(5);
        let t = fb.add(x, 1i64); // 0: live across blocks
        let c = fb.ne(t, 0i64); // 1: used by terminator
        fb.branch(c, next, next);
        fb.switch_to(next);
        let r = fb.add(t, 2i64);
        fb.ret(&[r.into()]);
        let f = fb.finish();
        let dfgs = function_dfgs(&f);
        assert!(dfgs[0].is_block_output(0), "t is live-out");
        assert!(dfgs[0].is_block_output(1), "branch condition");
        assert!(dfgs[1].is_block_output(0), "return value");
    }

    #[test]
    fn io_counts_for_subgraphs() {
        let d = example();
        // Subgraph {1, 2, 3}: inputs = node 0 (one producer), outputs = node 3.
        let s: BitSet = [1usize, 2, 3].into_iter().collect();
        assert_eq!(d.input_count(&s), 1);
        assert_eq!(d.output_count(&s), 1);
        // Subgraph {0, 1}: inputs = a, b (two regs); outputs = xor (feeds 2)
        // and shl (feeds 3) = 2.
        let s: BitSet = [0usize, 1].into_iter().collect();
        assert_eq!(d.input_count(&s), 2);
        assert_eq!(d.output_count(&s), 2);
        // Whole graph: inputs a, b; output q only.
        let s: BitSet = (0usize..6).collect();
        assert_eq!(d.input_count(&s), 2);
        assert_eq!(d.output_count(&s), 1);
    }

    #[test]
    fn slack_identifies_critical_path() {
        let d = example();
        let info = d.schedule_info(unit_lat);
        // Critical path: xor -> shl/shr -> or -> xor = length 4.
        assert_eq!(info.length, 4);
        assert_eq!(info.slack[0], 0);
        assert_eq!(info.slack[3], 0);
        assert_eq!(info.slack[5], 0);
        // The add (node 4) can slip: slack 2.
        assert_eq!(info.slack[4], 2);
    }

    #[test]
    fn convexity() {
        let d = example();
        // {0, 3} is not convex: 0 -> 1 -> 3 passes through external node 1.
        let bad: BitSet = [0usize, 3].into_iter().collect();
        assert!(!d.is_convex(&bad));
        // {0, 1, 2, 3} is convex.
        let good: BitSet = [0usize, 1, 2, 3].into_iter().collect();
        assert!(d.is_convex(&good));
        // Singletons are convex.
        let single: BitSet = [4usize].into_iter().collect();
        assert!(d.is_convex(&single));
    }

    #[test]
    fn neighbours_are_data_adjacent() {
        let d = example();
        let s: BitSet = [1usize].into_iter().collect();
        assert_eq!(d.neighbours(&s), vec![0, 3]);
    }

    #[test]
    fn to_digraph_roundtrip() {
        let d = example();
        let g = d.to_digraph();
        assert_eq!(g.node_count(), 6);
        assert_eq!(
            g.edge_count(),
            (0..6).map(|v| d.data_preds(v).len()).sum::<usize>()
        );
        assert_eq!(g[isax_graph::NodeId(0)].opcode, Opcode::Xor);
        assert_eq!(g[isax_graph::NodeId(1)].imms, vec![(1, 3)]);
    }

    #[test]
    fn anti_dependences_track_register_reuse() {
        let mut fb = FunctionBuilder::new("f", 2);
        let x = fb.param(0);
        let y = fb.param(1);
        let t = fb.add(x, y); // 0: defines t
        let _u = fb.shl(t, 1i64); // 1: reads t
        fb.copy_to(t, y); // 2: redefines t -> anti from 1, output from 0
        let _w = fb.xor(t, x); // 3: reads new t
        fb.ret(&[]);
        let d = function_dfgs(&fb.finish()).remove(0);
        assert!(
            d.anti_preds(2).contains(&1),
            "reader must precede redefinition"
        );
        assert!(
            d.anti_preds(2).contains(&0),
            "output dependence on earlier def"
        );
        assert!(d.anti_preds(3).is_empty());
        // Convexity must respect anti edges: {0, 3} has a path 0 ~> 2 -> 3
        // through the external redefinition.
        let s: BitSet = [0usize, 3].into_iter().collect();
        assert!(!d.is_convex(&s));
    }

    #[test]
    fn live_in_reader_constrains_first_def() {
        let mut fb = FunctionBuilder::new("f", 1);
        let x = fb.param(0);
        let _r = fb.add(x, 1i64); // 0: reads live-in x
        fb.copy_to(x, 7i64); // 1: first in-block def of x
        fb.ret(&[x.into()]);
        let d = function_dfgs(&fb.finish()).remove(0);
        assert!(d.anti_preds(1).contains(&0));
    }

    #[test]
    fn dot_export_styles_edge_kinds() {
        let mut fb = FunctionBuilder::new("f", 2);
        let p = fb.param(0);
        let q = fb.param(1);
        let v = fb.ldw(p); // 0
        fb.stw(q, v); // 1: order edge 0 -> 1
        fb.copy_to(v, q); // 2: anti edge 1? no — output dep 0 -> 2, anti 1 -> 2
        fb.ret(&[]);
        let d = function_dfgs(&fb.finish()).remove(0);
        let dot = d.to_dot("blk");
        assert!(dot.contains("digraph blk"));
        assert!(dot.contains("style=dashed"), "memory ordering edge shown");
        assert!(dot.contains("style=dotted"), "anti edge shown");
        assert!(dot.contains("ldw"));
    }

    #[test]
    fn store_is_never_a_block_output() {
        let mut fb = FunctionBuilder::new("f", 2);
        let p = fb.param(0);
        let v = fb.param(1);
        fb.stw(p, v);
        fb.ret(&[]);
        let f = fb.finish();
        let d = function_dfgs(&f).remove(0);
        assert!(!d.is_block_output(0));
        let s: BitSet = [0usize].into_iter().collect();
        assert_eq!(d.output_count(&s), 0);
        assert_eq!(d.input_count(&s), 2);
    }
}
