//! Differential tests for `isax_ir::dom`: the Cooper–Harvey–Kennedy
//! dominator tree is checked block-by-block against a naive
//! set-based fixed-point reference on the CFG shapes that historically
//! break dominator implementations — unreachable code, self-loops,
//! multi-exit diamonds, and an irreducible loop.

use isax_ir::dom::Dominators;
use isax_ir::{Function, FunctionBuilder};
use std::collections::BTreeSet;

/// Successor indices of each block, clamped to the block count the same
/// way `dom.rs` clamps them.
fn successors(f: &Function) -> Vec<Vec<usize>> {
    let n = f.blocks.len();
    f.blocks
        .iter()
        .map(|b| {
            b.term
                .successors()
                .into_iter()
                .map(|s| s.index())
                .filter(|&s| s < n)
                .collect()
        })
        .collect()
}

/// The textbook reference: `dom(entry) = {entry}`;
/// `dom(b) = {b} ∪ ∩ over preds p of dom(p)`, with every reachable
/// block initialized to the full reachable set, iterated to a fixed
/// point. `None` for unreachable blocks.
fn naive_dominator_sets(f: &Function) -> Vec<Option<BTreeSet<usize>>> {
    let n = f.blocks.len();
    let succs = successors(f);
    let mut preds = vec![Vec::new(); n];
    for (b, ss) in succs.iter().enumerate() {
        for &s in ss {
            preds[s].push(b);
        }
    }
    // Reachability by BFS from the entry.
    let mut reachable = vec![false; n];
    if n > 0 {
        reachable[0] = true;
        let mut queue = vec![0usize];
        while let Some(b) = queue.pop() {
            for &s in &succs[b] {
                if !reachable[s] {
                    reachable[s] = true;
                    queue.push(s);
                }
            }
        }
    }
    let all: BTreeSet<usize> = (0..n).filter(|&b| reachable[b]).collect();
    let mut dom: Vec<Option<BTreeSet<usize>>> =
        (0..n).map(|b| reachable[b].then(|| all.clone())).collect();
    if n > 0 {
        dom[0] = Some([0].into());
    }
    let mut changed = true;
    while changed {
        changed = false;
        for b in 1..n {
            if !reachable[b] {
                continue;
            }
            let mut acc: Option<BTreeSet<usize>> = None;
            for &p in preds[b].iter().filter(|&&p| reachable[p]) {
                let dp = dom[p].as_ref().expect("reachable pred has a set");
                acc = Some(match acc {
                    None => dp.clone(),
                    Some(a) => a.intersection(dp).copied().collect(),
                });
            }
            let mut new: BTreeSet<usize> = acc.unwrap_or_default();
            new.insert(b);
            if dom[b].as_ref() != Some(&new) {
                dom[b] = Some(new);
                changed = true;
            }
        }
    }
    dom
}

/// Asserts that `Dominators::compute` agrees with the reference on
/// every (a, b) pair and that each `idom` is the closest strict
/// dominator (every other strict dominator of `b` dominates it).
fn assert_matches_reference(f: &Function) {
    let dt = Dominators::compute(f);
    let reference = naive_dominator_sets(f);
    let n = f.blocks.len();
    for b in 0..n {
        match &reference[b] {
            None => {
                assert!(!dt.is_reachable(b), "b{b} unreachable in the reference");
                assert_eq!(dt.idom(b), None, "unreachable b{b} has no idom");
            }
            Some(doms) => {
                assert!(dt.is_reachable(b), "b{b} reachable in the reference");
                for a in 0..n {
                    assert_eq!(
                        dt.dominates(a, b),
                        doms.contains(&a),
                        "dominates(b{a}, b{b}) disagrees with the reference"
                    );
                }
                let strict: BTreeSet<usize> = doms.iter().copied().filter(|&a| a != b).collect();
                match dt.idom(b) {
                    None => assert!(
                        b == 0 && strict.is_empty(),
                        "only the entry lacks an idom, b{b} has strict doms {strict:?}"
                    ),
                    Some(i) => {
                        assert!(
                            strict.contains(&i),
                            "idom(b{b}) = b{i} must strictly dominate"
                        );
                        for &a in &strict {
                            assert!(
                                reference[i].as_ref().unwrap().contains(&a),
                                "b{a} strictly dominates b{b} but not its idom b{i}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn straight_line_and_simple_diamond() {
    let mut fb = FunctionBuilder::new("d", 1);
    let p = fb.param(0);
    let then_b = fb.new_block(1);
    let else_b = fb.new_block(1);
    let join = fb.new_block(1);
    let c = fb.ne(p, 0i64);
    fb.branch(c, then_b, else_b);
    fb.switch_to(then_b);
    fb.jump(join);
    fb.switch_to(else_b);
    fb.jump(join);
    fb.switch_to(join);
    fb.ret(&[]);
    assert_matches_reference(&fb.finish());
}

#[test]
fn unreachable_blocks_are_excluded() {
    // Two dead blocks, one of which jumps into live code — its edge
    // must not grant it any dominance facts.
    let mut fb = FunctionBuilder::new("u", 1);
    let p = fb.param(0);
    let live = fb.new_block(1);
    let dead1 = fb.new_block(1);
    let dead2 = fb.new_block(1);
    let _ = fb.add(p, 1i64);
    fb.jump(live);
    fb.switch_to(live);
    fb.ret(&[]);
    fb.switch_to(dead1);
    fb.jump(live); // dead edge into live code
    fb.switch_to(dead2);
    fb.ret(&[]);
    assert_matches_reference(&fb.finish());
}

#[test]
fn self_loop_block() {
    // entry -> body; body branches to itself or the exit.
    let mut fb = FunctionBuilder::new("s", 1);
    let p = fb.param(0);
    let body = fb.new_block(10);
    let exit = fb.new_block(1);
    fb.jump(body);
    fb.switch_to(body);
    let c = fb.ne(p, 0i64);
    fb.branch(c, body, exit);
    fb.switch_to(exit);
    fb.ret(&[]);
    assert_matches_reference(&fb.finish());
}

#[test]
fn multi_exit_diamond() {
    // Both arms can return directly instead of reaching the join, so
    // neither arm nor the join dominates any exit path.
    let mut fb = FunctionBuilder::new("m", 2);
    let p = fb.param(0);
    let q = fb.param(1);
    let then_b = fb.new_block(1);
    let else_b = fb.new_block(1);
    let then_more = fb.new_block(1);
    let join = fb.new_block(1);
    let c = fb.ne(p, 0i64);
    fb.branch(c, then_b, else_b);
    fb.switch_to(then_b);
    let c2 = fb.ne(q, 0i64);
    fb.branch(c2, then_more, join);
    fb.switch_to(then_more);
    fb.ret(&[p.into()]); // early exit on the then arm
    fb.switch_to(else_b);
    fb.jump(join);
    fb.switch_to(join);
    fb.ret(&[q.into()]);
    assert_matches_reference(&fb.finish());
}

#[test]
fn irreducible_loop_with_two_entries() {
    // entry branches into the middle of a cycle a <-> b: the classic
    // irreducible shape, where neither a nor b dominates the other.
    let mut fb = FunctionBuilder::new("irr", 1);
    let p = fb.param(0);
    let a = fb.new_block(5);
    let b = fb.new_block(5);
    let exit = fb.new_block(1);
    let c = fb.ne(p, 0i64);
    fb.branch(c, a, b);
    fb.switch_to(a);
    fb.jump(b);
    fb.switch_to(b);
    let c2 = fb.ne(p, 1i64);
    fb.branch(c2, a, exit);
    fb.switch_to(exit);
    fb.ret(&[]);
    assert_matches_reference(&fb.finish());
}

#[test]
fn nested_loops_and_breaks() {
    // Outer loop containing an inner self-loop plus a break edge
    // jumping straight to the function exit.
    let mut fb = FunctionBuilder::new("n", 2);
    let p = fb.param(0);
    let q = fb.param(1);
    let outer = fb.new_block(10);
    let inner = fb.new_block(100);
    let latch = fb.new_block(10);
    let exit = fb.new_block(1);
    fb.jump(outer);
    fb.switch_to(outer);
    let c0 = fb.ne(p, 0i64);
    fb.branch(c0, inner, exit); // break straight out
    fb.switch_to(inner);
    let c1 = fb.ne(q, 0i64);
    fb.branch(c1, inner, latch); // inner self-loop
    fb.switch_to(latch);
    let c2 = fb.ne(q, 1i64);
    fb.branch(c2, outer, exit); // back edge or exit
    fb.switch_to(exit);
    fb.ret(&[]);
    assert_matches_reference(&fb.finish());
}
