//! Algebraic properties of the operation semantics — the single source of
//! truth every other layer (interpreter, CFU semantics, subsumption)
//! relies on.

use isax_ir::{eval, Opcode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(512))]

    /// Every opcode flagged commutative really commutes.
    #[test]
    fn commutativity_flag_is_truthful(x in any::<u32>(), y in any::<u32>()) {
        for op in Opcode::ALL {
            if op.is_commutative() {
                prop_assert_eq!(eval(op, &[x, y]), eval(op, &[y, x]), "{}", op);
            }
        }
    }

    /// Every declared identity element actually passes the value through
    /// — the soundness premise of subsumed-subgraph contraction.
    #[test]
    fn identity_elements_pass_through(x in any::<u32>()) {
        for op in Opcode::ALL {
            if let Some((pass, ident)) = op.identity() {
                prop_assert_eq!(pass, 0);
                prop_assert_eq!(eval(op, &[x, ident]), x, "{}", op);
                if op.is_commutative() {
                    prop_assert_eq!(eval(op, &[ident, x]), x, "{} swapped", op);
                }
            }
        }
    }

    /// Shift amounts are masked to five bits, as the ISA documents.
    #[test]
    fn shift_amounts_are_masked(x in any::<u32>(), s in any::<u32>()) {
        for op in [Opcode::Shl, Opcode::Shr, Opcode::Sar, Opcode::Ror] {
            prop_assert_eq!(eval(op, &[x, s]), eval(op, &[x, s & 31]), "{}", op);
        }
    }

    /// Comparison results are boolean and mutually consistent.
    #[test]
    fn comparisons_are_consistent(x in any::<u32>(), y in any::<u32>()) {
        let b = |op| eval(op, &[x, y]);
        for op in [Opcode::Eq, Opcode::Ne, Opcode::Lt, Opcode::Le, Opcode::Gt,
                   Opcode::Ge, Opcode::Ltu, Opcode::Leu, Opcode::Gtu, Opcode::Geu] {
            prop_assert!(b(op) <= 1);
        }
        prop_assert_eq!(b(Opcode::Eq) ^ b(Opcode::Ne), 1);
        prop_assert_eq!(b(Opcode::Lt) ^ b(Opcode::Ge), 1);
        prop_assert_eq!(b(Opcode::Ltu) ^ b(Opcode::Geu), 1);
        prop_assert_eq!(b(Opcode::Le) ^ b(Opcode::Gt), 1);
        prop_assert_eq!(b(Opcode::Leu) ^ b(Opcode::Gtu), 1);
        // Unsigned strict order agrees with native comparison.
        prop_assert_eq!(b(Opcode::Ltu), (x < y) as u32);
        prop_assert_eq!(b(Opcode::Lt), ((x as i32) < (y as i32)) as u32);
    }

    /// Rotation decomposes into the shift/or diamond the kernels use.
    #[test]
    fn rotate_is_the_shift_or_diamond(x in any::<u32>(), s in 1u32..31) {
        let rot = eval(Opcode::Ror, &[x, s]);
        let lo = eval(Opcode::Shr, &[x, s]);
        let hi = eval(Opcode::Shl, &[x, 32 - s]);
        prop_assert_eq!(rot, lo | hi);
    }

    /// AndN is the BIC identity used by SHA-1's choose function.
    #[test]
    fn andn_matches_definition(x in any::<u32>(), y in any::<u32>()) {
        prop_assert_eq!(eval(Opcode::AndN, &[x, y]), x & !y);
        // choose(b, c, d) = (b & c) | (~b & d), both spellings agree:
        let (b, c, d) = (x, y, x.rotate_left(7));
        let via_andn = (b & c) | eval(Opcode::AndN, &[d, b]);
        let direct = (b & c) | (!b & d);
        prop_assert_eq!(via_andn, direct);
    }

    /// Sub-word extensions are projections (idempotent).
    #[test]
    fn extensions_are_idempotent(x in any::<u32>()) {
        for op in [Opcode::SxtB, Opcode::SxtH, Opcode::ZxtB, Opcode::ZxtH] {
            let once = eval(op, &[x]);
            prop_assert_eq!(eval(op, &[once]), once, "{}", op);
        }
    }
}
