//! The end-to-end customization pipeline (Figure 1 + Figure 5).
//!
//! [`Customizer`] wires the stages together:
//!
//! 1. **analyze** — build per-block DFGs for the whole application, run
//!    the guided design-space explorer, group candidates into CFU
//!    candidates, mark subsumption and wildcard structure;
//! 2. **select** — run the greedy knapsack at an area budget and emit the
//!    machine description;
//! 3. **evaluate** — compile the application against an MDES (its own or
//!    another application's) and compare cycle estimates against the
//!    baseline.
//!
//! Analysis is budget-independent and by far the most expensive stage, so
//! it is separated from selection: a budget sweep (Figure 7) analyzes once
//! and selects fifteen times.
//!
//! When [`Customizer::check`] is set (the `--check` CLI flag or the
//! `ISAX_CHECK` environment variable), the pipeline runs the
//! [`isax_check`] invariant passes at a checkpoint after every stage —
//! IR/CFG verification and DFG structure after analysis, candidate/CFU
//! legality after combination, MDES and selection consistency after
//! selection, and replacement/schedule soundness after evaluation — and
//! aborts with structured `IC0xxx` diagnostics on the first violation.

use isax_compiler::{
    baseline_cycles, compile_guarded, CompileOptions, CompiledProgram, MatchOptions, Mdes,
    VliwModel,
};
use isax_explore::{explore_app_guarded, Candidate, ExploreConfig, ExploreStats};
use isax_guard::{Degradation, Guard, Stage};
use isax_hwlib::HwLibrary;
use isax_ir::dataflow::SolveStats;
use isax_ir::{function_dfgs, Dfg, Program};
use isax_select::{
    combine, find_wildcard_partners, mark_subsumptions, select_greedy, select_greedy_metered,
    select_knapsack, select_multifunction, CfuCandidate, SelectConfig, Selection,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// The immutable half of the pipeline configuration: everything that is
/// identical for every request a long-running service handles. One
/// `Arc<SharedContext>` is built at startup and shared (read-only) by
/// every concurrent request; per-request knobs stay on [`Customizer`].
#[derive(Debug, Clone)]
pub struct SharedContext {
    /// Hardware timing/area library.
    pub hw: HwLibrary,
    /// Exploration constraints (ports, area caps, guide tuning).
    /// `beam_width` defaults from the `ISAX_BEAM` environment variable
    /// (unset or `0` keeps the exhaustive depth-first walk).
    pub explore: ExploreConfig,
    /// Cap on each CFU's contraction closure.
    pub closure_cap: usize,
    /// Baseline machine shape.
    pub model: VliwModel,
}

impl SharedContext {
    /// The paper's defaults: 0.18 µ library, 5-in/3-out ports,
    /// ten-point guide categories, 4-wide VLIW.
    pub fn new() -> Self {
        SharedContext {
            hw: HwLibrary::micron_018().with_width_aware(width_aware_from_env()),
            explore: ExploreConfig {
                beam_width: beam_width_from_env(),
                ..ExploreConfig::default()
            },
            closure_cap: 64,
            model: VliwModel::default(),
        }
    }
}

impl Default for SharedContext {
    fn default() -> Self {
        SharedContext::new()
    }
}

/// Pipeline configuration: an immutable [`SharedContext`] (shared across
/// concurrent requests via `Arc`) plus the per-request state — the
/// checker switch and the resource-governance [`Guard`].
///
/// The shared fields read through `Deref`, so `cz.hw` / `cz.explore`
/// work as before; setup-time mutation goes through
/// [`Customizer::ctx_mut`] (copy-on-write, so a customizer whose context
/// is already shared with a server never mutates it in place).
#[derive(Debug, Clone)]
pub struct Customizer {
    /// The immutable shared half (hw library, exploration config,
    /// closure cap, machine model).
    pub ctx: Arc<SharedContext>,
    /// Run the `isax-check` invariant passes at every stage checkpoint
    /// and abort on violations. Defaults to the `ISAX_CHECK`
    /// environment variable.
    pub check: bool,
    /// Resource governance: deterministic work-unit budgets, optional
    /// wall-clock deadline, panic containment and fault injection.
    /// Defaults from the `ISAX_BUDGET` / `ISAX_DEADLINE_MS` /
    /// `ISAX_FAULT` environment variables; inactive (zero-cost, legacy
    /// code paths) when none are set.
    pub guard: Guard,
}

impl std::ops::Deref for Customizer {
    type Target = SharedContext;

    fn deref(&self) -> &SharedContext {
        &self.ctx
    }
}

impl Default for Customizer {
    fn default() -> Self {
        Customizer::new()
    }
}

/// Work counters from the dataflow-analysis stage: solver effort for
/// both abstract domains plus the number of lint findings. Aggregated
/// over functions in program order, so identical run-to-run regardless
/// of thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Reachable blocks solved across both domains and all functions.
    pub blocks_solved: u64,
    /// Block transfer evaluations across all fixpoint rounds.
    pub iterations: u64,
    /// Per-register widening applications.
    pub widenings: u64,
    /// `IC08xx` lint diagnostics produced over the whole program.
    pub lints: u64,
}

impl AnalysisStats {
    fn absorb(&mut self, s: &SolveStats) {
        self.blocks_solved += s.blocks_solved;
        self.iterations += s.iterations;
        self.widenings += s.widenings;
    }
}

/// Budget-independent result of the hardware compiler's front half.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All per-block DFGs of the application, in function-then-block
    /// order (candidate/occurrence indices refer into this).
    pub dfgs: Vec<Dfg>,
    /// Raw candidates from exploration.
    pub raw_candidates: Vec<Candidate>,
    /// Combined CFU candidates with subsumption/wildcard annotations.
    pub cfus: Vec<CfuCandidate>,
    /// Exploration statistics (Figure 3 material).
    pub stats: ExploreStats,
    /// Governance events from exploration: per-DFG budget exhaustions
    /// and contained worker panics. Empty when the guard is inactive.
    pub degradations: Vec<Degradation>,
    /// Provenance events from exploration (`Discovered`/`Pruned`),
    /// non-empty only when [`isax_prov::enabled`] was set.
    pub prov: isax_prov::ProvLog,
    /// Dataflow solver and lint counters from the analysis stage.
    pub analysis_stats: AnalysisStats,
    /// Lint findings (`IC08xx` warnings) over the whole program.
    pub lint_report: isax_check::Report,
}

/// Result of compiling an application against a CFU set.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Cycle estimate on the baseline machine.
    pub baseline_cycles: u64,
    /// Cycle estimate with custom instructions.
    pub custom_cycles: u64,
    /// `baseline / custom`.
    pub speedup: f64,
    /// The compiled program (customized code, semantics, statistics).
    pub compiled: CompiledProgram,
}

/// Derives the select-stage provenance events from a finished selection:
/// one `SelectedAsCfu` per chosen unit (in priority order, so the MDES id
/// is the position), then the subsumption/wildcard structure each chosen
/// unit carries. Runs *after* the selection algorithm, purely from its
/// output, so recording can never influence what gets selected.
fn selection_prov(cfus: &[CfuCandidate], sel: &mut Selection) {
    if !isax_prov::enabled() {
        return;
    }
    let mut log = isax_prov::ProvLog::default();
    for (i, sc) in sel.chosen.iter().enumerate() {
        let c = &cfus[sc.candidate];
        log.record(
            c.fingerprint.0,
            isax_prov::ProvEvent::SelectedAsCfu {
                cfu: i as u16,
                area: sc.charged_area,
                delay: c.delay,
                estimated_value: sc.estimated_value,
            },
        );
    }
    for (i, sc) in sel.chosen.iter().enumerate() {
        let c = &cfus[sc.candidate];
        for &j in &c.subsumes {
            log.record(
                cfus[j].fingerprint.0,
                isax_prov::ProvEvent::SubsumedBy { cfu: i as u16 },
            );
        }
        for &j in &c.wildcard_partners {
            log.record(
                cfus[j].fingerprint.0,
                isax_prov::ProvEvent::Wildcarded { partner: i as u16 },
            );
        }
    }
    sel.prov = log;
}

/// Parses the `ISAX_BEAM` environment variable: a positive integer beam
/// width for the explorer's frontier, or unset/`0`/garbage for `None`
/// (the exhaustive depth-first default).
fn beam_width_from_env() -> Option<usize> {
    std::env::var("ISAX_BEAM")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&w| w > 0)
}

/// True when the `ISAX_WIDTH` environment variable requests width-aware
/// costing (`1`, `true`, `on`, or `yes`, case-insensitive). Off by
/// default: every primitive is priced at the full 32-bit width and all
/// outputs are byte-identical to previous releases.
fn width_aware_from_env() -> bool {
    match std::env::var("ISAX_WIDTH") {
        Ok(v) => matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on" | "yes"),
        Err(_) => false,
    }
}

impl Customizer {
    /// Creates a pipeline with the paper's defaults: 0.18 µ library,
    /// 5-in/3-out ports, ten-point guide categories, 4-wide VLIW.
    pub fn new() -> Self {
        Customizer::with_context(Arc::new(SharedContext::new()))
    }

    /// Creates a pipeline over an existing shared context, with
    /// per-request state defaulted from the environment. This is how a
    /// long-running server hands each request the same (never-cloned)
    /// hardware library and exploration config.
    pub fn with_context(ctx: Arc<SharedContext>) -> Self {
        Customizer {
            ctx,
            check: isax_check::env_enabled(),
            guard: Guard::from_env(),
        }
    }

    /// A pipeline with the §6 memory relaxation enabled: loads may join
    /// custom function units (priced as deterministic SRAM accesses that
    /// reserve the machine's cache port). Everything else matches
    /// [`Customizer::new`].
    pub fn with_memory_cfus() -> Self {
        let mut cz = Customizer::new();
        cz.ctx_mut().hw =
            HwLibrary::micron_018_with_memory().with_width_aware(width_aware_from_env());
        cz
    }

    /// Mutable access to the shared context for setup-time configuration
    /// (width-aware costing, beam width, guide weights). Copy-on-write:
    /// if the `Arc` is shared with anyone else, the context is cloned
    /// first, so concurrent readers are never affected.
    pub fn ctx_mut(&mut self) -> &mut SharedContext {
        Arc::make_mut(&mut self.ctx)
    }

    /// Runs exploration + combination + subsumption + wildcard analyses.
    ///
    /// # Example
    ///
    /// ```
    /// use isax::Customizer;
    /// use isax_ir::{FunctionBuilder, Program};
    ///
    /// let mut fb = FunctionBuilder::new("f", 2);
    /// fb.set_entry_weight(1_000);
    /// let (a, b) = (fb.param(0), fb.param(1));
    /// let t = fb.xor(a, b);
    /// let u = fb.shl(t, 3i64);
    /// let v = fb.add(u, b);
    /// fb.ret(&[v.into()]);
    /// let p = Program::new(vec![fb.finish()]);
    ///
    /// let analysis = Customizer::new().analyze(&p);
    /// assert!(!analysis.cfus.is_empty());
    /// ```
    pub fn analyze(&self, program: &Program) -> Analysis {
        let _stage = isax_trace::span("pipeline.analyze");
        let mut dfgs = Vec::new();
        {
            let _s = isax_trace::span("analyze.dfgs");
            for f in &program.functions {
                dfgs.extend(function_dfgs(f));
            }
        }
        let mut analysis_stats = AnalysisStats::default();
        let mut lint_report = isax_check::Report::new();
        {
            let _s = isax_trace::span("analyze.dataflow");
            let mut offset = 0;
            for f in &program.functions {
                let facts = isax_ir::analyze_function(f);
                analysis_stats.absorb(&facts.stats());
                lint_report.merge(isax_check::lint_function(f, &facts));
                if self.hw.width_aware {
                    for (bi, w) in isax_ir::effective_widths_from(f, &facts).iter().enumerate() {
                        dfgs[offset + bi].set_widths(w);
                    }
                }
                offset += f.blocks.len();
            }
            analysis_stats.lints = lint_report.diagnostics().len() as u64;
        }
        isax_trace::counter("analysis.blocks_solved", analysis_stats.blocks_solved);
        isax_trace::counter("analysis.iterations", analysis_stats.iterations);
        isax_trace::counter("analysis.widenings", analysis_stats.widenings);
        isax_trace::counter("analysis.lints", analysis_stats.lints);
        let (result, degradations) = {
            let _s = isax_trace::span("analyze.explore");
            explore_app_guarded(&dfgs, &self.hw, &self.explore, &self.guard)
        };
        if self.guard.is_active() {
            isax_trace::counter("guard.explore_degradations", degradations.len() as u64);
        }
        // Exploration statistics are merged across DFGs in input order
        // (see `ExploreStats::merge`), so these counters are identical
        // run-to-run regardless of thread count.
        isax_trace::counter("explore.examined", result.stats.examined);
        isax_trace::counter("explore.recorded", result.stats.recorded);
        isax_trace::counter("explore.directions_pruned", result.stats.directions_pruned);
        isax_trace::counter("explore.memo_hits", result.stats.memo_hits);
        isax_trace::counter("explore.memo_misses", result.stats.memo_misses);
        let mut cfus = {
            let _s = isax_trace::span("analyze.combine");
            combine(&dfgs, &result.candidates, &self.hw)
        };
        {
            let _s = isax_trace::span("analyze.subsume");
            mark_subsumptions(&mut cfus, self.closure_cap);
        }
        {
            let _s = isax_trace::span("analyze.wildcards");
            find_wildcard_partners(&mut cfus);
        }
        isax_trace::counter("analyze.cfu_candidates", cfus.len() as u64);
        let analysis = Analysis {
            dfgs,
            raw_candidates: result.candidates,
            cfus,
            stats: result.stats,
            degradations,
            prov: result.prov,
            analysis_stats,
            lint_report,
        };
        if self.check {
            let _s = isax_trace::span("analyze.check");
            let mut report = isax_check::check_program(program);
            // Lint findings are warnings: carried in the report for
            // visibility, never fatal at the checkpoint.
            report.merge(analysis.lint_report.clone());
            report.merge(isax_check::check_dfgs(program, &analysis.dfgs, &self.hw));
            report.merge(isax_check::check_candidates(
                &analysis.dfgs,
                &analysis.raw_candidates,
                &self.explore,
                &self.hw,
            ));
            report.merge(isax_check::check_cfus(
                &analysis.dfgs,
                &analysis.cfus,
                &self.explore,
                &self.hw,
            ));
            isax_check::enforce("analyze", &report);
        }
        analysis
    }

    /// Selects CFUs for an area budget (greedy, the paper's default) and
    /// emits the machine description.
    ///
    /// With an active [`Guard`] the greedy scan runs under a work-unit
    /// meter (one unit per candidate evaluation) and inside a panic trap:
    /// exhaustion keeps the CFUs chosen so far (a sound prefix of the
    /// ungoverned order), a contained panic yields an empty selection.
    /// Both are recorded in [`Selection::degradations`].
    pub fn select(&self, app_name: &str, analysis: &Analysis, budget: f64) -> (Mdes, Selection) {
        let _stage = isax_trace::span("pipeline.select");
        let mut sel = {
            let _s = isax_trace::span("select.greedy");
            let cfg = SelectConfig::with_budget(budget);
            if self.guard.is_active() {
                let mut meter = self.guard.meter(Stage::Select, 0);
                let trapped = catch_unwind(AssertUnwindSafe(|| {
                    select_greedy_metered(&analysis.cfus, &cfg, &mut meter)
                }));
                match trapped {
                    Ok(mut sel) => {
                        if let Some(d) = meter.degradation(format!(
                            "kept {} CFUs chosen before the greedy scan stopped",
                            sel.chosen.len()
                        )) {
                            sel.degradations.push(d);
                        }
                        sel
                    }
                    Err(payload) => {
                        let mut sel = Selection::default();
                        sel.degradations.push(Degradation::panicked(
                            Stage::Select,
                            0,
                            isax_guard::panic_message(payload.as_ref()),
                        ));
                        sel
                    }
                }
            } else {
                select_greedy(&analysis.cfus, &cfg)
            }
        };
        if self.guard.is_active() {
            isax_trace::counter("guard.select_degradations", sel.degradations.len() as u64);
        }
        selection_prov(&analysis.cfus, &mut sel);
        let mdes = Mdes::from_selection(app_name, &analysis.cfus, &sel, &self.hw, self.closure_cap);
        isax_trace::counter("select.cfus_selected", mdes.cfus.len() as u64);
        self.check_selected(analysis, &mdes, &sel);
        (mdes, sel)
    }

    /// Checkpoint after any selection variant: the MDES must be legal
    /// for the machine and the selection must refer into the analysis.
    fn check_selected(&self, analysis: &Analysis, mdes: &Mdes, sel: &Selection) {
        if self.check {
            let mut report = isax_check::check_mdes(mdes, &self.hw);
            report.merge(isax_check::check_selection(&analysis.cfus, sel));
            isax_check::enforce("select", &report);
        }
    }

    /// Selection via the dynamic-programming ablation variant.
    ///
    /// Ablation variants run ungoverned: they are evaluation-only tools,
    /// not part of the governed default pipeline.
    pub fn select_dp(&self, app_name: &str, analysis: &Analysis, budget: f64) -> (Mdes, Selection) {
        let _stage = isax_trace::span("pipeline.select");
        let mut sel = {
            let _s = isax_trace::span("select.knapsack");
            select_knapsack(&analysis.cfus, &SelectConfig::with_budget(budget))
        };
        selection_prov(&analysis.cfus, &mut sel);
        let mdes = Mdes::from_selection(app_name, &analysis.cfus, &sel, &self.hw, self.closure_cap);
        isax_trace::counter("select.cfus_selected", mdes.cfus.len() as u64);
        self.check_selected(analysis, &mdes, &sel);
        (mdes, sel)
    }

    /// Selection with multifunction CFUs: wildcard-partner families are
    /// offered as merged units at shared-hardware cost (the paper's §6
    /// future-work item, implemented).
    pub fn select_multifunction(
        &self,
        app_name: &str,
        analysis: &Analysis,
        budget: f64,
    ) -> (Mdes, Selection) {
        let _stage = isax_trace::span("pipeline.select");
        let mut sel = {
            let _s = isax_trace::span("select.multifunction");
            select_multifunction(&analysis.cfus, &SelectConfig::with_budget(budget))
        };
        selection_prov(&analysis.cfus, &mut sel);
        let mdes = Mdes::from_selection(app_name, &analysis.cfus, &sel, &self.hw, self.closure_cap);
        isax_trace::counter("select.cfus_selected", mdes.cfus.len() as u64);
        self.check_selected(analysis, &mdes, &sel);
        (mdes, sel)
    }

    /// One-shot: analyze + select at a budget.
    pub fn customize(&self, app_name: &str, program: &Program, budget: f64) -> (Mdes, Selection) {
        let analysis = self.analyze(program);
        self.select(app_name, &analysis, budget)
    }

    /// Compiles `program` against `mdes` and reports cycles/speedup.
    ///
    /// `matching` controls generality: exact, exact+subsumed, or
    /// wildcarded (Figures 8/9 compare these).
    pub fn evaluate(&self, program: &Program, mdes: &Mdes, matching: MatchOptions) -> Evaluation {
        let _stage = isax_trace::span("pipeline.evaluate");
        let base = {
            let _s = isax_trace::span("evaluate.baseline");
            baseline_cycles(program, &self.hw, &self.model)
        };
        let compiled = {
            let _s = isax_trace::span("evaluate.compile");
            compile_guarded(
                program,
                mdes,
                &self.hw,
                &CompileOptions {
                    matching,
                    model: self.model,
                },
                &self.guard,
            )
        };
        isax_trace::counter("compile.replacements", compiled.applied.len() as u64);
        if self.guard.is_active() {
            isax_trace::counter(
                "guard.compile_degradations",
                compiled.degradations.len() as u64,
            );
        }
        if self.check {
            let _s = isax_trace::span("evaluate.check");
            let report =
                isax_check::check_compiled(program, &compiled, mdes, &self.hw, &self.model);
            isax_check::enforce("evaluate", &report);
        }
        Evaluation {
            baseline_cycles: base,
            custom_cycles: compiled.cycles,
            speedup: if compiled.cycles == 0 {
                1.0
            } else {
                base as f64 / compiled.cycles as f64
            },
            compiled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::FunctionBuilder;

    fn crypto_kernel() -> Program {
        let mut fb = FunctionBuilder::new("kern", 3);
        fb.set_entry_weight(50_000);
        let (a, b, k) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.xor(a, k);
        let l = fb.shl(t, 5i64);
        let r = fb.shr(t, 27i64);
        let rot = fb.or(l, r);
        let m = fb.and(rot, b);
        let s = fb.add(m, k);
        let u = fb.xor(s, b);
        fb.ret(&[u.into()]);
        Program::new(vec![fb.finish()])
    }

    #[test]
    fn end_to_end_native_speedup() {
        let p = crypto_kernel();
        let cz = Customizer::new();
        let (mdes, sel) = cz.customize("kern", &p, 15.0);
        assert!(!mdes.cfus.is_empty());
        assert!(sel.total_value > 0);
        let ev = cz.evaluate(&p, &mdes, MatchOptions::exact());
        assert!(ev.speedup > 1.2, "speedup {:.3}", ev.speedup);
        assert!(isax_ir::verify_program(&ev.compiled.program).is_ok());
    }

    #[test]
    fn analysis_is_budget_independent_and_reusable() {
        let p = crypto_kernel();
        let cz = Customizer::new();
        let analysis = cz.analyze(&p);
        let (m1, _) = cz.select("kern", &analysis, 2.0);
        let (m15, _) = cz.select("kern", &analysis, 15.0);
        assert!(m15.cfus.len() >= m1.cfus.len());
        assert!(m15.total_area() >= m1.total_area());
    }

    #[test]
    fn dp_selection_also_works() {
        let p = crypto_kernel();
        let cz = Customizer::new();
        let analysis = cz.analyze(&p);
        let (mdes, sel) = cz.select_dp("kern", &analysis, 15.0);
        assert!(!mdes.cfus.is_empty());
        assert!(sel.total_value > 0);
    }

    #[test]
    fn checked_pipeline_accepts_its_own_output() {
        let p = crypto_kernel();
        let mut cz = Customizer::new();
        cz.check = true;
        let analysis = cz.analyze(&p);
        let (mdes, _) = cz.select("kern", &analysis, 15.0);
        let ev = cz.evaluate(&p, &mdes, MatchOptions::exact());
        assert!(ev.speedup > 1.0);
    }

    #[test]
    fn governed_pipeline_with_tight_budget_degrades_but_stays_check_clean() {
        let p = crypto_kernel();
        let mut cz = Customizer::new();
        cz.check = true;
        cz.guard = Guard::unlimited().with_units(10);
        let analysis = cz.analyze(&p);
        assert!(
            !analysis.degradations.is_empty(),
            "10 units cannot finish exploration of the kernel"
        );
        let (mdes, _sel) = cz.select("kern", &analysis, 15.0);
        let ev = cz.evaluate(&p, &mdes, MatchOptions::exact());
        assert!(isax_ir::verify_program(&ev.compiled.program).is_ok());
        assert!(
            ev.speedup >= 0.99,
            "partial results never corrupt, {}",
            ev.speedup
        );
    }

    #[test]
    fn injected_select_panic_is_contained_as_empty_selection() {
        use isax_guard::{DegradationKind, FaultKind, FaultPlan};
        let p = crypto_kernel();
        let mut cz = Customizer::new();
        cz.guard = Guard::unlimited().with_fault(FaultPlan {
            stage: Stage::Select,
            kind: FaultKind::Panic,
            nth: 0,
        });
        let analysis = cz.analyze(&p);
        assert!(
            analysis.degradations.is_empty(),
            "fault targets select only"
        );
        let (mdes, sel) = cz.select("kern", &analysis, 15.0);
        assert!(sel.chosen.is_empty());
        assert_eq!(sel.degradations.len(), 1);
        assert_eq!(sel.degradations[0].kind, DegradationKind::Panicked);
        assert!(mdes.cfus.is_empty());
        // Downstream still produces a valid (baseline-equal) program.
        let ev = cz.evaluate(&p, &mdes, MatchOptions::exact());
        assert_eq!(ev.baseline_cycles, ev.custom_cycles);
    }

    #[test]
    fn analysis_stats_and_lints_are_populated() {
        let p = crypto_kernel();
        let analysis = Customizer::new().analyze(&p);
        assert!(
            analysis.analysis_stats.blocks_solved >= 2,
            "both domains, one block"
        );
        assert!(analysis.analysis_stats.iterations >= 2);
        assert_eq!(
            analysis.analysis_stats.lints,
            analysis.lint_report.diagnostics().len() as u64
        );
        assert!(analysis.lint_report.is_clean(), "lints are warnings only");
    }

    /// A kernel whose values are provably narrow: width-aware costing
    /// must price its subgraphs below the full 32-bit quotes while the
    /// default mode reproduces them exactly.
    fn byte_kernel() -> Program {
        let mut fb = FunctionBuilder::new("bytes", 2);
        fb.set_entry_weight(50_000);
        let (a, b) = (fb.param(0), fb.param(1));
        let x = fb.zxtb(a);
        let y = fb.zxtb(b);
        let s = fb.add(x, y);
        let m = fb.and(s, 0xFFi64);
        let t = fb.xor(m, y);
        fb.ret(&[t.into()]);
        Program::new(vec![fb.finish()])
    }

    #[test]
    fn width_aware_mode_reduces_area_accounting() {
        let p = byte_kernel();
        let plain = Customizer::new();
        let mut wide = Customizer::new();
        wide.ctx_mut().hw = wide.hw.clone().with_width_aware(true);
        let (m0, _) = plain.select("bytes", &plain.analyze(&p), 15.0);
        let (m1, _) = wide.select("bytes", &wide.analyze(&p), 15.0);
        assert!(!m0.cfus.is_empty() && !m1.cfus.is_empty());
        assert!(
            m1.total_area() < m0.total_area(),
            "narrow datapaths must be cheaper: {} vs {}",
            m1.total_area(),
            m0.total_area()
        );
    }

    #[test]
    fn default_mode_is_unaffected_by_width_machinery() {
        // Two independently built default customizers agree bit-for-bit.
        let p = byte_kernel();
        let a = Customizer::new().analyze(&p);
        let b = Customizer::new().analyze(&p);
        assert_eq!(a.cfus.len(), b.cfus.len());
        for (x, y) in a.cfus.iter().zip(b.cfus.iter()) {
            assert_eq!(x.delay.to_bits(), y.delay.to_bits());
            assert_eq!(x.area.to_bits(), y.area.to_bits());
        }
    }

    #[test]
    fn empty_budget_means_baseline_performance() {
        let p = crypto_kernel();
        let cz = Customizer::new();
        let (mdes, _) = cz.customize("kern", &p, 0.0);
        assert!(mdes.cfus.is_empty());
        let ev = cz.evaluate(&p, &mdes, MatchOptions::exact());
        assert_eq!(ev.baseline_cycles, ev.custom_cycles);
        assert_eq!(ev.speedup, 1.0);
    }
}
