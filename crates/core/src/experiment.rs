//! Experiment drivers shared by the figure-regeneration harness, the
//! examples and the integration tests.
//!
//! Each function corresponds to a measurement the paper's evaluation
//! reports; the `isax-bench` binaries iterate them over the thirteen
//! benchmarks to regenerate the figures.

use crate::pipeline::{Analysis, Customizer};
use isax_compiler::{MatchOptions, Mdes};
use isax_ir::Program;
use isax_machine::SpeedupReport;

/// Measures an application's speedup on a given CFU set.
pub fn speedup_on(
    cz: &Customizer,
    app_name: &str,
    program: &Program,
    mdes: &Mdes,
    budget: f64,
    matching: MatchOptions,
) -> SpeedupReport {
    let ev = cz.evaluate(program, mdes, matching);
    SpeedupReport::new(
        app_name,
        &mdes.source_app,
        budget,
        ev.baseline_cycles,
        ev.custom_cycles,
    )
}

/// Native measurement: customize at `budget`, evaluate on itself
/// (one point of the left half of Figure 7).
pub fn native_speedup(
    cz: &Customizer,
    app_name: &str,
    program: &Program,
    analysis: &Analysis,
    budget: f64,
) -> SpeedupReport {
    let (mdes, _) = cz.select(app_name, analysis, budget);
    speedup_on(cz, app_name, program, &mdes, budget, MatchOptions::exact())
}

/// Cross measurement: application `b` compiled on `a`'s CFUs
/// (one point of the right half of Figure 7).
pub fn cross_speedup(
    cz: &Customizer,
    a_name: &str,
    a_analysis: &Analysis,
    b_name: &str,
    b_program: &Program,
    budget: f64,
    matching: MatchOptions,
) -> SpeedupReport {
    let (mdes, _) = cz.select(a_name, a_analysis, budget);
    speedup_on(cz, b_name, b_program, &mdes, budget, matching)
}

/// The four bars of Figures 8/9 for one (app, CFU-source) pair at a fixed
/// budget: exact and exact+subsumed speedups, for plain and wildcarded
/// hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneralizationBars {
    /// Application measured.
    pub app: String,
    /// CFU source application.
    pub cfu_source: String,
    /// Exact matches only, exact hardware (grey, left bar).
    pub exact: f64,
    /// Exact + subsumed, exact hardware (full left bar).
    pub subsumed: f64,
    /// Exact matches, opcode-class hardware (grey, right bar).
    pub wild_exact: f64,
    /// Exact + subsumed, opcode-class hardware (full right bar).
    pub wild_subsumed: f64,
}

/// Computes the Figure 8/9 bars for one pair.
pub fn generalization_bars(
    cz: &Customizer,
    src_name: &str,
    src_analysis: &Analysis,
    app_name: &str,
    app_program: &Program,
    budget: f64,
) -> GeneralizationBars {
    let (mdes, _) = cz.select(src_name, src_analysis, budget);
    let s = |m: MatchOptions| cz.evaluate(app_program, &mdes, m).speedup;
    GeneralizationBars {
        app: app_name.to_string(),
        cfu_source: src_name.to_string(),
        exact: s(MatchOptions::exact()),
        subsumed: s(MatchOptions::with_subsumed()),
        wild_exact: s(MatchOptions {
            mode: isax_compiler::MatchMode::Wildcard,
            allow_subsumed: false,
        }),
        wild_subsumed: s(MatchOptions::generalized()),
    }
}

/// The in-text limit study: unconstrained ports and area.
///
/// The candidate pool is the **union** of the default (constrained)
/// exploration and the unconstrained one, so the limit is a true upper
/// bound on the constrained result: the unconstrained walk tapers
/// aggressively to stay tractable on wide blocks and could otherwise
/// miss mid-sized candidates the constrained search covers exhaustively.
pub fn limit_speedup(cz: &Customizer, app_name: &str, program: &Program) -> SpeedupReport {
    use isax_select::{
        combine, find_wildcard_partners, mark_subsumptions, select_greedy, SelectConfig,
    };

    let mut dfgs = Vec::new();
    for f in &program.functions {
        dfgs.extend(isax_ir::function_dfgs(f));
    }
    let base = isax_explore::explore_app(&dfgs, &cz.hw, &cz.explore);
    let wide =
        isax_explore::explore_app(&dfgs, &cz.hw, &isax_explore::ExploreConfig::unconstrained());
    // Union, deduplicated by (dfg, node set) so occurrence values are not
    // double counted.
    let mut seen = std::collections::HashSet::new();
    let mut candidates = Vec::new();
    for c in base.candidates.into_iter().chain(wide.candidates) {
        if seen.insert((c.dfg, c.nodes.clone())) {
            candidates.push(c);
        }
    }
    let mut cfus = combine(&dfgs, &candidates, &cz.hw);
    mark_subsumptions(&mut cfus, cz.closure_cap);
    find_wildcard_partners(&mut cfus);
    let sel = select_greedy(&cfus, &SelectConfig::with_budget(f64::INFINITY));
    let mut mdes =
        isax_compiler::Mdes::from_selection(app_name, &cfus, &sel, &cz.hw, cz.closure_cap);
    // Lift the machine port limits too.
    mdes.max_inputs = u8::MAX;
    mdes.max_outputs = u8::MAX;
    speedup_on(
        cz,
        app_name,
        program,
        &mdes,
        f64::INFINITY,
        MatchOptions::exact(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::FunctionBuilder;

    fn kernel(name: &str, flavor: u32) -> Program {
        let mut fb = FunctionBuilder::new(name, 3);
        fb.set_entry_weight(20_000);
        let (a, b, k) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.xor(a, k);
        let u = fb.shl(t, (3 + flavor as i64) % 8);
        let v = if flavor.is_multiple_of(2) {
            fb.add(u, b)
        } else {
            fb.sub(u, b)
        };
        let w = fb.and(v, 0xFFFFi64);
        fb.ret(&[w.into()]);
        Program::new(vec![fb.finish()])
    }

    #[test]
    fn native_and_cross_reports() {
        let cz = Customizer::new();
        let pa = kernel("appa", 0);
        let pb = kernel("appb", 0); // same flavor: cross matches exactly
        let aa = cz.analyze(&pa);
        let native = native_speedup(&cz, "appa", &pa, &aa, 15.0);
        assert!(native.is_native());
        assert!(native.speedup > 1.0);
        let cross = cross_speedup(&cz, "appa", &aa, "appb", &pb, 15.0, MatchOptions::exact());
        assert!(!cross.is_native());
        assert!(
            cross.speedup >= native.speedup * 0.99,
            "identical kernels transfer fully"
        );
    }

    #[test]
    fn wildcards_recover_cross_losses() {
        let cz = Customizer::new();
        let pa = kernel("appa", 0); // uses add
        let pb = kernel("appb", 1); // uses sub and a different shift
        let aa = cz.analyze(&pa);
        let bars = generalization_bars(&cz, "appa", &aa, "appb", &pb, 15.0);
        // Exact cross-matching finds little; opcode classes recover the
        // add/sub and shift-amount differences.
        assert!(
            bars.wild_subsumed >= bars.exact,
            "wildcard {} < exact {}",
            bars.wild_subsumed,
            bars.exact
        );
        assert!(bars.wild_subsumed > 1.0);
    }

    #[test]
    fn limit_study_dominates_constrained() {
        let cz = Customizer::new();
        let p = kernel("app", 0);
        let a = cz.analyze(&p);
        let constrained = native_speedup(&cz, "app", &p, &a, 15.0);
        let limit = limit_speedup(&cz, "app", &p);
        assert!(limit.speedup >= constrained.speedup * 0.999);
    }
}
