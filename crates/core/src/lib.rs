//! `isax` — automated instruction-set customization.
//!
//! A from-scratch Rust implementation of the system in *Processor
//! Acceleration Through Automated Instruction Set Customization* (Clark,
//! Zhong & Mahlke, MICRO-36, 2003): a hardware compiler that discovers
//! profitable dataflow subgraphs and turns them into custom function
//! units, plus a retargetable compiler that exploits them.
//!
//! This crate is the facade over the workspace's substrate crates:
//!
//! | stage | crate |
//! |-------|-------|
//! | IR, dataflow graphs | [`isax_ir`] |
//! | hardware timing/area library | [`isax_hwlib`] |
//! | graph matching / canonical forms | [`isax_graph`] |
//! | guided design-space exploration | [`isax_explore`] |
//! | combination, subsumption, wildcards, selection | [`isax_select`] |
//! | MDES, matching, replacement, VLIW scheduling | [`isax_compiler`] |
//! | interpreter + speedup reports | [`isax_machine`] |
//! | stage-by-stage invariant checking | [`isax_check`] |
//!
//! # Quickstart
//!
//! ```
//! use isax::{Customizer, MatchOptions};
//! use isax_ir::{FunctionBuilder, Program};
//!
//! // A toy hot kernel: ((a ^ k) <<< 5) + b, executed 50k times.
//! let mut fb = FunctionBuilder::new("kernel", 3);
//! fb.set_entry_weight(50_000);
//! let (a, b, k) = (fb.param(0), fb.param(1), fb.param(2));
//! let t = fb.xor(a, k);
//! let l = fb.shl(t, 5i64);
//! let r = fb.shr(t, 27i64);
//! let rot = fb.or(l, r);
//! let s = fb.add(rot, b);
//! fb.ret(&[s.into()]);
//! let program = Program::new(vec![fb.finish()]);
//!
//! // Discover, select (15-adder budget), compile, measure.
//! let cz = Customizer::new();
//! let (mdes, _selection) = cz.customize("kernel", &program, 15.0);
//! let ev = cz.evaluate(&program, &mdes, MatchOptions::exact());
//! assert!(ev.speedup > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod pipeline;

pub use experiment::{
    cross_speedup, generalization_bars, limit_speedup, native_speedup, speedup_on,
    GeneralizationBars,
};
pub use pipeline::{Analysis, AnalysisStats, Customizer, Evaluation, SharedContext};

// Re-export the vocabulary types users need at the facade level.
pub use isax_check::{
    check_provenance, check_value_facts, enforce, lint_function, lint_program, Diagnostic, Report,
};
pub use isax_compiler::{MatchMode, MatchOptions, Mdes, VliwModel};
pub use isax_explore::ExploreConfig;
pub use isax_guard::{Budget, Degradation, DegradationKind, FaultKind, FaultPlan, Guard, Stage};
pub use isax_hwlib::HwLibrary;
pub use isax_machine::SpeedupReport;
pub use isax_prov::{build_report, Fate, ProvEvent, ProvLog, Summary};
