//! Structured diagnostics: stable codes, severities, precise locations.
//!
//! Every checker pass reports through [`Diagnostic`] and [`Report`], so a
//! failure anywhere in the pipeline prints the same way: a stable `IC0xxx`
//! code, a severity, a location (function/block/instruction, DFG node,
//! candidate or CFU id) and a human-readable message. The code ranges:
//!
//! | range    | stage |
//! |----------|-------|
//! | `IC01xx` | IR / CFG well-formedness (shared with `isax_ir::verify`) |
//! | `IC02xx` | dataflow-graph construction |
//! | `IC03xx` | candidate / CFU legality (§3 constraints) |
//! | `IC04xx` | post-replacement soundness and schedule legality |
//! | `IC05xx` | differential semantic execution |
//! | `IC06xx` | resource-governance (degradation record) consistency |
//! | `IC07xx` | provenance-report cross-validation |
//! | `IC08xx` | dataflow lints (`IC0801`–`IC0805`, warnings) and value-fact soundness (`IC0810`/`IC0811`, errors) |

use isax_ir::{VerifyCode, VerifyError};

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not proven unsound; never fails a checkpoint.
    Warning,
    /// An invariant violation; fails the enclosing checkpoint.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// No more precise attribution exists.
    Whole,
    /// A spot in the IR: function, block, and optionally an instruction.
    Code {
        /// Function name.
        function: String,
        /// Block index, when attributable.
        block: Option<usize>,
        /// Instruction index within the block (`None` for terminators).
        inst: Option<usize>,
    },
    /// A node of a per-block dataflow graph (DFGs indexed in
    /// function-then-block order, as the pipeline supplies them).
    Dfg {
        /// DFG index.
        dfg: usize,
        /// Node (instruction) index inside the DFG, when attributable.
        node: Option<usize>,
    },
    /// A raw exploration candidate, by index.
    Candidate {
        /// Candidate index.
        index: usize,
    },
    /// A combined CFU candidate, by index.
    CfuCandidate {
        /// CFU candidate index.
        index: usize,
    },
    /// A custom function unit in the machine description.
    Cfu {
        /// The `CfuSpec::id`.
        id: u16,
    },
    /// An interpreter entry point.
    Entry {
        /// Entry function name.
        function: String,
    },
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Location::Whole => Ok(()),
            Location::Code {
                function,
                block,
                inst,
            } => {
                write!(f, "{function}")?;
                if let Some(b) = block {
                    write!(f, ":b{b}")?;
                    if let Some(i) = inst {
                        write!(f, ":{i}")?;
                    }
                }
                Ok(())
            }
            Location::Dfg { dfg, node } => {
                write!(f, "dfg{dfg}")?;
                if let Some(v) = node {
                    write!(f, ":n{v}")?;
                }
                Ok(())
            }
            Location::Candidate { index } => write!(f, "candidate{index}"),
            Location::CfuCandidate { index } => write!(f, "cfu-candidate{index}"),
            Location::Cfu { id } => write!(f, "cfu{id}"),
            Location::Entry { function } => write!(f, "entry {function}"),
        }
    }
}

/// One checker finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`IC0xxx`).
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Where the finding points.
    pub location: Location,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            location,
            message: message.into(),
        }
    }

    /// Builds a warning diagnostic.
    pub fn warning(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            location,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if self.location != Location::Whole {
            write!(f, " at {}", self.location)?;
        }
        write!(f, ": {}", self.message)
    }
}

impl From<&VerifyError> for Diagnostic {
    fn from(e: &VerifyError) -> Self {
        Diagnostic::error(
            verify_code_str(e.code),
            Location::Code {
                function: e.function.clone(),
                block: e.block,
                inst: e.inst,
            },
            e.message.clone(),
        )
    }
}

/// Maps an IR verifier code to its stable string (the verifier owns the
/// `IC01xx` range of the taxonomy).
pub fn verify_code_str(c: VerifyCode) -> &'static str {
    c.code()
}

/// The outcome of running one or more checker passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Appends every finding of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// All findings, in the order the passes produced them.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// True when no **error**-severity finding is present (warnings do
    /// not fail checkpoints).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// True if any finding carries the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.diags.is_empty() {
            return write!(f, "clean (no diagnostics)");
        }
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_code_location_and_message() {
        let d = Diagnostic::error(
            "IC0204",
            Location::Dfg {
                dfg: 3,
                node: Some(7),
            },
            "asap exceeds alap",
        );
        assert_eq!(d.to_string(), "error[IC0204] at dfg3:n7: asap exceeds alap");
    }

    #[test]
    fn report_counts_only_errors() {
        let mut r = Report::new();
        r.push(Diagnostic::warning("IC0205", Location::Whole, "hm"));
        assert!(r.is_clean());
        r.push(Diagnostic::error(
            "IC0301",
            Location::Candidate { index: 0 },
            "bad",
        ));
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        assert!(r.has_code("IC0301"));
        assert!(!r.has_code("IC0401"));
    }

    #[test]
    fn verify_errors_convert_with_location() {
        let e = VerifyError {
            function: "f".into(),
            code: VerifyCode::UseBeforeDef,
            block: Some(3),
            inst: Some(1),
            message: "use of r9 before its definition on some path".into(),
        };
        let d = Diagnostic::from(&e);
        assert_eq!(d.code, "IC0105");
        assert_eq!(
            d.location,
            Location::Code {
                function: "f".into(),
                block: Some(3),
                inst: Some(1),
            }
        );
    }
}
