//! Checkpoint 3: candidate, CFU, selection and MDES legality (`IC03xx`).
//!
//! The §3 constraints that make a subgraph implementable as a custom
//! function unit:
//!
//! * `IC0301` — **convexity**: no dependence path from a member through
//!   a non-member back into a member (a non-convex set would have to
//!   issue both before and after the external operation);
//! * `IC0302` / `IC0303` — register-file **port limits**: recounted
//!   input/output ports must match the candidate's stored counts and
//!   respect the exploration configuration's maxima;
//! * `IC0304` — **forbidden opcodes**: every node of a pattern must be
//!   CFU-eligible in the hardware library (no branches, and no memory
//!   operations unless the §6 relaxation is active);
//! * `IC0305` — **wildcard consistency**: partner links must be in
//!   range, non-reflexive, symmetric, and connect equal-size patterns;
//! * `IC0306` — **structural integrity**: indices in range, occurrence
//!   subgraphs isomorphic to their CFU's pattern, subsumption links
//!   well-formed, MDES ids unique;
//! * `IC0307` — **MDES port limits**: every emitted `CfuSpec` fits the
//!   machine description's declared maxima.

use isax_compiler::Mdes;
use isax_explore::candidate::extract_pattern;
use isax_explore::{Candidate, ExploreConfig};
use isax_graph::DiGraph;
use isax_hwlib::HwLibrary;
use isax_ir::{Dfg, DfgLabel};
use isax_select::{patterns_equivalent, CfuCandidate, Selection};

use crate::diag::{Diagnostic, Location, Report};

/// Checks the raw exploration output against the DFGs it grew from.
pub fn check_candidates(
    dfgs: &[Dfg],
    candidates: &[Candidate],
    config: &ExploreConfig,
    hw: &HwLibrary,
) -> Report {
    let mut report = Report::new();
    for (ci, c) in candidates.iter().enumerate() {
        let loc = Location::Candidate { index: ci };
        if c.dfg >= dfgs.len() {
            report.push(Diagnostic::error(
                "IC0306",
                loc,
                format!("refers to DFG {} of {}", c.dfg, dfgs.len()),
            ));
            continue;
        }
        let dfg = &dfgs[c.dfg];
        if c.nodes.is_empty() || c.nodes.iter().any(|v| v >= dfg.len()) {
            report.push(Diagnostic::error(
                "IC0306",
                loc,
                format!(
                    "node set is empty or out of range for a {}-node DFG",
                    dfg.len()
                ),
            ));
            continue;
        }
        if !dfg.is_convex(&c.nodes) {
            report.push(Diagnostic::error(
                "IC0301",
                loc.clone(),
                "candidate subgraph is not convex".to_string(),
            ));
        }
        let ins = dfg.input_count(&c.nodes);
        let outs = dfg.output_count(&c.nodes);
        if ins != c.inputs || ins > config.max_inputs {
            report.push(Diagnostic::error(
                "IC0302",
                loc.clone(),
                format!(
                    "input ports: stored {}, recounted {ins}, limit {}",
                    c.inputs, config.max_inputs
                ),
            ));
        }
        if outs != c.outputs || outs > config.max_outputs {
            report.push(Diagnostic::error(
                "IC0303",
                loc.clone(),
                format!(
                    "output ports: stored {}, recounted {outs}, limit {}",
                    c.outputs, config.max_outputs
                ),
            ));
        }
        for v in c.nodes.iter() {
            let op = dfg.inst(v).opcode;
            if !hw.cfu_eligible(op) {
                report.push(Diagnostic::error(
                    "IC0304",
                    loc.clone(),
                    format!("node {v} has CFU-ineligible opcode `{}`", op.mnemonic()),
                ));
            }
        }
    }
    report
}

/// Checks the combined CFU candidates (grouping, subsumption and
/// wildcard annotations) against the DFGs.
pub fn check_cfus(
    dfgs: &[Dfg],
    cfus: &[CfuCandidate],
    config: &ExploreConfig,
    hw: &HwLibrary,
) -> Report {
    let mut report = Report::new();
    for (ci, cfu) in cfus.iter().enumerate() {
        let loc = Location::CfuCandidate { index: ci };
        if cfu.pattern.is_empty() {
            report.push(Diagnostic::error(
                "IC0306",
                loc,
                "pattern is empty".to_string(),
            ));
            continue;
        }
        check_pattern_opcodes(&cfu.pattern, hw, &loc, &mut report);
        if cfu.inputs > config.max_inputs {
            report.push(Diagnostic::error(
                "IC0302",
                loc.clone(),
                format!(
                    "{} input ports exceed the limit of {}",
                    cfu.inputs, config.max_inputs
                ),
            ));
        }
        if cfu.outputs > config.max_outputs {
            report.push(Diagnostic::error(
                "IC0303",
                loc.clone(),
                format!(
                    "{} output ports exceed the limit of {}",
                    cfu.outputs, config.max_outputs
                ),
            ));
        }
        if cfu.occurrences.is_empty() {
            report.push(Diagnostic::error(
                "IC0306",
                loc.clone(),
                "CFU candidate has no occurrences".to_string(),
            ));
        }
        for occ in &cfu.occurrences {
            if occ.dfg >= dfgs.len() || occ.nodes.iter().any(|v| v >= dfgs[occ.dfg].len()) {
                report.push(Diagnostic::error(
                    "IC0306",
                    loc.clone(),
                    format!("occurrence in DFG {} is out of range", occ.dfg),
                ));
                continue;
            }
            let dfg = &dfgs[occ.dfg];
            if !dfg.is_convex(&occ.nodes) {
                report.push(Diagnostic::error(
                    "IC0301",
                    loc.clone(),
                    format!("occurrence in DFG {} is not convex", occ.dfg),
                ));
            }
            let got = extract_pattern(dfg, &occ.nodes);
            if !patterns_equivalent(&cfu.pattern, &got) {
                report.push(Diagnostic::error(
                    "IC0306",
                    loc.clone(),
                    format!(
                        "occurrence in DFG {} is not isomorphic to the CFU pattern",
                        occ.dfg
                    ),
                ));
            }
        }
        for &s in &cfu.subsumes {
            if s >= cfus.len() || s == ci {
                report.push(Diagnostic::error(
                    "IC0306",
                    loc.clone(),
                    format!("subsumption link {s} is out of range or reflexive"),
                ));
            }
        }
        for &w in &cfu.wildcard_partners {
            if w >= cfus.len() || w == ci {
                report.push(Diagnostic::error(
                    "IC0305",
                    loc.clone(),
                    format!("wildcard partner {w} is out of range or reflexive"),
                ));
                continue;
            }
            if !cfus[w].wildcard_partners.contains(&ci) {
                report.push(Diagnostic::error(
                    "IC0305",
                    loc.clone(),
                    format!("wildcard link to {w} is not symmetric"),
                ));
            }
            if cfus[w].size() != cfu.size() {
                report.push(Diagnostic::error(
                    "IC0305",
                    loc.clone(),
                    format!(
                        "wildcard partner {w} has {} nodes but this pattern has {}",
                        cfus[w].size(),
                        cfu.size()
                    ),
                ));
            }
        }
    }
    report
}

/// Checks a selection result against the candidate list it chose from.
pub fn check_selection(cfus: &[CfuCandidate], selection: &Selection) -> Report {
    let mut report = Report::new();
    let mut seen = std::collections::BTreeSet::new();
    for chosen in &selection.chosen {
        if chosen.candidate >= cfus.len() {
            report.push(Diagnostic::error(
                "IC0306",
                Location::Whole,
                format!(
                    "selection refers to CFU candidate {} of {}",
                    chosen.candidate,
                    cfus.len()
                ),
            ));
        } else if !seen.insert(chosen.candidate) {
            report.push(Diagnostic::error(
                "IC0306",
                Location::CfuCandidate {
                    index: chosen.candidate,
                },
                "candidate selected more than once".to_string(),
            ));
        }
    }
    report
}

/// Checks an emitted machine description: unique ids, port limits, and
/// opcode eligibility of every pattern (primary and subsumed).
pub fn check_mdes(mdes: &Mdes, hw: &HwLibrary) -> Report {
    let mut report = Report::new();
    let mut ids = std::collections::BTreeSet::new();
    for spec in &mdes.cfus {
        let loc = Location::Cfu { id: spec.id };
        if !ids.insert(spec.id) {
            report.push(Diagnostic::error(
                "IC0306",
                loc.clone(),
                "duplicate CFU id in machine description".to_string(),
            ));
        }
        if spec.inputs > mdes.max_inputs {
            report.push(Diagnostic::error(
                "IC0307",
                loc.clone(),
                format!(
                    "{} input ports exceed the machine's {}-port register file",
                    spec.inputs, mdes.max_inputs
                ),
            ));
        }
        if spec.outputs > mdes.max_outputs {
            report.push(Diagnostic::error(
                "IC0307",
                loc.clone(),
                format!(
                    "{} output ports exceed the machine's {}-port register file",
                    spec.outputs, mdes.max_outputs
                ),
            ));
        }
        if spec.latency == 0 {
            report.push(Diagnostic::error(
                "IC0307",
                loc.clone(),
                "CFU latency of zero cycles".to_string(),
            ));
        }
        check_pattern_opcodes(&spec.pattern, hw, &loc, &mut report);
        for sub in &spec.subsumed_patterns {
            check_pattern_opcodes(sub, hw, &loc, &mut report);
        }
    }
    report
}

fn check_pattern_opcodes(
    pattern: &DiGraph<DfgLabel>,
    hw: &HwLibrary,
    loc: &Location,
    report: &mut Report,
) {
    for n in pattern.node_ids() {
        let op = pattern[n].opcode;
        if !hw.cfu_eligible(op) {
            report.push(Diagnostic::error(
                "IC0304",
                loc.clone(),
                format!("pattern contains CFU-ineligible opcode `{}`", op.mnemonic()),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_graph::BitSet;
    use isax_ir::{function_dfgs, FunctionBuilder, Program};

    fn setup() -> (
        Vec<Dfg>,
        Vec<Candidate>,
        Vec<CfuCandidate>,
        ExploreConfig,
        HwLibrary,
    ) {
        let mut fb = FunctionBuilder::new("k", 3);
        fb.set_entry_weight(10_000);
        let (a, b, k) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.xor(a, k);
        let l = fb.shl(t, 5i64);
        let m = fb.and(l, b);
        let s = fb.add(m, k);
        fb.ret(&[s.into()]);
        let p = Program::new(vec![fb.finish()]);
        let hw = HwLibrary::micron_018();
        let config = ExploreConfig::default();
        let dfgs: Vec<Dfg> = p.functions.iter().flat_map(function_dfgs).collect();
        let result = isax_explore::explore_app(&dfgs, &hw, &config);
        let cfus = isax_select::combine(&dfgs, &result.candidates, &hw);
        (dfgs, result.candidates, cfus, config, hw)
    }

    #[test]
    fn explorer_output_is_legal() {
        let (dfgs, cands, cfus, config, hw) = setup();
        assert!(!cands.is_empty());
        let r1 = check_candidates(&dfgs, &cands, &config, &hw);
        assert!(r1.is_clean(), "{r1}");
        let r2 = check_cfus(&dfgs, &cfus, &config, &hw);
        assert!(r2.is_clean(), "{r2}");
    }

    #[test]
    fn non_convex_candidate_is_rejected() {
        let (dfgs, mut cands, _, config, hw) = setup();
        // Nodes 0 and 3 of the chain xor->shl->and->add skip the middle:
        // the dependence path 0 -> 1 -> 2 -> 3 exits and re-enters.
        let mut nodes = BitSet::new();
        nodes.insert(0);
        nodes.insert(3);
        let dfg = &dfgs[0];
        cands[0] = Candidate {
            dfg: 0,
            nodes: nodes.clone(),
            delay: 1.0,
            area: 1.0,
            inputs: dfg.input_count(&nodes),
            outputs: dfg.output_count(&nodes),
        };
        let report = check_candidates(&dfgs, &cands, &config, &hw);
        assert!(report.has_code("IC0301"), "{report}");
    }

    #[test]
    fn port_overrun_is_rejected() {
        let (dfgs, cands, _, mut config, hw) = setup();
        config.max_inputs = 0;
        let report = check_candidates(&dfgs, &cands, &config, &hw);
        assert!(report.has_code("IC0302"), "{report}");
    }

    #[test]
    fn asymmetric_wildcard_link_is_rejected() {
        let (dfgs, _, mut cfus, config, hw) = setup();
        if cfus.len() < 2 {
            return;
        }
        cfus[0].wildcard_partners = vec![1];
        cfus[1].wildcard_partners.clear();
        let report = check_cfus(&dfgs, &cfus, &config, &hw);
        assert!(report.has_code("IC0305"), "{report}");
    }

    #[test]
    fn mdes_port_limits_are_enforced() {
        let (_, _, cfus, _, hw) = setup();
        let sel = isax_select::select_greedy(&cfus, &isax_select::SelectConfig::with_budget(20.0));
        let mut mdes = Mdes::from_selection("k", &cfus, &sel, &hw, 16);
        assert!(check_mdes(&mdes, &hw).is_clean());
        assert!(check_selection(&cfus, &sel).is_clean());
        if let Some(spec) = mdes.cfus.first_mut() {
            spec.inputs = mdes.max_inputs + 1;
        }
        if !mdes.cfus.is_empty() {
            let report = check_mdes(&mdes, &hw);
            assert!(report.has_code("IC0307"), "{report}");
        }
    }
}
