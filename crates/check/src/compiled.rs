//! Checkpoint 4: post-replacement and schedule soundness (`IC04xx`).
//!
//! After pattern matching rewrites blocks around `cfu` opcodes, the
//! customized program must still be the same computation, and its cycle
//! estimate must come from a legal schedule. This pass checks:
//!
//! * `IC01xx` — the customized program still passes the full IR
//!   verifier (re-run here; replacement is the stage most likely to
//!   break flow-sensitive definedness);
//! * `IC0401` — **no dropped definitions**: every register that was
//!   live out of a block and defined inside it in the original program
//!   is still defined in the corresponding customized block;
//! * `IC0402` — every applied match names a CFU present in the MDES;
//! * `IC0403` — every `cfu` opcode in the customized code has latency
//!   and memory-access metadata in the compiler's `CustomInfo`;
//! * `IC0404` / `IC0405` — the recomputed block schedules are **legal**:
//!   per-cycle functional-unit capacity and cache-port reservations are
//!   respected (`IC0404`), and every dependence edge's latency is
//!   honoured (`IC0405`);
//! * `IC0406` — the recomputed per-block cycle counts equal the ones
//!   the compiler reported (the numbers behind every speedup claim);
//! * `IC0601` — every schedule-stage degradation record names a function
//!   that exists.
//!
//! Degraded-but-sound results stay clean: when the resource guard cut a
//! function's list scheduling short, the compiler falls back to the
//! deterministic sequential schedule, and this pass recomputes *that*
//! schedule for the function a degradation record names — schedule
//! legality (`IC0404`/`IC0405`) and cycle-count agreement (`IC0406`) are
//! enforced either way. Governance may make results incomplete, never
//! unsound.

use isax_compiler::{
    schedule_block, sequential_schedule_block, CompiledProgram, CustomInfo, Mdes, VliwModel,
};
use isax_guard::Stage;
use isax_hwlib::HwLibrary;
use isax_ir::{function_dfgs, FuKind, Function, Opcode, Program};

use crate::diag::{Diagnostic, Location, Report};
use crate::program::check_program;

/// Checks a compiled (customized) program against the original it was
/// derived from and the machine description it was compiled for.
pub fn check_compiled(
    original: &Program,
    compiled: &CompiledProgram,
    mdes: &Mdes,
    hw: &HwLibrary,
    model: &VliwModel,
) -> Report {
    let mut report = check_program(&compiled.program);

    for m in &compiled.applied {
        if mdes.cfu(m.cfu).is_none() {
            report.push(Diagnostic::error(
                "IC0402",
                Location::Cfu { id: m.cfu },
                format!(
                    "applied match in block {} names a CFU absent from the MDES",
                    m.block
                ),
            ));
        }
    }

    for d in &compiled.degradations {
        if d.stage == Stage::Schedule && d.item as usize >= compiled.program.functions.len() {
            report.push(Diagnostic::error(
                "IC0601",
                Location::Whole,
                format!(
                    "schedule degradation names function {} but the program has {}",
                    d.item,
                    compiled.program.functions.len()
                ),
            ));
        }
    }

    if original.functions.len() != compiled.program.functions.len() {
        report.push(Diagnostic::error(
            "IC0401",
            Location::Whole,
            format!(
                "customization changed the function count from {} to {}",
                original.functions.len(),
                compiled.program.functions.len()
            ),
        ));
        return report;
    }

    for (orig, new) in original.functions.iter().zip(&compiled.program.functions) {
        check_function(orig, new, compiled, hw, model, &mut report);
    }

    if compiled.program.functions.len() != compiled.block_cycles.len() {
        report.push(Diagnostic::error(
            "IC0406",
            Location::Whole,
            format!(
                "block_cycles covers {} functions, program has {}",
                compiled.block_cycles.len(),
                compiled.program.functions.len()
            ),
        ));
    }
    report
}

fn check_function(
    orig: &Function,
    new: &Function,
    compiled: &CompiledProgram,
    hw: &HwLibrary,
    model: &VliwModel,
    report: &mut Report,
) {
    if orig.blocks.len() != new.blocks.len() {
        report.push(Diagnostic::error(
            "IC0401",
            Location::Code {
                function: new.name.clone(),
                block: None,
                inst: None,
            },
            format!(
                "customization changed the block count from {} to {}",
                orig.blocks.len(),
                new.blocks.len()
            ),
        ));
        return;
    }

    // Escaping definitions must survive replacement: a register live out
    // of block b and defined in the original block b must still be
    // defined in the customized block b. (Values absorbed *inside* a
    // pattern legitimately disappear — they are not live out.)
    let live = orig.liveness();
    for (bi, (ob, nb)) in orig.blocks.iter().zip(&new.blocks).enumerate() {
        let new_defs: std::collections::BTreeSet<_> = nb.defs().collect();
        for r in ob.defs() {
            if live.live_out[bi].contains(&r) && !new_defs.contains(&r) {
                report.push(Diagnostic::error(
                    "IC0401",
                    Location::Code {
                        function: new.name.clone(),
                        block: Some(bi),
                        inst: None,
                    },
                    format!("live-out register {r} lost its definition during replacement"),
                ));
            }
        }
        for inst in &nb.insts {
            if let Opcode::Custom(id) = inst.opcode {
                if !compiled.custom_info.contains_key(&id) {
                    report.push(Diagnostic::error(
                        "IC0403",
                        Location::Code {
                            function: new.name.clone(),
                            block: Some(bi),
                            inst: None,
                        },
                        format!("cfu{id} has no latency/memory metadata in CustomInfo"),
                    ));
                }
            }
        }
    }

    check_schedules(new, compiled, hw, model, report);
}

/// Recomputes each block's schedule and validates it independently.
fn check_schedules(
    f: &Function,
    compiled: &CompiledProgram,
    hw: &HwLibrary,
    model: &VliwModel,
    report: &mut Report,
) {
    let fi = match compiled
        .program
        .functions
        .iter()
        .position(|g| g.name == f.name)
    {
        Some(fi) => fi,
        None => return,
    };
    // A function that a schedule-stage degradation record names was
    // emitted with the deterministic sequential fallback; recompute that
    // instead of the list schedule so IC0406 compares like with like.
    let degraded = compiled
        .degradations
        .iter()
        .any(|d| d.stage == Stage::Schedule && d.item as usize == fi);
    let dfgs = function_dfgs(f);
    for (bi, dfg) in dfgs.iter().enumerate() {
        let sched = if degraded {
            sequential_schedule_block(dfg, &f.blocks[bi].term, hw, &compiled.custom_info)
        } else {
            schedule_block(dfg, &f.blocks[bi].term, hw, &compiled.custom_info, model)
        };
        validate_schedule(
            f,
            bi,
            dfg,
            &sched.issue,
            sched.cycles,
            hw,
            &compiled.custom_info,
            model,
            report,
        );
        let reported = compiled
            .block_cycles
            .get(fi)
            .and_then(|blocks| blocks.get(bi))
            .copied();
        if reported != Some(sched.cycles) {
            report.push(Diagnostic::error(
                "IC0406",
                Location::Code {
                    function: f.name.clone(),
                    block: Some(bi),
                    inst: None,
                },
                format!(
                    "compiler reported {reported:?} cycles, rescheduling gives {}",
                    sched.cycles
                ),
            ));
        }
    }
}

fn slots(model: &VliwModel, fu: FuKind) -> u32 {
    match fu {
        FuKind::Int => model.int_slots as u32,
        FuKind::Float => model.float_slots as u32,
        FuKind::Mem => model.mem_slots as u32,
        FuKind::Branch => model.branch_slots as u32,
    }
}

fn mem_reads(op: Opcode, custom: &CustomInfo) -> u32 {
    match op {
        Opcode::Custom(id) => custom.get(&id).map_or(0, |i| i.mem_reads),
        _ => {
            if op.is_memory() {
                1
            } else {
                0
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn validate_schedule(
    f: &Function,
    bi: usize,
    dfg: &isax_ir::Dfg,
    issue: &[u32],
    cycles: u32,
    hw: &HwLibrary,
    custom: &CustomInfo,
    model: &VliwModel,
    report: &mut Report,
) {
    let n = dfg.len();
    let loc = |inst: Option<usize>| Location::Code {
        function: f.name.clone(),
        block: Some(bi),
        inst,
    };
    let lat: Vec<u32> = (0..n)
        .map(|v| isax_compiler::inst_latency(dfg.inst(v).opcode, hw, custom))
        .collect();

    // Dependence legality.
    for v in 0..n {
        for &(u, _) in dfg.data_preds(v) {
            if issue[v] < issue[u] + lat[u] {
                report.push(Diagnostic::error(
                    "IC0405",
                    loc(Some(v)),
                    format!(
                        "issued at cycle {} but data predecessor {u} finishes at {}",
                        issue[v],
                        issue[u] + lat[u]
                    ),
                ));
            }
        }
        for &u in dfg.order_preds(v) {
            if issue[v] < issue[u] + lat[u] {
                report.push(Diagnostic::error(
                    "IC0405",
                    loc(Some(v)),
                    format!(
                        "issued at cycle {} but memory predecessor {u} finishes at {}",
                        issue[v],
                        issue[u] + lat[u]
                    ),
                ));
            }
        }
        for &u in dfg.anti_preds(v) {
            if issue[v] < issue[u] {
                report.push(Diagnostic::error(
                    "IC0405",
                    loc(Some(v)),
                    format!(
                        "issued at cycle {} before anti-dependence predecessor {u} at {}",
                        issue[v], issue[u]
                    ),
                ));
            }
        }
        if issue[v] + lat[v] > cycles {
            report.push(Diagnostic::error(
                "IC0405",
                loc(Some(v)),
                format!(
                    "finishes at cycle {} past the block's {} cycles",
                    issue[v] + lat[v],
                    cycles
                ),
            ));
        }
    }

    // Per-cycle capacity per functional-unit kind.
    let mut per_cycle: std::collections::BTreeMap<(u32, FuKind), u32> = Default::default();
    for (v, &cycle) in issue.iter().enumerate() {
        let fu = dfg.inst(v).opcode.fu();
        *per_cycle.entry((cycle, fu)).or_insert(0) += 1;
    }
    for (&(cycle, fu), &count) in &per_cycle {
        if count > slots(model, fu) {
            report.push(Diagnostic::error(
                "IC0404",
                loc(None),
                format!(
                    "cycle {cycle} issues {count} {fu:?} operations but the machine has {}",
                    slots(model, fu)
                ),
            ));
        }
    }

    // Cache-port reservation of memory-bearing custom units (§6): after
    // such a unit issues, no memory operation may issue strictly inside
    // its read window.
    for v in 0..n {
        let op = dfg.inst(v).opcode;
        let reads = mem_reads(op, custom);
        if op.fu() == FuKind::Mem || reads == 0 {
            continue;
        }
        for m in 0..n {
            let mop = dfg.inst(m).opcode;
            let mem_fu = mop.fu() == FuKind::Mem;
            let mem_custom = m != v && mop.fu() != FuKind::Mem && mem_reads(mop, custom) > 0;
            if (mem_fu || mem_custom) && issue[m] > issue[v] && issue[m] < issue[v] + reads {
                report.push(Diagnostic::error(
                    "IC0404",
                    loc(Some(m)),
                    format!(
                        "memory access at cycle {} inside cfu cache-port reservation [{}, {})",
                        issue[m],
                        issue[v],
                        issue[v] + reads
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_compiler::{baseline_cycles, compile, CompileOptions, MatchOptions};
    use isax_ir::FunctionBuilder;

    fn kernel() -> Program {
        let mut fb = FunctionBuilder::new("kern", 3);
        fb.set_entry_weight(50_000);
        let (a, b, k) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.xor(a, k);
        let l = fb.shl(t, 5i64);
        let r = fb.shr(t, 27i64);
        let rot = fb.or(l, r);
        let m = fb.and(rot, b);
        let s = fb.add(m, k);
        let u = fb.xor(s, b);
        fb.ret(&[u.into()]);
        Program::new(vec![fb.finish()])
    }

    fn compile_kernel() -> (Program, CompiledProgram, Mdes, HwLibrary, VliwModel) {
        let p = kernel();
        let hw = HwLibrary::micron_018();
        let model = VliwModel::default();
        let dfgs: Vec<isax_ir::Dfg> = p.functions.iter().flat_map(function_dfgs).collect();
        let result = isax_explore::explore_app(&dfgs, &hw, &Default::default());
        let mut cfus = isax_select::combine(&dfgs, &result.candidates, &hw);
        isax_select::mark_subsumptions(&mut cfus, 64);
        let sel = isax_select::select_greedy(&cfus, &isax_select::SelectConfig::with_budget(15.0));
        let mdes = Mdes::from_selection("kern", &cfus, &sel, &hw, 64);
        let compiled = compile(
            &p,
            &mdes,
            &hw,
            &CompileOptions {
                matching: MatchOptions::exact(),
                model,
            },
        );
        (p, compiled, mdes, hw, model)
    }

    #[test]
    fn compiled_kernel_is_sound() {
        let (p, compiled, mdes, hw, model) = compile_kernel();
        assert!(!compiled.applied.is_empty(), "expected at least one match");
        let baseline = baseline_cycles(&p, &hw, &model);
        assert!(compiled.cycles < baseline);
        let report = check_compiled(&p, &compiled, &mdes, &hw, &model);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn unknown_applied_cfu_is_rejected() {
        let (p, mut compiled, mdes, hw, model) = compile_kernel();
        if let Some(m) = compiled.applied.first_mut() {
            m.cfu = 999;
        }
        let report = check_compiled(&p, &compiled, &mdes, &hw, &model);
        assert!(report.has_code("IC0402"), "{report}");
    }

    #[test]
    fn dropped_live_out_definition_is_rejected() {
        let (p, mut compiled, mdes, hw, model) = compile_kernel();
        // Force a live-out mismatch: add a loop so the entry block has a
        // live-out def, then drop that def from the "customized" copy.
        let _ = &mut compiled;
        // Simpler: truncate the customized return block's instructions so
        // the value feeding `ret` loses its definition.
        let f = &mut compiled.program.functions[0];
        let last = f.blocks[0].insts.len() - 1;
        f.blocks[0].insts.remove(last);
        let report = check_compiled(&p, &compiled, &mdes, &hw, &model);
        assert!(!report.is_clean());
    }

    #[test]
    fn stale_cycle_counts_are_rejected() {
        let (p, mut compiled, mdes, hw, model) = compile_kernel();
        compiled.block_cycles[0][0] += 1;
        let report = check_compiled(&p, &compiled, &mdes, &hw, &model);
        assert!(report.has_code("IC0406"), "{report}");
    }

    #[test]
    fn budget_degraded_schedule_is_accepted() {
        use isax_compiler::compile_guarded;
        use isax_guard::Guard;
        let p = kernel();
        let hw = HwLibrary::micron_018();
        let model = VliwModel::default();
        // A 2-unit schedule budget forces the sequential fallback.
        let compiled = compile_guarded(
            &p,
            &Mdes::baseline(),
            &hw,
            &CompileOptions {
                matching: MatchOptions::exact(),
                model,
            },
            &Guard::unlimited().with_units(2),
        );
        assert!(compiled
            .degradations
            .iter()
            .any(|d| d.stage == Stage::Schedule && d.item == 0));
        let report = check_compiled(&p, &compiled, &Mdes::baseline(), &hw, &model);
        assert!(report.is_clean(), "sound-but-degraded must pass: {report}");
    }

    #[test]
    fn degradation_naming_a_missing_function_is_rejected() {
        let (p, mut compiled, mdes, hw, model) = compile_kernel();
        compiled
            .degradations
            .push(isax_guard::Degradation::panicked(
                Stage::Schedule,
                7,
                "phantom",
            ));
        let report = check_compiled(&p, &compiled, &mdes, &hw, &model);
        assert!(report.has_code("IC0601"), "{report}");
    }

    #[test]
    fn tampered_degraded_cycles_are_still_rejected() {
        use isax_compiler::compile_guarded;
        use isax_guard::Guard;
        let p = kernel();
        let hw = HwLibrary::micron_018();
        let model = VliwModel::default();
        let mut compiled = compile_guarded(
            &p,
            &Mdes::baseline(),
            &hw,
            &CompileOptions {
                matching: MatchOptions::exact(),
                model,
            },
            &Guard::unlimited().with_units(2),
        );
        compiled.block_cycles[0][0] += 1;
        let report = check_compiled(&p, &compiled, &Mdes::baseline(), &hw, &model);
        assert!(report.has_code("IC0406"), "{report}");
    }

    #[test]
    fn missing_custom_info_is_rejected() {
        let (p, mut compiled, mdes, hw, model) = compile_kernel();
        if compiled.applied.is_empty() {
            return;
        }
        compiled.custom_info.clear();
        let report = check_compiled(&p, &compiled, &mdes, &hw, &model);
        assert!(report.has_code("IC0403"), "{report}");
    }
}
