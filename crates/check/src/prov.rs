//! Provenance-report cross-validation (`IC07xx`).
//!
//! A provenance report (`isax-prov`) claims a story about a run: which
//! candidates were discovered, which were pruned, which became CFUs and
//! how many cycles each replacement saved. This pass cross-validates
//! that story against the run's actual artifacts:
//!
//! * `IC0700` — the report itself is structurally sound (version,
//!   fingerprint syntax, known fates and event kinds, consistent
//!   event/stage pairing);
//! * `IC0701` — every CFU in the MDES has a `SelectedAsCfu` event whose
//!   candidate was also `Discovered` (nothing was selected out of thin
//!   air);
//! * `IC0702` — the `Replaced` cycle deltas sum to the compiled
//!   program's total claimed savings;
//! * `IC0703` — no event references a CFU id or fingerprint unknown to
//!   the MDES;
//! * `IC0704` — no candidate with terminal fate `pruned` appears in the
//!   MDES (pruned means it never became a candidate).

use crate::diag::{Diagnostic, Location, Report};
use isax_compiler::{CompiledProgram, Mdes};

/// Known terminal fates, mirroring `isax_prov::Fate::as_str`.
const FATES: [&str; 3] = ["selected", "not_selected", "pruned"];

/// Known `(event kind, stage)` pairs, mirroring
/// `isax_prov::ProvEvent::{kind, stage}`.
const KINDS: [(&str, &str); 7] = [
    ("discovered", "explore"),
    ("pruned", "explore"),
    ("subsumed_by", "select"),
    ("wildcarded", "select"),
    ("selected_as_cfu", "select"),
    ("matched", "compile"),
    ("replaced", "compile"),
];

fn valid_fingerprint(s: &str) -> bool {
    s.len() == 16
        && s.bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

/// Cross-validates a provenance report against the run that produced it.
///
/// `report_doc` is the parsed JSON report from `isax_prov::build_report`.
/// Pass the run's `mdes` to enable the selection cross-checks
/// (`IC0701`/`IC0703`/`IC0704`) and its `compiled` output to enable the
/// cycle-accounting check (`IC0702`); with both `None` only the
/// structural `IC0700` rules run.
pub fn check_provenance(
    report_doc: &isax_json::Value,
    mdes: Option<&Mdes>,
    compiled: Option<&CompiledProgram>,
) -> Report {
    let mut r = Report::new();
    if report_doc.get("version").and_then(|v| v.as_u64()) != Some(isax_prov::REPORT_VERSION) {
        r.push(Diagnostic::error(
            "IC0700",
            Location::Whole,
            format!(
                "provenance report version is not {}",
                isax_prov::REPORT_VERSION
            ),
        ));
        return r;
    }
    let Some(candidates) = report_doc.get("candidates").and_then(|v| v.as_array()) else {
        r.push(Diagnostic::error(
            "IC0700",
            Location::Whole,
            "provenance report has no `candidates` array",
        ));
        return r;
    };

    // Facts accumulated from the event streams.
    let mut has_select_events = false;
    let mut selected_ids: Vec<(u16, String, bool)> = Vec::new(); // (id, fingerprint, discovered)
    let mut referenced_ids: Vec<(u16, String)> = Vec::new(); // (id, via kind)
    let mut replaced_delta: u64 = 0;
    let mut pruned_fps: Vec<String> = Vec::new();

    for (ci, cand) in candidates.iter().enumerate() {
        let fp = cand
            .get("fingerprint")
            .and_then(|v| v.as_str())
            .unwrap_or("");
        if !valid_fingerprint(fp) {
            r.push(Diagnostic::error(
                "IC0700",
                Location::Whole,
                format!("candidate {ci}: malformed fingerprint {fp:?}"),
            ));
            continue;
        }
        let fate = cand.get("fate").and_then(|v| v.as_str()).unwrap_or("");
        if !FATES.contains(&fate) {
            r.push(Diagnostic::error(
                "IC0700",
                Location::Whole,
                format!("candidate {fp}: unknown fate {fate:?}"),
            ));
        }
        let Some(events) = cand.get("events").and_then(|v| v.as_array()) else {
            r.push(Diagnostic::error(
                "IC0700",
                Location::Whole,
                format!("candidate {fp}: missing `events` array"),
            ));
            continue;
        };
        if events.is_empty() {
            r.push(Diagnostic::error(
                "IC0700",
                Location::Whole,
                format!("candidate {fp}: empty event stream"),
            ));
        }
        if fate == "pruned" {
            pruned_fps.push(fp.to_string());
        }
        let mut discovered = false;
        let mut sel_id: Option<u16> = None;
        for ev in events {
            let kind = ev.get("event").and_then(|v| v.as_str()).unwrap_or("");
            let stage = ev.get("stage").and_then(|v| v.as_str()).unwrap_or("");
            match KINDS.iter().find(|(k, _)| *k == kind) {
                None => {
                    r.push(Diagnostic::error(
                        "IC0700",
                        Location::Whole,
                        format!("candidate {fp}: unknown event kind {kind:?}"),
                    ));
                    continue;
                }
                Some((_, expect_stage)) if *expect_stage != stage => {
                    r.push(Diagnostic::error(
                        "IC0700",
                        Location::Whole,
                        format!("candidate {fp}: event {kind:?} claims stage {stage:?}"),
                    ));
                }
                Some(_) => {}
            }
            if KINDS.iter().any(|(k, s)| *k == kind && *s == "select") {
                has_select_events = true;
            }
            match kind {
                "discovered" => discovered = true,
                "selected_as_cfu" => {
                    if let Some(id) = ev.get("cfu").and_then(|v| v.as_u64()) {
                        sel_id = Some(id as u16);
                        referenced_ids.push((id as u16, fp.to_string()));
                    }
                }
                "subsumed_by" => {
                    if let Some(id) = ev.get("cfu").and_then(|v| v.as_u64()) {
                        referenced_ids.push((id as u16, fp.to_string()));
                    }
                }
                "wildcarded" => {
                    if let Some(id) = ev.get("partner").and_then(|v| v.as_u64()) {
                        referenced_ids.push((id as u16, fp.to_string()));
                    }
                }
                "replaced" => {
                    let before = ev
                        .get("cycles_before")
                        .and_then(|v| v.as_u64())
                        .unwrap_or(0);
                    let after = ev.get("cycles_after").and_then(|v| v.as_u64()).unwrap_or(0);
                    replaced_delta += before.saturating_sub(after);
                }
                _ => {}
            }
        }
        if let Some(id) = sel_id {
            selected_ids.push((id, fp.to_string(), discovered));
        }
    }

    if let Some(mdes) = mdes {
        let cfu_fps: Vec<String> = mdes
            .cfus
            .iter()
            .map(|c| isax_prov::fingerprint_hex(isax_select::pattern_fingerprint(&c.pattern).0))
            .collect();
        // IC0701: every MDES CFU was selected on the record, from a
        // discovered candidate. Only meaningful when the report covers
        // the select stage (a compile-only report legitimately has no
        // selection events).
        if has_select_events {
            for spec in &mdes.cfus {
                match selected_ids.iter().find(|(id, _, _)| *id == spec.id) {
                    None => r.push(Diagnostic::error(
                        "IC0701",
                        Location::Cfu { id: spec.id },
                        "CFU in the MDES has no SelectedAsCfu event in the provenance report",
                    )),
                    Some((_, fp, discovered)) => {
                        if fp != &cfu_fps[spec.id as usize] {
                            r.push(Diagnostic::error(
                                "IC0703",
                                Location::Cfu { id: spec.id },
                                format!(
                                    "SelectedAsCfu candidate {fp} does not match the CFU's \
                                     pattern fingerprint {}",
                                    cfu_fps[spec.id as usize]
                                ),
                            ));
                        }
                        if !discovered {
                            r.push(Diagnostic::error(
                                "IC0701",
                                Location::Cfu { id: spec.id },
                                "selected CFU's candidate has no Discovered event",
                            ));
                        }
                    }
                }
            }
        }
        // IC0703: every referenced CFU id must exist in the MDES.
        for (id, fp) in &referenced_ids {
            if mdes.cfu(*id).is_none() {
                r.push(Diagnostic::error(
                    "IC0703",
                    Location::Cfu { id: *id },
                    format!("candidate {fp} references CFU id {id} unknown to the MDES"),
                ));
            }
        }
        // IC0704: a pruned candidate by definition never became a CFU.
        for fp in &pruned_fps {
            if let Some(pos) = cfu_fps.iter().position(|c| c == fp) {
                r.push(Diagnostic::error(
                    "IC0704",
                    Location::Cfu { id: pos as u16 },
                    format!("candidate {fp} has fate `pruned` but appears in the MDES"),
                ));
            }
        }
    }

    // IC0702: cycle accounting. Every applied replacement carries its
    // savings; the report's Replaced deltas must sum to the same total —
    // which is exactly the baseline-vs-custom cycle gap the evaluation
    // reports (before scheduling slack).
    if let Some(compiled) = compiled {
        let claimed: u64 = compiled.applied.iter().map(|a| a.savings).sum();
        if claimed != replaced_delta {
            r.push(Diagnostic::error(
                "IC0702",
                Location::Whole,
                format!(
                    "Replaced cycle deltas sum to {replaced_delta} but the compiled program \
                     claims {claimed} cycles saved"
                ),
            ));
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_explore::{explore_app, ExploreConfig};
    use isax_hwlib::HwLibrary;
    use isax_ir::{function_dfgs, FunctionBuilder, Program};
    use isax_select::{combine, select_greedy, SelectConfig};

    fn parse(text: &str) -> isax_json::Value {
        isax_json::parse(text).expect("test JSON parses")
    }

    #[test]
    fn structural_rules_fire_on_malformed_reports() {
        let bad_version = parse(r#"{"version": 99, "candidates": []}"#);
        let r = check_provenance(&bad_version, None, None);
        assert!(r.has_code("IC0700"));

        let bad_fp = parse(
            r#"{"version": 1, "candidates": [
                {"fingerprint": "xyz", "fate": "selected", "events": []}
            ]}"#,
        );
        let r = check_provenance(&bad_fp, None, None);
        assert!(r.has_code("IC0700"));

        let bad_fate = parse(
            r#"{"version": 1, "candidates": [
                {"fingerprint": "00000000000000ab", "fate": "vanished",
                 "events": [{"event": "discovered", "stage": "explore"}]}
            ]}"#,
        );
        let r = check_provenance(&bad_fate, None, None);
        assert!(r.has_code("IC0700"));

        let wrong_stage = parse(
            r#"{"version": 1, "candidates": [
                {"fingerprint": "00000000000000ab", "fate": "not_selected",
                 "events": [{"event": "discovered", "stage": "compile"}]}
            ]}"#,
        );
        let r = check_provenance(&wrong_stage, None, None);
        assert!(r.has_code("IC0700"));
    }

    #[test]
    fn clean_minimal_report_passes() {
        let doc = parse(
            r#"{"version": 1, "candidates": [
                {"fingerprint": "00000000000000ab", "fate": "not_selected",
                 "events": [{"event": "discovered", "stage": "explore"}]}
            ]}"#,
        );
        assert!(check_provenance(&doc, None, None).is_clean());
    }

    /// One end-to-end test: a real pipeline run with recording on
    /// produces a report that passes every IC07xx rule, and targeted
    /// corruptions of that report trip the right codes.
    #[test]
    fn real_run_report_is_clean_and_corruptions_are_caught() {
        let mut fb = FunctionBuilder::new("kern", 3);
        fb.set_entry_weight(10_000);
        let (a, b, k) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.xor(a, k);
        let l = fb.shl(t, 5i64);
        let rr = fb.shr(t, 27i64);
        let rot = fb.or(l, rr);
        let s = fb.add(rot, b);
        fb.ret(&[s.into()]);
        let p = Program::new(vec![fb.finish()]);
        let hw = HwLibrary::micron_018();

        let _on = isax_prov::enable();
        let dfgs = function_dfgs(&p.functions[0]);
        let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
        let cfus = combine(&dfgs, &found.candidates, &hw);
        let sel = select_greedy(&cfus, &SelectConfig::with_budget(15.0));
        let mdes = isax_compiler::Mdes::from_selection("kern", &cfus, &sel, &hw, 64);
        let compiled =
            isax_compiler::compile(&p, &mdes, &hw, &isax_compiler::CompileOptions::default());

        // Assemble the full log the way the CLI does: explore events,
        // then the selection events (derived like core::selection_prov),
        // then the compile events.
        let mut log = found.prov.clone();
        for (i, sc) in sel.chosen.iter().enumerate() {
            let c = &cfus[sc.candidate];
            log.record(
                c.fingerprint.0,
                isax_prov::ProvEvent::SelectedAsCfu {
                    cfu: i as u16,
                    area: sc.charged_area,
                    delay: c.delay,
                    estimated_value: sc.estimated_value,
                },
            );
        }
        log.merge(compiled.prov.clone());
        assert!(!log.is_empty(), "recording was enabled");

        let doc = isax_prov::build_report("kern", &log);
        let clean = check_provenance(&doc, Some(&mdes), Some(&compiled));
        assert!(clean.is_clean(), "real report must verify:\n{clean}");

        // Corrupt a Replaced delta → IC0702.
        let mut text = doc.to_string_pretty();
        assert!(text.contains("cycles_before"));
        text = text.replacen("\"cycles_before\": ", "\"cycles_before\": 9", 1);
        let tampered = parse(&text);
        assert!(
            check_provenance(&tampered, Some(&mdes), Some(&compiled)).has_code("IC0702"),
            "inflated savings must be caught"
        );

        // Drop every selection event → IC0701 (the MDES CFU has no
        // on-the-record selection).
        let no_select = doc
            .to_string_pretty()
            .replace("\"selected_as_cfu\"", "\"subsumed_by\"");
        let tampered = parse(&no_select);
        assert!(
            check_provenance(&tampered, Some(&mdes), Some(&compiled)).has_code("IC0701"),
            "missing SelectedAsCfu must be caught"
        );

        // Reference a CFU id the MDES does not know → IC0703.
        let bad_id = doc.to_string_pretty().replace("\"cfu\": 0", "\"cfu\": 200");
        let tampered = parse(&bad_id);
        assert!(
            check_provenance(&tampered, Some(&mdes), Some(&compiled)).has_code("IC0703"),
            "unknown CFU id must be caught"
        );
    }
}
