//! Checkpoint 2: dataflow-graph well-formedness (`IC02xx`).
//!
//! The per-block DFGs are the data structure every later stage is built
//! around; a malformed edge here surfaces as a miscompare three stages
//! later. This pass checks, for every DFG of the application:
//!
//! * `IC0201` — all dependence edges point forward in program order and
//!   the graph is acyclic (program order is supposed to be a topological
//!   order; growth and matching both rely on it);
//! * `IC0202` — predecessor and successor adjacency lists mirror each
//!   other exactly, for all three edge kinds (data, memory-ordering,
//!   anti);
//! * `IC0203` — the memory-ordering edges equal those of an independent
//!   reconstruction of the DFG from the block (store→load, load→store,
//!   store→store serialization must not drift from the IR);
//! * `IC0204` / `IC0205` — the slack analysis is coherent: an
//!   independently recomputed ASAP/ALAP agrees with [`Dfg::schedule_info`],
//!   every node has `asap ≤ alap`, slack is exactly `alap − asap`, and
//!   the block length is the maximum finish time.

use isax_hwlib::HwLibrary;
use isax_ir::{Dfg, Inst, Opcode, Program};

use crate::diag::{Diagnostic, Location, Report};

/// Checks every DFG of `program`. `dfgs` must be the application's DFGs
/// in function-then-block order, exactly as `isax::Analysis` stores
/// them.
pub fn check_dfgs(program: &Program, dfgs: &[Dfg], hw: &HwLibrary) -> Report {
    let mut report = Report::new();

    // Map DFG index -> (function, block) by walking the same
    // function-then-block order the pipeline used to build `dfgs`.
    let mut spans = Vec::new();
    for (fi, f) in program.functions.iter().enumerate() {
        for bi in 0..f.blocks.len() {
            spans.push((fi, bi));
        }
    }
    if spans.len() != dfgs.len() {
        report.push(Diagnostic::error(
            "IC0203",
            Location::Whole,
            format!(
                "application has {} blocks but {} DFGs were supplied",
                spans.len(),
                dfgs.len()
            ),
        ));
        return report;
    }

    for (di, dfg) in dfgs.iter().enumerate() {
        check_edges(di, dfg, &mut report);
        check_slack(di, dfg, hw, &mut report);
    }

    // Independent reconstruction per function (liveness is per function).
    let mut di = 0usize;
    for f in &program.functions {
        let live = f.liveness();
        for (bi, block) in f.blocks.iter().enumerate() {
            let rebuilt = Dfg::build(block, &live.live_out[bi]);
            compare_order_edges(di, &dfgs[di], &rebuilt, &mut report);
            di += 1;
        }
    }
    report
}

/// Forward edges, acyclicity, and pred/succ mirror consistency.
fn check_edges(di: usize, dfg: &Dfg, report: &mut Report) {
    let n = dfg.len();
    for v in 0..n {
        for &(u, p) in dfg.data_preds(v) {
            if u >= v {
                report.push(Diagnostic::error(
                    "IC0201",
                    Location::Dfg {
                        dfg: di,
                        node: Some(v),
                    },
                    format!("data edge {u}->{v} does not point forward in program order"),
                ));
            }
            if u < n && !dfg.data_succs(u).iter().any(|&(d, q)| d == v && q == p) {
                report.push(Diagnostic::error(
                    "IC0202",
                    Location::Dfg {
                        dfg: di,
                        node: Some(v),
                    },
                    format!("data edge {u}->{v} (port {p}) missing from successor list of {u}"),
                ));
            }
        }
        for &(d, p) in dfg.data_succs(v) {
            if !dfg.data_preds(d).iter().any(|&(u, q)| u == v && q == p) {
                report.push(Diagnostic::error(
                    "IC0202",
                    Location::Dfg {
                        dfg: di,
                        node: Some(v),
                    },
                    format!("data edge {v}->{d} (port {p}) missing from predecessor list of {d}"),
                ));
            }
        }
        mirror_unlabelled(
            di,
            v,
            n,
            "ordering",
            |x| dfg.order_preds(x),
            |x| dfg.order_succs(x),
            report,
        );
        mirror_unlabelled(
            di,
            v,
            n,
            "anti",
            |x| dfg.anti_preds(x),
            |x| dfg.anti_succs(x),
            report,
        );
    }
    if dfg.to_digraph().has_cycle() {
        report.push(Diagnostic::error(
            "IC0201",
            Location::Dfg {
                dfg: di,
                node: None,
            },
            "dependence graph contains a cycle".to_string(),
        ));
    }
}

/// Mirror check for an unlabelled edge kind (memory-ordering or anti):
/// every predecessor edge of `v` must be forward and appear in the
/// source's successor list, and vice versa.
fn mirror_unlabelled<'a>(
    di: usize,
    v: usize,
    n: usize,
    kind: &str,
    preds_of: impl Fn(usize) -> &'a [usize],
    succs_of: impl Fn(usize) -> &'a [usize],
    report: &mut Report,
) {
    for &u in preds_of(v) {
        if u >= v {
            report.push(Diagnostic::error(
                "IC0201",
                Location::Dfg {
                    dfg: di,
                    node: Some(v),
                },
                format!("{kind} edge {u}->{v} does not point forward in program order"),
            ));
        }
        if u < n && !succs_of(u).contains(&v) {
            report.push(Diagnostic::error(
                "IC0202",
                Location::Dfg {
                    dfg: di,
                    node: Some(v),
                },
                format!("{kind} edge {u}->{v} missing from successor list of {u}"),
            ));
        }
    }
    for &d in succs_of(v) {
        if d < n && !preds_of(d).contains(&v) {
            report.push(Diagnostic::error(
                "IC0202",
                Location::Dfg {
                    dfg: di,
                    node: Some(v),
                },
                format!("{kind} edge {v}->{d} missing from predecessor list of {d}"),
            ));
        }
    }
}

/// Memory-ordering edges of `dfg` must equal those of `rebuilt`.
fn compare_order_edges(di: usize, dfg: &Dfg, rebuilt: &Dfg, report: &mut Report) {
    if dfg.len() != rebuilt.len() {
        report.push(Diagnostic::error(
            "IC0203",
            Location::Dfg {
                dfg: di,
                node: None,
            },
            format!(
                "DFG has {} nodes but its block has {} instructions",
                dfg.len(),
                rebuilt.len()
            ),
        ));
        return;
    }
    for v in 0..dfg.len() {
        let mut got: Vec<usize> = dfg.order_preds(v).to_vec();
        let mut want: Vec<usize> = rebuilt.order_preds(v).to_vec();
        got.sort_unstable();
        want.sort_unstable();
        if got != want {
            report.push(Diagnostic::error(
                "IC0203",
                Location::Dfg {
                    dfg: di,
                    node: Some(v),
                },
                format!("memory-ordering predecessors {got:?} differ from reconstruction {want:?}"),
            ));
        }
    }
}

/// ASAP/ALAP/slack coherence against an independent recomputation.
fn check_slack(di: usize, dfg: &Dfg, hw: &HwLibrary, report: &mut Report) {
    let lat = |i: &Inst| match i.opcode {
        Opcode::Custom(_) => 1,
        _ => hw.sw_latency_of(i),
    };
    let info = dfg.schedule_info(lat);
    let n = dfg.len();
    let lats: Vec<u32> = (0..n).map(|v| lat(dfg.inst(v))).collect();

    // Independent forward pass (earliest start).
    let mut asap = vec![0u32; n];
    for v in 0..n {
        let mut t = 0;
        for &(u, _) in dfg.data_preds(v) {
            t = t.max(asap[u] + lats[u]);
        }
        for &u in dfg.order_preds(v) {
            t = t.max(asap[u] + lats[u]);
        }
        for &u in dfg.anti_preds(v) {
            t = t.max(asap[u]); // write may issue with the last read
        }
        asap[v] = t;
    }
    let length = (0..n).map(|v| asap[v] + lats[v]).max().unwrap_or(0);

    // Independent backward pass (latest start without stretching).
    let mut alap = vec![0u32; n];
    for v in (0..n).rev() {
        let mut t = length;
        for &(d, _) in dfg.data_succs(v) {
            t = t.min(alap[d]);
        }
        for &d in dfg.order_succs(v) {
            t = t.min(alap[d]);
        }
        for &d in dfg.anti_succs(v) {
            t = t.min(alap[d] + lats[v]);
        }
        alap[v] = t - lats[v];
    }

    for v in 0..n {
        if info.asap[v] != asap[v] || info.alap[v] != alap[v] {
            report.push(Diagnostic::error(
                "IC0204",
                Location::Dfg {
                    dfg: di,
                    node: Some(v),
                },
                format!(
                    "schedule_info asap/alap ({}, {}) differ from recomputation ({}, {})",
                    info.asap[v], info.alap[v], asap[v], alap[v]
                ),
            ));
        }
        if info.asap[v] > info.alap[v] {
            report.push(Diagnostic::error(
                "IC0204",
                Location::Dfg {
                    dfg: di,
                    node: Some(v),
                },
                format!("asap {} exceeds alap {}", info.asap[v], info.alap[v]),
            ));
        }
        if info.slack[v] != info.alap[v].saturating_sub(info.asap[v]) {
            report.push(Diagnostic::error(
                "IC0205",
                Location::Dfg {
                    dfg: di,
                    node: Some(v),
                },
                format!(
                    "slack {} is not alap - asap = {}",
                    info.slack[v],
                    info.alap[v].saturating_sub(info.asap[v])
                ),
            ));
        }
    }
    if info.length != length {
        report.push(Diagnostic::error(
            "IC0205",
            Location::Dfg {
                dfg: di,
                node: None,
            },
            format!(
                "block length {} differs from recomputed critical path {length}",
                info.length
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::{function_dfgs, FunctionBuilder};

    fn kernel() -> Program {
        let mut fb = FunctionBuilder::new("k", 2);
        fb.set_entry_weight(100);
        let (a, b) = (fb.param(0), fb.param(1));
        let t = fb.xor(a, b);
        let addr = fb.add(t, 16i64);
        let v = fb.ldw(addr);
        fb.stw(addr, v);
        let u = fb.add(v, t);
        fb.ret(&[u.into()]);
        Program::new(vec![fb.finish()])
    }

    #[test]
    fn well_formed_dfgs_are_clean() {
        let p = kernel();
        let dfgs: Vec<Dfg> = p.functions.iter().flat_map(function_dfgs).collect();
        let report = check_dfgs(&p, &dfgs, &HwLibrary::micron_018());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn wrong_dfg_count_is_reported() {
        let p = kernel();
        let report = check_dfgs(&p, &[], &HwLibrary::micron_018());
        assert!(report.has_code("IC0203"));
    }

    #[test]
    fn drifted_order_edges_are_reported() {
        // Give the checker DFGs built against the wrong block: build
        // a second program whose block lacks the store, then check its
        // DFGs against `kernel()`.
        let p = kernel();
        let mut fb = FunctionBuilder::new("k", 2);
        fb.set_entry_weight(100);
        let (a, b) = (fb.param(0), fb.param(1));
        let t = fb.xor(a, b);
        let addr = fb.add(t, 16i64);
        let v = fb.ldw(addr);
        let v2 = fb.ldw(addr);
        let u = fb.add(v, t);
        let _ = v2;
        fb.ret(&[u.into()]);
        let other = Program::new(vec![fb.finish()]);
        let dfgs: Vec<Dfg> = other.functions.iter().flat_map(function_dfgs).collect();
        let report = check_dfgs(&p, &dfgs, &HwLibrary::micron_018());
        assert!(!report.is_clean());
    }
}
