//! Checkpoint 5: differential semantic verification (`IC05xx`).
//!
//! The strongest check the suite has: interpret the original and the
//! customized program on the same arguments and initial memory, and
//! require bit-identical results. Static invariants can all hold while
//! the rewrite still computes the wrong function; execution cannot be
//! fooled.
//!
//! * `IC0501` — the two programs returned different values;
//! * `IC0502` — the two programs left memory in different states;
//! * `IC0503` — either program failed to execute (unknown function,
//!   unregistered CFU semantics, fuel exhaustion).
//!
//! The same execution budget also validates the static dataflow
//! analyses: every register definition observed while interpreting
//! either program must lie inside the statically computed value range
//! and agree with the known bits ([`crate::lint::check_value_facts`],
//! `IC0810`/`IC0811`).

use isax_ir::Program;
use isax_machine::{run_both, Memory};

use crate::diag::{Diagnostic, Location, Report};

/// Interprets `original` and `customized` at `entry` on the given
/// arguments and initial memory, and reports any divergence.
pub fn check_differential(
    original: &Program,
    customized: &Program,
    entry: &str,
    args: &[u32],
    mem_init: &Memory,
    fuel: u64,
) -> Report {
    let mut report = Report::new();
    let loc = Location::Entry {
        function: entry.to_string(),
    };
    match run_both(original, customized, entry, args, mem_init, fuel) {
        Err(e) => {
            report.push(Diagnostic::error(
                "IC0503",
                loc,
                format!("execution failed on args {args:?}: {e}"),
            ));
        }
        Ok((orig_out, cust_out, orig_mem, cust_mem)) => {
            if orig_out.ret != cust_out.ret {
                report.push(Diagnostic::error(
                    "IC0501",
                    loc.clone(),
                    format!(
                        "results diverge on args {args:?}: original {:?}, customized {:?}",
                        orig_out.ret, cust_out.ret
                    ),
                ));
            }
            if orig_mem != cust_mem {
                report.push(Diagnostic::error(
                    "IC0502",
                    loc,
                    format!("memory states diverge on args {args:?}"),
                ));
            }
        }
    }
    // Same inputs, second duty: the runs double as witnesses for the
    // dataflow analyses' soundness on both sides of the rewrite.
    report.merge(crate::lint::check_value_facts(
        original, entry, args, mem_init, fuel,
    ));
    report.merge(crate::lint::check_value_facts(
        customized, entry, args, mem_init, fuel,
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::{FunctionBuilder, Opcode};

    fn add_chain() -> Program {
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let t = fb.xor(a, b);
        let u = fb.add(t, b);
        fb.ret(&[u.into()]);
        Program::new(vec![fb.finish()])
    }

    #[test]
    fn identical_programs_agree() {
        let p = add_chain();
        let report = check_differential(&p, &p, "f", &[7, 9], &Memory::new(), 10_000);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn semantic_drift_is_detected() {
        let p = add_chain();
        let mut q = add_chain();
        q.functions[0].blocks[0].insts[1].opcode = Opcode::Sub;
        let report = check_differential(&p, &q, "f", &[7, 9], &Memory::new(), 10_000);
        assert!(report.has_code("IC0501"), "{report}");
    }

    #[test]
    fn memory_drift_is_detected() {
        let mut fb = FunctionBuilder::new("g", 1);
        let a = fb.param(0);
        fb.stw(64i64, a);
        fb.ret(&[a.into()]);
        let p = Program::new(vec![fb.finish()]);

        let mut fb = FunctionBuilder::new("g", 1);
        let a = fb.param(0);
        fb.stw(68i64, a);
        fb.ret(&[a.into()]);
        let q = Program::new(vec![fb.finish()]);

        let report = check_differential(&p, &q, "g", &[5], &Memory::new(), 10_000);
        assert!(report.has_code("IC0502"), "{report}");
    }

    #[test]
    fn execution_errors_are_reported() {
        let p = add_chain();
        let report = check_differential(&p, &p, "missing", &[1, 2], &Memory::new(), 10_000);
        assert!(report.has_code("IC0503"), "{report}");
    }
}
