//! Checkpoint 1: IR and CFG well-formedness (`IC01xx`).
//!
//! Thin adapter over [`isax_ir::verify_program`], which performs the
//! actual analysis (operand arity, register ranges, terminator targets,
//! flow-sensitive definite assignment, CFU semantics registration). The
//! verifier's structured errors are converted into [`Diagnostic`]s so
//! they render uniformly with every other pass.

use isax_ir::{verify_program, Program};

use crate::diag::{Diagnostic, Report};

/// Runs the IR verifier over every function of `program` and converts
/// its findings into a [`Report`].
pub fn check_program(program: &Program) -> Report {
    let mut report = Report::new();
    if let Err(errors) = verify_program(program) {
        for e in &errors {
            report.push(Diagnostic::from(e));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::FunctionBuilder;

    #[test]
    fn valid_program_is_clean() {
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let s = fb.add(a, b);
        fb.ret(&[s.into()]);
        let p = Program::new(vec![fb.finish()]);
        assert!(check_program(&p).is_clean());
    }

    #[test]
    fn one_path_definition_is_reported_with_code() {
        use isax_ir::{BasicBlock, Function, Inst, Opcode, Terminator, VReg};
        // b0: branch p -> b1 / b2; b1 defines r1; b2 does not; b3 uses r1.
        let mut entry = BasicBlock::new(10);
        entry.term = Terminator::Branch {
            cond: VReg(0),
            taken: isax_ir::BlockId(1),
            not_taken: isax_ir::BlockId(2),
        };
        let mut then = BasicBlock::new(5);
        then.insts
            .push(Inst::new(Opcode::Mov, vec![VReg(1)], vec![VReg(0).into()]));
        then.term = Terminator::Jump(isax_ir::BlockId(3));
        let mut els = BasicBlock::new(5);
        els.term = Terminator::Jump(isax_ir::BlockId(3));
        let mut join = BasicBlock::new(10);
        join.insts.push(Inst::new(
            Opcode::Add,
            vec![VReg(2)],
            vec![VReg(1).into(), VReg(1).into()],
        ));
        join.term = Terminator::Ret(vec![VReg(2).into()]);
        let f = Function {
            name: "g".into(),
            params: vec![VReg(0)],
            blocks: vec![entry, then, els, join],
            vreg_count: 3,
        };
        let report = check_program(&Program::new(vec![f]));
        assert!(!report.is_clean());
        assert!(report.has_code("IC0105"));
    }
}
