//! Pipeline-wide static invariant checker for the `isax` suite.
//!
//! Every stage of the customization pipeline — IR construction, dataflow
//! graphs, candidate exploration, CFU combination, selection/MDES
//! emission, replacement/scheduling, and final execution — maintains
//! invariants the downstream stages silently rely on. This crate makes
//! them explicit and machine-checkable:
//!
//! * [`check_program`] — CFG/IR well-formedness via the flow-sensitive
//!   verifier (`IC01xx`);
//! * [`check_dfgs`] — dataflow-graph structure: forward edges,
//!   acyclicity, pred/succ mirror consistency, memory-ordering edges
//!   matched against an independent reconstruction, ASAP/ALAP/slack
//!   coherence (`IC02xx`);
//! * [`check_candidates`] / [`check_cfus`] / [`check_mdes`] /
//!   [`check_selection`] — the §3 legality constraints: convexity,
//!   input/output port limits, forbidden opcodes, occurrence-pattern
//!   isomorphism, wildcard-partner symmetry (`IC03xx`);
//! * [`check_compiled`] — post-replacement soundness: no dropped
//!   live-out definitions, every applied match and custom opcode
//!   resolvable, schedule legality against the VLIW model (`IC04xx`);
//! * [`check_differential`] — differential semantic verification: the
//!   original and customized programs are interpreted on the same
//!   inputs and must agree on results and memory (`IC05xx`);
//! * [`check_provenance`] — provenance-report cross-validation: every
//!   selected CFU was discovered on the record, `Replaced` cycle deltas
//!   sum to the compiled program's claimed savings, no event references
//!   an unknown candidate or CFU (`IC07xx`);
//! * [`lint_function`] / [`lint_program`] / [`check_value_facts`] —
//!   dataflow-driven lints over the interval and known-bits fixpoints
//!   (suspicious-but-legal code, warnings) and runtime soundness of the
//!   dataflow analysis itself (`IC08xx`).
//!
//! All passes report through [`Report`] with stable `IC0xxx` codes and
//! precise [`Location`]s. The pipeline in `isax-core` calls these passes
//! at checkpoints between stages when checking is enabled (the `--check`
//! CLI flag or the `ISAX_CHECK` environment variable).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod compiled;
pub mod dfg;
pub mod diag;
pub mod differential;
pub mod lint;
pub mod program;
pub mod prov;

pub use candidates::{check_candidates, check_cfus, check_mdes, check_selection};
pub use compiled::check_compiled;
pub use dfg::check_dfgs;
pub use diag::{Diagnostic, Location, Report, Severity};
pub use differential::check_differential;
pub use lint::{check_value_facts, lint_function, lint_program};
pub use program::check_program;
pub use prov::check_provenance;

/// True when the `ISAX_CHECK` environment variable requests checking
/// (`1`, `true`, `on`, or `yes`, case-insensitive).
pub fn env_enabled() -> bool {
    match std::env::var("ISAX_CHECK") {
        Ok(v) => matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on" | "yes"),
        Err(_) => false,
    }
}

/// Aborts with the rendered report if `report` contains any
/// error-severity diagnostic.
///
/// This is the checkpoint primitive: a dirty report at a pipeline
/// checkpoint means a stage produced unsound output, and continuing
/// would push the corruption downstream where it is far harder to
/// attribute.
///
/// # Panics
///
/// Panics when `report` is not clean, with `stage` and every diagnostic
/// in the panic message.
pub fn enforce(stage: &str, report: &Report) {
    if !report.is_clean() {
        panic!(
            "isax-check: {} invariant violation(s) at checkpoint `{stage}`:\n{report}",
            report.error_count()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforce_accepts_clean_reports() {
        enforce("unit", &Report::new());
        let mut warn_only = Report::new();
        warn_only.push(Diagnostic::warning("IC0205", Location::Whole, "eh"));
        enforce("unit", &warn_only);
    }

    #[test]
    #[should_panic(expected = "checkpoint `unit`")]
    fn enforce_panics_on_errors() {
        let mut r = Report::new();
        r.push(Diagnostic::error(
            "IC0301",
            Location::Candidate { index: 2 },
            "non-convex",
        ));
        enforce("unit", &r);
    }
}
