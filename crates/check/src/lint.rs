//! Dataflow-driven lints (`IC08xx`) and value-fact soundness checking.
//!
//! The lints consume the interval and known-bits fixpoints from
//! [`isax_ir::dataflow`] and flag code that is *suspicious but legal*:
//! shifts whose amount is provably out of the architectural range,
//! compares with a statically known outcome, definitions nothing reads,
//! operations that fold to a constant, and blocks no path reaches. All
//! lints are [`Severity::Warning`]s — they never fail a checkpoint — so
//! `isax lint` can run over arbitrary kernels without gating the
//! pipeline.
//!
//! [`check_value_facts`] is the other direction: it *distrusts the
//! analysis* instead of the program. It replays an instrumented
//! interpreter run and demands that every concrete register definition
//! lie inside the statically computed interval and agree with the known
//! bits. A violation means the dataflow solver itself is unsound, which
//! is an [`Severity::Error`] (`IC0810`/`IC0811`).
//!
//! # Example
//!
//! ```
//! use isax_check::lint::lint_function;
//! use isax_ir::{analyze_function, FunctionBuilder};
//!
//! let mut fb = FunctionBuilder::new("f", 1);
//! let x = fb.param(0);
//! let b = fb.zxtb(x);          // b ∈ [0, 255]
//! let c = fb.ltu(b, 256i64);   // always true
//! fb.ret(&[c.into()]);
//! let f = fb.finish();
//!
//! let report = lint_function(&f, &analyze_function(&f));
//! assert!(report.has_code("IC0802"));
//! ```

use crate::diag::{Diagnostic, Location, Report};
use isax_ir::dataflow::{transfer_inst, Domain, Facts, Interval, KnownBits};
use isax_ir::{Function, Opcode, Operand, Program, VReg};
use isax_machine::{run_observed, Memory, Observation};
use std::collections::BTreeSet;

/// Opcodes whose second operand is a shift amount masked to 5 bits at
/// evaluation time.
fn is_shift(op: Opcode) -> bool {
    use Opcode::*;
    matches!(op, Shl | Shr | Sar | Ror)
}

/// Opcodes producing a 0/1 comparison result.
fn is_compare(op: Opcode) -> bool {
    use Opcode::*;
    matches!(op, Eq | Ne | Lt | Le | Gt | Ge | Ltu | Leu | Gtu | Geu)
}

fn code_loc(f: &Function, block: usize, inst: usize) -> Location {
    Location::Code {
        function: f.name.clone(),
        block: Some(block),
        inst: Some(inst),
    }
}

/// Abstract interval of one operand under `env`.
fn operand_interval(o: &Operand, env: &[Interval]) -> Interval {
    match o {
        Operand::Reg(r) => env[r.index()],
        Operand::Imm(v) => Interval::constant(*v as u32),
    }
}

/// `Some(c)` when the operand is provably the constant `c` under `env`.
fn operand_constant(o: &Operand, env: &[Interval]) -> Option<u32> {
    operand_interval(o, env).as_constant()
}

/// Registers read anywhere in the function: instruction source operands
/// plus terminator uses (branch conditions and return operands).
fn used_registers(f: &Function) -> BTreeSet<VReg> {
    let mut used = BTreeSet::new();
    for b in &f.blocks {
        for inst in &b.insts {
            for (_, r) in inst.reg_srcs() {
                used.insert(r);
            }
        }
        for r in b.term.uses() {
            used.insert(r);
        }
    }
    used
}

/// Lints one function against its dataflow fixpoints. Every finding is
/// a warning; the report is deterministic (blocks and instructions in
/// index order, one pass).
pub fn lint_function(f: &Function, facts: &Facts) -> Report {
    let mut report = Report::new();
    let used = used_registers(f);
    for (bi, b) in f.blocks.iter().enumerate() {
        let Some(entry_iv) = facts.intervals.entry[bi].as_ref() else {
            report.push(Diagnostic::warning(
                "IC0805",
                Location::Code {
                    function: f.name.clone(),
                    block: Some(bi),
                    inst: None,
                },
                format!("block b{bi} is unreachable from the entry"),
            ));
            continue;
        };
        let mut iv = entry_iv.clone();
        for (ii, inst) in b.insts.iter().enumerate() {
            let op = inst.opcode;
            if !op.is_memory() && !op.is_custom() {
                lint_inst(f, bi, ii, inst, &iv, &used, &mut report);
            } else if op.is_load() && dead_def(inst, &used) {
                report.push(Diagnostic::warning(
                    "IC0803",
                    code_loc(f, bi, ii),
                    format!("loaded value {} is never read", inst.dsts[0]),
                ));
            }
            transfer_inst(inst, &mut iv);
        }
    }
    report
}

/// True when every destination of a defining instruction is unread.
fn dead_def(inst: &isax_ir::Inst, used: &BTreeSet<VReg>) -> bool {
    !inst.dsts.is_empty() && inst.dsts.iter().all(|d| !used.contains(d))
}

/// The per-instruction lints for pure (non-memory, non-custom) ops.
fn lint_inst(
    f: &Function,
    bi: usize,
    ii: usize,
    inst: &isax_ir::Inst,
    iv: &[Interval],
    used: &BTreeSet<VReg>,
    report: &mut Report,
) {
    let op = inst.opcode;
    let all_const = inst.srcs.iter().all(|o| operand_constant(o, iv).is_some());
    if is_shift(op) {
        let amt = operand_interval(&inst.srcs[1], iv);
        if amt.lo >= 32 {
            report.push(Diagnostic::warning(
                "IC0801",
                code_loc(f, bi, ii),
                format!(
                    "shift amount is provably in [{}, {}]; hardware masks it to 5 bits",
                    amt.lo, amt.hi
                ),
            ));
        }
    }
    if is_compare(op) && !all_const {
        let args: Vec<Interval> = inst.srcs.iter().map(|o| operand_interval(o, iv)).collect();
        if let Some(c) = Interval::transfer(op, &args).as_constant() {
            let outcome = if c == 1 { "true" } else { "false" };
            report.push(Diagnostic::warning(
                "IC0802",
                code_loc(f, bi, ii),
                format!("comparison is always {outcome}"),
            ));
        }
    }
    if all_const && op != Opcode::Mov {
        report.push(Diagnostic::warning(
            "IC0804",
            code_loc(f, bi, ii),
            format!("{op} has all-constant operands and folds to a constant"),
        ));
    }
    if dead_def(inst, used) {
        report.push(Diagnostic::warning(
            "IC0803",
            code_loc(f, bi, ii),
            format!("definition of {} is never read", inst.dsts[0]),
        ));
    }
}

/// Lints every function of `p`, solving the dataflow analyses per
/// function and merging the per-function reports in program order.
pub fn lint_program(p: &Program) -> Report {
    let mut report = Report::new();
    for f in &p.functions {
        let facts = isax_ir::analyze_function(f);
        report.merge(lint_function(f, &facts));
    }
    report
}

/// Statically computed facts for one register definition site.
type SiteFacts = Vec<Vec<Vec<(VReg, Interval, KnownBits)>>>;

/// Post-state facts for every `(block, inst, dst)` of `f`, replayed from
/// the solved entry environments. Unreachable blocks get empty rows.
fn definition_facts(f: &Function, facts: &Facts) -> SiteFacts {
    f.blocks
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            let (Some(iv0), Some(kb0)) = (
                facts.intervals.entry[bi].as_ref(),
                facts.bits.entry[bi].as_ref(),
            ) else {
                return vec![Vec::new(); b.insts.len()];
            };
            let mut iv = iv0.clone();
            let mut kb = kb0.clone();
            b.insts
                .iter()
                .map(|inst| {
                    transfer_inst(inst, &mut iv);
                    transfer_inst(inst, &mut kb);
                    inst.dsts
                        .iter()
                        .map(|d| (*d, iv[d.index()], kb[d.index()]))
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Runs `entry` under the instrumented interpreter and checks every
/// observed register definition against the static dataflow facts:
/// the concrete value must lie in the computed interval (`IC0810`) and
/// agree with the known bits (`IC0811`). Violations are errors — they
/// mean the analysis itself is unsound. Each `(block, inst, reg)` site
/// is reported at most once per code so loops cannot flood the report.
///
/// Execution failures are not this check's concern (the differential
/// checker owns them): a run that errors out yields a clean report for
/// the definitions observed up to the failure point.
pub fn check_value_facts(
    program: &Program,
    entry: &str,
    args: &[u32],
    mem: &Memory,
    fuel: u64,
) -> Report {
    let Some(f) = program.function(entry) else {
        return Report::new();
    };
    let facts = isax_ir::analyze_function(f);
    check_value_facts_with(program, entry, args, mem, fuel, &facts)
}

/// [`check_value_facts`] against externally supplied [`Facts`] — the
/// seam the tests use to prove the detector actually fires on unsound
/// fixpoints (the real solver never produces one).
pub fn check_value_facts_with(
    program: &Program,
    entry: &str,
    args: &[u32],
    mem: &Memory,
    fuel: u64,
    facts: &Facts,
) -> Report {
    let mut report = Report::new();
    let Some(f) = program.function(entry) else {
        return report;
    };
    let sites = definition_facts(f, facts);
    let reachable: Vec<bool> = facts.intervals.entry.iter().map(Option::is_some).collect();
    let mut seen: BTreeSet<(usize, usize, u32, u8)> = BTreeSet::new();
    let mut mem = mem.clone();
    let mut violations: Vec<Diagnostic> = Vec::new();
    let _ = run_observed(program, entry, args, &mut mem, fuel, |obs: Observation| {
        if !reachable[obs.block] {
            if seen.insert((obs.block, obs.inst, obs.reg.index() as u32, 0)) {
                violations.push(Diagnostic::error(
                    "IC0810",
                    Location::Code {
                        function: entry.to_string(),
                        block: Some(obs.block),
                        inst: Some(obs.inst),
                    },
                    format!(
                        "block b{} executed but the analysis marked it unreachable",
                        obs.block
                    ),
                ));
            }
            return;
        }
        let Some((_, iv, kb)) = sites[obs.block][obs.inst]
            .iter()
            .find(|(d, _, _)| *d == obs.reg)
        else {
            return;
        };
        if !iv.contains(obs.value) && seen.insert((obs.block, obs.inst, obs.reg.index() as u32, 1))
        {
            violations.push(Diagnostic::error(
                "IC0810",
                Location::Code {
                    function: entry.to_string(),
                    block: Some(obs.block),
                    inst: Some(obs.inst),
                },
                format!(
                    "observed {} = {} outside computed interval [{}, {}]",
                    obs.reg, obs.value, iv.lo, iv.hi
                ),
            ));
        }
        if !kb.contains(obs.value) && seen.insert((obs.block, obs.inst, obs.reg.index() as u32, 2))
        {
            violations.push(Diagnostic::error(
                "IC0811",
                Location::Code {
                    function: entry.to_string(),
                    block: Some(obs.block),
                    inst: Some(obs.inst),
                },
                format!(
                    "observed {} = {:#010x} contradicts known bits (known {:#010x}, value {:#010x})",
                    obs.reg, obs.value, kb.known, kb.value
                ),
            ));
        }
    });
    for d in violations {
        report.push(d);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::{analyze_function, FunctionBuilder};

    fn lint(f: &Function) -> Report {
        lint_function(f, &analyze_function(f))
    }

    #[test]
    fn clean_kernel_lints_clean() {
        let mut fb = FunctionBuilder::new("clean", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let x = fb.xor(a, b);
        let y = fb.and(x, 0xFFi64);
        fb.ret(&[y.into()]);
        let f = fb.finish();
        let r = lint(&f);
        assert!(r.is_clean() && r.diagnostics().is_empty(), "{r}");
    }

    #[test]
    fn oversized_shift_amount_fires_ic0801() {
        let mut fb = FunctionBuilder::new("s", 1);
        let a = fb.param(0);
        let k = fb.or(a, 32i64); // provably ≥ 32
        let x = fb.shl(1i64, k);
        fb.ret(&[x.into()]);
        let f = fb.finish();
        assert!(lint(&f).has_code("IC0801"));
    }

    #[test]
    fn always_true_compare_fires_ic0802() {
        let mut fb = FunctionBuilder::new("c", 1);
        let a = fb.param(0);
        let b = fb.zxtb(a);
        let c = fb.ltu(b, 300i64);
        fb.ret(&[c.into()]);
        let f = fb.finish();
        assert!(lint(&f).has_code("IC0802"));
    }

    #[test]
    fn dead_definition_fires_ic0803() {
        let mut fb = FunctionBuilder::new("d", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let _dead = fb.add(a, b);
        fb.ret(&[a.into()]);
        let f = fb.finish();
        assert!(lint(&f).has_code("IC0803"));
    }

    #[test]
    fn constant_foldable_fires_ic0804_but_not_for_mov() {
        let mut fb = FunctionBuilder::new("k", 0);
        let x = fb.mov(6i64);
        let y = fb.mul(x, 7i64);
        fb.ret(&[y.into()]);
        let f = fb.finish();
        let r = lint(&f);
        assert!(r.has_code("IC0804"));
        // The mov itself is how constants are materialized — one finding.
        let folds = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == "IC0804")
            .count();
        assert_eq!(folds, 1);
    }

    #[test]
    fn unreachable_block_fires_ic0805() {
        let mut fb = FunctionBuilder::new("u", 1);
        let x = fb.param(0);
        let dead = fb.new_block(1);
        let live = fb.new_block(1);
        fb.jump(live);
        fb.switch_to(dead);
        fb.ret(&[]);
        fb.switch_to(live);
        fb.ret(&[x.into()]);
        let f = fb.finish();
        let r = lint(&f);
        assert!(r.has_code("IC0805"));
        let _ = dead;
    }

    #[test]
    fn lints_are_warnings_and_never_fail_enforce() {
        let mut fb = FunctionBuilder::new("w", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let _dead = fb.add(a, b);
        fb.ret(&[a.into()]);
        let f = fb.finish();
        let r = lint(&f);
        assert!(!r.diagnostics().is_empty());
        assert!(r.is_clean(), "warnings must not fail checkpoints");
        crate::enforce("lint-test", &r);
    }

    #[test]
    fn value_facts_hold_on_a_looping_kernel() {
        let mut fb = FunctionBuilder::new("loop", 1);
        let n = fb.param(0);
        let body = fb.new_block(10);
        let exit = fb.new_block(1);
        let i = fb.mov(0i64);
        let acc = fb.mov(0i64);
        fb.jump(body);
        fb.switch_to(body);
        let m = fb.and(i, 0xFi64);
        let acc2 = fb.add(acc, m);
        fb.copy_to(acc, acc2);
        let i2 = fb.add(i, 1i64);
        fb.copy_to(i, i2);
        let c = fb.ne(i, n);
        fb.branch(c, body, exit);
        fb.switch_to(exit);
        fb.ret(&[acc.into()]);
        let p = Program::new(vec![fb.finish()]);
        let r = check_value_facts(&p, "loop", &[9], &Memory::new(), 10_000);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn doctored_facts_trip_the_soundness_detector() {
        // `ret v0 + 1` with facts falsely claiming every register is the
        // constant 0: the observed sum must land outside [0, 0] (IC0810)
        // and contradict all-bits-known-zero (IC0811).
        let mut fb = FunctionBuilder::new("f", 1);
        let x = fb.param(0);
        let y = fb.add(x, 1i64);
        fb.ret(&[y.into()]);
        let p = Program::new(vec![fb.finish()]);
        let mut facts = analyze_function(&p.functions[0]);
        for env in facts.intervals.entry.iter_mut().flatten() {
            env.fill(Interval::constant(0));
        }
        for env in facts.bits.entry.iter_mut().flatten() {
            env.fill(KnownBits::constant(0));
        }
        let r = check_value_facts_with(&p, "f", &[41], &Memory::new(), 100, &facts);
        assert!(r.has_code("IC0810"), "{r}");
        assert!(r.has_code("IC0811"), "{r}");
        assert!(!r.is_clean(), "soundness violations are errors");
    }

    #[test]
    fn unknown_entry_is_not_this_checks_concern() {
        let p = Program::new(vec![]);
        let r = check_value_facts(&p, "missing", &[], &Memory::new(), 100);
        assert!(r.is_clean() && r.diagnostics().is_empty());
    }
}
