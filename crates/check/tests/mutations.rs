//! Mutation testing of the invariant checker: seed a known defect into a
//! valid artifact and assert the checker rejects it with the *expected*
//! stable diagnostic code. This pins down both directions — clean inputs
//! stay clean, and each defect class maps to its own `IC0xxx` code
//! rather than some incidental downstream failure.

use isax_check::{check_candidates, check_program};
use isax_explore::{Candidate, ExploreConfig};
use isax_graph::BitSet;
use isax_ir::{function_dfgs, BlockId, Dfg, FunctionBuilder, Opcode, Program, Terminator};
use proptest::prelude::*;

/// Binary opcodes for the chain generator; every instruction consumes
/// the previous result, so dropping any definition breaks a later use.
const CHAIN_OPS: [Opcode; 6] = [
    Opcode::Add,
    Opcode::Xor,
    Opcode::And,
    Opcode::Or,
    Opcode::Sub,
    Opcode::Shl,
];

/// Builds `f(a, b)` as a dependence chain: each op combines the previous
/// value with a parameter, and the final value is returned.
fn chain_program(ops: &[usize]) -> Program {
    let mut fb = FunctionBuilder::new("chain", 2);
    fb.set_entry_weight(1_000);
    let (a, b) = (fb.param(0), fb.param(1));
    let mut prev = a;
    for (i, &oi) in ops.iter().enumerate() {
        let other = if i % 2 == 0 { b } else { a };
        prev = match CHAIN_OPS[oi % CHAIN_OPS.len()] {
            Opcode::Add => fb.add(prev, other),
            Opcode::Xor => fb.xor(prev, other),
            Opcode::And => fb.and(prev, other),
            Opcode::Or => fb.or(prev, other),
            Opcode::Sub => fb.sub(prev, other),
            _ => fb.shl(prev, 3i64),
        };
    }
    fb.ret(&[prev.into()]);
    Program::new(vec![fb.finish()])
}

/// A candidate whose port counts are recomputed from the DFG, so the
/// only seeded defect is the one under test.
fn candidate_for(dfg: &Dfg, nodes: BitSet) -> Candidate {
    Candidate {
        dfg: 0,
        inputs: dfg.input_count(&nodes),
        outputs: dfg.output_count(&nodes),
        nodes,
        delay: 1.0,
        area: 1.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(64))]

    /// Dropping a definition whose value a later instruction consumes
    /// must be rejected as an undefined use (`IC0104`).
    #[test]
    fn dropped_definition_is_ic0104(
        ops in proptest::collection::vec(0..CHAIN_OPS.len(), 3..12),
        drop_pick in 0usize..1000,
    ) {
        let mut p = chain_program(&ops);
        prop_assert!(check_program(&p).is_clean());

        let insts = &mut p.functions[0].blocks[0].insts;
        // Never drop the last instruction: its value feeds only `ret`,
        // which reports IC0107 (undefined control use) instead.
        let k = drop_pick % (insts.len() - 1);
        insts.remove(k);

        let report = check_program(&p);
        prop_assert!(report.has_code("IC0104"), "{report}");
    }

    /// Retargeting a terminator at a block that does not exist must be
    /// rejected as a bad target (`IC0106`), without panicking on the
    /// malformed CFG.
    #[test]
    fn out_of_range_terminator_is_ic0106(
        ops in proptest::collection::vec(0..CHAIN_OPS.len(), 3..12),
        bogus in 1u32..1000,
    ) {
        let mut p = chain_program(&ops);
        let f = &mut p.functions[0];
        let target = BlockId(f.blocks.len() as u32 - 1 + bogus);
        f.blocks[0].term = Terminator::Jump(target);

        let report = check_program(&p);
        prop_assert!(report.has_code("IC0106"), "{report}");
    }

    /// A candidate that skips over an intermediate node of the chain is
    /// non-convex and must be rejected as such (`IC0301`).
    #[test]
    fn non_convex_candidate_is_ic0301(
        ops in proptest::collection::vec(0..CHAIN_OPS.len(), 3..12),
        start_pick in 0usize..1000,
    ) {
        let p = chain_program(&ops);
        let dfgs = function_dfgs(&p.functions[0]);
        let dfg = &dfgs[0];
        prop_assume!(dfg.len() >= 3);
        let start = start_pick % (dfg.len() - 2);

        // {start, start+2}: the dependence path start -> start+1 ->
        // start+2 leaves the set and re-enters it.
        let mut nodes = BitSet::new();
        nodes.insert(start);
        nodes.insert(start + 2);
        let cand = candidate_for(dfg, nodes);

        let hw = isax_hwlib::HwLibrary::micron_018();
        let report = check_candidates(&dfgs, &[cand], &ExploreConfig::default(), &hw);
        prop_assert!(report.has_code("IC0301"), "{report}");
    }

    /// Any real operation has at least one register input, so a
    /// zero-input-port constraint must reject every candidate with the
    /// input-limit code (`IC0302`).
    #[test]
    fn input_port_violation_is_ic0302(
        ops in proptest::collection::vec(0..CHAIN_OPS.len(), 3..12),
        node_pick in 0usize..1000,
    ) {
        let p = chain_program(&ops);
        let dfgs = function_dfgs(&p.functions[0]);
        let dfg = &dfgs[0];
        let node = node_pick % dfg.len();
        let cand = candidate_for(dfg, BitSet::new().with(node));
        prop_assert!(cand.inputs > 0);

        let config = ExploreConfig {
            max_inputs: 0,
            ..ExploreConfig::default()
        };
        let hw = isax_hwlib::HwLibrary::micron_018();
        let report = check_candidates(&dfgs, &[cand], &config, &hw);
        prop_assert!(report.has_code("IC0302"), "{report}");
    }

    /// The flip side: unmutated artifacts never trip the checker.
    #[test]
    fn unmutated_chains_are_clean(
        ops in proptest::collection::vec(0..CHAIN_OPS.len(), 3..12),
    ) {
        let p = chain_program(&ops);
        prop_assert!(check_program(&p).is_clean());
        let dfgs = function_dfgs(&p.functions[0]);
        let hw = isax_hwlib::HwLibrary::micron_018();
        let result = isax_explore::explore_app(&dfgs, &hw, &ExploreConfig::default());
        let report = check_candidates(&dfgs, &result.candidates, &ExploreConfig::default(), &hw);
        prop_assert!(report.is_clean(), "{report}");
    }
}

/// One deterministic regression outside proptest: the dropped-definition
/// diagnostic must carry precise function/block/instruction coordinates
/// when rendered.
#[test]
fn dropped_definition_location_is_precise() {
    let mut p = chain_program(&[0, 1, 2, 3]);
    p.functions[0].blocks[0].insts.remove(0);
    let report = check_program(&p);
    let diag = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "IC0104")
        .expect("undefined use reported");
    let rendered = diag.to_string();
    assert!(rendered.contains("chain:b0:"), "{rendered}");
}
