//! Dependency-free JSON for the isax suite.
//!
//! The workspace compiles in environments with no crate registry, so it
//! cannot pull in `serde`/`serde_json`. The machine-description files
//! and benchmark reports the suite emits are small and have fixed
//! schemas, so this hand-rolled [`Value`] tree with a recursive-descent
//! parser and a pretty printer covers everything needed.
//!
//! Numbers keep their lexical class: integers parse to [`Value::Int`] /
//! [`Value::UInt`] and only decimals or exponents become
//! [`Value::Float`]. Floats print with Rust's shortest-roundtrip
//! formatting, so a parse → print → parse cycle is lossless.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that fits in `i64` (always used for negatives).
    Int(i64),
    /// A non-negative integer too large for `i64`.
    UInt(u64),
    /// A number written with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved for printing.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`; integers widen.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object's field list.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field of an object (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation, like
    /// `serde_json::to_string_pretty`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => write_f64(out, *f),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

/// Builds an object value from `(key, value)` pairs, preserving order.
pub fn object(fields: impl IntoIterator<Item = (impl Into<String>, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

/// Builds an array value.
pub fn array(items: impl IntoIterator<Item = Value>) -> Value {
    Value::Array(items.into_iter().collect())
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i64)
    }
}
impl From<u64> for Value {
    /// Normalizes to [`Value::Int`] when the value fits, matching what
    /// [`parse`] produces for the same number, so constructed values
    /// round-trip through serialization with `==` intact. `UInt` is
    /// reserved for the `i64`-overflow range.
    fn from(v: u64) -> Value {
        match i64::try_from(v) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::UInt(v),
        }
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

/// Writes `f` so it parses back to the identical bits: Rust's `{}` is
/// shortest-roundtrip, but bare integral floats like `3` must keep a
/// `.0` to stay in the float lexical class.
fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; serde_json errors here, we emit null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse or schema error, with byte offset for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of the error in the input, when known.
    pub offset: Option<usize>,
}

impl Error {
    /// Builds a schema-level error (no input offset).
    pub fn msg(msg: impl Into<String>) -> Error {
        Error {
            msg: msg.into(),
            offset: None,
        }
    }

    fn at(msg: impl Into<String>, offset: usize) -> Error {
        Error {
            msg: msg.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {}", self.msg, o),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

/// Parses a complete JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing characters after JSON value", p.pos));
    }
    Ok(v)
}

/// Deepest nesting the parser accepts; guards against stack overflow on
/// adversarial inputs like ten thousand `[`s.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::at("nesting too deep", self.pos));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(Error::at("unexpected character", self.pos)),
            None => Err(Error::at("unexpected end of input", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::at(format!("expected '{word}'"), self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::at("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::at("invalid UTF-8 in string", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            s.push(c);
                            continue;
                        }
                        _ => return Err(Error::at("bad escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(Error::at("control character in string", self.pos)),
                None => return Err(Error::at("unterminated string", self.pos)),
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let hex4 = |p: &mut Self| -> Result<u32, Error> {
            let end = p.pos + 4;
            let digits = p
                .bytes
                .get(p.pos..end)
                .and_then(|d| std::str::from_utf8(d).ok())
                .ok_or_else(|| Error::at("truncated \\u escape", p.pos))?;
            let v =
                u32::from_str_radix(digits, 16).map_err(|_| Error::at("bad \\u escape", p.pos))?;
            p.pos = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: require the low half.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = hex4(self)?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| Error::at("bad surrogate", self.pos));
                }
            }
            return Err(Error::at("unpaired surrogate", self.pos));
        }
        char::from_u32(hi).ok_or_else(|| Error::at("bad \\u escape", self.pos))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut lexical_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    lexical_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !lexical_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(if let Ok(i) = i64::try_from(u) {
                    Value::Int(i)
                } else {
                    Value::UInt(u)
                });
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::at("invalid number", start))
    }
}

/// Sorted string-keyed map view used by report emitters that want
/// stable field order independent of insertion order.
pub fn sorted_object(map: BTreeMap<String, Value>) -> Value {
    Value::Object(map.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "42",
            "18446744073709551615",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string_compact(), text, "{text}");
        }
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse("-2e3").unwrap(), Value::Float(-2000.0));
        assert_eq!(
            parse("9223372036854775808").unwrap(),
            Value::UInt(9223372036854775808)
        );
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [0.1, 1.0 / 3.0, 2.5e-17, 123456.789, 3.0, f64::MIN_POSITIVE] {
            let mut s = String::new();
            write_f64(&mut s, f);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {s}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Value::Str("a\"b\\c\nd\tе".into());
        let text = v.to_string_compact();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(
            parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            Value::Str("Aé😀".into())
        );
    }

    #[test]
    fn nested_structures_pretty_print() {
        let v = object([
            ("name", Value::from("cfu0")),
            ("ports", array([Value::from(1u64), Value::from(2u64)])),
            ("empty", Value::Array(vec![])),
            ("meta", object([("ok", Value::Bool(true))])),
        ]);
        let pretty = v.to_string_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"ports\": [\n    1,\n    2\n  ]"));
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{не json",
            "[1]]",
            "\"\\q\"",
            "nul",
            "--3",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err(), "over-deep nesting must be rejected");
    }

    #[test]
    fn accessors_and_get() {
        let v = parse(r#"{"a": 3, "b": -1, "c": 2.5, "d": "x", "e": [1], "f": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("a").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("b").unwrap().as_i64(), Some(-1));
        assert_eq!(v.get("b").unwrap().as_u64(), None);
        assert_eq!(v.get("c").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("d").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("e").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("f").unwrap().as_bool(), Some(true));
        assert!(v.get("zz").is_none());
    }
}
