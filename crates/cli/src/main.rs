//! Thin shim over the `isax-cli` library.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match isax_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    // ISAX_TRACE=1 prints a stage summary to stderr; ISAX_TRACE=path
    // additionally writes a Chrome trace there. `--trace-out` (handled
    // inside `execute`) takes precedence when both are given.
    let env_trace = isax_trace::init_from_env();
    let mut stdout = std::io::stdout();
    let result = isax_cli::execute(&cmd, &mut stdout);
    if let Some(t) = env_trace {
        t.finish();
    }
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
