//! Thin shim over the `isax-cli` library.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match isax_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    if let Err(e) = isax_cli::execute(&cmd, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
