//! Implementation of the `isax` command-line tool.
//!
//! The binary drives the whole toolflow over textual IR files (the
//! `Display`/[`isax_ir::parse`] assembly format):
//!
//! ```text
//! isax explore  kernel.isax                      # exploration stats + top CFU candidates
//! isax customize kernel.isax --budget 15 -o m.json   # generate a machine description
//! isax compile  kernel.isax --mdes m.json [--subsumed] [--wildcard] [--emit out.isax]
//! isax lint     kernel.isax                      # IC08xx dataflow lints
//! isax run      kernel.isax --entry f --args 1,2,3
//! isax simulate kernel.isax --entry f --args 1,2,3    # with VLIW cycle counts
//! isax dot      kernel.isax --function f --block 1    # Graphviz dump of one DFG
//! ```
//!
//! The library half exists so the argument parsing and command logic are
//! unit-testable; `main.rs` is a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use isax::{Customizer, MatchMode, MatchOptions, Mdes};
use isax_ir::{parse_program, Program};
use isax_machine::Memory;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `explore <file> [--check] [--trace-out PATH] [--prov-out PATH]`
    Explore {
        /// IR file.
        file: String,
        /// Run the stage-checkpoint invariant checker.
        check: bool,
        /// Write a Chrome trace_event JSON file of the run.
        trace_out: Option<String>,
        /// Deterministic work-unit budget per governed (stage, item).
        work_budget: Option<u64>,
        /// Write a decision-provenance JSON report of the run.
        prov_out: Option<String>,
        /// Beam width for the explorer's frontier (`None` = exhaustive).
        beam_width: Option<usize>,
        /// Price primitives at their analyzed effective operand widths.
        width_aware: bool,
    },
    /// `customize <file> [--budget B] [--name N] [--out PATH] [--multifunction] [--check]`
    Customize {
        /// IR file.
        file: String,
        /// Area budget (adders).
        budget: f64,
        /// Application name recorded in the MDES.
        name: String,
        /// Where to write the MDES JSON (stdout when `None`).
        out: Option<String>,
        /// Use multifunction-family selection.
        multifunction: bool,
        /// Run the stage-checkpoint invariant checker.
        check: bool,
        /// Write a Chrome trace_event JSON file of the run.
        trace_out: Option<String>,
        /// Deterministic work-unit budget per governed (stage, item).
        work_budget: Option<u64>,
        /// Write a decision-provenance JSON report of the run.
        prov_out: Option<String>,
        /// Beam width for the explorer's frontier (`None` = exhaustive).
        beam_width: Option<usize>,
        /// Price primitives at their analyzed effective operand widths.
        width_aware: bool,
    },
    /// `lint <file>` — run the `IC08xx` dataflow lints over every
    /// function and print the findings (warnings; never an error exit).
    Lint {
        /// IR file.
        file: String,
    },
    /// `compile <file> --mdes PATH [--subsumed] [--wildcard] [--emit PATH] [--check]`
    Compile {
        /// IR file.
        file: String,
        /// MDES JSON path.
        mdes: String,
        /// Enable subsumed-subgraph matching.
        subsumed: bool,
        /// Enable opcode-class wildcard matching.
        wildcard: bool,
        /// Optional path for the customized assembly.
        emit: Option<String>,
        /// Run the stage-checkpoint invariant checker.
        check: bool,
        /// Write a Chrome trace_event JSON file of the run.
        trace_out: Option<String>,
        /// Deterministic work-unit budget per governed (stage, item).
        work_budget: Option<u64>,
        /// Write a decision-provenance JSON report of the run.
        prov_out: Option<String>,
    },
    /// `explain <report.json> [--cfu N | --candidate FP | --kernel F] [--top N]`
    Explain {
        /// Provenance report path (from `--prov-out` / `ISAX_PROV`).
        file: String,
        /// Narrate the candidate that became this CFU id.
        cfu: Option<u16>,
        /// Narrate the candidate with this canonical fingerprint (a
        /// unique hex prefix is accepted).
        candidate: Option<String>,
        /// Restrict the attribution table to one function.
        kernel: Option<String>,
        /// How many candidates the overview/attribution tables list.
        top: usize,
    },
    /// `simulate <file> --entry NAME [--args a,b,c] [--fuel N]`
    Simulate {
        /// IR file.
        file: String,
        /// Entry function.
        entry: String,
        /// Arguments.
        args: Vec<u32>,
        /// Instruction budget.
        fuel: u64,
    },
    /// `run <file> --entry NAME [--args a,b,c] [--fuel N]`
    Run {
        /// IR file.
        file: String,
        /// Entry function.
        entry: String,
        /// Arguments.
        args: Vec<u32>,
        /// Instruction budget.
        fuel: u64,
    },
    /// `dot <file> [--function NAME] [--block N]`
    Dot {
        /// IR file.
        file: String,
        /// Function name (first function when `None`).
        function: Option<String>,
        /// Block index.
        block: usize,
    },
    /// `serve [--addr A] [--workers N] [--queue-cap N]
    /// [--admission-budget N] [--access-log V] [--metrics-out PATH]` —
    /// run the customization job server until a client sends
    /// `shutdown`.
    Serve {
        /// Bind address (default `127.0.0.1:0`; port 0 picks a free
        /// port, printed on startup).
        addr: String,
        /// Worker threads (default: the `ISAX_THREADS` pool width).
        workers: Option<usize>,
        /// Bounded work-queue capacity (default 64).
        queue_cap: Option<usize>,
        /// Per-request admission cap in isax-guard work units.
        admission_budget: Option<u64>,
        /// Access-log destination (`0`/`off`, `1` for stderr, or a
        /// path; default: the `ISAX_SERVE_LOG` environment variable).
        access_log: Option<String>,
        /// Write the final Prometheus-text metrics exposition here at
        /// shutdown.
        metrics_out: Option<String>,
    },
    /// `gen [--seed N] [--domain D] [--blocks B] [--out PATH]`, or
    /// `gen --stress NAME | --curated NAME | --list` — emit a kernel
    /// from the seeded generator or one of the built-in corpora.
    Gen {
        /// PRNG seed (`--seed`, default 0).
        seed: u64,
        /// Domain profile (`--domain graph|dsp|mixed`, default mixed).
        domain: isax_gen::GenDomain,
        /// Requested block count (`--blocks`, default 8).
        blocks: usize,
        /// Regenerate a named stress-corpus kernel instead.
        stress: Option<String>,
        /// Regenerate a named curated-corpus kernel instead.
        curated: Option<String>,
        /// List every named kernel the command can regenerate.
        list: bool,
        /// Where to write the kernel (stdout when `None`).
        out: Option<String>,
    },
}

/// A usage/argument error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// The help text.
pub const USAGE: &str = "\
isax — automated instruction-set customization (MICRO-36 2003 reproduction)

USAGE:
    isax explore   <file.isax> [--check] [--trace-out trace.json] [--prov-out report.json] [--work-budget N] [--beam-width N] [--width-aware]
    isax customize <file.isax> [--budget N] [--name APP] [--out mdes.json] [--multifunction] [--check] [--trace-out trace.json] [--prov-out report.json] [--work-budget N] [--beam-width N] [--width-aware]
    isax lint      <file.isax>
    isax compile   <file.isax> --mdes mdes.json [--subsumed] [--wildcard] [--emit out.isax] [--check] [--trace-out trace.json] [--prov-out report.json] [--work-budget N]
    isax explain   <report.json> [--cfu N | --candidate FINGERPRINT | --kernel FUNC] [--top N]
    isax run       <file.isax> --entry FUNC [--args 1,2,3] [--fuel N]
    isax simulate  <file.isax> --entry FUNC [--args 1,2,3] [--fuel N]
    isax dot       <file.isax> [--function FUNC] [--block N]
    isax gen       [--seed N] [--domain graph|dsp|mixed] [--blocks B] [--out out.isax]
    isax gen       --stress NAME | --curated NAME | --list  [--out out.isax]
    isax serve     [--addr HOST:PORT] [--workers N] [--queue-cap N] [--admission-budget N] [--access-log V] [--metrics-out PATH]

`--check` (or the ISAX_CHECK=1 environment variable) runs the isax-check
invariant passes at every pipeline checkpoint and aborts with IC0xxx
diagnostics on the first violation.

`--trace-out PATH` writes a Chrome trace_event JSON file of the run
(open in chrome://tracing or https://ui.perfetto.dev). Setting
ISAX_TRACE=1 instead prints a stage summary to stderr; ISAX_TRACE=PATH
does both.

`--prov-out PATH` records decision provenance — why every candidate
subgraph was discovered, pruned, subsumed, selected, matched or
replaced — and writes the versioned JSON report to PATH. Setting
ISAX_PROV=1 instead prints a one-line summary to the command output;
ISAX_PROV=PATH writes the report there (`0`/`off` disable). Query a
report with `isax explain`.

`isax lint` solves the value-range and known-bits dataflow analyses for
every function and prints IC08xx findings: shift amounts provably >= 32
(IC0801), always-true/false compares (IC0802), dead definitions
(IC0803), constant-foldable operations (IC0804) and unreachable blocks
(IC0805). Findings are warnings; the command only fails on I/O or parse
errors.

`--width-aware` (or ISAX_WIDTH=1) prices each primitive at the effective
operand width inferred by the dataflow analyses instead of the full 32
bits, so a provably-8-bit add costs a quarter of a 32-bit one in both
the explorer's guide and the selector's area accounting. Off by
default; default outputs are byte-identical with or without this build.

`--beam-width N` (or ISAX_BEAM=N) switches exploration to beam-ordered
growth: each frontier level keeps only the N best-scored unexamined
candidates. Unset (or 0) is the exhaustive depth-first default.

`--work-budget N` (or ISAX_BUDGET=N) bounds every governed pipeline stage
to N deterministic work units per item — candidates examined, VF2 states
visited, scheduler steps — and degrades gracefully to best-so-far results,
printing one `degraded:` line per truncation. Note `--budget` is the CFU
*area* budget in adders; `--work-budget` is compute effort. Related
environment variables: ISAX_DEADLINE_MS=N adds a wall-clock safety net
(marks the run non-reproducible when it trips); ISAX_FAULT=stage:kind:nth
(e.g. `match:panic:0`) injects a fault for testing containment.

`isax gen` emits a verifier-clean, lint-clean kernel deterministically
derived from `--seed`/`--domain`/`--blocks` (the kernels under
`kernels/gen/` record their recipe in MANIFEST.json). `--stress NAME`
regenerates a kernels/stress corpus file byte-identically; `--curated
NAME` regenerates a kernels/graph or kernels/dsp corpus file; `--list`
names them all.

`isax serve` runs the pipeline as a long-running job server: clients
send newline-delimited JSON `customize`/`compile`/`stats`/`shutdown`
requests over TCP and receive the same artifact bytes the one-shot
commands write. Repeated kernels are answered from a content-addressed
cache; `--admission-budget N` caps every request at N work units;
ISAX_SERVE_STATS=1 prints a summary at shutdown, ISAX_SERVE_STATS=PATH
writes the final stats JSON there (`0`/`off` disable — the same value
grammar as ISAX_TRACE/ISAX_PROV).

Serve telemetry: `--access-log V` (or ISAX_SERVE_LOG=V) writes one
compact-JSON line per request — accepted, busy-rejected or malformed —
with a deterministic request id, stage latencies, cache and admission
outcome (`1` = stderr, PATH = file). Clients can send a `metrics`
request at any time for a Prometheus-text exposition (counters, gauges
and log-bucketed latency histograms); `--metrics-out PATH` writes the
final exposition at shutdown. ISAX_FLAME=1 prints inferno-compatible
folded stacks for any traced command to stderr at exit (ISAX_FLAME=PATH
writes them to PATH); feed them to `inferno-flamegraph` or any
flamegraph renderer.
";

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn beam_width_flag(args: &[String]) -> Result<Option<usize>, UsageError> {
    match flag_value(args, "--beam-width") {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&w| w > 0)
            .map(Some)
            .ok_or_else(|| UsageError(format!("bad --beam-width `{v}` (want a positive integer)"))),
        None => Ok(None),
    }
}

fn work_budget_flag(args: &[String]) -> Result<Option<u64>, UsageError> {
    match flag_value(args, "--work-budget") {
        Some(v) => v
            .parse::<u64>()
            .map(Some)
            .map_err(|_| UsageError(format!("bad --work-budget `{v}`"))),
        None => Ok(None),
    }
}

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns a [`UsageError`] describing the first problem.
pub fn parse_args(args: &[String]) -> Result<Command, UsageError> {
    let Some(cmd) = args.first() else {
        return Err(UsageError(USAGE.into()));
    };
    // `gen` synthesizes its kernel — it is the one command with no
    // input file, so it parses before the generic file extraction.
    if cmd == "gen" {
        let rest = &args[1..];
        let seed = match flag_value(rest, "--seed") {
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| UsageError(format!("bad --seed `{v}`")))?,
            None => 0,
        };
        let domain = match flag_value(rest, "--domain") {
            Some(v) => isax_gen::GenDomain::parse(v).ok_or_else(|| {
                UsageError(format!("bad --domain `{v}` (want graph, dsp or mixed)"))
            })?,
            None => isax_gen::GenDomain::Mixed,
        };
        let blocks = match flag_value(rest, "--blocks") {
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| UsageError(format!("bad --blocks `{v}`")))?,
            None => 8,
        };
        return Ok(Command::Gen {
            seed,
            domain,
            blocks,
            stress: flag_value(rest, "--stress").map(str::to_string),
            curated: flag_value(rest, "--curated").map(str::to_string),
            list: has_flag(rest, "--list"),
            out: flag_value(rest, "--out").map(str::to_string),
        });
    }
    // `serve` runs a server, not a file — it also parses before the
    // generic file extraction.
    if cmd == "serve" {
        let rest = &args[1..];
        let parse_usize = |flag: &str| -> Result<Option<usize>, UsageError> {
            match flag_value(rest, flag) {
                Some(v) => v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .map(Some)
                    .ok_or_else(|| {
                        UsageError(format!("bad {flag} `{v}` (want a positive integer)"))
                    }),
                None => Ok(None),
            }
        };
        let admission_budget = match flag_value(rest, "--admission-budget") {
            Some(v) => Some(
                v.parse::<u64>()
                    .map_err(|_| UsageError(format!("bad --admission-budget `{v}`")))?,
            ),
            None => None,
        };
        return Ok(Command::Serve {
            addr: flag_value(rest, "--addr")
                .unwrap_or("127.0.0.1:0")
                .to_string(),
            workers: parse_usize("--workers")?,
            queue_cap: parse_usize("--queue-cap")?,
            admission_budget,
            access_log: flag_value(rest, "--access-log").map(str::to_string),
            metrics_out: flag_value(rest, "--metrics-out").map(str::to_string),
        });
    }
    let file = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .ok_or_else(|| UsageError(format!("{cmd}: missing input file\n\n{USAGE}")))?;
    let rest = &args[2..];
    match cmd.as_str() {
        "explore" => Ok(Command::Explore {
            file,
            check: has_flag(rest, "--check"),
            trace_out: flag_value(rest, "--trace-out").map(str::to_string),
            work_budget: work_budget_flag(rest)?,
            prov_out: flag_value(rest, "--prov-out").map(str::to_string),
            beam_width: beam_width_flag(rest)?,
            width_aware: has_flag(rest, "--width-aware"),
        }),
        "lint" => Ok(Command::Lint { file }),
        "customize" => {
            let budget = match flag_value(rest, "--budget") {
                Some(b) => b
                    .parse::<f64>()
                    .map_err(|_| UsageError(format!("bad --budget `{b}`")))?,
                None => 15.0,
            };
            let name = flag_value(rest, "--name")
                .map(str::to_string)
                .unwrap_or_else(|| {
                    std::path::Path::new(&file)
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_else(|| "app".into())
                });
            Ok(Command::Customize {
                file,
                budget,
                name,
                out: flag_value(rest, "--out").map(str::to_string),
                multifunction: has_flag(rest, "--multifunction"),
                check: has_flag(rest, "--check"),
                trace_out: flag_value(rest, "--trace-out").map(str::to_string),
                work_budget: work_budget_flag(rest)?,
                prov_out: flag_value(rest, "--prov-out").map(str::to_string),
                beam_width: beam_width_flag(rest)?,
                width_aware: has_flag(rest, "--width-aware"),
            })
        }
        "compile" => {
            let mdes = flag_value(rest, "--mdes")
                .ok_or_else(|| UsageError("compile: --mdes is required".into()))?
                .to_string();
            Ok(Command::Compile {
                file,
                mdes,
                subsumed: has_flag(rest, "--subsumed"),
                wildcard: has_flag(rest, "--wildcard"),
                emit: flag_value(rest, "--emit").map(str::to_string),
                check: has_flag(rest, "--check"),
                trace_out: flag_value(rest, "--trace-out").map(str::to_string),
                work_budget: work_budget_flag(rest)?,
                prov_out: flag_value(rest, "--prov-out").map(str::to_string),
            })
        }
        "explain" => {
            let cfu = match flag_value(rest, "--cfu") {
                Some(v) => Some(
                    v.parse::<u16>()
                        .map_err(|_| UsageError(format!("bad --cfu `{v}`")))?,
                ),
                None => None,
            };
            let top = match flag_value(rest, "--top") {
                Some(v) => v
                    .parse::<usize>()
                    .map_err(|_| UsageError(format!("bad --top `{v}`")))?,
                None => 10,
            };
            Ok(Command::Explain {
                file,
                cfu,
                candidate: flag_value(rest, "--candidate").map(str::to_string),
                kernel: flag_value(rest, "--kernel").map(str::to_string),
                top,
            })
        }
        "run" | "simulate" => {
            let entry = flag_value(rest, "--entry")
                .ok_or_else(|| UsageError("run: --entry is required".into()))?
                .to_string();
            let args_list = match flag_value(rest, "--args") {
                Some(list) => list
                    .split(',')
                    .filter(|t| !t.is_empty())
                    .map(|t| {
                        let t = t.trim();
                        if let Some(hex) = t.strip_prefix("0x") {
                            u32::from_str_radix(hex, 16)
                        } else {
                            t.parse::<u32>()
                        }
                        .map_err(|_| UsageError(format!("bad argument `{t}`")))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                None => Vec::new(),
            };
            let fuel = match flag_value(rest, "--fuel") {
                Some(f) => f
                    .parse::<u64>()
                    .map_err(|_| UsageError(format!("bad --fuel `{f}`")))?,
                None => 10_000_000,
            };
            if cmd == "simulate" {
                Ok(Command::Simulate {
                    file,
                    entry,
                    args: args_list,
                    fuel,
                })
            } else {
                Ok(Command::Run {
                    file,
                    entry,
                    args: args_list,
                    fuel,
                })
            }
        }
        "dot" => Ok(Command::Dot {
            file,
            function: flag_value(rest, "--function").map(str::to_string),
            block: match flag_value(rest, "--block") {
                Some(b) => b
                    .parse::<usize>()
                    .map_err(|_| UsageError(format!("bad --block `{b}`")))?,
                None => 0,
            },
        }),
        other => Err(UsageError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn load_program(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_program(&text).map_err(|e| format!("{path}:{e}"))
}

impl Command {
    /// The `--trace-out` path, for the commands that accept one.
    pub fn trace_out(&self) -> Option<&str> {
        match self {
            Command::Explore { trace_out, .. }
            | Command::Customize { trace_out, .. }
            | Command::Compile { trace_out, .. } => trace_out.as_deref(),
            _ => None,
        }
    }

    /// The `--prov-out` path, for the commands that accept one.
    pub fn prov_out(&self) -> Option<&str> {
        match self {
            Command::Explore { prov_out, .. }
            | Command::Customize { prov_out, .. }
            | Command::Compile { prov_out, .. } => prov_out.as_deref(),
            _ => None,
        }
    }
}

/// Where a pipeline command's provenance goes: nowhere, a one-line
/// summary on the command output, or a full JSON report file.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ProvSink {
    Off,
    Summary,
    File(String),
}

impl ProvSink {
    /// Resolves the destination: an explicit `--prov-out` beats the
    /// `ISAX_PROV` environment variable.
    fn resolve(prov_out: Option<&str>) -> ProvSink {
        match prov_out {
            Some(p) => ProvSink::File(p.to_string()),
            None => match isax_prov::env_mode() {
                isax_prov::EnvMode::Off => ProvSink::Off,
                isax_prov::EnvMode::Summary => ProvSink::Summary,
                isax_prov::EnvMode::Path(p) => ProvSink::File(p),
            },
        }
    }

    /// Turns recording on for the pipeline run when the sink wants it.
    fn guard(&self) -> Option<isax_prov::EnableGuard> {
        (*self != ProvSink::Off).then(isax_prov::enable)
    }
}

/// Builds the provenance report from a merged log and delivers it to the
/// sink; with `check` set, cross-validates it first (IC07xx).
fn emit_prov(
    out: &mut dyn std::io::Write,
    sink: &ProvSink,
    app: &str,
    log: &isax::ProvLog,
    check: bool,
    mdes: Option<&Mdes>,
    compiled: Option<&isax_compiler::CompiledProgram>,
) -> Result<(), String> {
    if *sink == ProvSink::Off {
        return Ok(());
    }
    let doc = isax::build_report(app, log);
    if check {
        isax::enforce("provenance", &isax::check_provenance(&doc, mdes, compiled));
    }
    let summary = isax_prov::summarize(log).one_line();
    match sink {
        ProvSink::Off => unreachable!(),
        ProvSink::Summary => writeln!(out, "provenance: {summary}").map_err(|e| e.to_string()),
        ProvSink::File(path) => {
            let mut text = doc.to_string_pretty();
            text.push('\n');
            std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
            writeln!(out, "provenance report ({summary}) written to {path}")
                .map_err(|e| e.to_string())
        }
    }
}

/// The application name stamped into provenance reports when the command
/// has no `--name`: the input file's stem.
fn app_name(file: &str) -> String {
    std::path::Path::new(file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "app".into())
}

// ---- `isax explain`: render a provenance report for humans ----------------

fn ju(v: &isax_json::Value, k: &str) -> u64 {
    v.get(k).and_then(|x| x.as_u64()).unwrap_or(0)
}

fn jf(v: &isax_json::Value, k: &str) -> f64 {
    v.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0)
}

fn js<'a>(v: &'a isax_json::Value, k: &str) -> &'a str {
    v.get(k).and_then(|x| x.as_str()).unwrap_or("")
}

/// `score 31.2 = criticality 10.0 + latency 8.1 + area 3.1 + io 10.0`.
fn score_line(s: &isax_json::Value) -> String {
    format!(
        "score {:.1} = criticality {:.1} + latency {:.1} + area {:.1} + io {:.1}",
        jf(s, "total"),
        jf(s, "criticality"),
        jf(s, "latency"),
        jf(s, "area"),
        jf(s, "io")
    )
}

/// Recomputes the lowest axis from a serialized score object.
fn weakest_axis_of(s: &isax_json::Value) -> &'static str {
    let mut weakest = ("criticality", jf(s, "criticality"));
    for axis in ["latency", "area", "io"] {
        let v = jf(s, axis);
        if v < weakest.1 {
            weakest = (
                match axis {
                    "latency" => "latency",
                    "area" => "area",
                    _ => "io",
                },
                v,
            );
        }
    }
    weakest.0
}

/// One narrative line (occasionally two) per provenance event.
fn render_event(e: &isax_json::Value) -> String {
    match js(e, "event") {
        "discovered" => {
            let mut line = format!(
                "[explore] discovered in dfg {}: {} op(s), {} in / {} out, {:.2} adders, delay {:.2} cycle(s)",
                ju(e, "dfg"),
                ju(e, "size"),
                ju(e, "inputs"),
                ju(e, "outputs"),
                jf(e, "area"),
                jf(e, "delay")
            );
            match e.get("score") {
                Some(s) => line.push_str(&format!("\n              via growth {}", score_line(s))),
                None => line.push_str(" (seed operation, admitted unscored)"),
            }
            line
        }
        "pruned" => {
            let why = match js(e, "reason") {
                "fanout_cap" => "scored above threshold but lost the fanout cut",
                _ => "guide score below threshold",
            };
            match e.get("score") {
                Some(s) => format!(
                    "[explore] pruned in dfg {} — {}: {} vs threshold {:.1}; weakest axis: {}",
                    ju(e, "dfg"),
                    why,
                    score_line(s),
                    jf(e, "threshold"),
                    weakest_axis_of(s)
                ),
                None => format!("[explore] pruned in dfg {} — {}", ju(e, "dfg"), why),
            }
        }
        "subsumed_by" => format!(
            "[select]  pattern subsumed by cfu {} — matchable inside the larger unit",
            ju(e, "cfu")
        ),
        "wildcarded" => format!(
            "[select]  wildcard partner of cfu {} — same shape, one opcode apart",
            ju(e, "partner")
        ),
        "selected_as_cfu" => format!(
            "[select]  selected as cfu {}: charged {:.2} adders, delay {:.2} cycle(s), estimated value {} cycles",
            ju(e, "cfu"),
            jf(e, "area"),
            jf(e, "delay"),
            ju(e, "estimated_value")
        ),
        "matched" => format!(
            "[compile] {} legal match(es) in {} block {}",
            ju(e, "count"),
            js(e, "function"),
            ju(e, "block")
        ),
        "replaced" => {
            let before = ju(e, "cycles_before");
            let after = ju(e, "cycles_after");
            format!(
                "[compile] replaced in {} block {}: {} -> {} weighted cycles (saved {})",
                js(e, "function"),
                ju(e, "block"),
                before,
                after,
                before.saturating_sub(after)
            )
        }
        other => format!("[?]       unknown event `{other}`"),
    }
}

/// `candidate <fp> — fate: selected, cfu 3, 4 match(es), 8200 cycles saved`.
fn candidate_header(c: &isax_json::Value) -> String {
    let mut h = format!(
        "candidate {} — fate: {}",
        js(c, "fingerprint"),
        js(c, "fate")
    );
    if let Some(id) = c.get("cfu").and_then(|v| v.as_u64()) {
        h.push_str(&format!(", cfu {id}"));
    }
    if let Some(m) = c.get("matches").and_then(|v| v.as_u64()) {
        h.push_str(&format!(", {m} match(es)"));
    }
    if let Some(cy) = c.get("cycles_saved").and_then(|v| v.as_u64()) {
        h.push_str(&format!(", {cy} cycles saved"));
    }
    h
}

/// Full narrative for one candidate: header plus one line per event.
fn render_candidate(out: &mut dyn std::io::Write, c: &isax_json::Value) -> Result<(), String> {
    writeln!(out, "{}", candidate_header(c)).map_err(|e| e.to_string())?;
    for e in c.get("events").and_then(|v| v.as_array()).unwrap_or(&[]) {
        writeln!(out, "  {}", render_event(e)).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Per-function totals over `matched`/`replaced` events:
/// `(function, matches, replacements, cycles_saved)` rows.
fn attribution(cands: &[isax_json::Value], kernel: Option<&str>) -> Vec<(String, u64, u64, u64)> {
    let mut rows: std::collections::BTreeMap<String, (u64, u64, u64)> = Default::default();
    for c in cands {
        for e in c.get("events").and_then(|v| v.as_array()).unwrap_or(&[]) {
            let f = js(e, "function");
            if f.is_empty() || kernel.is_some_and(|k| k != f) {
                continue;
            }
            let row = rows.entry(f.to_string()).or_default();
            match js(e, "event") {
                "matched" => row.0 += ju(e, "count"),
                "replaced" => {
                    row.1 += 1;
                    row.2 += ju(e, "cycles_before").saturating_sub(ju(e, "cycles_after"));
                }
                _ => {}
            }
        }
    }
    rows.into_iter()
        .map(|(f, (m, r, cy))| (f, m, r, cy))
        .collect()
}

fn write_attribution(
    out: &mut dyn std::io::Write,
    rows: &[(String, u64, u64, u64)],
) -> Result<(), String> {
    let w =
        |out: &mut dyn std::io::Write, s: String| writeln!(out, "{s}").map_err(|e| e.to_string());
    if rows.is_empty() {
        return w(out, "  (no matches recorded)".into());
    }
    w(
        out,
        format!(
            "  {:<24} {:>8} {:>13} {:>13}",
            "function", "matches", "replacements", "cycles saved"
        ),
    )?;
    for (f, m, r, cy) in rows {
        w(out, format!("  {f:<24} {m:>8} {r:>13} {cy:>13}"))?;
    }
    Ok(())
}

/// The `isax explain` command: load a provenance report and answer "why
/// did this happen" queries over it.
fn explain(
    out: &mut dyn std::io::Write,
    file: &str,
    cfu: Option<u16>,
    candidate: Option<&str>,
    kernel: Option<&str>,
    top: usize,
) -> Result<(), String> {
    let w =
        |out: &mut dyn std::io::Write, s: String| writeln!(out, "{s}").map_err(|e| e.to_string());
    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let doc = isax_json::parse(&text).map_err(|e| format!("{file}: {e}"))?;
    let version = ju(&doc, "version");
    if version != isax_prov::REPORT_VERSION {
        return Err(format!(
            "{file}: provenance report version {version}, this isax understands {}",
            isax_prov::REPORT_VERSION
        ));
    }
    let cands = doc
        .get("candidates")
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("{file}: not a provenance report (no `candidates` array)"))?;

    // One candidate, narrated end to end.
    if let Some(id) = cfu {
        let c = cands
            .iter()
            .find(|c| c.get("cfu").and_then(|v| v.as_u64()) == Some(u64::from(id)))
            .ok_or_else(|| format!("no candidate became cfu {id} in this report"))?;
        render_candidate(out, c)?;
        let rows = attribution(std::slice::from_ref(c), None);
        if !rows.is_empty() {
            w(out, "per-kernel attribution:".into())?;
            write_attribution(out, &rows)?;
        }
        return Ok(());
    }
    if let Some(q) = candidate {
        let q = q.to_ascii_lowercase();
        let hits: Vec<&isax_json::Value> = cands
            .iter()
            .filter(|c| js(c, "fingerprint").starts_with(&q))
            .collect();
        return match hits.len() {
            0 => Err(format!("no candidate with fingerprint prefix `{q}`")),
            1 => render_candidate(out, hits[0]),
            n => Err(format!(
                "fingerprint prefix `{q}` is ambiguous ({n} candidates)"
            )),
        };
    }

    // Overview (optionally restricted to one kernel function).
    let scoped: Vec<&isax_json::Value> = match kernel {
        Some(k) => cands
            .iter()
            .filter(|c| {
                c.get("events")
                    .and_then(|v| v.as_array())
                    .unwrap_or(&[])
                    .iter()
                    .any(|e| js(e, "function") == k)
            })
            .collect(),
        None => cands.iter().collect(),
    };
    let summary = doc.get("summary");
    let fates = summary.and_then(|s| s.get("fates"));
    let stages = summary.and_then(|s| s.get("stages"));
    w(
        out,
        format!(
            "provenance report for `{}`: {} candidates ({} selected, {} not selected, {} pruned), {} events (explore {}, select {}, compile {})",
            js(&doc, "app"),
            summary.map_or(0, |s| ju(s, "candidates")),
            fates.map_or(0, |f| ju(f, "selected")),
            fates.map_or(0, |f| ju(f, "not_selected")),
            fates.map_or(0, |f| ju(f, "pruned")),
            summary.map_or(0, |s| ju(s, "events")),
            stages.map_or(0, |s| ju(s, "explore")),
            stages.map_or(0, |s| ju(s, "select")),
            stages.map_or(0, |s| ju(s, "compile")),
        ),
    )?;
    if let Some(k) = kernel {
        w(
            out,
            format!("{} candidate(s) touch kernel `{k}`", scoped.len()),
        )?;
    }
    let mut ranked: Vec<&isax_json::Value> = scoped.clone();
    ranked.sort_by_key(|c| {
        std::cmp::Reverse((
            c.get("cycles_saved").and_then(|v| v.as_u64()).unwrap_or(0),
            c.get("matches").and_then(|v| v.as_u64()).unwrap_or(0),
            c.get("cfu").and_then(|v| v.as_u64()).is_some(),
        ))
    });
    w(
        out,
        format!("top {} candidates by cycles saved:", top.min(ranked.len())),
    )?;
    w(
        out,
        format!(
            "  {:>4}  {:<16}  {:<12}  {:>7}  {:>12}",
            "cfu", "fingerprint", "fate", "matches", "cycles saved"
        ),
    )?;
    for c in ranked.iter().take(top) {
        let cfu_cell = c
            .get("cfu")
            .and_then(|v| v.as_u64())
            .map_or_else(|| "-".into(), |id| id.to_string());
        w(
            out,
            format!(
                "  {:>4}  {:<16}  {:<12}  {:>7}  {:>12}",
                cfu_cell,
                js(c, "fingerprint"),
                js(c, "fate"),
                c.get("matches").and_then(|v| v.as_u64()).unwrap_or(0),
                c.get("cycles_saved").and_then(|v| v.as_u64()).unwrap_or(0)
            ),
        )?;
    }
    let rows = attribution(cands, kernel);
    w(out, "per-kernel attribution:".into())?;
    write_attribution(out, &rows)?;
    w(
        out,
        "query one lifecycle with --cfu N or --candidate FINGERPRINT".into(),
    )?;
    Ok(())
}

/// Executes a command, writing human output to `out`.
///
/// When the command carries `--trace-out PATH`, the pipeline runs under
/// an [`isax_trace::Recorder`] and the Chrome trace_event document is
/// written to PATH afterwards.
///
/// # Errors
///
/// Returns a description of the failure (file, parse, or execution).
pub fn execute(cmd: &Command, out: &mut dyn std::io::Write) -> Result<(), String> {
    let Some(path) = cmd.trace_out() else {
        return execute_inner(cmd, out);
    };
    let rec = isax_trace::Recorder::install();
    let result = execute_inner(cmd, out);
    isax_trace::uninstall();
    std::fs::write(path, rec.chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
    writeln!(out, "chrome trace written to {path}").map_err(|e| e.to_string())?;
    result
}

fn execute_inner(cmd: &Command, out: &mut dyn std::io::Write) -> Result<(), String> {
    let w =
        |out: &mut dyn std::io::Write, s: String| writeln!(out, "{s}").map_err(|e| e.to_string());
    // One `degraded:` line per governance event, so truncated results are
    // never silently presented as complete.
    fn report_degradations(
        out: &mut dyn std::io::Write,
        degradations: &[isax::Degradation],
    ) -> Result<(), String> {
        for d in degradations {
            writeln!(out, "degraded: {d}").map_err(|e| e.to_string())?;
        }
        Ok(())
    }
    match cmd {
        Command::Explore {
            file,
            check,
            work_budget,
            prov_out,
            beam_width,
            width_aware,
            ..
        } => {
            let p = load_program(file)?;
            let sink = ProvSink::resolve(prov_out.as_deref());
            let _prov = sink.guard();
            let mut cz = Customizer::new();
            cz.check |= *check;
            if *width_aware {
                cz.ctx_mut().hw = cz.hw.clone().with_width_aware(true);
            }
            if beam_width.is_some() {
                cz.ctx_mut().explore.beam_width = *beam_width;
            }
            if let Some(u) = work_budget {
                cz.guard = cz.guard.clone().with_units(*u);
            }
            let analysis = cz.analyze(&p);
            report_degradations(out, &analysis.degradations)?;
            w(
                out,
                format!(
                    "{}: {} instructions, {} blocks",
                    file,
                    p.inst_count(),
                    analysis.dfgs.len()
                ),
            )?;
            w(
                out,
                format!(
                    "explored {} candidate subgraphs ({} directions pruned) -> {} CFU candidates",
                    analysis.stats.examined,
                    analysis.stats.directions_pruned,
                    analysis.cfus.len()
                ),
            )?;
            let mut ranked: Vec<_> = analysis.cfus.iter().collect();
            ranked.sort_by_key(|c| std::cmp::Reverse(c.estimated_value()));
            w(out, "top candidates by estimated value:".into())?;
            for c in ranked.iter().take(10) {
                w(
                    out,
                    format!(
                        "  {:<28} {:2} ops  {:6.2} adders  {:2} occurrence(s)  value {}",
                        c.describe(),
                        c.size(),
                        c.area,
                        c.occurrences.len(),
                        c.estimated_value()
                    ),
                )?;
            }
            emit_prov(
                out,
                &sink,
                &app_name(file),
                &analysis.prov,
                cz.check,
                None,
                None,
            )?;
            Ok(())
        }
        Command::Customize {
            file,
            budget,
            name,
            out: out_path,
            multifunction,
            check,
            work_budget,
            prov_out,
            beam_width,
            width_aware,
            ..
        } => {
            let p = load_program(file)?;
            let sink = ProvSink::resolve(prov_out.as_deref());
            let _prov = sink.guard();
            let mut cz = Customizer::new();
            cz.check |= *check;
            if *width_aware {
                cz.ctx_mut().hw = cz.hw.clone().with_width_aware(true);
            }
            if beam_width.is_some() {
                cz.ctx_mut().explore.beam_width = *beam_width;
            }
            if let Some(u) = work_budget {
                cz.guard = cz.guard.clone().with_units(*u);
            }
            let analysis = cz.analyze(&p);
            report_degradations(out, &analysis.degradations)?;
            let (mdes, sel) = if *multifunction {
                cz.select_multifunction(name, &analysis, *budget)
            } else {
                cz.select(name, &analysis, *budget)
            };
            report_degradations(out, &sel.degradations)?;
            let json = mdes.to_json().map_err(|e| e.to_string())?;
            match out_path {
                Some(path) => {
                    std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
                    w(
                        out,
                        format!(
                            "wrote {} CFUs ({:.2} adders charged) to {path}",
                            mdes.cfus.len(),
                            sel.total_area
                        ),
                    )?;
                }
                None => w(out, json)?,
            }
            let mut plog = analysis.prov.clone();
            plog.merge(sel.prov.clone());
            emit_prov(out, &sink, name, &plog, cz.check, Some(&mdes), None)?;
            Ok(())
        }
        Command::Lint { file } => {
            let p = load_program(file)?;
            let report = isax::lint_program(&p);
            for d in report.diagnostics() {
                w(out, d.to_string())?;
            }
            let funcs = p.functions.len();
            let n = report.diagnostics().len();
            if n == 0 {
                w(out, format!("{file}: clean ({funcs} function(s) linted)"))?;
            } else {
                w(
                    out,
                    format!("{file}: {n} finding(s) in {funcs} function(s)"),
                )?;
            }
            Ok(())
        }
        Command::Compile {
            file,
            mdes,
            subsumed,
            wildcard,
            emit,
            check,
            work_budget,
            prov_out,
            ..
        } => {
            let p = load_program(file)?;
            let sink = ProvSink::resolve(prov_out.as_deref());
            let _prov = sink.guard();
            let text = std::fs::read_to_string(mdes).map_err(|e| format!("{mdes}: {e}"))?;
            let mdes = Mdes::from_json(&text).map_err(|e| format!("{mdes}: {e}"))?;
            let mut cz = Customizer::new();
            cz.check |= *check;
            if let Some(u) = work_budget {
                cz.guard = cz.guard.clone().with_units(*u);
            }
            let matching = MatchOptions {
                mode: if *wildcard {
                    MatchMode::Wildcard
                } else {
                    MatchMode::Exact
                },
                allow_subsumed: *subsumed,
            };
            let ev = cz.evaluate(&p, &mdes, matching);
            report_degradations(out, &ev.compiled.degradations)?;
            w(
                out,
                format!(
                    "baseline {} cycles -> customized {} cycles  (speedup {:.3}x)",
                    ev.baseline_cycles, ev.custom_cycles, ev.speedup
                ),
            )?;
            w(
                out,
                format!(
                    "{} replacement(s): {} exact, {} subsumed",
                    ev.compiled.applied.len(),
                    ev.compiled.exact_matches(),
                    ev.compiled.subsumed_matches()
                ),
            )?;
            if let Some(path) = emit {
                let text: String = ev
                    .compiled
                    .program
                    .functions
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("\n");
                std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
                w(out, format!("customized assembly written to {path}"))?;
            }
            emit_prov(
                out,
                &sink,
                &app_name(file),
                &ev.compiled.prov,
                cz.check,
                Some(&mdes),
                Some(&ev.compiled),
            )?;
            Ok(())
        }
        Command::Explain {
            file,
            cfu,
            candidate,
            kernel,
            top,
        } => explain(
            out,
            file,
            *cfu,
            candidate.as_deref(),
            kernel.as_deref(),
            *top,
        ),
        Command::Run {
            file,
            entry,
            args,
            fuel,
        } => {
            let p = load_program(file)?;
            let mut mem = Memory::new();
            let r =
                isax_machine::run(&p, entry, args, &mut mem, *fuel).map_err(|e| e.to_string())?;
            w(
                out,
                format!(
                    "{entry}({}) = {:?}   [{} dynamic instructions]",
                    args.iter()
                        .map(u32::to_string)
                        .collect::<Vec<_>>()
                        .join(", "),
                    r.ret,
                    r.steps
                ),
            )?;
            Ok(())
        }
        Command::Simulate {
            file,
            entry,
            args,
            fuel,
        } => {
            let p = load_program(file)?;
            let mut mem = Memory::new();
            let r = isax_machine::simulate(
                &p,
                entry,
                args,
                &mut mem,
                &isax_compiler::CustomInfo::new(),
                &isax_hwlib::HwLibrary::micron_018(),
                &isax_compiler::VliwModel::default(),
                *fuel,
            )
            .map_err(|e| e.to_string())?;
            w(
                out,
                format!(
                    "{entry}({}) = {:?}   [{} cycles, {} dynamic instructions]",
                    args.iter()
                        .map(u32::to_string)
                        .collect::<Vec<_>>()
                        .join(", "),
                    r.outcome.ret,
                    r.cycles,
                    r.outcome.steps
                ),
            )?;
            Ok(())
        }
        Command::Dot {
            file,
            function,
            block,
        } => {
            let p = load_program(file)?;
            let f = match function {
                Some(name) => p
                    .function(name)
                    .ok_or_else(|| format!("no function `{name}`"))?,
                None => &p.functions[0],
            };
            let dfgs = isax_ir::function_dfgs(f);
            let dfg = dfgs
                .get(*block)
                .ok_or_else(|| format!("{} has no block {block}", f.name))?;
            w(out, dfg.to_dot(&format!("{}_b{block}", f.name)))?;
            Ok(())
        }
        Command::Serve {
            addr,
            workers,
            queue_cap,
            admission_budget,
            access_log,
            metrics_out,
        } => {
            let mut cfg = isax_serve::ServeConfig {
                addr: addr.clone(),
                ..isax_serve::ServeConfig::default()
            };
            if let Some(n) = workers {
                cfg.workers = *n;
            }
            if let Some(n) = queue_cap {
                cfg.queue_cap = *n;
            }
            if admission_budget.is_some() {
                cfg.max_work_units = *admission_budget;
            }
            if let Some(v) = access_log {
                cfg.access_log = isax_serve::parse_env_value(v);
            }
            if metrics_out.is_some() {
                cfg.metrics_out = metrics_out.clone();
            }
            let workers = cfg.workers;
            let queue_cap = cfg.queue_cap;
            let server = isax_serve::Server::spawn(cfg).map_err(|e| format!("{addr}: {e}"))?;
            w(
                out,
                format!(
                    "serving on {} ({} worker(s), queue cap {})",
                    server.addr(),
                    workers,
                    queue_cap
                ),
            )?;
            out.flush().map_err(|e| e.to_string())?;
            // Blocks until a client sends `shutdown`.
            server.join();
            w(out, "server stopped".into())?;
            Ok(())
        }
        Command::Gen {
            seed,
            domain,
            blocks,
            stress,
            curated,
            list,
            out: out_path,
        } => {
            if *list {
                w(out, "stress corpus (kernels/stress/, byte-pinned):".into())?;
                for (name, _) in isax_gen::STRESS {
                    w(out, format!("  {name}"))?;
                }
                w(out, "curated corpus (kernels/graph/, kernels/dsp/):".into())?;
                for k in isax_gen::curated() {
                    w(out, format!("  {} ({})", k.name, k.domain))?;
                }
                w(
                    out,
                    "generator domains (--domain): graph, dsp, mixed".into(),
                )?;
                return Ok(());
            }
            let (name, text) = if let Some(name) = stress {
                let text = isax_gen::stress_kernel(name)
                    .ok_or_else(|| format!("no stress kernel `{name}` (try --list)"))?;
                (name.clone(), text)
            } else if let Some(name) = curated {
                let k = isax_gen::curated_by_name(name)
                    .ok_or_else(|| format!("no curated kernel `{name}` (try --list)"))?;
                (name.clone(), (k.text)())
            } else {
                let cfg = isax_gen::GenConfig {
                    seed: *seed,
                    domain: *domain,
                    blocks: *blocks,
                };
                (cfg.entry_name(), isax_gen::generate(&cfg))
            };
            match out_path {
                Some(path) => {
                    std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
                    w(
                        out,
                        format!("wrote {name} ({} bytes) to {path}", text.len()),
                    )?;
                }
                None => write!(out, "{text}").map_err(|e| e.to_string())?,
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_all_commands() {
        assert!(matches!(
            parse_args(&argv("explore k.isax")).unwrap(),
            Command::Explore { .. }
        ));
        let c = parse_args(&argv(
            "customize k.isax --budget 7.5 --name bf --out m.json",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Customize {
                file: "k.isax".into(),
                budget: 7.5,
                name: "bf".into(),
                out: Some("m.json".into()),
                multifunction: false,
                check: false,
                trace_out: None,
                work_budget: None,
                prov_out: None,
                beam_width: None,
                width_aware: false,
            }
        );
        assert_eq!(
            parse_args(&argv("lint k.isax")).unwrap(),
            Command::Lint {
                file: "k.isax".into()
            }
        );
        assert!(matches!(
            parse_args(&argv("explore k.isax --width-aware")).unwrap(),
            Command::Explore {
                width_aware: true,
                ..
            }
        ));
        assert!(matches!(
            parse_args(&argv("customize k.isax --width-aware")).unwrap(),
            Command::Customize {
                width_aware: true,
                ..
            }
        ));
        let c = parse_args(&argv("explore k.isax --beam-width 64")).unwrap();
        assert!(matches!(
            c,
            Command::Explore {
                beam_width: Some(64),
                ..
            }
        ));
        let c = parse_args(&argv("customize k.isax --beam-width 8")).unwrap();
        assert!(matches!(
            c,
            Command::Customize {
                beam_width: Some(8),
                ..
            }
        ));
        assert!(parse_args(&argv("explore k.isax --beam-width 0")).is_err());
        assert!(parse_args(&argv("explore k.isax --beam-width nope")).is_err());
        let c = parse_args(&argv("explore k.isax --work-budget 5000")).unwrap();
        assert!(matches!(
            c,
            Command::Explore {
                work_budget: Some(5000),
                ..
            }
        ));
        assert!(parse_args(&argv("explore k.isax --work-budget nope")).is_err());
        let c = parse_args(&argv("compile k.isax --mdes m.json --work-budget 12")).unwrap();
        assert!(matches!(
            c,
            Command::Compile {
                work_budget: Some(12),
                ..
            }
        ));
        let c = parse_args(&argv("explore k.isax --trace-out t.json")).unwrap();
        assert_eq!(c.trace_out(), Some("t.json"));
        let c = parse_args(&argv("compile k.isax --mdes m.json --trace-out t.json")).unwrap();
        assert_eq!(c.trace_out(), Some("t.json"));
        assert_eq!(
            parse_args(&argv("run k.isax --entry f"))
                .unwrap()
                .trace_out(),
            None
        );
        assert!(matches!(
            parse_args(&argv("explore k.isax --check")).unwrap(),
            Command::Explore { check: true, .. }
        ));
        assert!(matches!(
            parse_args(&argv("compile k.isax --mdes m.json --check")).unwrap(),
            Command::Compile { check: true, .. }
        ));
        let c = parse_args(&argv("compile k.isax --mdes m.json --subsumed --wildcard")).unwrap();
        assert!(matches!(
            c,
            Command::Compile {
                subsumed: true,
                wildcard: true,
                ..
            }
        ));
        let c = parse_args(&argv("run k.isax --entry f --args 1,0x10,3")).unwrap();
        match c {
            Command::Run { args, .. } => assert_eq!(args, vec![1, 16, 3]),
            _ => panic!(),
        }
        assert!(matches!(
            parse_args(&argv("dot k.isax --block 1")).unwrap(),
            Command::Dot { block: 1, .. }
        ));
        let c = parse_args(&argv("customize k.isax --prov-out p.json")).unwrap();
        assert_eq!(c.prov_out(), Some("p.json"));
        let c = parse_args(&argv("explore k.isax --prov-out p.json")).unwrap();
        assert_eq!(c.prov_out(), Some("p.json"));
        let c = parse_args(&argv("compile k.isax --mdes m.json --prov-out p.json")).unwrap();
        assert_eq!(c.prov_out(), Some("p.json"));
        assert_eq!(
            parse_args(&argv("run k.isax --entry f"))
                .unwrap()
                .prov_out(),
            None
        );
        let c = parse_args(&argv(
            "explain report.json --cfu 3 --kernel rijndael --top 5",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Explain {
                file: "report.json".into(),
                cfu: Some(3),
                candidate: None,
                kernel: Some("rijndael".into()),
                top: 5,
            }
        );
        let c = parse_args(&argv("explain report.json --candidate 03fa")).unwrap();
        assert!(matches!(
            c,
            Command::Explain {
                cfu: None,
                top: 10,
                ..
            }
        ));
        assert!(parse_args(&argv("explain report.json --cfu nope")).is_err());
        assert!(parse_args(&argv("explain report.json --top nope")).is_err());
    }

    #[test]
    fn parse_serve() {
        assert_eq!(
            parse_args(&argv("serve")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                workers: None,
                queue_cap: None,
                admission_budget: None,
                access_log: None,
                metrics_out: None,
            }
        );
        assert_eq!(
            parse_args(&argv(
                "serve --addr 127.0.0.1:7777 --workers 4 --queue-cap 16 --admission-budget 100000 \
                 --access-log access.jsonl --metrics-out metrics.prom"
            ))
            .unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7777".into(),
                workers: Some(4),
                queue_cap: Some(16),
                admission_budget: Some(100_000),
                access_log: Some("access.jsonl".into()),
                metrics_out: Some("metrics.prom".into()),
            }
        );
        assert!(parse_args(&argv("serve --workers 0")).is_err());
        assert!(parse_args(&argv("serve --workers nope")).is_err());
        assert!(parse_args(&argv("serve --queue-cap 0")).is_err());
        assert!(parse_args(&argv("serve --admission-budget nope")).is_err());
    }

    #[test]
    fn parse_and_execute_gen() {
        // Defaults.
        let c = parse_args(&argv("gen")).unwrap();
        assert_eq!(
            c,
            Command::Gen {
                seed: 0,
                domain: isax_gen::GenDomain::Mixed,
                blocks: 8,
                stress: None,
                curated: None,
                list: false,
                out: None,
            }
        );
        assert!(matches!(
            parse_args(&argv("gen --seed 7 --domain graph --blocks 24")).unwrap(),
            Command::Gen {
                seed: 7,
                domain: isax_gen::GenDomain::Graph,
                blocks: 24,
                ..
            }
        ));
        assert!(parse_args(&argv("gen --domain audio")).is_err());
        assert!(parse_args(&argv("gen --seed nope")).is_err());
        assert!(parse_args(&argv("gen --blocks nope")).is_err());

        // Stdout output is exactly the generator's text, and is stable
        // across invocations (the CLI reproducibility contract).
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv("gen --seed 3 --domain dsp --blocks 5")).unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let cfg = isax_gen::GenConfig {
            seed: 3,
            domain: isax_gen::GenDomain::Dsp,
            blocks: 5,
        };
        assert_eq!(text, isax_gen::generate(&cfg));
        assert!(isax_ir::parse_program(&text).is_ok());

        // Named corpora and the listing.
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv("gen --stress deep_chain")).unwrap(),
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf)
            .unwrap()
            .starts_with("func deep_chain"));
        let mut buf = Vec::new();
        execute(&parse_args(&argv("gen --curated sad16")).unwrap(), &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().starts_with("func sad16"));
        let mut buf = Vec::new();
        execute(&parse_args(&argv("gen --list")).unwrap(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("mem_alu_ladder"), "{text}");
        assert!(text.contains("crc_brev (dsp)"), "{text}");
        let mut buf = Vec::new();
        assert!(execute(&parse_args(&argv("gen --stress nope")).unwrap(), &mut buf).is_err());
        assert!(execute(&parse_args(&argv("gen --curated nope")).unwrap(), &mut buf).is_err());

        // --out writes the file and confirms on stdout.
        let dir = std::env::temp_dir().join(format!("isax-gen-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.isax").to_string_lossy().into_owned();
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv(&format!(
                "gen --seed 3 --domain dsp --blocks 5 --out {path}"
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf)
            .unwrap()
            .contains("wrote gen_dsp_s3_n5"));
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            isax_gen::generate(&cfg)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_defaults_and_name_from_filename() {
        let c = parse_args(&argv("customize path/to/blowfish.isax")).unwrap();
        match c {
            Command::Customize { budget, name, .. } => {
                assert_eq!(budget, 15.0);
                assert_eq!(name, "blowfish");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn missing_pieces_are_usage_errors() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&argv("explore")).is_err());
        assert!(parse_args(&argv("compile k.isax")).is_err());
        assert!(parse_args(&argv("run k.isax")).is_err());
        assert!(parse_args(&argv("frobnicate k.isax")).is_err());
        assert!(parse_args(&argv("customize k.isax --budget nope")).is_err());
    }

    #[test]
    fn end_to_end_through_temp_files() {
        let dir = std::env::temp_dir().join(format!("isax-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("kern.isax");
        std::fs::write(
            &src,
            "func kern(v0, v1)\n\
             b0:  ; weight 10000\n\
             \txor v2, v0, v1\n\
             \tshl v3, v2, #5\n\
             \tadd v4, v3, v1\n\
             \tret v4\n",
        )
        .unwrap();
        let src_s = src.to_string_lossy().into_owned();
        let mdes_path = dir.join("m.json").to_string_lossy().into_owned();

        // explore
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv(&format!("explore {src_s}"))).unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("CFU candidates"), "{text}");

        // customize -> mdes file
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv(&format!(
                "customize {src_s} --budget 4 --name kern --out {mdes_path}"
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        assert!(std::path::Path::new(&mdes_path).exists());

        // compile against it
        let emit = dir.join("out.isax").to_string_lossy().into_owned();
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv(&format!(
                "compile {src_s} --mdes {mdes_path} --emit {emit}"
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("speedup"), "{text}");
        let emitted = std::fs::read_to_string(&emit).unwrap();
        assert!(
            emitted.contains("cfu"),
            "custom instruction emitted:\n{emitted}"
        );

        // provenance: record a report, then explain it
        let prov_path = dir.join("prov.json").to_string_lossy().into_owned();
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv(&format!(
                "customize {src_s} --budget 4 --name kern --out {mdes_path} --prov-out {prov_path} --check"
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("provenance report ("), "{text}");
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv(&format!("explain {prov_path}"))).unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("per-kernel attribution"), "{text}");
        assert!(text.contains("provenance report for `kern`"), "{text}");
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv(&format!("explain {prov_path} --cfu 0"))).unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("selected as cfu 0"), "{text}");
        assert!(text.contains("discovered in dfg"), "{text}");

        // a starved work budget degrades loudly but still succeeds
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv(&format!("explore {src_s} --work-budget 2"))).unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("degraded: explore"), "{text}");
        assert!(text.contains("budget-exhausted"), "{text}");

        // lint: the kernel is clean
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv(&format!("lint {src_s}"))).unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("clean (1 function(s) linted)"), "{text}");

        // lint: a kernel with a dead definition gets an IC0803 warning
        let dirty = dir.join("dirty.isax");
        std::fs::write(
            &dirty,
            "func dirty(v0, v1)\n\
             b0:  ; weight 10\n\
             \tadd v2, v0, v1\n\
             \tret v0\n",
        )
        .unwrap();
        let dirty_s = dirty.to_string_lossy().into_owned();
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv(&format!("lint {dirty_s}"))).unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("warning[IC0803]"), "{text}");
        assert!(text.contains("1 finding(s)"), "{text}");

        // width-aware customize still produces a valid MDES
        let wmdes_path = dir.join("mw.json").to_string_lossy().into_owned();
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv(&format!(
                "customize {src_s} --budget 4 --name kern --out {wmdes_path} --width-aware --check"
            )))
            .unwrap(),
            &mut buf,
        )
        .unwrap();
        assert!(std::path::Path::new(&wmdes_path).exists());

        // run the original
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv(&format!("run {src_s} --entry kern --args 3,4"))).unwrap(),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let expect = ((3u32 ^ 4) << 5).wrapping_add(4);
        assert!(text.contains(&format!("[{expect}]")), "{text}");

        // simulate
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv(&format!("simulate {src_s} --entry kern --args 3,4"))).unwrap(),
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("cycles"));

        // dot
        let mut buf = Vec::new();
        execute(
            &parse_args(&argv(&format!("dot {src_s} --function kern --block 0"))).unwrap(),
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("digraph kern_b0"));

        std::fs::remove_dir_all(&dir).ok();
    }
}
