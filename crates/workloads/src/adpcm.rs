//! `rawcaudio` / `rawdaudio` (MediaBench): IMA ADPCM coder and decoder.
//!
//! The ADPCM step logic is a gift to instruction-set customization: after
//! if-conversion (Trimaran hyperblocks; `select` operations here) each
//! sample is one long straight-line block of shifts, adds, compares and
//! selects with a single step-table load — the paper's best speedup
//! (rawdaudio, 1.94) comes from exactly this kernel.
//!
//! Both kernels use the genuine IMA tables ([`STEP_TABLE`],
//! [`INDEX_TABLE`]) and are validated against native reference
//! implementations of the standard algorithm.
//!
//! Simplification: codes are stored one 4-bit delta per byte (the original
//! packs two per byte; unpacking adds two shifts that change nothing
//! structural).

use crate::common::Xorshift;
use crate::{Domain, Workload};
use isax_ir::{FunctionBuilder, Program, VReg};
use isax_machine::Memory;

/// The 89-entry IMA ADPCM step-size table.
pub const STEP_TABLE: [u32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// The 16-entry IMA index-adjustment table (signed, stored two's
/// complement).
pub const INDEX_TABLE: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

/// Step table base address.
pub const STEP_BASE: u32 = 0xC000;
/// Index table base address.
pub const IDX_BASE: u32 = 0xC200;
/// Input buffer (samples for the coder, codes for the decoder).
pub const IN_BASE: u32 = 0xD000;
/// Output buffer.
pub const OUT_BASE: u32 = 0xE000;
/// Samples per run.
pub const N_SAMPLES: u32 = 128;
const HOT_WEIGHT: u64 = 100_000;

fn clamp_valpred(v: i32) -> i32 {
    v.clamp(-32768, 32767)
}

fn clamp_index(i: i32) -> i32 {
    i.clamp(0, 88)
}

/// Reference IMA decoder: codes (low nibbles) → samples.
/// Returns (samples, final valpred, final index).
pub fn decode_reference(codes: &[u8], mut valpred: i32, mut index: i32) -> (Vec<i16>, i32, i32) {
    let mut out = Vec::with_capacity(codes.len());
    for &c in codes {
        let delta = (c & 0xF) as i32;
        let step = STEP_TABLE[index as usize] as i32;
        let mut vpdiff = step >> 3;
        if delta & 4 != 0 {
            vpdiff += step;
        }
        if delta & 2 != 0 {
            vpdiff += step >> 1;
        }
        if delta & 1 != 0 {
            vpdiff += step >> 2;
        }
        if delta & 8 != 0 {
            valpred -= vpdiff;
        } else {
            valpred += vpdiff;
        }
        valpred = clamp_valpred(valpred);
        index = clamp_index(index + INDEX_TABLE[delta as usize]);
        out.push(valpred as i16);
    }
    (out, valpred, index)
}

/// Reference IMA coder: samples → codes.
/// Returns (codes, final valpred, final index).
pub fn encode_reference(samples: &[i16], mut valpred: i32, mut index: i32) -> (Vec<u8>, i32, i32) {
    let mut out = Vec::with_capacity(samples.len());
    for &s in samples {
        let step = STEP_TABLE[index as usize] as i32;
        let mut diff = s as i32 - valpred;
        let sign = if diff < 0 { 8 } else { 0 };
        if sign != 0 {
            diff = -diff;
        }
        let mut delta = 0;
        let mut vpdiff = step >> 3;
        let mut d = diff;
        if d >= step {
            delta = 4;
            d -= step;
            vpdiff += step;
        }
        if d >= step >> 1 {
            delta |= 2;
            d -= step >> 1;
            vpdiff += step >> 1;
        }
        if d >= step >> 2 {
            delta |= 1;
            vpdiff += step >> 2;
        }
        delta |= sign;
        if sign != 0 {
            valpred -= vpdiff;
        } else {
            valpred += vpdiff;
        }
        valpred = clamp_valpred(valpred);
        index = clamp_index(index + INDEX_TABLE[delta as usize]);
        out.push(delta as u8);
    }
    (out, valpred, index)
}

/// Emits the common tail: valpred update + clamps, index update + clamps.
/// Returns nothing; mutates the loop-carried `valpred`/`index` registers.
fn emit_predict_update(
    fb: &mut FunctionBuilder,
    valpred: VReg,
    index: VReg,
    sign: VReg,
    vpdiff: VReg,
    delta: VReg,
) {
    let vadd = fb.add(valpred, vpdiff);
    let vsub = fb.sub(valpred, vpdiff);
    let v0 = fb.select(sign, vsub, vadd);
    let too_big = fb.gt(v0, 32_767i64);
    let v1 = fb.select(too_big, 32_767i64, v0);
    let too_small = fb.lt(v1, -32_768i64);
    let v2 = fb.select(too_small, -32_768i64, v1);
    fb.copy_to(valpred, v2);
    // index += INDEX_TABLE[delta]; clamp 0..88
    let doff = fb.shl(delta, 2i64);
    let daddr = fb.add(doff, IDX_BASE as i64);
    let adj = fb.ldw(daddr);
    let i0 = fb.add(index, adj);
    let neg = fb.lt(i0, 0i64);
    let i1 = fb.select(neg, 0i64, i0);
    let over = fb.gt(i1, 88i64);
    let i2 = fb.select(over, 88i64, i1);
    fb.copy_to(index, i2);
}

/// Builds the decoder: `adpcm_decode(valpred, index) -> (valpred, index)`.
pub fn decode_program() -> Program {
    let mut fb = FunctionBuilder::new("adpcm_decode", 2);
    let vp_in = fb.param(0);
    let idx_in = fb.param(1);
    let body = fb.new_block(HOT_WEIGHT);
    let exit = fb.new_block(800);

    let valpred = fb.fresh();
    let index = fb.fresh();
    let inp = fb.fresh();
    let outp = fb.fresh();
    let n = fb.fresh();
    fb.copy_to(valpred, vp_in);
    fb.copy_to(index, idx_in);
    fb.copy_to(inp, IN_BASE as i64);
    fb.copy_to(outp, OUT_BASE as i64);
    fb.copy_to(n, N_SAMPLES as i64);
    fb.jump(body);

    fb.switch_to(body);
    let code = fb.ldbu(inp);
    let delta = fb.and(code, 0xFi64);
    // step = STEP_TABLE[index]
    let soff = fb.shl(index, 2i64);
    let saddr = fb.add(soff, STEP_BASE as i64);
    let step = fb.ldw(saddr);
    // vpdiff = step>>3 + (delta&4 ? step : 0) + (delta&2 ? step>>1 : 0)
    //          + (delta&1 ? step>>2 : 0)
    let vp0 = fb.shr(step, 3i64);
    let b4 = fb.and(delta, 4i64);
    let t4 = fb.select(b4, step, 0i64);
    let vp1 = fb.add(vp0, t4);
    let s1 = fb.shr(step, 1i64);
    let b2 = fb.and(delta, 2i64);
    let t2 = fb.select(b2, s1, 0i64);
    let vp2 = fb.add(vp1, t2);
    let s2 = fb.shr(step, 2i64);
    let b1 = fb.and(delta, 1i64);
    let t1 = fb.select(b1, s2, 0i64);
    let vpdiff = fb.add(vp2, t1);
    let sign = fb.and(delta, 8i64);
    emit_predict_update(&mut fb, valpred, index, sign, vpdiff, delta);
    fb.sth(outp, valpred);
    let inp1 = fb.add(inp, 1i64);
    fb.copy_to(inp, inp1);
    let outp1 = fb.add(outp, 2i64);
    fb.copy_to(outp, outp1);
    let n1 = fb.sub(n, 1i64);
    fb.copy_to(n, n1);
    let more = fb.ne(n, 0i64);
    fb.branch(more, body, exit);

    fb.switch_to(exit);
    fb.ret(&[valpred.into(), index.into()]);
    Program::new(vec![fb.finish()])
}

/// Builds the coder: `adpcm_encode(valpred, index) -> (valpred, index)`.
pub fn encode_program() -> Program {
    let mut fb = FunctionBuilder::new("adpcm_encode", 2);
    let vp_in = fb.param(0);
    let idx_in = fb.param(1);
    let body = fb.new_block(HOT_WEIGHT);
    let exit = fb.new_block(800);

    let valpred = fb.fresh();
    let index = fb.fresh();
    let inp = fb.fresh();
    let outp = fb.fresh();
    let n = fb.fresh();
    fb.copy_to(valpred, vp_in);
    fb.copy_to(index, idx_in);
    fb.copy_to(inp, IN_BASE as i64);
    fb.copy_to(outp, OUT_BASE as i64);
    fb.copy_to(n, N_SAMPLES as i64);
    fb.jump(body);

    fb.switch_to(body);
    let sample = fb.ldh(inp); // sign-extended 16-bit sample
    let soff = fb.shl(index, 2i64);
    let saddr = fb.add(soff, STEP_BASE as i64);
    let step = fb.ldw(saddr);
    // diff and sign
    let diff0 = fb.sub(sample, valpred);
    let isneg = fb.lt(diff0, 0i64);
    let sign = fb.select(isneg, 8i64, 0i64);
    let ndiff = fb.sub(0i64, diff0);
    let diff = fb.select(isneg, ndiff, diff0);
    // quantize: three trial subtractions
    let vp0 = fb.shr(step, 3i64);
    let c4 = fb.ge(diff, step);
    let d4 = fb.sub(diff, step);
    let diff1 = fb.select(c4, d4, diff);
    let a4 = fb.select(c4, step, 0i64);
    let vp1 = fb.add(vp0, a4);
    let delta4 = fb.select(c4, 4i64, 0i64);
    let half = fb.shr(step, 1i64);
    let c2 = fb.ge(diff1, half);
    let d2 = fb.sub(diff1, half);
    let diff2 = fb.select(c2, d2, diff1);
    let a2 = fb.select(c2, half, 0i64);
    let vp2 = fb.add(vp1, a2);
    let delta2 = fb.select(c2, 2i64, 0i64);
    let quarter = fb.shr(step, 2i64);
    let c1 = fb.ge(diff2, quarter);
    let a1 = fb.select(c1, quarter, 0i64);
    let vpdiff = fb.add(vp2, a1);
    let delta1 = fb.select(c1, 1i64, 0i64);
    let d42 = fb.or(delta4, delta2);
    let d421 = fb.or(d42, delta1);
    let delta = fb.or(d421, sign);
    emit_predict_update(&mut fb, valpred, index, sign, vpdiff, delta);
    fb.stb(outp, delta);
    let inp1 = fb.add(inp, 2i64);
    fb.copy_to(inp, inp1);
    let outp1 = fb.add(outp, 1i64);
    fb.copy_to(outp, outp1);
    let n1 = fb.sub(n, 1i64);
    fb.copy_to(n, n1);
    let more = fb.ne(n, 0i64);
    fb.branch(more, body, exit);

    fb.switch_to(exit);
    fb.ret(&[valpred.into(), index.into()]);
    Program::new(vec![fb.finish()])
}

fn store_tables(mem: &mut Memory) {
    mem.store_words(STEP_BASE, &STEP_TABLE);
    let idx: Vec<u32> = INDEX_TABLE.iter().map(|&v| v as u32).collect();
    mem.store_words(IDX_BASE, &idx);
}

/// Decoder memory: tables + a code buffer.
pub fn init_decode_memory(mem: &mut Memory, seed: u64) {
    store_tables(mem);
    let mut g = Xorshift::new(seed ^ 0xDA0);
    let codes: Vec<u8> = (0..N_SAMPLES).map(|_| (g.next_u32() & 0xF) as u8).collect();
    mem.store_bytes(IN_BASE, &codes);
}

/// Coder memory: tables + a 16-bit sample buffer.
pub fn init_encode_memory(mem: &mut Memory, seed: u64) {
    store_tables(mem);
    let mut g = Xorshift::new(seed ^ 0xCA0);
    for i in 0..N_SAMPLES {
        // Smooth-ish waveform: random walk keeps deltas realistic.
        let v = (g.below(4096) as i32 - 2048) as i16;
        mem.store16(IN_BASE + 2 * i, v as u16);
    }
}

fn adpcm_args(_seed: u64) -> Vec<u32> {
    vec![0, 0]
}

/// rawdaudio: the decoder workload.
pub fn rawdaudio_workload() -> Workload {
    Workload {
        name: "rawdaudio",
        domain: Domain::Audio,
        program: decode_program(),
        entry: "adpcm_decode",
        init_memory: init_decode_memory,
        args: adpcm_args,
        extra_entries: vec![],
    }
}

/// rawcaudio: the coder workload.
pub fn rawcaudio_workload() -> Workload {
    Workload {
        name: "rawcaudio",
        domain: Domain::Audio,
        program: encode_program(),
        entry: "adpcm_encode",
        init_memory: init_encode_memory,
        args: adpcm_args,
        extra_entries: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_machine::run;

    #[test]
    fn decoder_matches_reference() {
        let p = decode_program();
        for seed in 1..5u64 {
            let mut mem = Memory::new();
            init_decode_memory(&mut mem, seed);
            let codes: Vec<u8> = (0..N_SAMPLES).map(|i| mem.load8(IN_BASE + i)).collect();
            let out = run(&p, "adpcm_decode", &[0, 0], &mut mem, 1_000_000).expect("runs");
            let (samples, vp, idx) = decode_reference(&codes, 0, 0);
            assert_eq!(out.ret, vec![vp as u32, idx as u32], "seed {seed}");
            // Output buffer holds the samples.
            for (i, &s) in samples.iter().enumerate() {
                assert_eq!(mem.load16(OUT_BASE + 2 * i as u32) as i16, s, "sample {i}");
            }
        }
    }

    #[test]
    fn encoder_matches_reference() {
        let p = encode_program();
        for seed in 1..5u64 {
            let mut mem = Memory::new();
            init_encode_memory(&mut mem, seed);
            let samples: Vec<i16> = (0..N_SAMPLES)
                .map(|i| mem.load16(IN_BASE + 2 * i) as i16)
                .collect();
            let out = run(&p, "adpcm_encode", &[0, 0], &mut mem, 1_000_000).expect("runs");
            let (codes, vp, idx) = encode_reference(&samples, 0, 0);
            assert_eq!(out.ret, vec![vp as u32, idx as u32], "seed {seed}");
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(mem.load8(OUT_BASE + i as u32), c, "code {i}");
            }
        }
    }

    #[test]
    fn codec_roundtrip_tracks_the_waveform() {
        // Encode then decode: output must follow the input within the
        // quantizer's step size (standard ADPCM behaviour, not an
        // identity).
        let mut g = Xorshift::new(99);
        let samples: Vec<i16> = (0..64)
            .map(|_| (g.below(2000) as i32 - 1000) as i16)
            .collect();
        let (codes, ..) = encode_reference(&samples, 0, 0);
        let (decoded, ..) = decode_reference(&codes, 0, 0);
        // After convergence the decoded signal stays within a loose bound.
        let tail_err: i32 = samples[32..]
            .iter()
            .zip(&decoded[32..])
            .map(|(&a, &b)| (a as i32 - b as i32).abs())
            .max()
            .unwrap();
        assert!(tail_err < 2_000, "tracking error {tail_err}");
    }

    #[test]
    fn decoder_clamps_extremes() {
        // All-maximum codes walk the predictor to the negative clamp.
        let codes = vec![0x0Fu8; 64];
        let (samples, vp, idx) = decode_reference(&codes, 0, 0);
        assert_eq!(vp, -32768);
        assert_eq!(idx, 88);
        assert!(samples.iter().all(|&s| s >= -32768));
    }

    #[test]
    fn kernels_are_select_heavy_single_blocks() {
        for p in [decode_program(), encode_program()] {
            let body = &p.functions[0].blocks[1];
            let selects = body
                .insts
                .iter()
                .filter(|i| i.opcode == isax_ir::Opcode::Select)
                .count();
            assert!(selects >= 3, "if-converted kernel uses selects");
            let mems = body.insts.iter().filter(|i| i.opcode.is_memory()).count();
            assert!(body.insts.len() >= 5 * mems, "ALU-dominated");
        }
    }
}
