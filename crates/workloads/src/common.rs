//! Shared utilities for the benchmark kernels.

/// A deterministic xorshift64* generator used to synthesize table contents
/// and test inputs identically on the IR side (memory initialization) and
/// the oracle side (reference implementations).
///
/// # Example
///
/// ```
/// use isax_workloads::common::Xorshift;
///
/// let mut a = Xorshift::new(42);
/// let mut b = Xorshift::new(42);
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Debug, Clone)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    /// Seeds the generator (zero is mapped to a non-zero constant).
    pub fn new(seed: u64) -> Self {
        Xorshift {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next value in `0..bound`.
    pub fn below(&mut self, bound: u32) -> u32 {
        self.next_u32() % bound.max(1)
    }

    /// A vector of `n` 32-bit values.
    pub fn words(&mut self, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.next_u32()).collect()
    }

    /// A vector of `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_u32() as u8).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_nontrivial() {
        let mut g = Xorshift::new(7);
        let a = g.words(8);
        let mut g2 = Xorshift::new(7);
        let b = g2.words(8);
        assert_eq!(a, b);
        assert!(a.iter().collect::<std::collections::BTreeSet<_>>().len() > 4);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut g = Xorshift::new(0);
        assert_ne!(g.next_u32(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut g = Xorshift::new(3);
        for _ in 0..100 {
            assert!(g.below(17) < 17);
        }
        assert_eq!(g.below(0), 0, "zero bound saturates to 1");
    }
}
