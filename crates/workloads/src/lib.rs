//! The thirteen benchmark kernels of the MICRO-2003 evaluation, as
//! `isax-ir` programs.
//!
//! The paper profiles thirteen applications from four suites:
//!
//! | domain     | benchmarks                                        | suite      |
//! |------------|---------------------------------------------------|------------|
//! | encryption | blowfish, rijndael, sha                           | MiBench    |
//! | network    | crc, ipchains, url                                | NetBench   |
//! | audio      | gsmdecode, gsmencode, rawcaudio, rawdaudio        | MediaBench |
//! | image      | cjpeg, djpeg, mpeg2dec                            | MediaBench |
//!
//! The original binaries and profiling infrastructure are unavailable, so
//! each benchmark is reproduced as the IR of its *hot kernel* — the loops
//! the paper's DFG explorer actually feeds on — with profile weights
//! modelling the hot-loop trip counts. The kernels are real programs, not
//! shaped noise: each module carries a native-Rust **reference oracle**
//! and the test suite executes the IR against it through the
//! `isax-machine` interpreter (blowfish's Feistel F, AES's round, SHA-1's
//! compression, CRC-32, IMA-ADPCM, GSM saturation arithmetic, the JPEG
//! DCTs, MPEG-2 motion compensation).
//!
//! Domain character matches the paper's analysis: encryption kernels are
//! dominated by long chains of cheap ALU operations (ideal CFU material);
//! mpeg2dec and ipchains are laced with memory operations and branches
//! that fragment the dataflow graphs.
//!
//! # Example
//!
//! ```
//! use isax_workloads::{all, by_name, Domain};
//!
//! assert_eq!(all().len(), 13);
//! let bf = by_name("blowfish").unwrap();
//! assert_eq!(bf.domain, Domain::Encryption);
//! assert!(bf.program.inst_count() > 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adpcm;
pub mod blowfish;
pub mod common;
pub mod crc;
pub mod gsm;
pub mod ipchains;
pub mod jpeg;
pub mod mpeg2;
pub mod rijndael;
pub mod sha;
pub mod url;

use isax_ir::Program;
use isax_machine::Memory;

/// Benchmark domain (the four categories of Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// blowfish, rijndael, sha.
    Encryption,
    /// crc, ipchains, url.
    Network,
    /// gsmdecode, gsmencode, rawcaudio, rawdaudio.
    Audio,
    /// cjpeg, djpeg, mpeg2dec.
    Image,
}

impl Domain {
    /// All four domains, in the paper's order.
    pub const ALL: [Domain; 4] = [
        Domain::Encryption,
        Domain::Network,
        Domain::Audio,
        Domain::Image,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Encryption => "encryption",
            Domain::Network => "network",
            Domain::Audio => "audio",
            Domain::Image => "image",
        }
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A secondary entry point of a benchmark (real applications have more
/// than one hot function; the explorer sees them all).
pub struct ExtraEntry {
    /// Function name.
    pub entry: &'static str,
    /// Produces its arguments from a test seed.
    pub args: fn(u64) -> Vec<u32>,
}

/// A benchmark: its IR, how to set up its memory, and how to drive it.
pub struct Workload {
    /// Benchmark name (paper spelling).
    pub name: &'static str,
    /// Domain it belongs to.
    pub domain: Domain,
    /// The kernel program.
    pub program: Program,
    /// Primary entry function for interpreter-based testing.
    pub entry: &'static str,
    /// Installs the benchmark's constant tables / input buffers.
    pub init_memory: fn(&mut Memory, u64),
    /// Produces entry arguments from a test seed.
    pub args: fn(u64) -> Vec<u32>,
    /// Additional hot functions in the same program.
    pub extra_entries: Vec<ExtraEntry>,
}

/// A driveable entry point: the function name plus its seed-to-arguments
/// generator.
pub type Entry = (&'static str, fn(u64) -> Vec<u32>);

impl Workload {
    /// Every driveable entry of the program: the primary one plus extras,
    /// as `(function, args)` pairs.
    pub fn entries(&self) -> Vec<Entry> {
        let mut v = vec![(self.entry, self.args)];
        v.extend(self.extra_entries.iter().map(|e| (e.entry, e.args)));
        v
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("domain", &self.domain)
            .field("insts", &self.program.inst_count())
            .finish()
    }
}

/// All thirteen benchmarks, grouped by domain in the paper's order.
pub fn all() -> Vec<Workload> {
    vec![
        blowfish::workload(),
        rijndael::workload(),
        sha::workload(),
        crc::workload(),
        ipchains::workload(),
        url::workload(),
        gsm::decode_workload(),
        gsm::encode_workload(),
        adpcm::rawcaudio_workload(),
        adpcm::rawdaudio_workload(),
        jpeg::cjpeg_workload(),
        jpeg::djpeg_workload(),
        mpeg2::workload(),
    ]
}

/// Looks a benchmark up by its paper name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// Names of the benchmarks in a domain, in the paper's order.
pub fn domain_members(d: Domain) -> Vec<&'static str> {
    match d {
        Domain::Encryption => vec!["blowfish", "rijndael", "sha"],
        Domain::Network => vec!["crc", "ipchains", "url"],
        Domain::Audio => vec!["gsmdecode", "gsmencode", "rawcaudio", "rawdaudio"],
        Domain::Image => vec!["cjpeg", "djpeg", "mpeg2dec"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_benchmarks_verify() {
        let ws = all();
        assert_eq!(ws.len(), 13);
        for w in &ws {
            isax_ir::verify_program(&w.program)
                .unwrap_or_else(|e| panic!("{} fails verification: {:?}", w.name, e));
        }
    }

    #[test]
    fn names_match_domain_membership() {
        for d in Domain::ALL {
            for name in domain_members(d) {
                let w = by_name(name).unwrap_or_else(|| panic!("missing {name}"));
                assert_eq!(w.domain, d, "{name}");
            }
        }
    }

    #[test]
    fn every_kernel_runs_under_the_interpreter() {
        for w in all() {
            for (entry, args_fn) in w.entries() {
                let mut mem = Memory::new();
                (w.init_memory)(&mut mem, 1);
                let args = args_fn(1);
                let out = isax_machine::run(&w.program, entry, &args, &mut mem, 50_000_000)
                    .unwrap_or_else(|e| panic!("{}::{entry} failed: {e}", w.name));
                assert!(out.steps > 0);
            }
        }
    }

    #[test]
    fn hot_blocks_carry_weight() {
        for w in all() {
            let max_weight = w
                .program
                .functions
                .iter()
                .flat_map(|f| f.blocks.iter())
                .map(|b| b.weight)
                .max()
                .unwrap_or(0);
            assert!(
                max_weight >= 1000,
                "{}: hot loop weight {} too small",
                w.name,
                max_weight
            );
        }
    }
}
