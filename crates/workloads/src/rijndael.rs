//! `rijndael` (MiBench security): T-table AES encryption rounds.
//!
//! MiBench's rijndael uses Gladman's table-driven implementation: each
//! round produces four state words, each as
//!
//! ```text
//! t[j] = T0[s0>>24] ^ T1[(s1>>16)&FF] ^ T2[(s2>>8)&FF] ^ T3[s3&FF] ^ rk[j]
//! ```
//!
//! with the column indices rotating per output word. One round is a single
//! huge basic block — sixteen byte-extract/address chains feeding sixteen
//! table loads, folded by xor trees. It is the most CFU-friendly kernel in
//! the suite (the paper reports its best speedup, 1.87) because nearly
//! every non-load operation is a cheap shift/and/add/xor that combines
//! freely.
//!
//! T-tables and round keys are synthesized deterministically and shared
//! with the native oracle; the kernel is the *round structure* of AES, not
//! a keyed standard vector (the original's key schedule runs outside the
//! hot loop).

use crate::common::Xorshift;
use crate::{Domain, Workload};
use isax_ir::{FunctionBuilder, Program, VReg};
use isax_machine::Memory;

/// Base of the four T-tables (4 × 256 words, contiguous).
pub const T_BASE: u32 = 0x1_0000;
/// Base of the round keys (4 words × `ROUNDS`).
pub const RK_BASE: u32 = 0x2_0000;
/// Rounds in the hot loop.
pub const ROUNDS: u32 = 10;
const HOT_WEIGHT: u64 = 10 * 2_500;

/// Synthesized tables: (T\[4×256\], RK\[4 × ROUNDS\]).
pub fn tables(seed: u64) -> (Vec<u32>, Vec<u32>) {
    let mut g = Xorshift::new(seed ^ 0xAE5AE5);
    (g.words(4 * 256), g.words(4 * ROUNDS as usize))
}

/// Native reference: runs the same `ROUNDS` of the T-table round function.
pub fn rounds_reference(seed: u64, mut s: [u32; 4]) -> [u32; 4] {
    let (t, rk) = tables(seed);
    let tt = |k: usize, b: u32| t[256 * k + b as usize];
    for r in 0..ROUNDS as usize {
        let mut n = [0u32; 4];
        for (j, nj) in n.iter_mut().enumerate() {
            *nj = tt(0, s[j] >> 24)
                ^ tt(1, (s[(j + 1) & 3] >> 16) & 0xFF)
                ^ tt(2, (s[(j + 2) & 3] >> 8) & 0xFF)
                ^ tt(3, s[(j + 3) & 3] & 0xFF)
                ^ rk[4 * r + j];
        }
        s = n;
    }
    s
}

/// Emits the extract + lookup chain for one byte of one T-table.
fn lookup(fb: &mut FunctionBuilder, word: VReg, shift: i64, table: u32) -> VReg {
    let b = if shift > 0 {
        let sh = fb.shr(word, shift);
        if shift < 24 {
            fb.and(sh, 0xFFi64)
        } else {
            sh
        }
    } else {
        fb.and(word, 0xFFi64)
    };
    let off = fb.shl(b, 2i64);
    let addr = fb.add(off, (T_BASE + 0x400 * table) as i64);
    fb.ldw(addr)
}

/// Builds `aes_rounds(s0, s1, s2, s3) -> (s0, s1, s2, s3)`.
pub fn program() -> Program {
    let mut fb = FunctionBuilder::new("aes_rounds", 4);
    let s_in: Vec<VReg> = (0..4).map(|i| fb.param(i)).collect();
    let round = fb.new_block(HOT_WEIGHT);
    let exit = fb.new_block(2_500);

    let s: Vec<VReg> = (0..4).map(|_| fb.fresh()).collect();
    let r = fb.fresh();
    let rkp = fb.fresh();
    for (dst, src) in s.iter().zip(&s_in) {
        fb.copy_to(*dst, *src);
    }
    fb.copy_to(r, 0i64);
    fb.copy_to(rkp, RK_BASE as i64);
    fb.jump(round);

    fb.switch_to(round);
    let mut new_words = Vec::with_capacity(4);
    for j in 0..4usize {
        let l0 = lookup(&mut fb, s[j], 24, 0);
        let l1 = lookup(&mut fb, s[(j + 1) & 3], 16, 1);
        let l2 = lookup(&mut fb, s[(j + 2) & 3], 8, 2);
        let l3 = lookup(&mut fb, s[(j + 3) & 3], 0, 3);
        let rk_addr = fb.add(rkp, (4 * j) as i64);
        let rkw = fb.ldw(rk_addr);
        let x0 = fb.xor(l0, l1);
        let x1 = fb.xor(x0, l2);
        let x2 = fb.xor(x1, l3);
        let nw = fb.xor(x2, rkw);
        new_words.push(nw);
    }
    for (dst, nw) in s.iter().zip(&new_words) {
        fb.copy_to(*dst, *nw);
    }
    let rkp1 = fb.add(rkp, 16i64);
    fb.copy_to(rkp, rkp1);
    let r1 = fb.add(r, 1i64);
    fb.copy_to(r, r1);
    let more = fb.ltu(r, ROUNDS as i64);
    fb.branch(more, round, exit);

    fb.switch_to(exit);
    fb.ret(&[s[0].into(), s[1].into(), s[2].into(), s[3].into()]);
    Program::new(vec![fb.finish()])
}

/// Base of the expanded-key output buffer written by `aes_key_mix`.
pub const KX_BASE: u32 = 0x2_1000;

/// Builds `aes_key_mix(w0, w1, w2, w3) -> w7` — one block of the key
/// schedule: `w[i] = w[i-4] ^ Sub(Rot(w[i-1])) ^ rcon` for the first word
/// of the group and plain xor chaining for the rest, with `Sub` standing
/// on the byte-substitution tables. The schedule is the application's
/// *other* hot function; it shares the byte-extract/lookup CFU shapes with
/// the round loop.
pub fn key_mix_function() -> isax_ir::Function {
    let mut fb = FunctionBuilder::new("aes_key_mix", 4);
    let w: Vec<_> = (0..4).map(|i| fb.param(i)).collect();
    let body = fb.new_block(4_000);
    let exit = fb.new_block(400);

    let regs: Vec<_> = (0..4).map(|_| fb.fresh()).collect();
    let r = fb.fresh();
    let rcon = fb.fresh();
    for (dst, src) in regs.iter().zip(&w) {
        fb.copy_to(*dst, *src);
    }
    fb.copy_to(r, 0i64);
    fb.copy_to(rcon, 1i64);
    fb.jump(body);

    fb.switch_to(body);
    // temp = RotWord(w3): rotate left by 8.
    let hi = fb.shl(regs[3], 8i64);
    let lo = fb.shr(regs[3], 24i64);
    let rot = fb.or(hi, lo);
    // SubWord via the substitution tables (byte-sliced lookups).
    let l0 = lookup(&mut fb, rot, 24, 0);
    let l1 = lookup(&mut fb, rot, 16, 1);
    let l2 = lookup(&mut fb, rot, 8, 2);
    let l3 = lookup(&mut fb, rot, 0, 3);
    let x0 = fb.xor(l0, l1);
    let x1 = fb.xor(x0, l2);
    let sub = fb.xor(x1, l3);
    let t0 = fb.xor(sub, rcon);
    let n0 = fb.xor(regs[0], t0);
    let n1 = fb.xor(regs[1], n0);
    let n2 = fb.xor(regs[2], n1);
    let n3 = fb.xor(regs[3], n2);
    // Store the group and advance.
    let roff = fb.shl(r, 4i64);
    let base = fb.add(roff, KX_BASE as i64);
    fb.stw(base, n0);
    let a1 = fb.add(base, 4i64);
    fb.stw(a1, n1);
    let a2 = fb.add(base, 8i64);
    fb.stw(a2, n2);
    let a3 = fb.add(base, 12i64);
    fb.stw(a3, n3);
    for (dst, src) in regs.iter().zip([n0, n1, n2, n3]) {
        fb.copy_to(*dst, src);
    }
    let rc2 = fb.shl(rcon, 1i64);
    fb.copy_to(rcon, rc2);
    let r1 = fb.add(r, 1i64);
    fb.copy_to(r, r1);
    let more = fb.ltu(r, 10i64);
    fb.branch(more, body, exit);

    fb.switch_to(exit);
    fb.ret(&[regs[3].into()]);
    fb.finish()
}

/// Native oracle for [`key_mix_function`].
pub fn key_mix_reference(seed: u64, mut w: [u32; 4]) -> u32 {
    let (t, _) = tables(seed);
    let tt = |k: usize, b: u32| t[256 * k + b as usize];
    let mut rcon = 1u32;
    for _ in 0..10 {
        let rot = w[3].rotate_left(8);
        let sub = tt(0, rot >> 24)
            ^ tt(1, (rot >> 16) & 0xFF)
            ^ tt(2, (rot >> 8) & 0xFF)
            ^ tt(3, rot & 0xFF);
        let n0 = w[0] ^ sub ^ rcon;
        let n1 = w[1] ^ n0;
        let n2 = w[2] ^ n1;
        let n3 = w[3] ^ n2;
        w = [n0, n1, n2, n3];
        rcon <<= 1;
    }
    w[3]
}

/// Installs the T-tables and round keys.
pub fn init_memory(mem: &mut Memory, seed: u64) {
    let (t, rk) = tables(seed);
    mem.store_words(T_BASE, &t);
    mem.store_words(RK_BASE, &rk);
}

fn args(seed: u64) -> Vec<u32> {
    let mut g = Xorshift::new(seed ^ 0x5EED);
    g.words(4)
}

/// The packaged workload: rounds plus the key schedule.
pub fn workload() -> Workload {
    let mut program = program();
    program.functions.push(key_mix_function());
    Workload {
        name: "rijndael",
        domain: Domain::Encryption,
        program,
        entry: "aes_rounds",
        init_memory,
        args,
        extra_entries: vec![crate::ExtraEntry {
            entry: "aes_key_mix",
            args,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_machine::run;

    #[test]
    fn ir_matches_reference() {
        let p = program();
        for seed in 1..5u64 {
            let mut mem = Memory::new();
            init_memory(&mut mem, seed);
            let mut g = Xorshift::new(seed * 3 + 1);
            for _ in 0..4 {
                let s = [g.next_u32(), g.next_u32(), g.next_u32(), g.next_u32()];
                let out = run(&p, "aes_rounds", &s, &mut mem.clone(), 200_000).expect("runs");
                let expect = rounds_reference(seed, s);
                assert_eq!(out.ret, expect.to_vec(), "seed {seed}");
            }
        }
    }

    #[test]
    fn key_mix_matches_reference() {
        let p = workload().program;
        for seed in 1..4u64 {
            let mut mem = Memory::new();
            init_memory(&mut mem, seed);
            let mut g = Xorshift::new(seed * 5 + 3);
            let w = [g.next_u32(), g.next_u32(), g.next_u32(), g.next_u32()];
            let out = run(&p, "aes_key_mix", &w, &mut mem, 200_000).expect("runs");
            assert_eq!(out.ret, vec![key_mix_reference(seed, w)], "seed {seed}");
        }
    }

    #[test]
    fn round_block_has_twenty_loads() {
        let p = program();
        let round = &p.functions[0].blocks[1];
        let loads = round.insts.iter().filter(|i| i.opcode.is_load()).count();
        assert_eq!(loads, 20, "16 T-table + 4 round-key loads");
        // And several times more combinable ALU work.
        let alu = round.insts.iter().filter(|i| !i.opcode.is_memory()).count();
        assert!(alu > 2 * loads);
    }

    #[test]
    fn rounds_diffuse_state() {
        let a = rounds_reference(1, [1, 0, 0, 0]);
        let b = rounds_reference(1, [2, 0, 0, 0]);
        assert_ne!(a, b);
        assert_ne!(a[3], b[3], "difference reaches every word");
    }
}
