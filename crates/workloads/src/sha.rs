//! `sha` (MiBench security): the SHA-1 compression inner loop.
//!
//! One round of the 80-round compression updates the five-word chain
//! state and the 16-word circular message schedule:
//!
//! ```text
//! w[t&15] = rol1(w[(t+13)&15] ^ w[(t+8)&15] ^ w[(t+2)&15] ^ w[t&15])
//! tmp     = rol5(a) + f(b, c, d) + e + K + w[t&15]
//! e,d,c,b,a = d, c, rol30(b), a, tmp
//! ```
//!
//! The rotates (shift-shift-or diamonds) and the boolean `f` are prime CFU
//! shapes, but the four-term addition chain is a serial carry path, so the
//! paper reports a smaller speedup here (1.33) than for the other
//! encryption codes. All four phases of the real compression are present
//! (choose / parity / majority / parity with their standard constants),
//! each as its own twenty-round loop — so the kernel *is* SHA-1's
//! compression function, verified against a from-scratch reference.

use crate::common::Xorshift;
use crate::{Domain, Workload};
use isax_ir::{FunctionBuilder, Program};
use isax_machine::Memory;

/// Base address of the 16-word circular message schedule.
pub const W_BASE: u32 = 0x4000;
/// Rounds in the hot loop.
pub const ROUNDS: u32 = 80;
/// The four SHA-1 round constants.
pub const K: [u32; 4] = [0x5A82_7999, 0x6ED9_EBA1, 0x8F1B_BCDC, 0xCA62_C1D6];
const HOT_WEIGHT: u64 = 20 * 1_500;

/// Reference implementation: the real SHA-1 compression (without the
/// final Davies–Meyer add, which lives outside the hot loop).
pub fn compress_reference(seed: u64, state: [u32; 5]) -> [u32; 5] {
    let mut w = {
        let mut g = Xorshift::new(seed ^ 0x5AA5);
        g.words(16)
    };
    let (mut a, mut b, mut c, mut d, mut e) = (state[0], state[1], state[2], state[3], state[4]);
    for t in 0..ROUNDS as usize {
        let wt = (w[(t + 13) & 15] ^ w[(t + 8) & 15] ^ w[(t + 2) & 15] ^ w[t & 15]).rotate_left(1);
        w[t & 15] = wt;
        let f = match t / 20 {
            0 => (b & c) | (!b & d),
            1 => b ^ c ^ d,
            2 => (b & c) | (b & d) | (c & d),
            _ => b ^ c ^ d,
        };
        let tmp = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(K[t / 20])
            .wrapping_add(wt);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = tmp;
    }
    [a, b, c, d, e]
}

/// Builds `sha_compress(a, b, c, d, e) -> (a, b, c, d, e)`: four
/// twenty-round loops, one per phase, exactly as unswitched compilers
/// emit the `t / 20` dispatch.
pub fn program() -> Program {
    let mut fb = FunctionBuilder::new("sha_compress", 5);
    let s_in: Vec<_> = (0..5).map(|i| fb.param(i)).collect();
    let phase_blocks: Vec<_> = (0..4).map(|_| fb.new_block(HOT_WEIGHT)).collect();
    let exit = fb.new_block(1_500);

    let regs: Vec<_> = (0..5).map(|_| fb.fresh()).collect();
    let (a, b, c, d, e) = (regs[0], regs[1], regs[2], regs[3], regs[4]);
    let t = fb.fresh();
    for (dst, src) in regs.iter().zip(&s_in) {
        fb.copy_to(*dst, *src);
    }
    fb.copy_to(t, 0i64);
    fb.jump(phase_blocks[0]);

    for phase in 0..4usize {
        fb.switch_to(phase_blocks[phase]);
        // Circular schedule addresses: ((t + k) & 15) * 4 + W_BASE.
        let w_at = |fb: &mut FunctionBuilder, off: i64| {
            let tk = fb.add(t, off);
            let idx = fb.and(tk, 15i64);
            let byt = fb.shl(idx, 2i64);
            let addr = fb.add(byt, W_BASE as i64);
            (addr, fb.ldw(addr))
        };
        let (_, w13) = w_at(&mut fb, 13);
        let (_, w8) = w_at(&mut fb, 8);
        let (_, w2) = w_at(&mut fb, 2);
        let (w0_addr, w0) = w_at(&mut fb, 0);
        let x0 = fb.xor(w13, w8);
        let x1 = fb.xor(x0, w2);
        let x2 = fb.xor(x1, w0);
        // rol1
        let l1 = fb.shl(x2, 1i64);
        let r31 = fb.shr(x2, 31i64);
        let wt = fb.or(l1, r31);
        fb.stw(w0_addr, wt);
        // The phase's boolean function.
        let f = match phase {
            0 => {
                // choose: (b & c) | (d & ~b)
                let bc = fb.and(b, c);
                let db = fb.andn(d, b);
                fb.or(bc, db)
            }
            2 => {
                // majority: (b & c) | (b & d) | (c & d)
                let bc = fb.and(b, c);
                let bd = fb.and(b, d);
                let cd = fb.and(c, d);
                let m0 = fb.or(bc, bd);
                fb.or(m0, cd)
            }
            _ => {
                // parity: b ^ c ^ d
                let x = fb.xor(b, c);
                fb.xor(x, d)
            }
        };
        // rol5(a)
        let a5 = fb.shl(a, 5i64);
        let a27 = fb.shr(a, 27i64);
        let rol5 = fb.or(a5, a27);
        // tmp = rol5 + f + e + K + wt
        let t0 = fb.add(rol5, f);
        let t1 = fb.add(t0, e);
        let t2 = fb.add(t1, K[phase] as i64);
        let tmp = fb.add(t2, wt);
        // rotate the chaining registers
        let b30l = fb.shl(b, 30i64);
        let b30r = fb.shr(b, 2i64);
        let rol30 = fb.or(b30l, b30r);
        fb.copy_to(e, d);
        fb.copy_to(d, c);
        fb.copy_to(c, rol30);
        fb.copy_to(b, a);
        fb.copy_to(a, tmp);
        let t1n = fb.add(t, 1i64);
        fb.copy_to(t, t1n);
        let more = fb.ltu(t, (20 * (phase as i64 + 1)).min(ROUNDS as i64));
        let next = if phase < 3 {
            phase_blocks[phase + 1]
        } else {
            exit
        };
        fb.branch(more, phase_blocks[phase], next);
    }

    fb.switch_to(exit);
    fb.ret(&[a.into(), b.into(), c.into(), d.into(), e.into()]);
    Program::new(vec![fb.finish()])
}

/// Installs the initial message schedule.
pub fn init_memory(mem: &mut Memory, seed: u64) {
    let mut g = Xorshift::new(seed ^ 0x5AA5);
    mem.store_words(W_BASE, &g.words(16));
}

fn args(seed: u64) -> Vec<u32> {
    let mut g = Xorshift::new(seed ^ 0x1357);
    g.words(5)
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "sha",
        domain: Domain::Encryption,
        program: program(),
        entry: "sha_compress",
        init_memory,
        args,
        extra_entries: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_machine::run;

    #[test]
    fn ir_matches_reference() {
        let p = program();
        for seed in 1..5u64 {
            let mut mem = Memory::new();
            init_memory(&mut mem, seed);
            let mut g = Xorshift::new(seed * 991);
            let st = [
                g.next_u32(),
                g.next_u32(),
                g.next_u32(),
                g.next_u32(),
                g.next_u32(),
            ];
            let out = run(&p, "sha_compress", &st, &mut mem.clone(), 200_000).expect("runs");
            assert_eq!(
                out.ret,
                compress_reference(seed, st).to_vec(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn schedule_recurrence_feeds_back() {
        // Changing one schedule word must change the result.
        let p = program();
        let st = [1, 2, 3, 4, 5];
        let mut m1 = Memory::new();
        init_memory(&mut m1, 1);
        let mut m2 = m1.clone();
        m2.store32(W_BASE, m1.load32(W_BASE) ^ 1);
        let o1 = run(&p, "sha_compress", &st, &mut m1, 200_000).unwrap();
        let o2 = run(&p, "sha_compress", &st, &mut m2, 200_000).unwrap();
        assert_ne!(o1.ret, o2.ret);
    }

    #[test]
    fn rotates_are_diamonds() {
        // The kernel contains three shift/shift/or rotate diamonds —
        // confirm by counting shift pairs feeding ors.
        let p = program();
        let round = &p.functions[0].blocks[1];
        let ors = round
            .insts
            .iter()
            .filter(|i| i.opcode == isax_ir::Opcode::Or)
            .count();
        assert!(ors >= 3);
    }
}
