//! `cjpeg` / `djpeg` (MediaBench): the integer DCT kernels.
//!
//! cjpeg's hot loop is the forward DCT (`jfdctint.c`, the accurate
//! Loeffler-Ligtenberg-Moshovitz integer DCT); djpeg's is the matching
//! inverse (`jidctint.c`). One row pass is a single enormous basic block:
//! eight loads, a butterfly network of adds/subs, **twelve genuine
//! multiplies** by fixed-point constants, descale rounds, eight stores.
//!
//! The multiplies are why the paper singles these benchmarks out: "very
//! large CFUs are necessary to achieve the speedup limit ... the system
//! created a CFU for djpeg requiring 24 register file read ports and
//! having an area greater than 8 multipliers". At realistic budgets only
//! the cheap butterfly fragments fit, so the curves climb slowly.
//!
//! The row passes below are bit-faithful to the libjpeg algorithm
//! (CONST_BITS = 13, PASS1_BITS = 2) and are validated against native
//! oracles using the same formulas.

use crate::common::Xorshift;
use crate::{Domain, Workload};
use isax_ir::{FunctionBuilder, Program, VReg};
use isax_machine::Memory;

/// Input coefficient/sample base (8×8 i16).
pub const IN_BASE: u32 = 0x1_2000;
/// Output base (8×8 i32 words).
pub const OUT_BASE: u32 = 0x1_3000;
/// Rows per block.
pub const ROWS: u32 = 8;
const HOT_WEIGHT: u64 = 8 * 1_200;

// libjpeg fixed-point constants, CONST_BITS = 13.
const FIX_0_298631336: i64 = 2446;
const FIX_0_390180644: i64 = 3196;
const FIX_0_541196100: i64 = 4433;
const FIX_0_765366865: i64 = 6270;
const FIX_0_899976223: i64 = 7373;
const FIX_1_175875602: i64 = 9633;
const FIX_1_501321110: i64 = 12299;
const FIX_1_847759065: i64 = 15137;
const FIX_1_961570560: i64 = 16069;
const FIX_2_053119869: i64 = 16819;
const FIX_2_562915447: i64 = 20995;
const FIX_3_072711026: i64 = 25172;

/// `DESCALE(x, 11)`: round-to-nearest shift used by both row passes.
fn descale11(x: i32) -> i32 {
    (x + 1024) >> 11
}

/// Native forward-DCT row pass (jfdctint pass 1).
pub fn fdct_row_reference(d: [i32; 8]) -> [i32; 8] {
    let tmp0 = d[0] + d[7];
    let tmp7 = d[0] - d[7];
    let tmp1 = d[1] + d[6];
    let tmp6 = d[1] - d[6];
    let tmp2 = d[2] + d[5];
    let tmp5 = d[2] - d[5];
    let tmp3 = d[3] + d[4];
    let tmp4 = d[3] - d[4];
    let tmp10 = tmp0 + tmp3;
    let tmp13 = tmp0 - tmp3;
    let tmp11 = tmp1 + tmp2;
    let tmp12 = tmp1 - tmp2;
    let mut o = [0i32; 8];
    o[0] = (tmp10 + tmp11) << 2;
    o[4] = (tmp10 - tmp11) << 2;
    let z1 = (tmp12 + tmp13) * FIX_0_541196100 as i32;
    o[2] = descale11(z1 + tmp13 * FIX_0_765366865 as i32);
    o[6] = descale11(z1 - tmp12 * FIX_1_847759065 as i32);
    let z1 = tmp4 + tmp7;
    let z2 = tmp5 + tmp6;
    let z3 = tmp4 + tmp6;
    let z4 = tmp5 + tmp7;
    let z5 = (z3 + z4) * FIX_1_175875602 as i32;
    let t4 = tmp4 * FIX_0_298631336 as i32;
    let t5 = tmp5 * FIX_2_053119869 as i32;
    let t6 = tmp6 * FIX_3_072711026 as i32;
    let t7 = tmp7 * FIX_1_501321110 as i32;
    let z1 = z1 * -(FIX_0_899976223 as i32);
    let z2 = z2 * -(FIX_2_562915447 as i32);
    let z3 = z3 * -(FIX_1_961570560 as i32) + z5;
    let z4 = z4 * -(FIX_0_390180644 as i32) + z5;
    o[7] = descale11(t4 + z1 + z3);
    o[5] = descale11(t5 + z2 + z4);
    o[3] = descale11(t6 + z2 + z3);
    o[1] = descale11(t7 + z1 + z4);
    o
}

/// Native inverse-DCT row pass (jidctint pass 1).
pub fn idct_row_reference(d: [i32; 8]) -> [i32; 8] {
    let z2 = d[2];
    let z3 = d[6];
    let z1 = (z2 + z3) * FIX_0_541196100 as i32;
    let tmp2 = z1 - z3 * FIX_1_847759065 as i32;
    let tmp3 = z1 + z2 * FIX_0_765366865 as i32;
    let z2 = d[0];
    let z3 = d[4];
    let tmp0 = (z2 + z3) << 13;
    let tmp1 = (z2 - z3) << 13;
    let tmp10 = tmp0 + tmp3;
    let tmp13 = tmp0 - tmp3;
    let tmp11 = tmp1 + tmp2;
    let tmp12 = tmp1 - tmp2;
    let t0 = d[7];
    let t1 = d[5];
    let t2 = d[3];
    let t3 = d[1];
    let z1 = t0 + t3;
    let z2 = t1 + t2;
    let z3 = t0 + t2;
    let z4 = t1 + t3;
    let z5 = (z3 + z4) * FIX_1_175875602 as i32;
    let t0 = t0 * FIX_0_298631336 as i32;
    let t1 = t1 * FIX_2_053119869 as i32;
    let t2 = t2 * FIX_3_072711026 as i32;
    let t3 = t3 * FIX_1_501321110 as i32;
    let z1 = z1 * -(FIX_0_899976223 as i32);
    let z2 = z2 * -(FIX_2_562915447 as i32);
    let z3 = z3 * -(FIX_1_961570560 as i32) + z5;
    let z4 = z4 * -(FIX_0_390180644 as i32) + z5;
    let t0 = t0 + z1 + z3;
    let t1 = t1 + z2 + z4;
    let t2 = t2 + z2 + z3;
    let t3 = t3 + z1 + z4;
    [
        descale11(tmp10 + t3),
        descale11(tmp11 + t2),
        descale11(tmp12 + t1),
        descale11(tmp13 + t0),
        descale11(tmp13 - t0),
        descale11(tmp12 - t1),
        descale11(tmp11 - t2),
        descale11(tmp10 - t3),
    ]
}

/// Emits `DESCALE(x, 11)`.
fn emit_descale(fb: &mut FunctionBuilder, x: VReg) -> VReg {
    let r = fb.add(x, 1024i64);
    fb.sar(r, 11i64)
}

/// Emits one row's loads.
fn emit_row_loads(fb: &mut FunctionBuilder, rowp: VReg) -> Vec<VReg> {
    (0..8)
        .map(|k| {
            let a = fb.add(rowp, (2 * k) as i64);
            fb.ldh(a)
        })
        .collect()
}

/// Emits one row's stores (32-bit outputs).
fn emit_row_stores(fb: &mut FunctionBuilder, outp: VReg, o: &[VReg; 8]) {
    for (k, &v) in o.iter().enumerate() {
        let a = fb.add(outp, (4 * k) as i64);
        fb.stw(a, v);
    }
}

fn build_dct(name: &'static str, forward: bool) -> Program {
    let mut fb = FunctionBuilder::new(name, 0);
    let body = fb.new_block(HOT_WEIGHT);
    let exit = fb.new_block(1_200);

    let rowp = fb.fresh();
    let outp = fb.fresh();
    let row = fb.fresh();
    fb.copy_to(rowp, IN_BASE as i64);
    fb.copy_to(outp, OUT_BASE as i64);
    fb.copy_to(row, 0i64);
    fb.jump(body);

    fb.switch_to(body);
    let d = emit_row_loads(&mut fb, rowp);
    let o = if forward {
        emit_fdct_row(&mut fb, &d)
    } else {
        emit_idct_row(&mut fb, &d)
    };
    emit_row_stores(&mut fb, outp, &o);
    let rp1 = fb.add(rowp, 16i64);
    fb.copy_to(rowp, rp1);
    let op1 = fb.add(outp, 32i64);
    fb.copy_to(outp, op1);
    let r1 = fb.add(row, 1i64);
    fb.copy_to(row, r1);
    let more = fb.ltu(row, ROWS as i64);
    fb.branch(more, body, exit);

    fb.switch_to(exit);
    let first = fb.ldw(OUT_BASE as i64);
    fb.ret(&[first.into()]);
    Program::new(vec![fb.finish()])
}

fn emit_fdct_row(fb: &mut FunctionBuilder, d: &[VReg]) -> [VReg; 8] {
    let tmp0 = fb.add(d[0], d[7]);
    let tmp7 = fb.sub(d[0], d[7]);
    let tmp1 = fb.add(d[1], d[6]);
    let tmp6 = fb.sub(d[1], d[6]);
    let tmp2 = fb.add(d[2], d[5]);
    let tmp5 = fb.sub(d[2], d[5]);
    let tmp3 = fb.add(d[3], d[4]);
    let tmp4 = fb.sub(d[3], d[4]);
    let tmp10 = fb.add(tmp0, tmp3);
    let tmp13 = fb.sub(tmp0, tmp3);
    let tmp11 = fb.add(tmp1, tmp2);
    let tmp12 = fb.sub(tmp1, tmp2);
    let e0 = fb.add(tmp10, tmp11);
    let o0 = fb.shl(e0, 2i64);
    let e4 = fb.sub(tmp10, tmp11);
    let o4 = fb.shl(e4, 2i64);
    let zsum = fb.add(tmp12, tmp13);
    let z1 = fb.mul(zsum, FIX_0_541196100);
    let m2 = fb.mul(tmp13, FIX_0_765366865);
    let s2 = fb.add(z1, m2);
    let o2 = emit_descale(fb, s2);
    let m6 = fb.mul(tmp12, FIX_1_847759065);
    let s6 = fb.sub(z1, m6);
    let o6 = emit_descale(fb, s6);
    let z1o = fb.add(tmp4, tmp7);
    let z2o = fb.add(tmp5, tmp6);
    let z3o = fb.add(tmp4, tmp6);
    let z4o = fb.add(tmp5, tmp7);
    let z34 = fb.add(z3o, z4o);
    let z5 = fb.mul(z34, FIX_1_175875602);
    let t4 = fb.mul(tmp4, FIX_0_298631336);
    let t5 = fb.mul(tmp5, FIX_2_053119869);
    let t6 = fb.mul(tmp6, FIX_3_072711026);
    let t7 = fb.mul(tmp7, FIX_1_501321110);
    let z1m = fb.mul(z1o, -FIX_0_899976223);
    let z2m = fb.mul(z2o, -FIX_2_562915447);
    let z3m0 = fb.mul(z3o, -FIX_1_961570560);
    let z3m = fb.add(z3m0, z5);
    let z4m0 = fb.mul(z4o, -FIX_0_390180644);
    let z4m = fb.add(z4m0, z5);
    let s7a = fb.add(t4, z1m);
    let s7 = fb.add(s7a, z3m);
    let o7 = emit_descale(fb, s7);
    let s5a = fb.add(t5, z2m);
    let s5 = fb.add(s5a, z4m);
    let o5 = emit_descale(fb, s5);
    let s3a = fb.add(t6, z2m);
    let s3 = fb.add(s3a, z3m);
    let o3 = emit_descale(fb, s3);
    let s1a = fb.add(t7, z1m);
    let s1 = fb.add(s1a, z4m);
    let o1 = emit_descale(fb, s1);
    [o0, o1, o2, o3, o4, o5, o6, o7]
}

fn emit_idct_row(fb: &mut FunctionBuilder, d: &[VReg]) -> [VReg; 8] {
    let z23 = fb.add(d[2], d[6]);
    let z1 = fb.mul(z23, FIX_0_541196100);
    let m2 = fb.mul(d[6], FIX_1_847759065);
    let tmp2 = fb.sub(z1, m2);
    let m3 = fb.mul(d[2], FIX_0_765366865);
    let tmp3 = fb.add(z1, m3);
    let e_sum = fb.add(d[0], d[4]);
    let tmp0 = fb.shl(e_sum, 13i64);
    let e_dif = fb.sub(d[0], d[4]);
    let tmp1 = fb.shl(e_dif, 13i64);
    let tmp10 = fb.add(tmp0, tmp3);
    let tmp13 = fb.sub(tmp0, tmp3);
    let tmp11 = fb.add(tmp1, tmp2);
    let tmp12 = fb.sub(tmp1, tmp2);
    let (t0i, t1i, t2i, t3i) = (d[7], d[5], d[3], d[1]);
    let z1o = fb.add(t0i, t3i);
    let z2o = fb.add(t1i, t2i);
    let z3o = fb.add(t0i, t2i);
    let z4o = fb.add(t1i, t3i);
    let z34 = fb.add(z3o, z4o);
    let z5 = fb.mul(z34, FIX_1_175875602);
    let t0 = fb.mul(t0i, FIX_0_298631336);
    let t1 = fb.mul(t1i, FIX_2_053119869);
    let t2 = fb.mul(t2i, FIX_3_072711026);
    let t3 = fb.mul(t3i, FIX_1_501321110);
    let z1m = fb.mul(z1o, -FIX_0_899976223);
    let z2m = fb.mul(z2o, -FIX_2_562915447);
    let z3m0 = fb.mul(z3o, -FIX_1_961570560);
    let z3m = fb.add(z3m0, z5);
    let z4m0 = fb.mul(z4o, -FIX_0_390180644);
    let z4m = fb.add(z4m0, z5);
    let t0a = fb.add(t0, z1m);
    let t0f = fb.add(t0a, z3m);
    let t1a = fb.add(t1, z2m);
    let t1f = fb.add(t1a, z4m);
    let t2a = fb.add(t2, z2m);
    let t2f = fb.add(t2a, z3m);
    let t3a = fb.add(t3, z1m);
    let t3f = fb.add(t3a, z4m);
    let descale_pair = |fb: &mut FunctionBuilder, a: VReg, b: VReg| {
        let s = fb.add(a, b);
        let p = emit_descale(fb, s);
        let df = fb.sub(a, b);
        let m = emit_descale(fb, df);
        (p, m)
    };
    let (o0, o7) = descale_pair(fb, tmp10, t3f);
    let (o1, o6) = descale_pair(fb, tmp11, t2f);
    let (o2, o5) = descale_pair(fb, tmp12, t1f);
    let (o3, o4) = descale_pair(fb, tmp13, t0f);
    [o0, o1, o2, o3, o4, o5, o6, o7]
}

/// Builds the forward DCT kernel.
pub fn cjpeg_program() -> Program {
    build_dct("fdct_rows", true)
}

/// Builds the inverse DCT kernel.
pub fn djpeg_program() -> Program {
    build_dct("idct_rows", false)
}

/// Quantization table base (64 words).
pub const QTAB_BASE: u32 = 0x1_4000;
/// Quantized/dequantized output base (64 words).
pub const QOUT_BASE: u32 = 0x1_5000;

/// Builds cjpeg's second hot function, the coefficient quantizer
/// (`jcdctmgr.c`): per coefficient, add half the divisor for rounding and
/// **divide** — with the sign handled by branches, exactly as the C code
/// does. Division cannot join a CFU and the branches fragment the DFG, so
/// this function contributes realistic "uncombinable" weight to cjpeg.
pub fn quantize_function() -> isax_ir::Function {
    let mut fb = FunctionBuilder::new("jpeg_quantize", 0);
    let head = fb.new_block(10_000);
    let neg_path = fb.new_block(5_000);
    let pos_path = fb.new_block(5_000);
    let store = fb.new_block(10_000);
    let exit = fb.new_block(160);

    let k = fb.fresh();
    let out = fb.fresh();
    fb.copy_to(k, 0i64);
    fb.copy_to(out, 0i64);
    fb.jump(head);

    fb.switch_to(head);
    let koff2 = fb.shl(k, 1i64);
    let ca = fb.add(koff2, IN_BASE as i64);
    let c = fb.ldh(ca);
    let koff4 = fb.shl(k, 2i64);
    let qa = fb.add(koff4, QTAB_BASE as i64);
    let q = fb.ldw(qa);
    let half = fb.shr(q, 1i64);
    let isneg = fb.lt(c, 0i64);
    fb.branch(isneg, neg_path, pos_path);

    fb.switch_to(neg_path);
    let nc = fb.sub(0i64, c);
    let nr = fb.add(nc, half);
    let nq = fb.div(nr, q);
    let nv = fb.sub(0i64, nq);
    fb.copy_to(out, nv);
    fb.jump(store);

    fb.switch_to(pos_path);
    let pr = fb.add(c, half);
    let pv = fb.div(pr, q);
    fb.copy_to(out, pv);
    fb.jump(store);

    fb.switch_to(store);
    let oa = fb.add(koff4, QOUT_BASE as i64);
    fb.stw(oa, out);
    let k1 = fb.add(k, 1i64);
    fb.copy_to(k, k1);
    let more = fb.ltu(k, 64i64);
    fb.branch(more, head, exit);

    fb.switch_to(exit);
    let first = fb.ldw(QOUT_BASE as i64);
    fb.ret(&[first.into()]);
    fb.finish()
}

/// Native oracle for [`quantize_function`].
pub fn quantize_reference(seed: u64) -> Vec<i32> {
    let block = input_block(seed);
    let q = qtable(seed);
    let mut out = Vec::with_capacity(64);
    for (k, &c) in block.iter().flatten().enumerate() {
        let d = q[k] as i32;
        let v = if c < 0 {
            -((-c + (d >> 1)) / d)
        } else {
            (c + (d >> 1)) / d
        };
        out.push(v);
    }
    out
}

/// Builds djpeg's second hot function, the dequantize + range-limit pass:
/// a multiply per coefficient and a select-based clamp — combinable, but
/// multiplier-priced.
pub fn dequantize_function() -> isax_ir::Function {
    let mut fb = FunctionBuilder::new("jpeg_dequantize", 0);
    let body = fb.new_block(10_000);
    let exit = fb.new_block(160);

    let k = fb.fresh();
    fb.copy_to(k, 0i64);
    fb.jump(body);

    fb.switch_to(body);
    let koff2 = fb.shl(k, 1i64);
    let ca = fb.add(koff2, IN_BASE as i64);
    let c = fb.ldh(ca);
    let koff4 = fb.shl(k, 2i64);
    let qa = fb.add(koff4, QTAB_BASE as i64);
    let q = fb.ldw(qa);
    let v = fb.mul(c, q);
    let hi = fb.gt(v, 2047i64);
    let v1 = fb.select(hi, 2047i64, v);
    let lo = fb.lt(v1, -2048i64);
    let v2 = fb.select(lo, -2048i64, v1);
    let oa = fb.add(koff4, QOUT_BASE as i64);
    fb.stw(oa, v2);
    let k1 = fb.add(k, 1i64);
    fb.copy_to(k, k1);
    let more = fb.ltu(k, 64i64);
    fb.branch(more, body, exit);

    fb.switch_to(exit);
    let first = fb.ldw(QOUT_BASE as i64);
    fb.ret(&[first.into()]);
    fb.finish()
}

/// Native oracle for [`dequantize_function`].
pub fn dequantize_reference(seed: u64) -> Vec<i32> {
    let block = input_block(seed);
    let q = qtable(seed);
    block
        .iter()
        .flatten()
        .enumerate()
        .map(|(k, &c)| (c * q[k] as i32).clamp(-2048, 2047))
        .collect()
}

/// The (synthesized) quantization table: divisors in 4..64.
pub fn qtable(seed: u64) -> Vec<u32> {
    let mut g = Xorshift::new(seed ^ 0x07AB);
    (0..64).map(|_| 4 + g.below(60)).collect()
}

/// Installs an 8×8 block of 16-bit inputs.
pub fn init_memory(mem: &mut Memory, seed: u64) {
    let mut g = Xorshift::new(seed ^ 0x1DC7);
    for k in 0..64u32 {
        let v = (g.below(512) as i32 - 256) as i16;
        mem.store16(IN_BASE + 2 * k, v as u16);
    }
    mem.store_words(QTAB_BASE, &qtable(seed));
}

/// Reads the input block (for the oracles).
pub fn input_block(seed: u64) -> [[i32; 8]; 8] {
    let mut g = Xorshift::new(seed ^ 0x1DC7);
    let mut rows = [[0i32; 8]; 8];
    for row in rows.iter_mut() {
        for v in row.iter_mut() {
            *v = g.below(512) as i32 - 256;
        }
    }
    rows
}

fn no_args(_seed: u64) -> Vec<u32> {
    vec![]
}

/// cjpeg workload: forward DCT plus the division-bound quantizer.
pub fn cjpeg_workload() -> Workload {
    let mut program = cjpeg_program();
    program.functions.push(quantize_function());
    Workload {
        name: "cjpeg",
        domain: Domain::Image,
        program,
        entry: "fdct_rows",
        init_memory,
        args: no_args,
        extra_entries: vec![crate::ExtraEntry {
            entry: "jpeg_quantize",
            args: no_args,
        }],
    }
}

/// djpeg workload: inverse DCT plus dequantize/range-limit.
pub fn djpeg_workload() -> Workload {
    let mut program = djpeg_program();
    program.functions.push(dequantize_function());
    Workload {
        name: "djpeg",
        domain: Domain::Image,
        program,
        entry: "idct_rows",
        init_memory,
        args: no_args,
        extra_entries: vec![crate::ExtraEntry {
            entry: "jpeg_dequantize",
            args: no_args,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_machine::run;

    #[test]
    fn fdct_rows_match_reference() {
        let p = cjpeg_program();
        for seed in 1..4u64 {
            let mut mem = Memory::new();
            init_memory(&mut mem, seed);
            run(&p, "fdct_rows", &[], &mut mem, 1_000_000).expect("runs");
            for (r, row) in input_block(seed).iter().enumerate() {
                let expect = fdct_row_reference(*row);
                let got = mem.load_words(OUT_BASE + 32 * r as u32, 8);
                let got_i: Vec<i32> = got.iter().map(|&w| w as i32).collect();
                assert_eq!(got_i, expect.to_vec(), "seed {seed} row {r}");
            }
        }
    }

    #[test]
    fn idct_rows_match_reference() {
        let p = djpeg_program();
        for seed in 1..4u64 {
            let mut mem = Memory::new();
            init_memory(&mut mem, seed);
            run(&p, "idct_rows", &[], &mut mem, 1_000_000).expect("runs");
            for (r, row) in input_block(seed).iter().enumerate() {
                let expect = idct_row_reference(*row);
                let got = mem.load_words(OUT_BASE + 32 * r as u32, 8);
                let got_i: Vec<i32> = got.iter().map(|&w| w as i32).collect();
                assert_eq!(got_i, expect.to_vec(), "seed {seed} row {r}");
            }
        }
    }

    #[test]
    fn quantizer_matches_reference() {
        let p = cjpeg_workload().program;
        for seed in 1..4u64 {
            let mut mem = Memory::new();
            init_memory(&mut mem, seed);
            run(&p, "jpeg_quantize", &[], &mut mem, 1_000_000).expect("runs");
            for (k, &e) in quantize_reference(seed).iter().enumerate() {
                assert_eq!(
                    mem.load32(QOUT_BASE + 4 * k as u32) as i32,
                    e,
                    "coeff {k} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn dequantizer_matches_reference() {
        let p = djpeg_workload().program;
        for seed in 1..4u64 {
            let mut mem = Memory::new();
            init_memory(&mut mem, seed);
            run(&p, "jpeg_dequantize", &[], &mut mem, 1_000_000).expect("runs");
            for (k, &e) in dequantize_reference(seed).iter().enumerate() {
                assert_eq!(
                    mem.load32(QOUT_BASE + 4 * k as u32) as i32,
                    e,
                    "coeff {k} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn fdct_dc_term_is_the_scaled_sum() {
        // Row of identical values: o0 = 8*v << 2, everything else 0 except
        // rounding in the odd terms.
        let o = fdct_row_reference([3; 8]);
        assert_eq!(o[0], (8 * 3) << 2);
        assert_eq!(o[4], 0);
    }

    #[test]
    fn idct_of_dc_only_is_flat() {
        let o = idct_row_reference([64, 0, 0, 0, 0, 0, 0, 0]);
        assert!(o.iter().all(|&v| v == o[0]), "{o:?}");
    }

    #[test]
    fn row_blocks_carry_twelve_multiplies() {
        for p in [cjpeg_program(), djpeg_program()] {
            let body = &p.functions[0].blocks[1];
            let muls = body
                .insts
                .iter()
                .filter(|i| i.opcode == isax_ir::Opcode::Mul)
                .count();
            assert_eq!(muls, 12, "{}", p.functions[0].name);
        }
    }
}
