//! `mpeg2dec` (MediaBench): motion compensation with saturated
//! reconstruction.
//!
//! The decoder's hot path averages two half-pel reference blocks, adds
//! the IDCT residual and clips to 0..255 — two byte loads, a halving add,
//! a residual load and a store per pixel, with the clip implemented as
//! *branches* (as compiled from `if (v < 0) v = 0; else if (v > 255)
//! v = 255;`). Loads, stores and control flow dominate; the dataflow
//! graphs offer little to combine, which is exactly why the paper calls
//! out mpeg2dec as a benchmark where custom instructions barely help.
//!
//! The oracle reconstructs the same block natively.

use crate::common::Xorshift;
use crate::{Domain, Workload};
use isax_ir::{FunctionBuilder, Program};
use isax_machine::Memory;

/// First reference block base (bytes).
pub const REF1_BASE: u32 = 0x2_0000;
/// Second reference block base (bytes).
pub const REF2_BASE: u32 = 0x2_1000;
/// Residual base (16-bit signed).
pub const RESID_BASE: u32 = 0x2_2000;
/// Output block base (bytes).
pub const OUT_BASE: u32 = 0x2_3000;
/// Pixels per macroblock run.
pub const N_PIXELS: u32 = 256;
const HOT_WEIGHT: u64 = 60_000;

/// Native reference reconstruction; returns the output block.
pub fn reconstruct_reference(seed: u64) -> Vec<u8> {
    let (r1, r2, resid) = block_data(seed);
    (0..N_PIXELS as usize)
        .map(|k| {
            let pred = (r1[k] as i32 + r2[k] as i32 + 1) >> 1;
            let v = pred + resid[k] as i32;
            v.clamp(0, 255) as u8
        })
        .collect()
}

/// Deterministic reference/residual data for a seed.
pub fn block_data(seed: u64) -> (Vec<u8>, Vec<u8>, Vec<i16>) {
    let mut g = Xorshift::new(seed ^ 0x3E62);
    let r1 = g.bytes(N_PIXELS as usize);
    let r2 = g.bytes(N_PIXELS as usize);
    let resid: Vec<i16> = (0..N_PIXELS)
        .map(|_| (g.below(160) as i32 - 80) as i16)
        .collect();
    (r1, r2, resid)
}

/// Builds `mpeg2_recon() -> checksum`.
pub fn program() -> Program {
    let mut fb = FunctionBuilder::new("mpeg2_recon", 0);
    let head = fb.new_block(HOT_WEIGHT);
    let clip_low = fb.new_block(HOT_WEIGHT / 20);
    let check_high = fb.new_block(HOT_WEIGHT);
    let clip_high = fb.new_block(HOT_WEIGHT / 20);
    let store = fb.new_block(HOT_WEIGHT);
    let exit = fb.new_block(250);

    let k = fb.fresh();
    let v = fb.fresh();
    let checksum = fb.fresh();
    fb.copy_to(k, 0i64);
    fb.copy_to(v, 0i64);
    fb.copy_to(checksum, 0i64);
    fb.jump(head);

    // Per-pixel prediction + residual.
    fb.switch_to(head);
    let a1 = fb.add(k, REF1_BASE as i64);
    let p1 = fb.ldbu(a1);
    let a2 = fb.add(k, REF2_BASE as i64);
    let p2 = fb.ldbu(a2);
    let s = fb.add(p1, p2);
    let s1 = fb.add(s, 1i64);
    let pred = fb.shr(s1, 1i64);
    let kk = fb.shl(k, 1i64);
    let ra = fb.add(kk, RESID_BASE as i64);
    let resid = fb.ldh(ra);
    let v0 = fb.add(pred, resid);
    fb.copy_to(v, v0);
    let neg = fb.lt(v, 0i64);
    fb.branch(neg, clip_low, check_high);

    fb.switch_to(clip_low);
    fb.copy_to(v, 0i64);
    fb.jump(store);

    fb.switch_to(check_high);
    let big = fb.gt(v, 255i64);
    fb.branch(big, clip_high, store);

    fb.switch_to(clip_high);
    fb.copy_to(v, 255i64);
    fb.jump(store);

    fb.switch_to(store);
    let oa = fb.add(k, OUT_BASE as i64);
    fb.stb(oa, v);
    let c31 = fb.mul(checksum, 31i64);
    let c1 = fb.add(c31, v);
    fb.copy_to(checksum, c1);
    let k1 = fb.add(k, 1i64);
    fb.copy_to(k, k1);
    let more = fb.ltu(k, N_PIXELS as i64);
    fb.branch(more, head, exit);

    fb.switch_to(exit);
    fb.ret(&[checksum.into()]);
    Program::new(vec![fb.finish()])
}

/// Installs the reference blocks and residual.
pub fn init_memory(mem: &mut Memory, seed: u64) {
    let (r1, r2, resid) = block_data(seed);
    mem.store_bytes(REF1_BASE, &r1);
    mem.store_bytes(REF2_BASE, &r2);
    for (i, &r) in resid.iter().enumerate() {
        mem.store16(RESID_BASE + 2 * i as u32, r as u16);
    }
}

fn no_args(_seed: u64) -> Vec<u32> {
    vec![]
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "mpeg2dec",
        domain: Domain::Image,
        program: program(),
        entry: "mpeg2_recon",
        init_memory,
        args: no_args,
        extra_entries: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_machine::run;

    #[test]
    fn ir_matches_reference() {
        let p = program();
        for seed in 1..4u64 {
            let mut mem = Memory::new();
            init_memory(&mut mem, seed);
            run(&p, "mpeg2_recon", &[], &mut mem, 5_000_000).expect("runs");
            let expect = reconstruct_reference(seed);
            for (i, &e) in expect.iter().enumerate() {
                assert_eq!(mem.load8(OUT_BASE + i as u32), e, "pixel {i} seed {seed}");
            }
        }
    }

    #[test]
    fn checksum_matches_reference() {
        let p = program();
        let mut mem = Memory::new();
        init_memory(&mut mem, 2);
        let out = run(&p, "mpeg2_recon", &[], &mut mem, 5_000_000).unwrap();
        let mut checksum = 0u32;
        for v in reconstruct_reference(2) {
            checksum = checksum.wrapping_mul(31).wrapping_add(v as u32);
        }
        assert_eq!(out.ret, vec![checksum]);
    }

    #[test]
    fn clipping_paths_are_reachable() {
        // The residual range ±80 with averaged predictions guarantees the
        // clip branches fire somewhere across seeds.
        let mut low = false;
        let mut high = false;
        for seed in 1..10u64 {
            let (r1, r2, resid) = block_data(seed);
            for k in 0..N_PIXELS as usize {
                let pred = (r1[k] as i32 + r2[k] as i32 + 1) >> 1;
                let v = pred + resid[k] as i32;
                low |= v < 0;
                high |= v > 255;
            }
        }
        assert!(low && high, "both clip paths exercised");
    }

    #[test]
    fn kernel_is_memory_and_branch_bound() {
        let p = program();
        let f = &p.functions[0];
        assert!(f.blocks.len() >= 6);
        let head = &f.blocks[1];
        let mem_ops = head.insts.iter().filter(|i| i.opcode.is_memory()).count();
        assert!(mem_ops >= 3, "three loads in the hot block");
    }
}
