//! `crc` (NetBench): table-driven CRC-32 over a message buffer.
//!
//! The classic byte-at-a-time loop:
//!
//! ```text
//! crc = table[(crc ^ *p++) & 0xFF] ^ (crc >> 8)
//! ```
//!
//! Two loads per byte (message byte + table entry) against a handful of
//! cheap ALU operations: the memory port and load latency bound the loop,
//! so custom instructions help, but less than in the encryption codes —
//! matching crc's middling curve in Figure 7.
//!
//! The table is the *real* CRC-32 (reflected, polynomial `0xEDB88320`)
//! and the oracle checks against a from-scratch bitwise implementation,
//! so the kernel is verifiably computing CRC-32.

use crate::common::Xorshift;
use crate::{Domain, Workload};
use isax_ir::{FunctionBuilder, Program};
use isax_machine::Memory;

/// CRC table base (256 words).
pub const TABLE_BASE: u32 = 0x8000;
/// Message buffer base.
pub const MSG_BASE: u32 = 0x9000;
/// Message length in bytes.
pub const MSG_LEN: u32 = 256;
const HOT_WEIGHT: u64 = 64 * 1_024;

/// The standard reflected CRC-32 table.
pub fn crc_table() -> Vec<u32> {
    (0..256u32)
        .map(|i| {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            c
        })
        .collect()
}

/// Deterministic message for a seed.
pub fn message(seed: u64) -> Vec<u8> {
    Xorshift::new(seed ^ 0xC4C).bytes(MSG_LEN as usize)
}

/// Bitwise (table-free) reference CRC-32 of the seed's message.
pub fn crc_reference(seed: u64, init: u32) -> u32 {
    let mut crc = init;
    for &b in &message(seed) {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
        }
    }
    crc
}

/// Builds `crc32(init) -> crc`.
pub fn program() -> Program {
    let mut fb = FunctionBuilder::new("crc32", 1);
    let init = fb.param(0);
    let body = fb.new_block(HOT_WEIGHT);
    let exit = fb.new_block(1_024);

    let crc = fb.fresh();
    let p = fb.fresh();
    let n = fb.fresh();
    fb.copy_to(crc, init);
    fb.copy_to(p, MSG_BASE as i64);
    fb.copy_to(n, MSG_LEN as i64);
    fb.jump(body);

    fb.switch_to(body);
    let byte = fb.ldbu(p);
    let x = fb.xor(crc, byte);
    let idx = fb.and(x, 0xFFi64);
    let off = fb.shl(idx, 2i64);
    let addr = fb.add(off, TABLE_BASE as i64);
    let te = fb.ldw(addr);
    let hi = fb.shr(crc, 8i64);
    let crc1 = fb.xor(te, hi);
    fb.copy_to(crc, crc1);
    let p1 = fb.add(p, 1i64);
    fb.copy_to(p, p1);
    let n1 = fb.sub(n, 1i64);
    fb.copy_to(n, n1);
    let more = fb.ne(n, 0i64);
    fb.branch(more, body, exit);

    fb.switch_to(exit);
    fb.ret(&[crc.into()]);
    Program::new(vec![fb.finish()])
}

/// Where `crc_table_gen` writes its table.
pub const GEN_BASE: u32 = 0x8800;

/// Builds the table *generator* — the other hot loop of the benchmark's
/// startup: 256 × 8 iterations of the branchy shift/xor recurrence. Its
/// data-dependent branch fragments the inner dataflow graph, a realistic
/// contrast to the streaming lookup loop.
pub fn table_gen_function() -> isax_ir::Function {
    let mut fb = FunctionBuilder::new("crc_table_gen", 0);
    let outer = fb.new_block(256 * 40);
    let inner = fb.new_block(256 * 8 * 40);
    let odd = fb.new_block(256 * 4 * 40);
    let even = fb.new_block(256 * 4 * 40);
    let inner_next = fb.new_block(256 * 8 * 40);
    let outer_next = fb.new_block(256 * 40);
    let exit = fb.new_block(40);

    let i = fb.fresh();
    let c = fb.fresh();
    let k = fb.fresh();
    fb.copy_to(i, 0i64);
    fb.copy_to(c, 0i64);
    fb.copy_to(k, 0i64);
    fb.jump(outer);

    fb.switch_to(outer);
    fb.copy_to(c, i);
    fb.copy_to(k, 8i64);
    fb.jump(inner);

    fb.switch_to(inner);
    let bit = fb.and(c, 1i64);
    let is_odd = fb.ne(bit, 0i64);
    fb.branch(is_odd, odd, even);

    fb.switch_to(odd);
    let sh = fb.shr(c, 1i64);
    let x = fb.xor(sh, 0xEDB8_8320u32);
    fb.copy_to(c, x);
    fb.jump(inner_next);

    fb.switch_to(even);
    let sh2 = fb.shr(c, 1i64);
    fb.copy_to(c, sh2);
    fb.jump(inner_next);

    fb.switch_to(inner_next);
    let k1 = fb.sub(k, 1i64);
    fb.copy_to(k, k1);
    let more_bits = fb.ne(k, 0i64);
    fb.branch(more_bits, inner, outer_next);

    fb.switch_to(outer_next);
    let off = fb.shl(i, 2i64);
    let addr = fb.add(off, GEN_BASE as i64);
    fb.stw(addr, c);
    let i1 = fb.add(i, 1i64);
    fb.copy_to(i, i1);
    let more = fb.ltu(i, 256i64);
    fb.branch(more, outer, exit);

    fb.switch_to(exit);
    let first = fb.ldw((GEN_BASE + 4) as i64);
    fb.ret(&[first.into()]);
    fb.finish()
}

/// Installs the CRC table and the message.
pub fn init_memory(mem: &mut Memory, seed: u64) {
    mem.store_words(TABLE_BASE, &crc_table());
    mem.store_bytes(MSG_BASE, &message(seed));
}

fn args(seed: u64) -> Vec<u32> {
    vec![Xorshift::new(seed ^ 0xFEED).next_u32()]
}

/// The packaged workload: the lookup loop plus the table generator.
pub fn workload() -> Workload {
    let mut program = program();
    program.functions.push(table_gen_function());
    Workload {
        name: "crc",
        domain: Domain::Network,
        program,
        entry: "crc32",
        init_memory,
        args,
        extra_entries: vec![crate::ExtraEntry {
            entry: "crc_table_gen",
            args: |_| vec![],
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_machine::run;

    #[test]
    fn ir_computes_real_crc32() {
        let p = program();
        for seed in 1..6u64 {
            let mut mem = Memory::new();
            init_memory(&mut mem, seed);
            let init = 0xFFFF_FFFFu32;
            let out = run(&p, "crc32", &[init], &mut mem, 100_000).expect("runs");
            assert_eq!(out.ret, vec![crc_reference(seed, init)], "seed {seed}");
        }
    }

    #[test]
    fn generated_table_matches_the_real_one() {
        let p = workload().program;
        let mut mem = Memory::new();
        init_memory(&mut mem, 1);
        let out = run(&p, "crc_table_gen", &[], &mut mem, 1_000_000).expect("runs");
        let expect = crc_table();
        for (k, &e) in expect.iter().enumerate() {
            assert_eq!(mem.load32(GEN_BASE + 4 * k as u32), e, "entry {k}");
        }
        assert_eq!(out.ret, vec![expect[1]]);
    }

    #[test]
    fn known_answer_check_for_the_table() {
        // table[1] of the reflected CRC-32 is a well-known constant.
        assert_eq!(crc_table()[1], 0x7707_3096);
        assert_eq!(crc_table()[255], 0x2D02_EF8D);
    }

    #[test]
    fn init_value_matters() {
        assert_ne!(crc_reference(1, 0), crc_reference(1, 0xFFFF_FFFF));
    }
}
