//! `gsmdecode` / `gsmencode` (MediaBench): GSM 06.10 full-rate kernels.
//!
//! * **gsmdecode** models the short-term synthesis filter: per sample,
//!   eight lattice taps of `GSM_MULT_R` (Q15 rounded multiply with
//!   saturation) and `GSM_ADD`/`GSM_SUB` (saturated 16-bit adds). The
//!   saturation idiom — add, compare, select, compare, select — combines
//!   nicely, but every tap contains two genuine multiplies whose area
//!   (≈17 adders each) makes large CFUs expensive: the gsm curves rise
//!   slowly with budget, as in Figure 7.
//! * **gsmencode** models the long-term-predictor lag search: a
//!   multiply-accumulate cross-correlation over 40-sample windows, scaled
//!   with arithmetic shifts.
//!
//! Both kernels follow the bit-exact GSM arithmetic macros
//! (`GSM_MULT_R(a,b) = (a*b + 16384) >> 15`, saturated) and are verified
//! against native oracles.

use crate::common::Xorshift;
use crate::{Domain, Workload};
use isax_ir::{FunctionBuilder, Program, VReg};
use isax_machine::Memory;

/// Reflection coefficients (8 words, Q15).
pub const RRP_BASE: u32 = 0xF000;
/// Lattice state (9 words).
pub const V_BASE: u32 = 0xF100;
/// Input samples (decoder) / short-term residual (encoder).
pub const IN_BASE: u32 = 0xF400;
/// Second operand window for the encoder's correlation.
pub const WT_BASE: u32 = 0xF800;
/// Samples per frame processed by the kernels.
pub const FRAME: u32 = 40;
/// Lattice order.
pub const ORDER: u32 = 8;
const HOT_WEIGHT: u64 = 40 * 8 * 300;

/// Saturated 16-bit add (GSM_ADD).
pub fn gsm_add(a: i32, b: i32) -> i32 {
    (a + b).clamp(-32768, 32767)
}

/// Saturated 16-bit subtract (GSM_SUB).
pub fn gsm_sub(a: i32, b: i32) -> i32 {
    (a - b).clamp(-32768, 32767)
}

/// Rounded Q15 multiply with saturation (GSM_MULT_R).
pub fn gsm_mult_r(a: i32, b: i32) -> i32 {
    ((a * b + 16384) >> 15).clamp(-32768, 32767)
}

/// Deterministic Q15 coefficient/sample tables.
pub fn frame_data(seed: u64) -> (Vec<i32>, Vec<i32>, Vec<i32>) {
    let mut g = Xorshift::new(seed ^ 0x65E6);
    let rrp: Vec<i32> = (0..ORDER)
        .map(|_| g.below(26_000) as i32 - 13_000)
        .collect();
    let input: Vec<i32> = (0..FRAME).map(|_| g.below(8_192) as i32 - 4_096).collect();
    let wt: Vec<i32> = (0..FRAME).map(|_| g.below(8_192) as i32 - 4_096).collect();
    (rrp, input, wt)
}

/// Reference short-term synthesis filter: returns the final lattice state
/// word `v[0]` and a checksum of the outputs.
pub fn decode_reference(seed: u64) -> (i32, u32) {
    let (rrp, input, _) = frame_data(seed);
    let mut v = [0i32; 9];
    let mut checksum = 0u32;
    for &s in &input {
        let mut sri = s;
        for i in (0..ORDER as usize).rev() {
            sri = gsm_sub(sri, gsm_mult_r(rrp[i], v[i]));
            v[i + 1] = gsm_add(v[i], gsm_mult_r(rrp[i], sri));
        }
        v[0] = sri;
        checksum = checksum.wrapping_mul(31).wrapping_add(sri as u32);
    }
    (v[0], checksum)
}

/// Reference LTP cross-correlation: Σ `in[k] * wt[k]` over the frame, scaled.
pub fn encode_reference(seed: u64) -> i32 {
    let (_, input, wt) = frame_data(seed);
    let mut acc = 0i64;
    for k in 0..FRAME as usize {
        acc += (input[k] as i64) * (wt[k] as i64);
    }
    (acc >> 6) as i32
}

/// Emits GSM_MULT_R with saturation.
fn emit_mult_r(fb: &mut FunctionBuilder, a: VReg, b: VReg) -> VReg {
    let prod = fb.mul(a, b);
    let rounded = fb.add(prod, 16_384i64);
    let shifted = fb.sar(rounded, 15i64);
    emit_sat(fb, shifted)
}

/// Emits the saturating clamp to [-32768, 32767].
fn emit_sat(fb: &mut FunctionBuilder, v: VReg) -> VReg {
    let hi = fb.gt(v, 32_767i64);
    let v1 = fb.select(hi, 32_767i64, v);
    let lo = fb.lt(v1, -32_768i64);
    fb.select(lo, -32_768i64, v1)
}

/// Builds `gsm_decode() -> (v0, checksum)` — the synthesis lattice.
pub fn decode_program() -> Program {
    let mut fb = FunctionBuilder::new("gsm_decode", 0);
    let sample_loop = fb.new_block(40 * 300);
    let tap_loop = fb.new_block(HOT_WEIGHT);
    let sample_done = fb.new_block(40 * 300);
    let exit = fb.new_block(300);

    let sp = fb.fresh(); // sample pointer
    let nsamp = fb.fresh();
    let checksum = fb.fresh();
    fb.copy_to(sp, IN_BASE as i64);
    fb.copy_to(nsamp, FRAME as i64);
    fb.copy_to(checksum, 0i64);
    fb.jump(sample_loop);

    // Per-sample setup.
    fb.switch_to(sample_loop);
    let sri = fb.fresh();
    let s0 = fb.ldh(sp);
    fb.copy_to(sri, s0);
    let i = fb.fresh(); // tap index, runs 7..=0
    fb.copy_to(i, (ORDER - 1) as i64);
    fb.jump(tap_loop);

    // Per-tap lattice step.
    fb.switch_to(tap_loop);
    let ioff = fb.shl(i, 2i64);
    let rrp_addr = fb.add(ioff, RRP_BASE as i64);
    let rrpi = fb.ldw(rrp_addr);
    let v_addr = fb.add(ioff, V_BASE as i64);
    let vi = fb.ldw(v_addr);
    let m1 = emit_mult_r(&mut fb, rrpi, vi);
    let sub = fb.sub(sri, m1);
    let sri1 = emit_sat(&mut fb, sub);
    fb.copy_to(sri, sri1);
    let m2 = emit_mult_r(&mut fb, rrpi, sri);
    let addv = fb.add(vi, m2);
    let vnew = emit_sat(&mut fb, addv);
    let v1_addr = fb.add(v_addr, 4i64);
    fb.stw(v1_addr, vnew);
    let i1 = fb.sub(i, 1i64);
    fb.copy_to(i, i1);
    let cont = fb.ge(i, 0i64);
    fb.branch(cont, tap_loop, sample_done);

    // Per-sample finish.
    fb.switch_to(sample_done);
    fb.stw(V_BASE as i64, sri);
    let c31 = fb.mul(checksum, 31i64);
    let c1 = fb.add(c31, sri);
    fb.copy_to(checksum, c1);
    let sp1 = fb.add(sp, 2i64);
    fb.copy_to(sp, sp1);
    let n1 = fb.sub(nsamp, 1i64);
    fb.copy_to(nsamp, n1);
    let more = fb.ne(nsamp, 0i64);
    fb.branch(more, sample_loop, exit);

    fb.switch_to(exit);
    let v0 = fb.ldw(V_BASE as i64);
    fb.ret(&[v0.into(), checksum.into()]);
    Program::new(vec![fb.finish()])
}

/// Builds `gsm_encode() -> acc` — the LTP cross-correlation.
pub fn encode_program() -> Program {
    let mut fb = FunctionBuilder::new("gsm_encode", 0);
    let body = fb.new_block(40 * 2_500);
    let exit = fb.new_block(2_500);

    let acc = fb.fresh();
    let ip = fb.fresh();
    let wp = fb.fresh();
    let n = fb.fresh();
    fb.copy_to(acc, 0i64);
    fb.copy_to(ip, IN_BASE as i64);
    fb.copy_to(wp, WT_BASE as i64);
    fb.copy_to(n, FRAME as i64);
    fb.jump(body);

    fb.switch_to(body);
    let a = fb.ldh(ip);
    let b = fb.ldh(wp);
    let prod = fb.mul(a, b);
    let acc1 = fb.add(acc, prod);
    fb.copy_to(acc, acc1);
    let ip1 = fb.add(ip, 2i64);
    fb.copy_to(ip, ip1);
    let wp1 = fb.add(wp, 2i64);
    fb.copy_to(wp, wp1);
    let n1 = fb.sub(n, 1i64);
    fb.copy_to(n, n1);
    let more = fb.ne(n, 0i64);
    fb.branch(more, body, exit);

    fb.switch_to(exit);
    let scaled = fb.sar(acc, 6i64);
    fb.ret(&[scaled.into()]);
    Program::new(vec![fb.finish()])
}

/// Builds the encoder's second hot function, the APCM block-maximum
/// quantizer (`gsm_encode`'s xmaxc computation): find the largest sample
/// magnitude in a sub-block, then derive the exponent with the standard
/// shift-until-small loop — select-friendly max/abs against a branchy
/// normalization loop.
pub fn xmax_quant_function() -> isax_ir::Function {
    let mut fb = FunctionBuilder::new("gsm_xmax_quant", 0);
    let scan = fb.new_block(13 * 1_500);
    let norm = fb.new_block(6 * 1_500);
    let exit = fb.new_block(1_500);

    let xmax = fb.fresh();
    let p = fb.fresh();
    let n = fb.fresh();
    fb.copy_to(xmax, 0i64);
    fb.copy_to(p, IN_BASE as i64);
    fb.copy_to(n, 13i64);
    fb.jump(scan);

    // abs + running max over 13 samples.
    fb.switch_to(scan);
    let x = fb.ldh(p);
    let neg = fb.lt(x, 0i64);
    let nx = fb.sub(0i64, x);
    let ax = fb.select(neg, nx, x);
    let bigger = fb.gt(ax, xmax);
    let m2 = fb.select(bigger, ax, xmax);
    fb.copy_to(xmax, m2);
    let p1 = fb.add(p, 2i64);
    fb.copy_to(p, p1);
    let n1 = fb.sub(n, 1i64);
    fb.copy_to(n, n1);
    let more = fb.ne(n, 0i64);
    fb.branch(more, scan, norm);

    // exponent = number of right shifts until xmax fits in 6 bits.
    fb.switch_to(norm);
    let exp = fb.fresh();
    // First visit initializes exp via the dominating scan block? The IR is
    // not SSA: initialize in scan's fallthrough instead — simplest is to
    // zero it before the loop re-entry check.
    let fits = fb.gt(xmax, 63i64);
    let shifted = fb.shr(xmax, 1i64);
    let x2 = fb.select(fits, shifted, xmax);
    fb.copy_to(xmax, x2);
    let e1 = fb.add(exp, fits);
    fb.copy_to(exp, e1);
    fb.branch(fits, norm, exit);

    fb.switch_to(exit);
    fb.ret(&[xmax.into(), exp.into()]);
    let mut f = fb.finish();
    // exp starts at zero: registers are zero-initialized by the machine
    // ABI modelled in the interpreter, but make it explicit for the
    // verifier by defining it in the entry block.
    let entry = &mut f.blocks[0];
    entry.insts.push(isax_ir::Inst::new(
        isax_ir::Opcode::Mov,
        vec![exp],
        vec![isax_ir::Operand::Imm(0)],
    ));
    f
}

/// Native oracle for [`xmax_quant_function`].
pub fn xmax_quant_reference(seed: u64) -> (i32, u32) {
    let (_, input, _) = frame_data(seed);
    let mut xmax = 0i32;
    for &x in input.iter().take(13) {
        xmax = xmax.max(x.abs());
    }
    let mut exp = 0u32;
    while xmax > 63 {
        xmax >>= 1;
        exp += 1;
    }
    (xmax, exp)
}

/// Decoder memory: coefficients, zeroed lattice state, input samples.
pub fn init_decode_memory(mem: &mut Memory, seed: u64) {
    let (rrp, input, _) = frame_data(seed);
    let rrp_u: Vec<u32> = rrp.iter().map(|&v| v as u32).collect();
    mem.store_words(RRP_BASE, &rrp_u);
    mem.store_words(V_BASE, &[0; 9]);
    for (k, &s) in input.iter().enumerate() {
        mem.store16(IN_BASE + 2 * k as u32, s as u16);
    }
}

/// Encoder memory: the two correlation windows.
pub fn init_encode_memory(mem: &mut Memory, seed: u64) {
    let (_, input, wt) = frame_data(seed);
    for (k, &s) in input.iter().enumerate() {
        mem.store16(IN_BASE + 2 * k as u32, s as u16);
    }
    for (k, &s) in wt.iter().enumerate() {
        mem.store16(WT_BASE + 2 * k as u32, s as u16);
    }
}

fn no_args(_seed: u64) -> Vec<u32> {
    vec![]
}

/// gsmdecode workload.
pub fn decode_workload() -> Workload {
    Workload {
        name: "gsmdecode",
        domain: Domain::Audio,
        program: decode_program(),
        entry: "gsm_decode",
        init_memory: init_decode_memory,
        args: no_args,
        extra_entries: vec![],
    }
}

/// gsmencode workload: LTP correlation plus the xmax quantizer.
pub fn encode_workload() -> Workload {
    let mut program = encode_program();
    program.functions.push(xmax_quant_function());
    Workload {
        name: "gsmencode",
        domain: Domain::Audio,
        program,
        entry: "gsm_encode",
        init_memory: init_encode_memory,
        args: no_args,
        extra_entries: vec![crate::ExtraEntry {
            entry: "gsm_xmax_quant",
            args: no_args,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_machine::run;

    #[test]
    fn decoder_matches_reference() {
        let p = decode_program();
        for seed in 1..5u64 {
            let mut mem = Memory::new();
            init_decode_memory(&mut mem, seed);
            let out = run(&p, "gsm_decode", &[], &mut mem, 2_000_000).expect("runs");
            let (v0, checksum) = decode_reference(seed);
            assert_eq!(out.ret, vec![v0 as u32, checksum], "seed {seed}");
        }
    }

    #[test]
    fn encoder_matches_reference() {
        let p = encode_program();
        for seed in 1..5u64 {
            let mut mem = Memory::new();
            init_encode_memory(&mut mem, seed);
            let out = run(&p, "gsm_encode", &[], &mut mem, 1_000_000).expect("runs");
            assert_eq!(out.ret, vec![encode_reference(seed) as u32], "seed {seed}");
        }
    }

    #[test]
    fn xmax_quantizer_matches_reference() {
        let p = encode_workload().program;
        for seed in 1..5u64 {
            let mut mem = Memory::new();
            init_encode_memory(&mut mem, seed);
            let out = run(&p, "gsm_xmax_quant", &[], &mut mem, 100_000).expect("runs");
            let (xmax, exp) = xmax_quant_reference(seed);
            assert_eq!(out.ret, vec![xmax as u32, exp], "seed {seed}");
        }
    }

    #[test]
    fn gsm_arithmetic_saturates() {
        assert_eq!(gsm_add(32_000, 32_000), 32_767);
        assert_eq!(gsm_sub(-32_000, 32_000), -32_768);
        assert_eq!(gsm_mult_r(32_767, 32_767), 32_766);
        assert_eq!(gsm_mult_r(-32_768, 32_767), -32_767);
    }

    #[test]
    fn tap_loop_contains_multiplies_and_selects() {
        let p = decode_program();
        let tap = &p.functions[0].blocks[2];
        let muls = tap
            .insts
            .iter()
            .filter(|i| i.opcode == isax_ir::Opcode::Mul)
            .count();
        assert_eq!(muls, 2, "two GSM_MULT_R per lattice tap");
        let sels = tap
            .insts
            .iter()
            .filter(|i| i.opcode == isax_ir::Opcode::Select)
            .count();
        assert!(sels >= 6, "three saturations, two selects each");
    }
}
