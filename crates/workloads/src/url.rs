//! `url` (NetBench): URL-based switching — case-folded path hashing.
//!
//! The hot loop of url-based switching canonicalizes and hashes the
//! request path one byte at a time: fold ASCII case, mix the character
//! into a djb2-style hash (`h = h*33 ^ c` via shift+add+xor), and count
//! path separators to find the route depth. One load per character
//! against six or so cheap ALU operations gives it a respectable — but
//! not encryption-grade — speedup curve.
//!
//! The oracle implements the identical hash in native Rust.

use crate::common::Xorshift;
use crate::{Domain, Workload};
use isax_ir::{FunctionBuilder, Program};
use isax_machine::Memory;

/// URL buffer base.
pub const URL_BASE: u32 = 0xB000;
/// URL length in bytes.
pub const URL_LEN: u32 = 96;
const HOT_WEIGHT: u64 = 48_000;

/// Deterministic printable "URL" for a seed.
pub fn url_bytes(seed: u64) -> Vec<u8> {
    let mut g = Xorshift::new(seed ^ 0x0601);
    (0..URL_LEN)
        .map(|i| {
            if i % 9 == 0 {
                b'/'
            } else {
                // Mixed-case letters and digits.
                let c = g.below(62);
                match c {
                    0..=25 => b'A' + c as u8,
                    26..=51 => b'a' + (c - 26) as u8,
                    _ => b'0' + (c - 52) as u8,
                }
            }
        })
        .collect()
}

/// Reference: (hash, slash_count).
pub fn hash_reference(seed: u64, init: u32) -> (u32, u32) {
    let mut h = init;
    let mut slashes = 0u32;
    for &b in &url_bytes(seed) {
        let c = (b | 0x20) as u32; // case fold
        h = (h << 5).wrapping_add(h) ^ c; // h*33 ^ c
        slashes = slashes.wrapping_add((b == b'/') as u32);
    }
    (h, slashes)
}

/// Builds `url_hash(init) -> (hash, slashes)`.
pub fn program() -> Program {
    let mut fb = FunctionBuilder::new("url_hash", 1);
    let init = fb.param(0);
    let body = fb.new_block(HOT_WEIGHT);
    let exit = fb.new_block(500);

    let h = fb.fresh();
    let slashes = fb.fresh();
    let p = fb.fresh();
    let n = fb.fresh();
    fb.copy_to(h, init);
    fb.copy_to(slashes, 0i64);
    fb.copy_to(p, URL_BASE as i64);
    fb.copy_to(n, URL_LEN as i64);
    fb.jump(body);

    fb.switch_to(body);
    let raw = fb.ldbu(p);
    let folded = fb.or(raw, 0x20i64);
    let h5 = fb.shl(h, 5i64);
    let hsum = fb.add(h5, h);
    let h1 = fb.xor(hsum, folded);
    fb.copy_to(h, h1);
    let is_slash = fb.eq(raw, b'/' as i64);
    let s1 = fb.add(slashes, is_slash);
    fb.copy_to(slashes, s1);
    let p1 = fb.add(p, 1i64);
    fb.copy_to(p, p1);
    let n1 = fb.sub(n, 1i64);
    fb.copy_to(n, n1);
    let more = fb.ne(n, 0i64);
    fb.branch(more, body, exit);

    fb.switch_to(exit);
    fb.ret(&[h.into(), slashes.into()]);
    Program::new(vec![fb.finish()])
}

/// Installs the URL buffer.
pub fn init_memory(mem: &mut Memory, seed: u64) {
    mem.store_bytes(URL_BASE, &url_bytes(seed));
}

fn args(seed: u64) -> Vec<u32> {
    vec![5381 ^ (seed as u32)]
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "url",
        domain: Domain::Network,
        program: program(),
        entry: "url_hash",
        init_memory,
        args,
        extra_entries: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_machine::run;

    #[test]
    fn ir_matches_reference() {
        let p = program();
        for seed in 1..6u64 {
            let mut mem = Memory::new();
            init_memory(&mut mem, seed);
            let init = 5381 ^ seed as u32;
            let out = run(&p, "url_hash", &[init], &mut mem, 100_000).expect("runs");
            let (h, s) = hash_reference(seed, init);
            assert_eq!(out.ret, vec![h, s], "seed {seed}");
        }
    }

    #[test]
    fn urls_contain_separators() {
        let (_, slashes) = hash_reference(3, 5381);
        assert!(slashes >= URL_LEN / 9, "every 9th byte is a slash");
    }

    #[test]
    fn case_folding_makes_hash_case_insensitive() {
        // The hash folds case, so 'A' and 'a' mix identically; the slash
        // count still sees the raw byte. Verify with a manual computation.
        let upper = (5381u32 << 5).wrapping_add(5381) ^ ('a' as u32);
        let lower = (5381u32 << 5).wrapping_add(5381) ^ ((b'A' | 0x20) as u32);
        assert_eq!(upper, lower);
    }
}
