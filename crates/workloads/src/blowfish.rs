//! `blowfish` (MiBench security): the Feistel encryption kernel.
//!
//! The hot loop of Blowfish encrypts one 64-bit block with sixteen Feistel
//! rounds. Each round xors in a subkey and pushes half the block through
//! the F function
//!
//! ```text
//! F(x) = ((S0[x>>24] + S1[(x>>16)&FF]) ^ S2[(x>>8)&FF]) + S3[x&FF]
//! ```
//!
//! — byte extraction and address arithmetic are long chains of cheap
//! shifts/ands/adds, exactly the shapes the paper's Figure 2 illustrates
//! with this benchmark. Four S-box loads per round keep the memory port
//! busy but leave plenty of combinable ALU work: blowfish reaches a 1.62
//! speedup in the paper.
//!
//! The S-boxes and P-array are synthesized from a deterministic generator
//! (standing in for the digits-of-π constants) — identical tables are
//! installed in the interpreter memory and used by the native oracle.

use crate::common::Xorshift;
use crate::{Domain, Workload};
use isax_ir::{FunctionBuilder, Program};
use isax_machine::Memory;

/// P-array base address (18 words).
pub const P_BASE: u32 = 0x1000;
/// S-box base address (4 × 256 words, contiguous).
pub const S_BASE: u32 = 0x2000;
/// Number of Feistel rounds.
pub const ROUNDS: u32 = 16;
/// Profile weight of the round loop (blocks encrypted × rounds).
const HOT_WEIGHT: u64 = 16 * 4_000;

/// Generates the key-schedule tables for a seed: (P\[18\], S\[4×256\]).
pub fn tables(seed: u64) -> (Vec<u32>, Vec<u32>) {
    let mut g = Xorshift::new(seed ^ 0xB10F15D);
    (g.words(18), g.words(4 * 256))
}

/// Native reference implementation of one whole encryption.
pub fn encrypt_reference(seed: u64, mut xl: u32, mut xr: u32) -> (u32, u32) {
    let (p, s) = tables(seed);
    // F(x) = ((S0[a] + S1[b]) ^ S2[c]) + S3[d].
    let f = |x: u32| -> u32 {
        let a = (x >> 24) as usize;
        let b = ((x >> 16) & 0xFF) as usize;
        let c = ((x >> 8) & 0xFF) as usize;
        let d = (x & 0xFF) as usize;
        (s[a].wrapping_add(s[256 + b]) ^ s[512 + c]).wrapping_add(s[768 + d])
    };
    for &round_key in p.iter().take(ROUNDS as usize) {
        xl ^= round_key;
        xr ^= f(xl);
        std::mem::swap(&mut xl, &mut xr);
    }
    std::mem::swap(&mut xl, &mut xr);
    xr ^= p[16];
    xl ^= p[17];
    (xl, xr)
}

/// Builds an **unrolled** variant of the round loop: `unroll` Feistel
/// rounds per basic block, as an optimizing compiler (Trimaran with loop
/// unrolling, in the paper's setting) would produce. The paper notes that
/// naive exponential candidate discovery breaks down "for very large
/// basic blocks or in the presence of optimizations that create large
/// basic blocks, such as loop unrolling" — this variant feeds Figure 3.
///
/// # Panics
///
/// Panics unless `unroll` divides [`ROUNDS`].
pub fn program_unrolled(unroll: u32) -> Program {
    assert!(
        unroll > 0 && ROUNDS.is_multiple_of(unroll),
        "unroll must divide ROUNDS"
    );
    let mut fb = FunctionBuilder::new("blowfish_encrypt", 2);
    let xl_in = fb.param(0);
    let xr_in = fb.param(1);
    let round = fb.new_block(HOT_WEIGHT / unroll as u64);
    let fini = fb.new_block(4_000);

    let xl = fb.fresh();
    let xr = fb.fresh();
    let i = fb.fresh();
    let pp = fb.fresh();
    fb.copy_to(xl, xl_in);
    fb.copy_to(xr, xr_in);
    fb.copy_to(i, 0i64);
    fb.copy_to(pp, P_BASE as i64);
    fb.jump(round);

    fb.switch_to(round);
    for u in 0..unroll {
        let pa = fb.add(pp, (4 * u) as i64);
        let pi = fb.ldw(pa);
        let xl1 = fb.xor(xl, pi);
        let fx = emit_f(&mut fb, xl1);
        let xr1 = fb.xor(xr, fx);
        fb.copy_to(xl, xr1);
        fb.copy_to(xr, xl1);
    }
    let pp1 = fb.add(pp, (4 * unroll) as i64);
    fb.copy_to(pp, pp1);
    let i1 = fb.add(i, unroll as i64);
    fb.copy_to(i, i1);
    let more = fb.ltu(i, ROUNDS as i64);
    fb.branch(more, round, fini);

    fb.switch_to(fini);
    let xl_f = fb.mov(xr);
    let xr_f = fb.mov(xl);
    let p16 = fb.ldw((P_BASE + 16 * 4) as i64);
    let p17 = fb.ldw((P_BASE + 17 * 4) as i64);
    let xr_o = fb.xor(xr_f, p16);
    let xl_o = fb.xor(xl_f, p17);
    fb.ret(&[xl_o.into(), xr_o.into()]);
    Program::new(vec![fb.finish()])
}

/// Emits the F function body and returns the result register.
fn emit_f(fb: &mut FunctionBuilder, xl1: isax_ir::VReg) -> isax_ir::VReg {
    let a = fb.shr(xl1, 24i64);
    let b0 = fb.shr(xl1, 16i64);
    let b = fb.and(b0, 0xFFi64);
    let c0 = fb.shr(xl1, 8i64);
    let c = fb.and(c0, 0xFFi64);
    let d = fb.and(xl1, 0xFFi64);
    let aa = fb.shl(a, 2i64);
    let a_addr = fb.add(aa, S_BASE as i64);
    let ba = fb.shl(b, 2i64);
    let b_addr = fb.add(ba, (S_BASE + 0x400) as i64);
    let ca = fb.shl(c, 2i64);
    let c_addr = fb.add(ca, (S_BASE + 0x800) as i64);
    let da = fb.shl(d, 2i64);
    let d_addr = fb.add(da, (S_BASE + 0xC00) as i64);
    let s0 = fb.ldw(a_addr);
    let s1 = fb.ldw(b_addr);
    let s2 = fb.ldw(c_addr);
    let s3 = fb.ldw(d_addr);
    let t0 = fb.add(s0, s1);
    let t1 = fb.xor(t0, s2);
    fb.add(t1, s3)
}

/// Builds the kernel program: `blowfish_encrypt(xl, xr) -> (xl, xr)`.
pub fn program() -> Program {
    let mut fb = FunctionBuilder::new("blowfish_encrypt", 2);
    let xl_in = fb.param(0);
    let xr_in = fb.param(1);
    let round = fb.new_block(HOT_WEIGHT);
    let fini = fb.new_block(4_000);

    // entry: loop-carried registers
    let xl = fb.fresh();
    let xr = fb.fresh();
    let i = fb.fresh();
    let pp = fb.fresh();
    fb.copy_to(xl, xl_in);
    fb.copy_to(xr, xr_in);
    fb.copy_to(i, 0i64);
    fb.copy_to(pp, P_BASE as i64);
    fb.jump(round);

    // round body
    fb.switch_to(round);
    let pi = fb.ldw(pp);
    let xl1 = fb.xor(xl, pi);
    // F(xl1): byte extraction + address arithmetic.
    let a = fb.shr(xl1, 24i64);
    let b0 = fb.shr(xl1, 16i64);
    let b = fb.and(b0, 0xFFi64);
    let c0 = fb.shr(xl1, 8i64);
    let c = fb.and(c0, 0xFFi64);
    let d = fb.and(xl1, 0xFFi64);
    let aa = fb.shl(a, 2i64);
    let a_addr = fb.add(aa, S_BASE as i64);
    let ba = fb.shl(b, 2i64);
    let b_addr = fb.add(ba, (S_BASE + 0x400) as i64);
    let ca = fb.shl(c, 2i64);
    let c_addr = fb.add(ca, (S_BASE + 0x800) as i64);
    let da = fb.shl(d, 2i64);
    let d_addr = fb.add(da, (S_BASE + 0xC00) as i64);
    let s0 = fb.ldw(a_addr);
    let s1 = fb.ldw(b_addr);
    let s2 = fb.ldw(c_addr);
    let s3 = fb.ldw(d_addr);
    let t0 = fb.add(s0, s1);
    let t1 = fb.xor(t0, s2);
    let fx = fb.add(t1, s3);
    let xr1 = fb.xor(xr, fx);
    // Swap halves for the next round.
    fb.copy_to(xl, xr1);
    fb.copy_to(xr, xl1);
    // Loop bookkeeping.
    let pp1 = fb.add(pp, 4i64);
    fb.copy_to(pp, pp1);
    let i1 = fb.add(i, 1i64);
    fb.copy_to(i, i1);
    let more = fb.ltu(i, ROUNDS as i64);
    fb.branch(more, round, fini);

    // finalization: undo the last swap, fold in P[16], P[17].
    fb.switch_to(fini);
    let xl_f = fb.mov(xr); // undo swap
    let xr_f = fb.mov(xl);
    let p16 = fb.ldw((P_BASE + 16 * 4) as i64);
    let p17 = fb.ldw((P_BASE + 17 * 4) as i64);
    let xr_o = fb.xor(xr_f, p16);
    let xl_o = fb.xor(xl_f, p17);
    fb.ret(&[xl_o.into(), xr_o.into()]);

    Program::new(vec![fb.finish()])
}

/// Builds `blowfish_decrypt(xl, xr) -> (xl, xr)` — the inverse cipher:
/// identical round structure with the P-array walked backwards. Present in
/// the same program, as in the real application, so the explorer sees both
/// hot loops and their shared CFU shapes.
pub fn decrypt_function() -> isax_ir::Function {
    let mut fb = FunctionBuilder::new("blowfish_decrypt", 2);
    let xl_in = fb.param(0);
    let xr_in = fb.param(1);
    let round = fb.new_block(16 * 1_000);
    let fini = fb.new_block(1_000);

    let xl = fb.fresh();
    let xr = fb.fresh();
    let i = fb.fresh();
    let pp = fb.fresh();
    fb.copy_to(xl, xl_in);
    fb.copy_to(xr, xr_in);
    fb.copy_to(i, 0i64);
    fb.copy_to(pp, (P_BASE + 17 * 4) as i64);
    fb.jump(round);

    fb.switch_to(round);
    let pi = fb.ldw(pp);
    let xl1 = fb.xor(xl, pi);
    let fx = emit_f(&mut fb, xl1);
    let xr1 = fb.xor(xr, fx);
    fb.copy_to(xl, xr1);
    fb.copy_to(xr, xl1);
    let pp1 = fb.sub(pp, 4i64);
    fb.copy_to(pp, pp1);
    let i1 = fb.add(i, 1i64);
    fb.copy_to(i, i1);
    let more = fb.ltu(i, ROUNDS as i64);
    fb.branch(more, round, fini);

    fb.switch_to(fini);
    let xl_f = fb.mov(xr);
    let xr_f = fb.mov(xl);
    let p1 = fb.ldw((P_BASE + 4) as i64);
    let p0 = fb.ldw(P_BASE as i64);
    let xr_o = fb.xor(xr_f, p1);
    let xl_o = fb.xor(xl_f, p0);
    fb.ret(&[xl_o.into(), xr_o.into()]);
    fb.finish()
}

/// Native reference for the inverse cipher.
pub fn decrypt_reference(seed: u64, mut xl: u32, mut xr: u32) -> (u32, u32) {
    let (p, s) = tables(seed);
    let f = |x: u32| -> u32 {
        let a = (x >> 24) as usize;
        let b = ((x >> 16) & 0xFF) as usize;
        let c = ((x >> 8) & 0xFF) as usize;
        let d = (x & 0xFF) as usize;
        (s[a].wrapping_add(s[256 + b]) ^ s[512 + c]).wrapping_add(s[768 + d])
    };
    for i in (2..=17usize).rev() {
        xl ^= p[i];
        xr ^= f(xl);
        std::mem::swap(&mut xl, &mut xr);
    }
    std::mem::swap(&mut xl, &mut xr);
    xr ^= p[1];
    xl ^= p[0];
    (xl, xr)
}

/// Installs the P-array and S-boxes.
pub fn init_memory(mem: &mut Memory, seed: u64) {
    let (p, s) = tables(seed);
    mem.store_words(P_BASE, &p);
    mem.store_words(S_BASE, &s);
}

fn args(seed: u64) -> Vec<u32> {
    let mut g = Xorshift::new(seed ^ 0xAB);
    vec![g.next_u32(), g.next_u32()]
}

/// The packaged workload: encryption and decryption hot loops.
pub fn workload() -> Workload {
    let mut program = program();
    program.functions.push(decrypt_function());
    Workload {
        name: "blowfish",
        domain: Domain::Encryption,
        program,
        entry: "blowfish_encrypt",
        init_memory,
        args,
        extra_entries: vec![crate::ExtraEntry {
            entry: "blowfish_decrypt",
            args,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_machine::run;

    #[test]
    fn ir_matches_reference_for_many_inputs() {
        let p = program();
        for seed in 1..6u64 {
            let mut mem = Memory::new();
            init_memory(&mut mem, seed);
            let mut g = Xorshift::new(seed.wrapping_mul(77));
            for _ in 0..5 {
                let (xl, xr) = (g.next_u32(), g.next_u32());
                let out = run(&p, "blowfish_encrypt", &[xl, xr], &mut mem.clone(), 100_000)
                    .expect("runs");
                let (el, er) = encrypt_reference(seed, xl, xr);
                assert_eq!(out.ret, vec![el, er], "seed {seed} input {xl:08x}/{xr:08x}");
            }
        }
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let p = workload().program;
        for seed in 1..4u64 {
            let mut mem = Memory::new();
            init_memory(&mut mem, seed);
            let (xl, xr) = (0x0123_4567u32, 0x89AB_CDEFu32);
            let enc = run(&p, "blowfish_encrypt", &[xl, xr], &mut mem.clone(), 100_000).unwrap();
            let dec = run(
                &p,
                "blowfish_decrypt",
                &[enc.ret[0], enc.ret[1]],
                &mut mem.clone(),
                100_000,
            )
            .unwrap();
            assert_eq!(
                dec.ret,
                vec![xl, xr],
                "decrypt(encrypt(x)) == x, seed {seed}"
            );
            // And the IR decryptor matches its own oracle.
            let (dl, dr) = decrypt_reference(seed, enc.ret[0], enc.ret[1]);
            assert_eq!((dl, dr), (xl, xr));
        }
    }

    #[test]
    fn unrolled_variant_is_equivalent() {
        let rolled = program();
        for unroll in [2u32, 4, 8] {
            let unrolled = program_unrolled(unroll);
            let mut mem = Memory::new();
            init_memory(&mut mem, 3);
            let out_r = run(
                &rolled,
                "blowfish_encrypt",
                &[7, 9],
                &mut mem.clone(),
                100_000,
            )
            .unwrap();
            let out_u = run(
                &unrolled,
                "blowfish_encrypt",
                &[7, 9],
                &mut mem.clone(),
                100_000,
            )
            .unwrap();
            assert_eq!(out_r.ret, out_u.ret, "unroll {unroll}");
        }
        // The 4x-unrolled hot block is the large-DFG input of Figure 3.
        let p4 = program_unrolled(4);
        assert!(p4.functions[0].blocks[1].insts.len() > 100);
    }

    #[test]
    fn encryption_is_input_sensitive() {
        let (a, _) = encrypt_reference(1, 0, 0);
        let (b, _) = encrypt_reference(1, 1, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn kernel_shape_is_alu_dominated() {
        let p = program();
        let round = &p.functions[0].blocks[1];
        let mem_ops = round.insts.iter().filter(|i| i.opcode.is_memory()).count();
        let alu_ops = round.insts.len() - mem_ops;
        assert!(alu_ops >= 3 * mem_ops, "{alu_ops} alu vs {mem_ops} mem");
    }
}
