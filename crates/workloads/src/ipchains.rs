//! `ipchains` (NetBench): firewall rule matching.
//!
//! The hot path walks a rule chain for every packet, testing masked
//! source/destination addresses and port ranges, branching out of each
//! comparison. Basic blocks are tiny and separated by branches, and half
//! the operations are loads of rule fields — precisely the structure the
//! paper points at to explain why "several applications in other domains
//! show very little speedup (e.g. mpeg2dec and ipchains)": the DFG
//! explorer finds almost nothing to combine.
//!
//! The oracle is a straightforward first-match evaluation of the same rule
//! table.

use crate::common::Xorshift;
use crate::{Domain, Workload};
use isax_ir::{FunctionBuilder, Program};
use isax_machine::Memory;

/// Rule table base. Each rule is 6 words:
/// `src_mask, src_val, dst_mask, dst_val, port_lo, port_hi`.
pub const RULE_BASE: u32 = 0xA000;
/// Number of rules in the chain.
pub const NUM_RULES: u32 = 32;
/// Words per rule.
pub const RULE_WORDS: u32 = 6;
const HOT_WEIGHT: u64 = 20_000;

/// A firewall rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Mask applied to the source address.
    pub src_mask: u32,
    /// Required masked source value.
    pub src_val: u32,
    /// Mask applied to the destination address.
    pub dst_mask: u32,
    /// Required masked destination value.
    pub dst_val: u32,
    /// Inclusive lower port bound.
    pub port_lo: u32,
    /// Inclusive upper port bound.
    pub port_hi: u32,
}

/// Deterministic rule chain for a seed.
pub fn rules(seed: u64) -> Vec<Rule> {
    let mut g = Xorshift::new(seed ^ 0x19C5);
    (0..NUM_RULES)
        .map(|_| {
            let prefix = 8 + g.below(17); // /8 .. /24
            let mask = u32::MAX << (32 - prefix);
            let lo = g.below(60_000);
            Rule {
                src_mask: mask,
                src_val: g.next_u32() & mask,
                dst_mask: mask,
                dst_val: g.next_u32() & mask,
                port_lo: lo,
                port_hi: lo + g.below(2_000),
            }
        })
        .collect()
}

/// First matching rule index, or `NUM_RULES` when none matches.
pub fn match_reference(seed: u64, src: u32, dst: u32, port: u32) -> u32 {
    for (i, r) in rules(seed).iter().enumerate() {
        if (src & r.src_mask) == r.src_val
            && (dst & r.dst_mask) == r.dst_val
            && port >= r.port_lo
            && port <= r.port_hi
        {
            return i as u32;
        }
    }
    NUM_RULES
}

/// Builds `ipchains_match(src, dst, port) -> rule_index`.
pub fn program() -> Program {
    let mut fb = FunctionBuilder::new("ipchains_match", 3);
    let src = fb.param(0);
    let dst = fb.param(1);
    let port = fb.param(2);

    // Per-packet chain walk: the four tests live in separate blocks, as
    // the compiled C does.
    let head = fb.new_block(HOT_WEIGHT);
    let test_dst = fb.new_block(HOT_WEIGHT / 4);
    let test_plo = fb.new_block(HOT_WEIGHT / 8);
    let test_phi = fb.new_block(HOT_WEIGHT / 10);
    let next_rule = fb.new_block(HOT_WEIGHT);
    let matched = fb.new_block(700);
    let nomatch = fb.new_block(300);

    let i = fb.fresh();
    let rp = fb.fresh();
    fb.copy_to(i, 0i64);
    fb.copy_to(rp, RULE_BASE as i64);
    fb.jump(head);

    // src test
    fb.switch_to(head);
    let smask = fb.ldw(rp);
    let sa = fb.add(rp, 4i64);
    let sval = fb.ldw(sa);
    let ms = fb.and(src, smask);
    let seq = fb.eq(ms, sval);
    fb.branch(seq, test_dst, next_rule);

    // dst test
    fb.switch_to(test_dst);
    let da = fb.add(rp, 8i64);
    let dmask = fb.ldw(da);
    let dva = fb.add(rp, 12i64);
    let dval = fb.ldw(dva);
    let md = fb.and(dst, dmask);
    let deq = fb.eq(md, dval);
    fb.branch(deq, test_plo, next_rule);

    // port lower bound
    fb.switch_to(test_plo);
    let pla = fb.add(rp, 16i64);
    let plo = fb.ldw(pla);
    let ge = fb.geu(port, plo);
    fb.branch(ge, test_phi, next_rule);

    // port upper bound
    fb.switch_to(test_phi);
    let pha = fb.add(rp, 20i64);
    let phi = fb.ldw(pha);
    let le = fb.leu(port, phi);
    fb.branch(le, matched, next_rule);

    // advance
    fb.switch_to(next_rule);
    let i1 = fb.add(i, 1i64);
    fb.copy_to(i, i1);
    let rp1 = fb.add(rp, (RULE_WORDS * 4) as i64);
    fb.copy_to(rp, rp1);
    let more = fb.ltu(i, NUM_RULES as i64);
    fb.branch(more, head, nomatch);

    fb.switch_to(matched);
    fb.ret(&[i.into()]);
    fb.switch_to(nomatch);
    fb.ret(&[NUM_RULES.into()]);
    Program::new(vec![fb.finish()])
}

/// Packet payload base (16-bit words for the checksum).
pub const PKT_BASE: u32 = 0xA800;
/// Payload length in 16-bit words.
pub const PKT_WORDS: u32 = 40;

/// Builds the other netfilter hot function: the ones-complement Internet
/// checksum (RFC 1071) over the packet payload — an add/fold loop with
/// one load per word.
pub fn checksum_function() -> isax_ir::Function {
    let mut fb = FunctionBuilder::new("ip_checksum", 0);
    let body = fb.new_block(PKT_WORDS as u64 * 400);
    let fold = fb.new_block(2 * 400);
    let exit = fb.new_block(400);

    let acc = fb.fresh();
    let p = fb.fresh();
    let n = fb.fresh();
    fb.copy_to(acc, 0i64);
    fb.copy_to(p, PKT_BASE as i64);
    fb.copy_to(n, PKT_WORDS as i64);
    fb.jump(body);

    fb.switch_to(body);
    let wv = fb.ldhu(p);
    let a1 = fb.add(acc, wv);
    fb.copy_to(acc, a1);
    let p1 = fb.add(p, 2i64);
    fb.copy_to(p, p1);
    let n1 = fb.sub(n, 1i64);
    fb.copy_to(n, n1);
    let more = fb.ne(n, 0i64);
    fb.branch(more, body, fold);

    // Fold the carries twice: acc = (acc & 0xFFFF) + (acc >> 16).
    fb.switch_to(fold);
    let lo = fb.and(acc, 0xFFFFi64);
    let hi = fb.shr(acc, 16i64);
    let f1 = fb.add(lo, hi);
    let lo2 = fb.and(f1, 0xFFFFi64);
    let hi2 = fb.shr(f1, 16i64);
    let f2 = fb.add(lo2, hi2);
    fb.copy_to(acc, f2);
    fb.jump(exit);

    fb.switch_to(exit);
    let inv = fb.not_(acc);
    let csum = fb.and(inv, 0xFFFFi64);
    fb.ret(&[csum.into()]);
    fb.finish()
}

/// Native oracle for [`checksum_function`].
pub fn checksum_reference(seed: u64) -> u32 {
    let words = packet_words(seed);
    let mut acc: u32 = words.iter().map(|&w| w as u32).sum();
    acc = (acc & 0xFFFF) + (acc >> 16);
    acc = (acc & 0xFFFF) + (acc >> 16);
    !acc & 0xFFFF
}

/// The packet payload for a seed.
pub fn packet_words(seed: u64) -> Vec<u16> {
    let mut g = Xorshift::new(seed ^ 0xC5C5);
    (0..PKT_WORDS).map(|_| g.next_u32() as u16).collect()
}

/// Installs the rule table.
pub fn init_memory(mem: &mut Memory, seed: u64) {
    let mut words = Vec::new();
    for r in rules(seed) {
        words.extend_from_slice(&[
            r.src_mask, r.src_val, r.dst_mask, r.dst_val, r.port_lo, r.port_hi,
        ]);
    }
    mem.store_words(RULE_BASE, &words);
    for (k, &w) in packet_words(seed).iter().enumerate() {
        mem.store16(PKT_BASE + 2 * k as u32, w);
    }
}

fn args(seed: u64) -> Vec<u32> {
    let mut g = Xorshift::new(seed ^ 0xBEEF);
    vec![g.next_u32(), g.next_u32(), g.below(65_536)]
}

/// The packaged workload: rule matching plus the Internet checksum.
pub fn workload() -> Workload {
    let mut program = program();
    program.functions.push(checksum_function());
    Workload {
        name: "ipchains",
        domain: Domain::Network,
        program,
        entry: "ipchains_match",
        init_memory,
        args,
        extra_entries: vec![crate::ExtraEntry {
            entry: "ip_checksum",
            args: |_| vec![],
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_machine::run;

    #[test]
    fn ir_matches_reference_over_many_packets() {
        let p = program();
        for seed in 1..4u64 {
            let mut mem = Memory::new();
            init_memory(&mut mem, seed);
            let mut g = Xorshift::new(seed * 17);
            for _ in 0..20 {
                let (s, d, port) = (g.next_u32(), g.next_u32(), g.below(65_536));
                let out = run(
                    &p,
                    "ipchains_match",
                    &[s, d, port],
                    &mut mem.clone(),
                    100_000,
                )
                .expect("runs");
                assert_eq!(out.ret, vec![match_reference(seed, s, d, port)]);
            }
        }
    }

    #[test]
    fn crafted_packet_hits_a_chosen_rule() {
        let seed = 2;
        let rs = rules(seed);
        let k = 7usize;
        // Build a packet matching rule k exactly (may match an earlier
        // rule instead; reference tells the truth either way).
        let src = rs[k].src_val;
        let dst = rs[k].dst_val;
        let port = rs[k].port_lo;
        let expect = match_reference(seed, src, dst, port);
        assert!(expect <= k as u32);
        let p = program();
        let mut mem = Memory::new();
        init_memory(&mut mem, seed);
        let out = run(&p, "ipchains_match", &[src, dst, port], &mut mem, 100_000).unwrap();
        assert_eq!(out.ret, vec![expect]);
    }

    #[test]
    fn checksum_matches_reference() {
        let p = workload().program;
        for seed in 1..5u64 {
            let mut mem = Memory::new();
            init_memory(&mut mem, seed);
            let out = run(&p, "ip_checksum", &[], &mut mem, 100_000).expect("runs");
            assert_eq!(out.ret, vec![checksum_reference(seed)], "seed {seed}");
        }
    }

    #[test]
    fn checksum_of_own_checksum_verifies() {
        // RFC 1071 property: appending the checksum makes the total sum
        // fold to 0xFFFF (i.e. the complemented fold is zero).
        let seed = 3;
        let mut words = packet_words(seed);
        words.push(checksum_reference(seed) as u16);
        let mut acc: u32 = words.iter().map(|&w| w as u32).sum();
        acc = (acc & 0xFFFF) + (acc >> 16);
        acc = (acc & 0xFFFF) + (acc >> 16);
        assert_eq!(acc, 0xFFFF);
    }

    #[test]
    fn blocks_are_small_and_branchy() {
        let p = program();
        let f = &p.functions[0];
        assert!(f.blocks.len() >= 6, "control-heavy kernel");
        let max_block = f.blocks.iter().map(|b| b.insts.len()).max().unwrap();
        assert!(max_block <= 8, "no big straight-line regions");
    }
}
