//! Property tests for the deterministic log-bucketed histogram: the
//! quantile relative-error bound, merge algebra (associativity and
//! commutativity — equal results for any merge grouping over the same
//! inputs), and exact count/sum bookkeeping.

use isax_trace::hist::{
    bucket_index, bucket_lower, bucket_upper, quantile_rank, Hist, ABS_ERR_SLACK, HIST_BUCKETS,
    REL_ERR_BOUND_E9,
};
use proptest::prelude::*;

/// Samples spanning the full `u64` range with a bias toward small
/// values (where integer-rounding effects are sharpest).
fn sample() -> impl Strategy<Value = u64> {
    (0u8..10, any::<u64>()).prop_map(|(sel, raw)| match sel {
        0..=3 => raw % 4096,
        4..=6 => raw % 1_000_000,
        7 | 8 => raw & 0xFFFF_FFFF,
        _ => raw,
    })
}

fn hist_of(samples: &[u64]) -> Hist {
    let mut h = Hist::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    /// The documented error bound, in pure integer arithmetic over the
    /// full u64 range: the estimate never exceeds the exact quantile,
    /// and the gap is below (2^(1/4)−1)·est plus a constant slack.
    #[test]
    fn quantile_error_bound_holds(
        samples in proptest::collection::vec(sample(), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = hist_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = quantile_rank(q, sorted.len() as u64) as usize;
        let exact = sorted[rank - 1];
        let est = h.quantile(q);
        prop_assert!(est <= exact, "estimate {est} must not exceed exact {exact}");
        let gap = u128::from(exact - est) * 1_000_000_000;
        let allowed = u128::from(est) * REL_ERR_BOUND_E9 + ABS_ERR_SLACK * 1_000_000_000;
        prop_assert!(
            gap <= allowed,
            "q={q}: exact={exact} est={est} violates the relative-error bound"
        );
    }

    /// Every sample lands in a bucket whose boundaries bracket it.
    #[test]
    fn bucket_brackets_sample(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < HIST_BUCKETS);
        prop_assert!(bucket_lower(idx) <= v);
        prop_assert!(v < bucket_upper(idx) || idx + 1 >= HIST_BUCKETS);
    }

    /// Merging per-chunk histograms — for ANY split and either merge
    /// grouping — equals recording everything into one histogram:
    /// merge is associative and commutative, so join-point merges in
    /// input order are byte-identical at any thread count.
    #[test]
    fn merge_is_associative_and_commutative(
        samples in proptest::collection::vec(sample(), 0..120),
        cut1 in 0usize..=120,
        cut2 in 0usize..=120,
    ) {
        let a_end = cut1.min(samples.len());
        let b_end = cut2.min(samples.len()).max(a_end);
        let a = hist_of(&samples[..a_end]);
        let b = hist_of(&samples[a_end..b_end]);
        let c = hist_of(&samples[b_end..]);
        let whole = hist_of(&samples);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        // c ⊕ b ⊕ a
        let mut rev = c.clone();
        rev.merge(&b);
        rev.merge(&a);

        prop_assert_eq!(&left, &whole, "grouped left-to-right");
        prop_assert_eq!(&right, &whole, "grouped right-to-left");
        prop_assert_eq!(&rev, &whole, "reversed merge order");
    }

    /// Count and min/max are exact; sum is exact absent u64 overflow.
    #[test]
    fn aggregates_are_exact(samples in proptest::collection::vec(0u64..1u64 << 48, 0..100)) {
        let h = hist_of(&samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.min(), samples.iter().min().copied().unwrap_or(0));
        prop_assert_eq!(h.max(), samples.iter().max().copied().unwrap_or(0));
        let bucket_total: u64 = h.nonzero_buckets().map(|(_, c)| c).sum();
        prop_assert_eq!(bucket_total, h.count());
    }

    /// Two histograms over the same multiset are equal regardless of
    /// the order samples were recorded in.
    #[test]
    fn record_order_is_irrelevant(samples in proptest::collection::vec(sample(), 0..100)) {
        let fwd = hist_of(&samples);
        let mut rev_samples = samples.clone();
        rev_samples.reverse();
        let rev = hist_of(&rev_samples);
        prop_assert_eq!(fwd, rev);
    }
}
