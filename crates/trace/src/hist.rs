//! A deterministic, mergeable, log-bucketed latency histogram.
//!
//! [`Hist`] buckets non-negative integer samples (microseconds, work
//! units, bytes — any `u64`) into **power-of-2^(1/4) buckets**: four
//! sub-buckets per octave, so consecutive bucket boundaries are a
//! factor of 2^(1/4) ≈ 1.189 apart. That gives quantile estimates a
//! *proven* relative-error bound (see below) from a fixed 257-slot
//! table — no per-sample allocation, no sorting, O(1) record.
//!
//! # Determinism
//!
//! Everything is integer arithmetic on hardcoded fixed-point constants:
//! no floating-point `log`, no platform-dependent rounding. Two
//! histograms built from the same multiset of samples are equal
//! (`PartialEq` on the struct), and [`Hist::merge`] is plain
//! element-wise addition — commutative and associative — so merging
//! per-worker histograms **at a join point in input order** yields
//! byte-identical totals at any thread count, the same discipline
//! `isax-trace` counters follow. The `crates/trace/tests/hist.rs`
//! proptests pin both claims.
//!
//! # The error bound
//!
//! For a sample `v ≥ 1`, let `m = ⌊log2 v⌋` and pick the largest
//! sub-bucket `j ∈ 0..4` with `v ≥ ⌊2^m · 2^(j/4)⌋`. The bucket's
//! integer boundaries `[lower, upper)` then satisfy
//! `upper_real / lower_real = 2^(1/4)` exactly, and the integer
//! flooring loses at most 1 on each side plus `2^(m-32)` from the
//! 32-bit fixed-point constants. [`Hist::quantile`] returns the lower
//! boundary of the bucket containing the requested rank, so for the
//! exact (sort-derived) quantile `x` and the estimate `e`:
//!
//! ```text
//! e ≤ x   and   (x − e) · 10^9 ≤ e · 189_207_117 + 3·10^9
//! ```
//!
//! i.e. relative error strictly below `2^(1/4) − 1 ≈ 18.92%` plus an
//! absolute slack of 3 for integer rounding at tiny values. The
//! proptest in `crates/trace/tests/hist.rs` asserts exactly this
//! integer inequality over the full `u64` range.

/// Number of buckets: one zero bucket plus 4 sub-buckets × 64 octaves.
pub const HIST_BUCKETS: usize = 257;

/// `⌊2^(j/4) · 2^32⌋` for `j = 0..4` — the fixed-point sub-bucket
/// multipliers. Verified against `f64::powf` by a unit test.
const SUBBUCKET: [u64; 4] = [4_294_967_296, 5_107_605_667, 6_074_000_999, 7_223_245_205];

/// Numerator of the relative-error bound `2^(1/4) − 1`, scaled by 10^9
/// and rounded *up* (the true value is ≈ 0.189207115): used by callers
/// asserting the quantile bound in pure integer arithmetic.
pub const REL_ERR_BOUND_E9: u128 = 189_207_117;

/// Absolute slack (in sample units) the quantile bound allows on top of
/// the relative term, covering integer flooring at tiny values.
pub const ABS_ERR_SLACK: u128 = 3;

/// Bucket index of a sample (0 is the dedicated zero bucket).
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let m = 63 - v.leading_zeros() as usize;
    let mut j = 3;
    while j > 0 && u128::from(v) < (u128::from(SUBBUCKET[j]) << m) >> 32 {
        j -= 1;
    }
    1 + 4 * m + j
}

/// Inclusive lower boundary of bucket `idx`: the smallest sample the
/// bucket can hold.
#[must_use]
pub fn bucket_lower(idx: usize) -> u64 {
    if idx == 0 {
        return 0;
    }
    let m = (idx - 1) / 4;
    let j = (idx - 1) % 4;
    (((u128::from(SUBBUCKET[j])) << m) >> 32) as u64
}

/// Exclusive upper boundary of bucket `idx` (saturating to `u64::MAX`
/// for the top bucket).
#[must_use]
pub fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(idx + 1)
    }
}

/// A deterministic, mergeable, log-bucketed histogram with exact count
/// and sum. See the module docs for the determinism and error-bound
/// arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

impl Hist {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Hist {
        Hist {
            counts: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample. O(1), allocation-free.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges `other` into `self`: element-wise bucket addition plus
    /// exact count/sum/min/max combination. Commutative and
    /// associative, so any merge order over the same inputs produces
    /// the same histogram.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact (saturating) sum of recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (`0` when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (`0` when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The non-empty buckets, ascending: `(index, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// The quantile estimate for `q ∈ [0, 1]`: the lower boundary of
    /// the bucket containing the `⌈q · count⌉`-th smallest sample
    /// (clamped to at least rank 1). Returns 0 for an empty histogram.
    ///
    /// The estimate `e` and the exact sort-derived quantile `x` (same
    /// rank rule) satisfy `e ≤ x` and the integer inequality
    /// `(x − e)·10^9 ≤ e·`[`REL_ERR_BOUND_E9`]` + `[`ABS_ERR_SLACK`]`·10^9`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let Some(idx) = self.quantile_bucket(q) else {
            return 0;
        };
        bucket_lower(idx)
    }

    /// The bucket index [`Hist::quantile`] would report, or `None` when
    /// empty. Exposed so callers can reason about both boundaries.
    #[must_use]
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let rank = quantile_rank(q, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(i);
            }
        }
        // Unreachable: cum reaches self.count which is >= rank.
        None
    }
}

/// The 1-based rank of the `q`-quantile among `count` samples:
/// `⌈q·count⌉` clamped to `[1, count]`.
#[must_use]
pub fn quantile_rank(q: f64, count: u64) -> u64 {
    let q = q.clamp(0.0, 1.0);
    let raw = (q * count as f64).ceil() as u64;
    raw.clamp(1, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_constants_match_their_real_values() {
        for (j, &c) in SUBBUCKET.iter().enumerate() {
            let real = 2f64.powf(j as f64 / 4.0) * 4_294_967_296.0;
            assert_eq!(c, real.floor() as u64, "sub-bucket constant {j}");
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_consistent_with_boundaries() {
        let probes: Vec<u64> = (0..=4096)
            .chain((1..63).flat_map(|m| {
                let b = 1u64 << m;
                [b - 1, b, b + 1, b * 3 / 2]
            }))
            .chain([u64::MAX / 2, u64::MAX - 1, u64::MAX])
            .collect();
        let mut prev = 0usize;
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for v in sorted {
            let idx = bucket_index(v);
            assert!(idx >= prev, "bucket_index must be monotone at {v}");
            assert!(bucket_lower(idx) <= v, "lower({idx}) <= {v}");
            assert!(
                v < bucket_upper(idx) || idx + 1 >= HIST_BUCKETS,
                "{v} < upper({idx})"
            );
            prev = idx;
        }
    }

    #[test]
    fn boundaries_are_nondecreasing() {
        for idx in 0..HIST_BUCKETS - 1 {
            assert!(
                bucket_lower(idx) <= bucket_lower(idx + 1),
                "boundary order at {idx}"
            );
            assert!(bucket_lower(idx) <= bucket_upper(idx));
        }
    }

    #[test]
    fn record_and_exact_aggregates() {
        let mut h = Hist::new();
        for v in [0u64, 1, 7, 7, 100, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_000_115);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
        assert!(!h.is_empty());
        let total: u64 = h.nonzero_buckets().map(|(_, c)| c).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn quantile_brackets_the_exact_value() {
        let samples: Vec<u64> = (1..=1000).map(|i| i * i).collect();
        let mut h = Hist::new();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = quantile_rank(q, samples.len() as u64) as usize;
            let exact = samples[rank - 1];
            let est = h.quantile(q);
            assert!(est <= exact, "q={q}: {est} <= {exact}");
            let idx = h.quantile_bucket(q).unwrap();
            assert!(exact < bucket_upper(idx) || idx + 1 >= HIST_BUCKETS);
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut whole = Hist::new();
        for v in 0..500u64 {
            if v % 3 == 0 {
                a.record(v * 17);
            } else {
                b.record(v * 17);
            }
            whole.record(v * 17);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole, "merge is commutative");
    }
}
