//! Folded-stack (inferno/FlameGraph-compatible) export from recorded
//! span events.
//!
//! A folded-stack file has one line per unique call stack:
//!
//! ```text
//! main;pipeline;pipeline.analyze 1523
//! worker-2;par.worker;grow 88
//! ```
//!
//! where the value is the stack's **self time** in microseconds (the
//! span's duration minus the durations of its direct children). Such a
//! file feeds directly into `inferno-flamegraph`, `flamegraph.pl`, or
//! speedscope to render a profile of any traced run.
//!
//! Reconstruction: spans are recorded at *close* time, so the event
//! stream is not nesting-ordered. Per track, spans are sorted by
//! (start ascending, end descending) and swept with a stack: a span's
//! parent is the deepest still-open span whose interval contains it —
//! i.e. the sweep pops every open span that ends before the new span
//! does, which removes finished siblings and keeps ancestors. Ties
//! (identical intervals, possible for zero-duration spans) fall back
//! to reverse record order so the later-closing span is the parent.

use crate::Event;
use std::collections::BTreeMap;

/// Renders recorded events as folded stacks, sorted by stack path.
/// Counter events are ignored; tracks become root frames (`main` for
/// track 0, `worker-N` otherwise). Lines with zero self time are kept
/// so every traced span contributes a frame.
#[must_use]
pub fn folded_stacks(events: &[Event]) -> String {
    struct S {
        name: &'static str,
        track: u32,
        start: u64,
        end: u64,
        dur: u64,
    }
    let mut spans: Vec<(usize, S)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Span {
                name,
                track,
                start_us,
                dur_us,
                ..
            } => Some(S {
                name,
                track: *track,
                start: *start_us,
                end: start_us.saturating_add(*dur_us),
                dur: *dur_us,
            }),
            _ => None,
        })
        .enumerate()
        .collect();
    spans.sort_by(|(ia, a), (ib, b)| {
        a.track
            .cmp(&b.track)
            .then(a.start.cmp(&b.start))
            .then(b.end.cmp(&a.end))
            .then(ib.cmp(ia))
    });

    let mut paths: Vec<String> = Vec::with_capacity(spans.len());
    let mut child_sum: Vec<u64> = vec![0; spans.len()];
    // Open ancestors of the current sweep position: (slot, end).
    let mut open: Vec<(usize, u64)> = Vec::new();
    let mut cur_track: Option<u32> = None;
    for (slot, (_, s)) in spans.iter().enumerate() {
        if cur_track != Some(s.track) {
            open.clear();
            cur_track = Some(s.track);
        }
        // An open span that ends before this one does cannot contain
        // it: it is a finished sibling (or sibling's ancestor). Spans
        // that end at or after s.end are ancestors (start <= s.start
        // holds by sort order).
        while let Some(&(_, end)) = open.last() {
            if end < s.end || (end == s.end && end <= s.start) {
                open.pop();
            } else {
                break;
            }
        }
        let path = match open.last() {
            Some(&(parent, _)) => {
                child_sum[parent] += s.dur;
                format!("{};{}", paths[parent], s.name)
            }
            None => {
                if s.track == 0 {
                    format!("main;{}", s.name)
                } else {
                    format!("worker-{};{}", s.track, s.name)
                }
            }
        };
        paths.push(path);
        open.push((slot, s.end));
    }

    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (slot, (_, s)) in spans.iter().enumerate() {
        let self_time = s.dur.saturating_sub(child_sum[slot]);
        *folded.entry(paths[slot].clone()).or_insert(0) += self_time;
    }
    let mut out = String::new();
    for (path, v) in &folded {
        out.push_str(path);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, track: u32, start: u64, dur: u64) -> Event {
        Event::Span {
            name,
            track,
            start_us: start,
            dur_us: dur,
            req: 0,
        }
    }

    #[test]
    fn nesting_is_reconstructed_and_self_time_subtracts_children() {
        // outer [0, 100) contains inner [10, 40) and inner2 [50, 70).
        // Record order is close order: inner, inner2, outer.
        let events = vec![
            span("inner", 0, 10, 30),
            span("inner2", 0, 50, 20),
            span("outer", 0, 0, 100),
        ];
        let text = folded_stacks(&events);
        assert!(text.contains("main;outer 50\n"), "{text}");
        assert!(text.contains("main;outer;inner 30\n"), "{text}");
        assert!(text.contains("main;outer;inner2 20\n"), "{text}");
    }

    #[test]
    fn tracks_get_separate_roots() {
        let events = vec![span("a", 0, 0, 5), span("b", 3, 0, 7)];
        let text = folded_stacks(&events);
        assert!(text.contains("main;a 5\n"));
        assert!(text.contains("worker-3;b 7\n"));
    }

    #[test]
    fn deep_nesting_builds_full_paths() {
        let events = vec![span("c", 0, 2, 1), span("b", 0, 1, 3), span("a", 0, 0, 10)];
        let text = folded_stacks(&events);
        assert!(text.contains("main;a 7\n"), "{text}");
        assert!(text.contains("main;a;b 2\n"), "{text}");
        assert!(text.contains("main;a;b;c 1\n"), "{text}");
    }

    #[test]
    fn sequential_siblings_do_not_nest() {
        let events = vec![
            span("first", 0, 0, 10),
            span("second", 0, 10, 10),
            span("third", 0, 25, 5),
        ];
        let text = folded_stacks(&events);
        assert!(text.contains("main;first 10\n"), "{text}");
        assert!(text.contains("main;second 10\n"), "{text}");
        assert!(text.contains("main;third 5\n"), "{text}");
    }

    #[test]
    fn counters_are_ignored_and_empty_input_is_empty_output() {
        let events = vec![Event::Counter {
            name: "n",
            track: 0,
            ts_us: 0,
            value: 3,
            req: 0,
        }];
        assert_eq!(folded_stacks(&events), "");
        assert_eq!(folded_stacks(&[]), "");
    }

    #[test]
    fn repeated_stacks_aggregate() {
        let events = vec![span("a", 0, 0, 5), span("a", 0, 10, 7)];
        let text = folded_stacks(&events);
        assert_eq!(text, "main;a 12\n");
    }
}
