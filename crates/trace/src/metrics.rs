//! Prometheus text-exposition rendering with deterministic line order.
//!
//! [`Expo`] builds a metrics snapshot in the Prometheus text format
//! (`# HELP` / `# TYPE` / sample lines). It keeps two sections:
//!
//! * the **deterministic** section — counters and histograms fed only
//!   from input-order aggregates, byte-identical for the same request
//!   stream at any worker count;
//! * the **wall-clock / host** section — uptime, inflight, queue
//!   depth, latency histograms, host configuration: anything whose
//!   value depends on timing or the machine.
//!
//! The rendered text emits the deterministic section first, then
//! [`WALL_MARKER`], then the rest. Tests compare only the text before
//! the marker (via [`deterministic_section`]), which is what makes the
//! 1-vs-N-worker byte-identity assertion in `tests/serve.rs` possible
//! without exempting individual lines.
//!
//! Callers are responsible for adding metrics in a fixed order
//! (alphabetical by metric name, by convention); `Expo` is a plain
//! append-only builder and does not sort.

use crate::hist::{bucket_upper, Hist, HIST_BUCKETS};

/// Marker comment separating the deterministic exposition section from
/// wall-clock/host-dependent lines. Everything *before* this line is
/// expected to be byte-identical for the same request stream at any
/// worker count.
pub const WALL_MARKER: &str =
    "# -- wall-clock/host section: lines below are not compared for determinism --";

/// The deterministic prefix of a rendered exposition: the text before
/// [`WALL_MARKER`] (the whole text if the marker is absent).
#[must_use]
pub fn deterministic_section(text: &str) -> &str {
    match text.find(WALL_MARKER) {
        Some(pos) => &text[..pos],
        None => text,
    }
}

/// Append-only builder for Prometheus text exposition with a
/// deterministic and a wall-clock section. See the module docs.
#[derive(Debug, Default, Clone)]
pub struct Expo {
    det: String,
    wall: String,
}

/// Which section of the exposition a metric belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Byte-identical for the same request stream at any worker count.
    Deterministic,
    /// Timing- or host-dependent; excluded from determinism diffs.
    WallClock,
}

impl Expo {
    /// An empty exposition.
    #[must_use]
    pub fn new() -> Expo {
        Expo::default()
    }

    fn buf(&mut self, section: Section) -> &mut String {
        match section {
            Section::Deterministic => &mut self.det,
            Section::WallClock => &mut self.wall,
        }
    }

    fn header(&mut self, section: Section, name: &str, help: &str, kind: &str) {
        let buf = self.buf(section);
        buf.push_str("# HELP ");
        buf.push_str(name);
        buf.push(' ');
        buf.push_str(help);
        buf.push('\n');
        buf.push_str("# TYPE ");
        buf.push_str(name);
        buf.push(' ');
        buf.push_str(kind);
        buf.push('\n');
    }

    /// Adds a `counter` metric with an integer value.
    pub fn counter(&mut self, section: Section, name: &str, help: &str, value: u64) {
        self.header(section, name, help, "counter");
        let buf = self.buf(section);
        buf.push_str(name);
        buf.push(' ');
        buf.push_str(&value.to_string());
        buf.push('\n');
    }

    /// Adds a `counter` metric family with one sample line per label
    /// value. `pairs` must already be in the caller's fixed order.
    pub fn counter_by_label(
        &mut self,
        section: Section,
        name: &str,
        help: &str,
        label: &str,
        pairs: &[(&str, u64)],
    ) {
        self.header(section, name, help, "counter");
        let buf = self.buf(section);
        for (lv, value) in pairs {
            buf.push_str(name);
            buf.push('{');
            buf.push_str(label);
            buf.push_str("=\"");
            buf.push_str(lv);
            buf.push_str("\"} ");
            buf.push_str(&value.to_string());
            buf.push('\n');
        }
    }

    /// Adds a `gauge` metric with an integer value.
    pub fn gauge(&mut self, section: Section, name: &str, help: &str, value: u64) {
        self.header(section, name, help, "gauge");
        let buf = self.buf(section);
        buf.push_str(name);
        buf.push(' ');
        buf.push_str(&value.to_string());
        buf.push('\n');
    }

    /// Adds a `gauge` metric with a fractional value rendered with
    /// six decimal places (fixed formatting keeps the line stable for
    /// a given value).
    pub fn gauge_f64(&mut self, section: Section, name: &str, help: &str, value: f64) {
        self.header(section, name, help, "gauge");
        let buf = self.buf(section);
        buf.push_str(name);
        buf.push(' ');
        buf.push_str(&format!("{value:.6}"));
        buf.push('\n');
    }

    /// Adds a [`Hist`] as a Prometheus `histogram`: cumulative
    /// `_bucket{le="..."}` lines for every non-empty bucket (the `le`
    /// bound is the bucket's inclusive upper sample value), a `+Inf`
    /// bucket, then exact `_sum` and `_count`.
    pub fn hist(&mut self, section: Section, name: &str, help: &str, h: &Hist) {
        self.header(section, name, help, "histogram");
        let count = h.count();
        let sum = h.sum();
        let mut cum = 0u64;
        let lines: Vec<(u64, u64)> = h
            .nonzero_buckets()
            .map(|(idx, c)| {
                cum += c;
                (inclusive_upper(idx), cum)
            })
            .collect();
        let buf = self.buf(section);
        for (le, cum) in lines {
            buf.push_str(name);
            buf.push_str("_bucket{le=\"");
            buf.push_str(&le.to_string());
            buf.push_str("\"} ");
            buf.push_str(&cum.to_string());
            buf.push('\n');
        }
        buf.push_str(name);
        buf.push_str("_bucket{le=\"+Inf\"} ");
        buf.push_str(&count.to_string());
        buf.push('\n');
        buf.push_str(name);
        buf.push_str("_sum ");
        buf.push_str(&sum.to_string());
        buf.push('\n');
        buf.push_str(name);
        buf.push_str("_count ");
        buf.push_str(&count.to_string());
        buf.push('\n');
    }

    /// Renders the exposition: deterministic section, [`WALL_MARKER`],
    /// wall-clock section.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.det.len() + self.wall.len() + 96);
        out.push_str(&self.det);
        out.push_str(WALL_MARKER);
        out.push('\n');
        out.push_str(&self.wall);
        out
    }
}

/// Inclusive upper sample value for a bucket (`upper − 1`, since the
/// stored boundary is exclusive; the top bucket saturates).
fn inclusive_upper(idx: usize) -> u64 {
    if idx + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        bucket_upper(idx) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_render_in_order_with_marker() {
        let mut e = Expo::new();
        e.counter(Section::Deterministic, "isax_a_total", "det counter", 3);
        e.gauge(Section::WallClock, "isax_z_depth", "wall gauge", 7);
        let text = e.render();
        let det = deterministic_section(&text);
        assert!(det.contains("isax_a_total 3"));
        assert!(!det.contains("isax_z_depth"));
        assert!(text.contains(WALL_MARKER));
        assert!(text.contains("isax_z_depth 7"));
    }

    #[test]
    fn histogram_lines_are_cumulative_and_exact() {
        let mut h = Hist::new();
        for v in [0u64, 1, 1, 5, 1000] {
            h.record(v);
        }
        let mut e = Expo::new();
        e.hist(Section::Deterministic, "isax_lat_us", "latency", &h);
        let text = e.render();
        assert!(text.contains("isax_lat_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("isax_lat_us_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("isax_lat_us_sum 1007\n"));
        assert!(text.contains("isax_lat_us_count 5\n"));
        // Cumulative counts never decrease.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=\"")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= prev, "cumulative: {line}");
            prev = n;
        }
    }

    #[test]
    fn label_families_render_one_line_per_value() {
        let mut e = Expo::new();
        e.counter_by_label(
            Section::Deterministic,
            "isax_err_total",
            "errors by code",
            "code",
            &[("busy", 2), ("parse-error", 1)],
        );
        let text = e.render();
        assert!(text.contains("isax_err_total{code=\"busy\"} 2\n"));
        assert!(text.contains("isax_err_total{code=\"parse-error\"} 1\n"));
    }

    #[test]
    fn deterministic_section_of_markerless_text_is_whole() {
        assert_eq!(deterministic_section("abc"), "abc");
    }
}
