//! Zero-dependency structured observability for the customization
//! pipeline: hierarchical spans, named counters, and two sinks — a
//! human-readable stage summary and a Chrome `trace_event` JSON export
//! viewable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! # Design
//!
//! Instrumentation sites call the free functions [`span`] and
//! [`counter`]; events flow to a process-wide [`TraceSink`] installed
//! with [`install`]. The default sink is a no-op and the hot-path check
//! is a single relaxed atomic load, so a disabled pipeline pays nothing
//! measurable. The [`Recorder`] sink collects events in memory and can
//! render either output format after the run.
//!
//! Parallel stages (see `isax_graph::par`) tag their events with a
//! per-worker **track** id via [`set_track`]; the Chrome export maps
//! tracks to `tid`s so each worker gets its own swim lane.
//!
//! # Determinism safety
//!
//! Instrumentation must never change pipeline *output*. Two rules keep
//! that true and are enforced by the `tests/trace.rs` differential test
//! (enabled vs. disabled tracing must produce byte-identical MDES /
//! compiled-program artifacts):
//!
//! 1. **Observation only.** Sinks receive copies of values the pipeline
//!    already computed; no instrumentation site feeds data back.
//! 2. **Counters are aggregated at join points in input order.** A
//!    parallel stage sums its per-item statistics after the fan-in, in
//!    the order the items were submitted, and records one counter value
//!    on the calling thread — never racing increments from workers.
//!    Wall-clock timing is inherently nondeterministic and is therefore
//!    excluded from every compared artifact (`BENCH_pipeline.json`
//!    carries counters, never span durations, in its compared fields).
//!
//! The `guard.*` counter group (`guard.explore_degradations`,
//! `guard.select_degradations`, `guard.compile_degradations`) follows
//! both rules: degradation records from `isax-guard` are counted at the
//! stage join point, and the counters are only emitted when the resource
//! guard is active, so default-run traces are unchanged. Work-unit
//! budgets are deterministic, which keeps these counters diffable across
//! thread counts like every other counter.
//!
//! # Example
//!
//! ```
//! let rec = isax_trace::Recorder::install();
//! {
//!     let _outer = isax_trace::span("analyze");
//!     let _inner = isax_trace::span("analyze.explore");
//!     isax_trace::counter("explore.candidates", 42);
//! }
//! isax_trace::uninstall();
//! let chrome = rec.chrome_trace();
//! assert!(chrome.contains("\"traceEvents\""));
//! assert!(rec.summary().contains("explore.candidates"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flame;
pub mod hist;
pub mod metrics;

pub use flame::folded_stacks;
pub use hist::Hist;
pub use metrics::{deterministic_section, Expo, Section, WALL_MARKER};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// One recorded observation.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A completed span: a named region of wall-clock time on a track.
    Span {
        /// Span name (static site label, e.g. `"pipeline.analyze"`).
        name: &'static str,
        /// Track (worker lane) the span ran on; 0 is the calling thread.
        track: u32,
        /// Start, in microseconds since the process trace epoch.
        start_us: u64,
        /// Duration in microseconds.
        dur_us: u64,
        /// Request id the span is attributed to (0 = none). Set via
        /// [`set_request`] by services that process tagged work.
        req: u64,
    },
    /// An additive counter contribution (a delta, not an absolute).
    Counter {
        /// Counter name, e.g. `"match.vf2_calls"`.
        name: &'static str,
        /// Track that recorded the value.
        track: u32,
        /// Record time, in microseconds since the trace epoch.
        ts_us: u64,
        /// The contribution. Summed per name by the summary; the Chrome
        /// export emits running totals.
        value: u64,
        /// Request id the counter is attributed to (0 = none).
        req: u64,
    },
}

/// Receives events from the instrumentation free functions.
///
/// Implementations must be cheap and must never panic: they run inside
/// pipeline hot paths.
pub trait TraceSink: Send + Sync {
    /// Records one event.
    fn record(&self, event: Event);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// The track id events from this thread are tagged with.
    static TRACK: Cell<u32> = const { Cell::new(0) };
    /// The request id events from this thread are tagged with.
    static REQUEST: Cell<u64> = const { Cell::new(0) };
}

/// Installs a sink process-wide and enables instrumentation.
pub fn install(sink: Arc<dyn TraceSink>) {
    *SINK.write().expect("trace sink lock") = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Removes the current sink; instrumentation returns to no-ops.
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    *SINK.write().expect("trace sink lock") = None;
}

/// True when a sink is installed. The disabled fast path of every
/// instrumentation site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Tags this thread's subsequent events with track `t` (0 = main lane).
/// Parallel workers call this once with their worker index.
pub fn set_track(t: u32) {
    TRACK.with(|c| c.set(t));
}

/// The current thread's track id.
pub fn current_track() -> u32 {
    TRACK.with(Cell::get)
}

/// Tags this thread's subsequent events with request id `r` (0 = none).
/// `isax serve` workers set the deterministic per-request sequence
/// number here before running the pipeline, and `isax_graph::par`
/// propagates the calling thread's tag into its workers, so every span
/// and counter a request produces is attributable to it.
pub fn set_request(r: u64) {
    REQUEST.with(|c| c.set(r));
}

/// The current thread's request id (0 = none).
pub fn current_request() -> u64 {
    REQUEST.with(Cell::get)
}

fn now_us() -> u64 {
    EPOCH
        .get_or_init(Instant::now)
        .elapsed()
        .as_micros()
        .min(u64::MAX as u128) as u64
}

fn with_sink(f: impl FnOnce(&Arc<dyn TraceSink>)) {
    if let Ok(guard) = SINK.read() {
        if let Some(sink) = guard.as_ref() {
            f(sink);
        }
    }
}

/// Opens a span; the region ends (and the event is recorded) when the
/// returned guard drops. Free when no sink is installed.
#[must_use = "a span measures until the guard drops; binding it to _ ends it immediately"]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span(None);
    }
    Span(Some(SpanInner {
        name,
        track: current_track(),
        req: current_request(),
        start_us: now_us(),
    }))
}

/// Records an additive counter contribution. Free when no sink is
/// installed. Call from the thread that owns the aggregated value — at
/// a parallel join point, not from inside workers (see the determinism
/// rules in the crate docs).
pub fn counter(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let ev = Event::Counter {
        name,
        track: current_track(),
        ts_us: now_us(),
        value,
        req: current_request(),
    };
    with_sink(|s| s.record(ev.clone()));
}

struct SpanInner {
    name: &'static str,
    track: u32,
    req: u64,
    start_us: u64,
}

/// RAII guard returned by [`span`]; records the span on drop.
pub struct Span(Option<SpanInner>);

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else { return };
        if !enabled() {
            return; // sink removed while the span was open
        }
        let ev = Event::Span {
            name: inner.name,
            track: inner.track,
            start_us: inner.start_us,
            dur_us: now_us().saturating_sub(inner.start_us),
            req: inner.req,
        };
        with_sink(|s| s.record(ev.clone()));
    }
}

/// An in-memory sink: collects events and renders them as a Chrome
/// `trace_event` JSON document or a human-readable stage summary.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl TraceSink for Recorder {
    fn record(&self, event: Event) {
        self.events.lock().expect("recorder lock").push(event);
    }
}

impl Recorder {
    /// Creates a recorder and [`install`]s it in one step.
    pub fn install() -> Arc<Recorder> {
        let rec = Arc::new(Recorder::default());
        install(rec.clone());
        rec
    }

    /// A copy of everything recorded so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("recorder lock").clone()
    }

    /// Sum of every contribution to the named counter.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events()
            .iter()
            .map(|e| match e {
                Event::Counter { name: n, value, .. } if *n == name => *value,
                _ => 0,
            })
            .sum()
    }

    /// Renders the Chrome `trace_event` document: an object with a
    /// `traceEvents` array of `"X"` (complete span), `"C"` (counter,
    /// as a running total per name) and `"M"` (thread-name metadata)
    /// events. Loads directly in `chrome://tracing` and Perfetto.
    pub fn chrome_trace(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 96 + 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        // Thread-name metadata first: one lane per track seen.
        let mut tracks: Vec<u32> = events
            .iter()
            .map(|e| match e {
                Event::Span { track, .. } | Event::Counter { track, .. } => *track,
            })
            .collect();
        tracks.sort_unstable();
        tracks.dedup();
        for t in tracks {
            let label = if t == 0 {
                "main".to_string()
            } else {
                format!("worker-{t}")
            };
            push(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{t},\
                     \"args\":{{\"name\":{}}}}}",
                    json_str(&label)
                ),
                &mut first,
            );
        }
        let mut totals: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for e in &events {
            match e {
                Event::Span {
                    name,
                    track,
                    start_us,
                    dur_us,
                    req,
                } => {
                    let args = if *req == 0 {
                        String::new()
                    } else {
                        format!(",\"args\":{{\"req\":{req}}}")
                    };
                    push(
                        format!(
                            "{{\"name\":{},\"cat\":\"isax\",\"ph\":\"X\",\"ts\":{start_us},\
                             \"dur\":{dur_us},\"pid\":1,\"tid\":{track}{args}}}",
                            json_str(name)
                        ),
                        &mut first,
                    );
                }
                Event::Counter {
                    name,
                    ts_us,
                    value,
                    req,
                    ..
                } => {
                    let total = totals.entry(name).or_insert(0);
                    *total += value;
                    let req_arg = if *req == 0 {
                        String::new()
                    } else {
                        format!(",\"req\":{req}")
                    };
                    push(
                        format!(
                            "{{\"name\":{},\"ph\":\"C\",\"ts\":{ts_us},\"pid\":1,\"tid\":0,\
                             \"args\":{{\"value\":{total}{req_arg}}}}}",
                            json_str(name)
                        ),
                        &mut first,
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Renders recorded spans as folded stacks (inferno/FlameGraph
    /// input) — see [`crate::flame::folded_stacks`].
    pub fn folded_stacks(&self) -> String {
        crate::flame::folded_stacks(&self.events())
    }

    /// Renders the human-readable stage summary: per span name the call
    /// count, total and maximum wall-clock time; then every counter's
    /// summed total. Span timing appears here (a diagnostic surface),
    /// never in compared artifacts.
    pub fn summary(&self) -> String {
        use std::collections::BTreeMap;
        let events = self.events();
        let mut spans: BTreeMap<&'static str, (u64, u64, u64)> = BTreeMap::new();
        let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
        for e in &events {
            match e {
                Event::Span { name, dur_us, .. } => {
                    let s = spans.entry(name).or_insert((0, 0, 0));
                    s.0 += 1;
                    s.1 += dur_us;
                    s.2 = s.2.max(*dur_us);
                }
                Event::Counter { name, value, .. } => {
                    *counters.entry(name).or_insert(0) += value;
                }
            }
        }
        let mut out = String::new();
        out.push_str("=== isax trace summary ===\n");
        if !spans.is_empty() {
            out.push_str(&format!(
                "{:<28} {:>8} {:>12} {:>12}\n",
                "span", "calls", "total ms", "max ms"
            ));
            for (name, (calls, total, max)) in &spans {
                out.push_str(&format!(
                    "{:<28} {:>8} {:>12.3} {:>12.3}\n",
                    name,
                    calls,
                    *total as f64 / 1e3,
                    *max as f64 / 1e3
                ));
            }
        }
        if !counters.is_empty() {
            out.push_str(&format!("{:<28} {:>12}\n", "counter", "total"));
            for (name, total) in &counters {
                out.push_str(&format!("{name:<28} {total:>12}\n"));
            }
        }
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control bytes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// How an observability environment variable was set. This is the one
/// canonical three-way table for every `ISAX_*` observability variable:
/// `isax-trace` applies it to `ISAX_TRACE`, `isax-prov` re-exports it
/// for `ISAX_PROV`, and `isax-serve` re-exports it for
/// `ISAX_SERVE_STATS` (`isax-trace` is dependency-free, so it is the
/// natural home).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvMode {
    /// Explicitly or implicitly disabled: empty, `0`, `off`, `false`,
    /// `no` (ASCII case-insensitive, after trimming).
    Off,
    /// Enabled without a destination (`1`, `on`, `true`, `yes`): record
    /// and print the stage summary, write no file.
    Summary,
    /// Any other value is a file path to write the full artifact to.
    Path(String),
}

/// Parses one observability env-var value into an [`EnvMode`].
pub fn parse_env_value(v: &str) -> EnvMode {
    let v = v.trim();
    if v.is_empty()
        || v.eq_ignore_ascii_case("0")
        || v.eq_ignore_ascii_case("off")
        || v.eq_ignore_ascii_case("false")
        || v.eq_ignore_ascii_case("no")
    {
        EnvMode::Off
    } else if v == "1"
        || v.eq_ignore_ascii_case("on")
        || v.eq_ignore_ascii_case("true")
        || v.eq_ignore_ascii_case("yes")
    {
        EnvMode::Summary
    } else {
        EnvMode::Path(v.to_string())
    }
}

/// A trace session configured from the `ISAX_TRACE` and `ISAX_FLAME`
/// environment variables, used by binaries: `ISAX_TRACE=1` (or
/// `on`/`true`/`yes`) prints the stage summary to stderr on
/// [`EnvTrace::finish`]; any other non-disabling value is treated as a
/// path to write the Chrome trace to (the summary still goes to
/// stderr). `ISAX_FLAME` uses the same grammar for the folded-stack
/// flamegraph export: `1` prints folded stacks to stderr, a path
/// writes them to that file. Either variable alone activates the
/// recorder.
pub struct EnvTrace {
    recorder: Arc<Recorder>,
    summary: bool,
    out: Option<String>,
    flame: EnvMode,
}

/// Starts tracing if `ISAX_TRACE` or `ISAX_FLAME` requests it
/// ([`parse_env_value`] on each; unset, `0`, `off`, `false`, `no` and
/// empty all mean disabled). Binaries call this first thing and
/// [`EnvTrace::finish`] last thing.
pub fn init_from_env() -> Option<EnvTrace> {
    let trace = std::env::var("ISAX_TRACE")
        .map(|v| parse_env_value(&v))
        .unwrap_or(EnvMode::Off);
    let flame = std::env::var("ISAX_FLAME")
        .map(|v| parse_env_value(&v))
        .unwrap_or(EnvMode::Off);
    if trace == EnvMode::Off && flame == EnvMode::Off {
        return None;
    }
    let out = match trace {
        EnvMode::Path(ref p) => Some(p.clone()),
        _ => None,
    };
    Some(EnvTrace {
        recorder: Recorder::install(),
        summary: trace != EnvMode::Off,
        out,
        flame,
    })
}

impl EnvTrace {
    /// The live recorder, for callers that want the raw events.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// Uninstalls the sink, prints the summary to stderr, and writes
    /// the Chrome trace if a path was configured. Dropping the guard
    /// does the same, so `let _trace = init_from_env();` at the top of
    /// `main` is a complete integration.
    pub fn finish(self) {}
}

impl Drop for EnvTrace {
    fn drop(&mut self) {
        uninstall();
        if self.summary {
            eprint!("{}", self.recorder.summary());
        }
        if let Some(path) = &self.out {
            match std::fs::write(path, self.recorder.chrome_trace()) {
                Ok(()) => eprintln!("chrome trace written to {path} (open in Perfetto)"),
                Err(e) => eprintln!("failed to write trace {path}: {e}"),
            }
        }
        match &self.flame {
            EnvMode::Off => {}
            EnvMode::Summary => eprint!("{}", self.recorder.folded_stacks()),
            EnvMode::Path(path) => match std::fs::write(path, self.recorder.folded_stacks()) {
                Ok(()) => eprintln!("folded stacks written to {path} (inferno/FlameGraph input)"),
                Err(e) => eprintln!("failed to write folded stacks {path}: {e}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global sink is process-wide; tests that install one take
    /// this lock so they do not observe each other's events.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn env_value_forms() {
        for v in ["", "  ", "0", "off", "OFF", "false", "No", " off "] {
            assert_eq!(parse_env_value(v), EnvMode::Off, "{v:?}");
        }
        for v in ["1", "on", "ON", "true", "YES", " 1 "] {
            assert_eq!(parse_env_value(v), EnvMode::Summary, "{v:?}");
        }
        assert_eq!(
            parse_env_value("trace.json"),
            EnvMode::Path("trace.json".into())
        );
        assert_eq!(parse_env_value("./off"), EnvMode::Path("./off".into()));
    }

    #[test]
    fn disabled_by_default_and_spans_are_free() {
        let _guard = TEST_LOCK.lock().unwrap();
        uninstall();
        assert!(!enabled());
        let _s = span("never.recorded");
        counter("never.counted", 7);
        // Nothing to assert against: the point is no panic, no sink.
    }

    #[test]
    fn spans_and_counters_reach_the_recorder() {
        let _guard = TEST_LOCK.lock().unwrap();
        let rec = Recorder::install();
        {
            let _outer = span("outer");
            let _inner = span("inner");
            counter("hits", 3);
            counter("hits", 4);
        }
        uninstall();
        let events = rec.events();
        // Counters arrive first (recorded inline), then inner closes
        // before outer (drop order).
        assert_eq!(rec.counter_total("hits"), 7);
        let span_names: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                Event::Span { name, .. } => Some(*name),
                _ => None,
            })
            .collect();
        assert_eq!(span_names, vec!["inner", "outer"]);
    }

    #[test]
    fn chrome_trace_shape_is_wellformed() {
        let _guard = TEST_LOCK.lock().unwrap();
        let rec = Recorder::install();
        set_track(2);
        {
            let _s = span("stage");
            counter("c", 1);
            counter("c", 2);
        }
        set_track(0);
        uninstall();
        let doc = rec.chrome_trace();
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"tid\":2"));
        assert!(doc.contains("worker-2"));
        // Counter events carry the running total: 1 then 3.
        let last_counter = doc.rfind("\"value\":3").expect("running total");
        let first_counter = doc.find("\"value\":1").expect("first delta");
        assert!(first_counter < last_counter);
    }

    #[test]
    fn summary_aggregates_per_name() {
        let _guard = TEST_LOCK.lock().unwrap();
        let rec = Recorder::install();
        for _ in 0..3 {
            let _s = span("stage.a");
        }
        counter("n", 5);
        counter("n", 6);
        uninstall();
        let text = rec.summary();
        assert!(text.contains("stage.a"));
        assert!(text.contains("3"), "call count shown");
        assert!(text.contains("11"), "counter summed");
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn request_tag_lands_on_spans_and_counters() {
        let _guard = TEST_LOCK.lock().unwrap();
        let rec = Recorder::install();
        set_request(42);
        {
            let _s = span("tagged");
            counter("tagged.count", 1);
        }
        set_request(0);
        {
            let _s = span("untagged");
        }
        uninstall();
        let reqs: Vec<u64> = rec
            .events()
            .iter()
            .map(|e| match e {
                Event::Span { req, .. } | Event::Counter { req, .. } => *req,
            })
            .collect();
        assert_eq!(reqs, vec![42, 42, 0]);
        let doc = rec.chrome_trace();
        assert!(doc.contains("\"req\":42"));
        std::thread::spawn(|| assert_eq!(current_request(), 0))
            .join()
            .unwrap();
    }

    #[test]
    fn track_is_thread_local() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_track(7);
        assert_eq!(current_track(), 7);
        std::thread::spawn(|| assert_eq!(current_track(), 0))
            .join()
            .unwrap();
        set_track(0);
    }
}
