//! Unguided exponential candidate enumeration.
//!
//! This is the paper's strawman ("the system used a naïve implementation
//! that looked at all possible directions to grow the seed nodes") and the
//! oracle for two evaluation artifacts:
//!
//! * **Figure 3** plots candidates examined by this search against the
//!   guided heuristic;
//! * the **§3.2 validation** compares candidate sets between the two under
//!   restricted constraints.
//!
//! The search applies the same structural constraints as the guided walk
//! (eligibility, port limits, area cap, node cap) but follows *every*
//! direction. An optional examination budget keeps Figure 3 runs finite.

use crate::candidate::{Candidate, ExploreResult};
use crate::config::ExploreConfig;
use crate::grow::{growable, metrics_of, node_eligible, recordable, FullMetrics};
use isax_graph::BitSet;
use isax_guard::{Meter, Stage};
use isax_hwlib::HwLibrary;
use isax_ir::Dfg;
use std::collections::HashSet;

/// Exhaustively enumerates connected candidate subgraphs, optionally
/// stopping after `budget` distinct candidates have been examined.
///
/// The budget is an [`isax_guard::Meter`] with `budget` units — the same
/// accounting path the guided walker and the pipeline-wide guard use:
/// one unit is charged per candidate, *before* it is examined, so a
/// budget of `B` examines exactly `B` candidates and the `B+1`-th
/// attempt marks the result truncated.
///
/// # Example
///
/// ```
/// use isax_explore::{explore_dfg_naive, ExploreConfig};
/// use isax_hwlib::HwLibrary;
/// use isax_ir::{function_dfgs, FunctionBuilder};
///
/// let mut fb = FunctionBuilder::new("f", 2);
/// let a = fb.param(0);
/// let b = fb.param(1);
/// let t = fb.xor(a, b);
/// let u = fb.add(t, b);
/// fb.ret(&[u.into()]);
/// let dfg = &function_dfgs(&fb.finish())[0];
///
/// let r = explore_dfg_naive(dfg, &HwLibrary::micron_018(), &ExploreConfig::default(), None);
/// // {xor}, {add}, {xor, add}
/// assert_eq!(r.stats.examined, 3);
/// ```
pub fn explore_dfg_naive(
    dfg: &Dfg,
    hw: &HwLibrary,
    cfg: &ExploreConfig,
    budget: Option<u64>,
) -> ExploreResult {
    let meter = match budget {
        Some(b) => Meter::with_limit(Stage::Explore, 0, b),
        None => Meter::unlimited(Stage::Explore, 0),
    };
    let mut walker = NaiveWalker {
        dfg,
        hw,
        cfg,
        meter,
        seen: HashSet::new(),
        result: ExploreResult::default(),
    };
    for seed in 0..dfg.len() {
        if !node_eligible(dfg, seed, hw) {
            continue;
        }
        let nodes: BitSet = [seed].into_iter().collect();
        if let Some(m) = metrics_of(dfg, &nodes, hw) {
            walker.grow(nodes, m);
        }
        if walker.result.stats.truncated {
            break;
        }
    }
    walker.result
}

struct NaiveWalker<'a> {
    dfg: &'a Dfg,
    hw: &'a HwLibrary,
    cfg: &'a ExploreConfig,
    meter: Meter,
    seen: HashSet<BitSet>,
    result: ExploreResult,
}

impl NaiveWalker<'_> {
    fn grow(&mut self, nodes: BitSet, m: FullMetrics) {
        if self.result.stats.truncated {
            return;
        }
        if !self.seen.insert(nodes.clone()) {
            return;
        }
        if !self.meter.charge(1) {
            self.result.stats.truncated = true;
            return;
        }
        self.result.stats.note_examined(nodes.len());
        if recordable(&m, self.cfg) && self.dfg.is_convex(&nodes) {
            self.result.stats.recorded += 1;
            self.result.candidates.push(Candidate {
                dfg: 0,
                nodes: nodes.clone(),
                delay: m.delay,
                area: m.area,
                inputs: m.inputs,
                outputs: m.outputs,
            });
        }
        if nodes.len() >= self.cfg.max_nodes {
            return;
        }
        for dir in self.dfg.neighbours(&nodes) {
            if !node_eligible(self.dfg, dir, self.hw) {
                continue;
            }
            let grown = nodes.with(dir);
            let Some(nm) = metrics_of(self.dfg, &grown, self.hw) else {
                continue;
            };
            if !growable(&nm, self.cfg) {
                continue;
            }
            self.grow(grown, nm);
            if self.result.stats.truncated {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grow::explore_dfg;
    use isax_ir::{function_dfgs, FunctionBuilder};

    fn hw() -> HwLibrary {
        HwLibrary::micron_018()
    }

    /// Chain of n dependent xors.
    fn chain_dfg(n: usize) -> Dfg {
        let mut fb = FunctionBuilder::new("chain", 2);
        let mut acc = fb.param(0);
        let k = fb.param(1);
        for _ in 0..n {
            acc = fb.xor(acc, k);
        }
        fb.ret(&[acc.into()]);
        function_dfgs(&fb.finish()).remove(0)
    }

    #[test]
    fn chain_candidate_count_is_quadratic() {
        // Connected subgraphs of a path of n nodes: n(n+1)/2.
        let dfg = chain_dfg(6);
        let r = explore_dfg_naive(&dfg, &hw(), &ExploreConfig::default(), None);
        assert_eq!(r.stats.examined, 6 * 7 / 2);
    }

    #[test]
    fn budget_truncates() {
        let dfg = chain_dfg(8);
        let r = explore_dfg_naive(&dfg, &hw(), &ExploreConfig::default(), Some(5));
        assert!(r.stats.truncated);
        assert_eq!(r.stats.examined, 5);
    }

    #[test]
    fn guided_matches_naive_on_small_kernels() {
        // The §3.2 validation: on small benchmarks the heuristic selects
        // identical candidate sets.
        let mut fb = FunctionBuilder::new("small", 3);
        let a = fb.param(0);
        let b = fb.param(1);
        let k = fb.param(2);
        let t = fb.xor(a, k);
        let u = fb.shl(t, 2i64);
        let v = fb.add(u, b);
        let w = fb.and(v, 255i64);
        fb.ret(&[w.into()]);
        let dfg = function_dfgs(&fb.finish()).remove(0);

        let guided = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        let naive = explore_dfg_naive(&dfg, &hw(), &ExploreConfig::default(), None);
        let gs: std::collections::BTreeSet<_> =
            guided.candidates.iter().map(|c| c.nodes.clone()).collect();
        let ns: std::collections::BTreeSet<_> =
            naive.candidates.iter().map(|c| c.nodes.clone()).collect();
        assert_eq!(gs, ns, "guided and exhaustive candidate sets agree");
    }

    #[test]
    fn restricted_constraints_shrink_the_space() {
        let dfg = chain_dfg(6);
        let tight = ExploreConfig {
            max_nodes: 3,
            ..ExploreConfig::default()
        };
        let r = explore_dfg_naive(&dfg, &hw(), &tight, None);
        // Subpaths of length 1..=3 of a 6-path: 6 + 5 + 4 = 15.
        assert_eq!(r.stats.examined, 15);
    }
}
