//! Guided candidate growth: the DFG space explorer proper.
//!
//! "Exploration starts by examining each node in the DFG and using it as a
//! seed for a candidate subgraph" (§3.1). From each seed the candidate
//! grows along data edges; every possible growth direction is scored by
//! the [guide function](crate::guide) and directions scoring under the
//! threshold are not explored. Pruning directions — not candidates —
//! leaves open "the possibility that a low ranking candidate will grow
//! into a useful one".

use crate::candidate::{extract_pattern, Candidate, ExploreResult};
use crate::config::ExploreConfig;
use crate::guide::{score, CandidateMetrics, GuideScore};
use isax_graph::{canon, par, BitSet, Fingerprint};
use isax_guard::{Degradation, Guard, Meter, Stage};
use isax_hwlib::HwLibrary;
use isax_ir::{Dfg, DfgLabel, SlackInfo};
use std::collections::{HashMap, HashSet};

/// Full candidate metrics including the split port counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FullMetrics {
    pub delay: f64,
    pub area: f64,
    pub inputs: usize,
    pub outputs: usize,
}

impl FullMetrics {
    pub(crate) fn as_guide(&self) -> CandidateMetrics {
        CandidateMetrics {
            delay: self.delay,
            area: self.area,
            ports: self.inputs + self.outputs,
        }
    }
}

/// Computes delay/area/port metrics of a node set, or `None` when some
/// node is not implementable in hardware.
pub(crate) fn metrics_of(dfg: &Dfg, nodes: &BitSet, hw: &HwLibrary) -> Option<FullMetrics> {
    let pattern = extract_pattern(dfg, nodes);
    Some(FullMetrics {
        delay: hw.subgraph_delay(&pattern)?,
        area: hw.subgraph_area(&pattern)?,
        inputs: dfg.input_count(nodes),
        outputs: dfg.output_count(nodes),
    })
}

/// Memoizes hardware delay/area by the canonical fingerprint of the
/// extracted pattern.
///
/// The grow loop re-derives metrics for every (seed, growth-direction)
/// pair, and structurally identical subgraphs recur constantly — every
/// `xor → shl` pair in a crypto round hits the same shape. Delay and
/// area depend only on the labelled pattern up to isomorphism (critical
/// path over edges plus a per-node area sum), so they are safe to share
/// across occurrences; input/output port counts depend on how the node
/// set is embedded in its DFG and are recomputed fresh each time.
///
/// `None` results (a node with no hardware implementation) are cached
/// too, so repeated attempts to grow into an unimplementable shape stay
/// cheap.
#[derive(Debug, Default)]
pub(crate) struct MetricsMemo {
    map: HashMap<Fingerprint, Option<(f64, f64)>>,
    /// Lookups answered from the cache.
    pub(crate) hits: u64,
    /// Lookups that had to compute delay/area.
    pub(crate) misses: u64,
}

impl MetricsMemo {
    /// Drop-in memoized equivalent of [`metrics_of`] (kept for the
    /// memo-behaviour tests; production paths use [`Self::metrics_fp_of`]).
    #[cfg(test)]
    pub(crate) fn metrics_of(
        &mut self,
        dfg: &Dfg,
        nodes: &BitSet,
        hw: &HwLibrary,
    ) -> Option<FullMetrics> {
        self.metrics_fp_of(dfg, nodes, hw).1
    }

    /// [`MetricsMemo::metrics_of`] plus the canonical fingerprint it
    /// keyed the cache with — the walker reuses it as the candidate's
    /// provenance identity, so provenance costs no extra fingerprinting.
    pub(crate) fn metrics_fp_of(
        &mut self,
        dfg: &Dfg,
        nodes: &BitSet,
        hw: &HwLibrary,
    ) -> (Fingerprint, Option<FullMetrics>) {
        let pattern = extract_pattern(dfg, nodes);
        let fp = canon::fingerprint(
            &pattern,
            DfgLabel::key,
            |l| l.opcode.is_commutative(),
            &canon::CanonConfig::default(),
        );
        let delay_area = match self.map.get(&fp) {
            Some(&cached) => {
                self.hits += 1;
                cached
            }
            None => {
                self.misses += 1;
                let computed = hw.subgraph_delay(&pattern).zip(hw.subgraph_area(&pattern));
                self.map.insert(fp, computed);
                computed
            }
        };
        let Some((delay, area)) = delay_area else {
            return (fp, None);
        };
        (
            fp,
            Some(FullMetrics {
                delay,
                area,
                inputs: dfg.input_count(nodes),
                outputs: dfg.output_count(nodes),
            }),
        )
    }
}

/// True if the instruction may participate in a custom function unit.
pub(crate) fn node_eligible(dfg: &Dfg, v: usize, hw: &HwLibrary) -> bool {
    let inst = dfg.inst(v);
    !inst.opcode.is_custom() && hw.cost_of_inst(inst).is_some()
}

/// True if a candidate with these metrics may be *recorded* as a CFU
/// (structural constraints are strict at record time even when growth is
/// allowed to overshoot).
pub(crate) fn recordable(m: &FullMetrics, cfg: &ExploreConfig) -> bool {
    m.inputs <= cfg.max_inputs
        && m.outputs <= cfg.max_outputs
        && m.outputs >= 1
        && cfg.max_area.is_none_or(|cap| m.area <= cap)
}

/// True if growth may pass through a candidate with these metrics.
pub(crate) fn growable(m: &FullMetrics, cfg: &ExploreConfig) -> bool {
    m.inputs <= cfg.max_inputs.saturating_add(cfg.io_overshoot)
        && m.outputs <= cfg.max_outputs.saturating_add(cfg.io_overshoot)
        && cfg.max_area.is_none_or(|cap| m.area <= cap)
}

/// Explores one dataflow graph with the guided heuristic and returns the
/// deduplicated viable candidates plus search statistics.
///
/// # Example
///
/// ```
/// use isax_explore::{explore_dfg, ExploreConfig};
/// use isax_hwlib::HwLibrary;
/// use isax_ir::{function_dfgs, FunctionBuilder};
///
/// let mut fb = FunctionBuilder::new("f", 2);
/// let a = fb.param(0);
/// let b = fb.param(1);
/// let t = fb.and(a, b);
/// let u = fb.add(t, b);
/// fb.ret(&[u.into()]);
/// let dfg = &function_dfgs(&fb.finish())[0];
///
/// let r = explore_dfg(dfg, &HwLibrary::micron_018(), &ExploreConfig::default());
/// assert!(r.stats.examined >= 3); // two seeds + at least one grown candidate
/// ```
pub fn explore_dfg(dfg: &Dfg, hw: &HwLibrary, cfg: &ExploreConfig) -> ExploreResult {
    let mut meter = Meter::unlimited(Stage::Explore, 0);
    explore_dfg_metered(dfg, hw, cfg, &mut meter)
}

/// [`explore_dfg`] under a work-unit meter: one unit per candidate
/// examined, charged *before* the examination (so a budget of `B`
/// examines exactly `B` candidates). On exhaustion the walk stops and
/// the result — a sound subset of the unbudgeted result — is tagged
/// `truncated` in its stats. This is the single accounting path shared
/// by the guided walker, the naive walker's examination budget, and the
/// pipeline-wide [`Guard`].
pub fn explore_dfg_metered(
    dfg: &Dfg,
    hw: &HwLibrary,
    cfg: &ExploreConfig,
    meter: &mut Meter,
) -> ExploreResult {
    meter.touch();
    let slack_info = dfg.schedule_info(|i| hw.sw_latency_of(i));
    let mut walker = Walker {
        dfg,
        hw,
        cfg,
        slack_info: &slack_info,
        seen: HashSet::new(),
        memo: MetricsMemo::default(),
        result: ExploreResult::default(),
        meter,
        prov_on: isax_prov::enabled(),
        prov_noted: HashSet::new(),
    };
    for seed in 0..dfg.len() {
        if walker.result.stats.truncated {
            break;
        }
        if !node_eligible(dfg, seed, hw) {
            continue;
        }
        let nodes: BitSet = [seed].into_iter().collect();
        let (fp, m) = walker.memo.metrics_fp_of(dfg, &nodes, hw);
        if let Some(m) = m {
            walker.grow(nodes, m, fp, None);
        }
    }
    walker.result.stats.memo_hits = walker.memo.hits;
    walker.result.stats.memo_misses = walker.memo.misses;
    walker.result
}

/// Explores every DFG of an application (e.g. all blocks of all
/// functions), stamping each candidate with the index of the DFG it was
/// found in and merging the statistics.
///
/// DFGs are independent, so they are explored in parallel (see
/// [`isax_graph::par`]); results are merged in DFG index order, so the
/// output is identical to the serial loop for any thread count.
pub fn explore_app(dfgs: &[Dfg], hw: &HwLibrary, cfg: &ExploreConfig) -> ExploreResult {
    let per_dfg = par::par_map_indexed(dfgs.len(), |i| {
        let _s = isax_trace::span("explore.dfg");
        let mut r = explore_dfg(&dfgs[i], hw, cfg);
        for c in &mut r.candidates {
            c.dfg = i;
        }
        r.prov.set_dfg(i);
        r
    });
    let mut out = ExploreResult::default();
    for r in per_dfg {
        out.merge(r);
    }
    out
}

/// [`explore_app`] under a [`Guard`]: each DFG gets its own meter (item
/// ordinal = DFG index), worker panics are contained per item, and any
/// truncation or contained fault comes back as a [`Degradation`] record
/// aggregated in DFG order.
///
/// With an inactive guard this dispatches straight to [`explore_app`] —
/// the historical code path, byte for byte.
pub fn explore_app_guarded(
    dfgs: &[Dfg],
    hw: &HwLibrary,
    cfg: &ExploreConfig,
    guard: &Guard,
) -> (ExploreResult, Vec<Degradation>) {
    if !guard.is_active() {
        return (explore_app(dfgs, hw, cfg), Vec::new());
    }
    let per_dfg = par::par_try_map_indexed(dfgs.len(), |i| {
        let _s = isax_trace::span("explore.dfg");
        let mut meter = guard.meter(Stage::Explore, i as u64);
        let mut r = explore_dfg_metered(&dfgs[i], hw, cfg, &mut meter);
        for c in &mut r.candidates {
            c.dfg = i;
        }
        r.prov.set_dfg(i);
        let degradation = meter.degradation(format!(
            "kept {} candidates from {} examined in dfg {}",
            r.candidates.len(),
            r.stats.examined,
            i
        ));
        (r, degradation)
    });
    let mut out = ExploreResult::default();
    let mut degradations = Vec::new();
    for (i, item) in per_dfg.into_iter().enumerate() {
        match item {
            Ok((r, d)) => {
                out.merge(r);
                degradations.extend(d);
            }
            Err(e) => {
                out.stats.truncated = true;
                degradations.push(if e.cancelled {
                    Degradation::cancelled(Stage::Explore, i as u64, e.message)
                } else {
                    Degradation::panicked(Stage::Explore, i as u64, e.message)
                });
            }
        }
    }
    (out, degradations)
}

struct Walker<'a> {
    dfg: &'a Dfg,
    hw: &'a HwLibrary,
    cfg: &'a ExploreConfig,
    slack_info: &'a SlackInfo,
    seen: HashSet<BitSet>,
    memo: MetricsMemo,
    result: ExploreResult,
    meter: &'a mut Meter,
    /// [`isax_prov::enabled`], hoisted once per walk.
    prov_on: bool,
    /// Fingerprints already given a provenance event of a given kind
    /// (`true` = discovered, `false` = pruned) in this walk. Provenance
    /// reports one event per shape per DFG; the repeat encounters stay
    /// counted in the stats, which the differential tests pin.
    prov_noted: HashSet<(Fingerprint, bool)>,
}

/// Copies a guide score into the provenance crate's dependency-free
/// mirror of it.
fn breakdown(s: &crate::guide::GuideScore) -> isax_prov::ScoreBreakdown {
    isax_prov::ScoreBreakdown {
        criticality: s.criticality,
        latency: s.latency,
        area: s.area,
        io: s.io,
    }
}

impl Walker<'_> {
    fn grow(&mut self, nodes: BitSet, m: FullMetrics, fp: Fingerprint, via: Option<GuideScore>) {
        if self.result.stats.truncated {
            return;
        }
        if !self.seen.insert(nodes.clone()) {
            return;
        }
        // One work unit per candidate examined, charged before the
        // examination: a budget of B stops after exactly B candidates.
        if !self.meter.charge(1) {
            self.result.stats.truncated = true;
            return;
        }
        self.result.stats.note_examined(nodes.len());
        if recordable(&m, self.cfg) && self.dfg.is_convex(&nodes) {
            self.result.stats.recorded += 1;
            if self.prov_on && self.prov_noted.insert((fp, true)) {
                self.result.prov.record(
                    fp.0,
                    isax_prov::ProvEvent::Discovered {
                        dfg: 0, // stamped with the real index at the join point
                        size: nodes.len(),
                        delay: m.delay,
                        area: m.area,
                        inputs: m.inputs,
                        outputs: m.outputs,
                        score: via.as_ref().map(breakdown),
                    },
                );
            }
            self.result.candidates.push(Candidate {
                dfg: 0,
                nodes: nodes.clone(),
                delay: m.delay,
                area: m.area,
                inputs: m.inputs,
                outputs: m.outputs,
            });
        }
        if nodes.len() >= self.cfg.max_nodes {
            return;
        }
        // Score every eligible direction.
        let old = m.as_guide();
        let mut dirs: Vec<(f64, usize, FullMetrics, Fingerprint, GuideScore)> = Vec::new();
        for dir in self.dfg.neighbours(&nodes) {
            if !node_eligible(self.dfg, dir, self.hw) {
                continue;
            }
            let grown = nodes.with(dir);
            let (nfp, nm) = self.memo.metrics_fp_of(self.dfg, &grown, self.hw);
            let Some(nm) = nm else {
                continue;
            };
            if !growable(&nm, self.cfg) {
                continue;
            }
            let s = score(&old, &nm.as_guide(), self.slack_info.slack[dir], self.cfg);
            if s.total() < self.cfg.threshold {
                self.result.stats.directions_pruned += 1;
                self.note_pruned(nfp, &s, isax_prov::PruneReason::BelowThreshold);
                continue;
            }
            dirs.push((s.total(), dir, nm, nfp, s));
        }
        // Best directions first; optionally cap the fanout — with the
        // adaptive taper tightening the cap once candidates grow large.
        dirs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut cap = self.cfg.max_fanout;
        if let Some(ts) = self.cfg.taper_size {
            if nodes.len() >= ts {
                cap = Some(cap.unwrap_or(usize::MAX).min(self.cfg.taper_fanout));
            }
        }
        if let Some(cap) = cap {
            if dirs.len() > cap {
                self.result.stats.directions_pruned += (dirs.len() - cap) as u64;
                for (_, _, _, nfp, s) in &dirs[cap..] {
                    let (nfp, s) = (*nfp, *s);
                    self.note_pruned(nfp, &s, isax_prov::PruneReason::FanoutCap);
                }
                dirs.truncate(cap);
            }
        }
        for (_, dir, nm, nfp, s) in dirs {
            self.grow(nodes.with(dir), nm, nfp, Some(s));
        }
    }

    /// Records a `Pruned` event for a dropped growth direction, at most
    /// once per (shape, kind) per walk.
    fn note_pruned(&mut self, fp: Fingerprint, s: &GuideScore, reason: isax_prov::PruneReason) {
        if self.prov_on && self.prov_noted.insert((fp, false)) {
            self.result.prov.record(
                fp.0,
                isax_prov::ProvEvent::Pruned {
                    dfg: 0, // stamped with the real index at the join point
                    threshold: self.cfg.threshold,
                    score: breakdown(s),
                    reason,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::{function_dfgs, FunctionBuilder};

    fn hw() -> HwLibrary {
        HwLibrary::micron_018()
    }

    /// A small encryption-flavoured kernel: two xor-shift-or "rotate"
    /// diamonds joined by an add.
    fn kernel_dfg() -> Dfg {
        let mut fb = FunctionBuilder::new("k", 3);
        let a = fb.param(0);
        let b = fb.param(1);
        let k = fb.param(2);
        let t = fb.xor(a, k); // 0
        let l = fb.shl(t, 5i64); // 1
        let r = fb.shr(t, 27i64); // 2
        let rot = fb.or(l, r); // 3
        let s = fb.add(rot, b); // 4
        let u = fb.and(s, 0xFFFFi64); // 5
        fb.ret(&[u.into()]);
        function_dfgs(&fb.finish()).remove(0)
    }

    #[test]
    fn finds_the_full_chain() {
        let dfg = kernel_dfg();
        let r = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        assert!(
            r.candidates.iter().any(|c| c.nodes.len() == 6),
            "the whole 6-node kernel is a viable 3-in/1-out candidate"
        );
        // Everything recorded satisfies the port constraints.
        for c in &r.candidates {
            assert!(c.inputs <= 5 && c.outputs <= 3);
            assert!(c.outputs >= 1);
        }
    }

    #[test]
    fn candidates_are_deduplicated() {
        let dfg = kernel_dfg();
        let r = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        let mut sets: Vec<_> = r.candidates.iter().map(|c| c.nodes.clone()).collect();
        let before = sets.len();
        sets.sort();
        sets.dedup();
        assert_eq!(sets.len(), before, "no duplicate node sets");
        assert_eq!(r.stats.recorded, before as u64);
    }

    #[test]
    fn memory_nodes_are_never_included() {
        let mut fb = FunctionBuilder::new("m", 2);
        let p = fb.param(0);
        let k = fb.param(1);
        let v = fb.ldw(p); // 0: load
        let t = fb.xor(v, k); // 1
        let u = fb.add(t, 1i64); // 2
        fb.stw(p, u); // 3: store
        fb.ret(&[]);
        let dfg = function_dfgs(&fb.finish()).remove(0);
        let r = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        for c in &r.candidates {
            assert!(!c.nodes.contains(0), "load excluded");
            assert!(!c.nodes.contains(3), "store excluded");
        }
        assert!(r.candidates.iter().any(|c| c.nodes.len() == 2));
    }

    #[test]
    fn area_cap_is_respected() {
        let dfg = kernel_dfg();
        let cfg = ExploreConfig {
            max_area: Some(0.3),
            ..ExploreConfig::default()
        };
        let r = explore_dfg(&dfg, &hw(), &cfg);
        assert!(!r.candidates.is_empty());
        for c in &r.candidates {
            assert!(c.area <= 0.3, "candidate area {} exceeds cap", c.area);
        }
    }

    #[test]
    fn fanout_cap_reduces_exploration() {
        let dfg = kernel_dfg();
        let full = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        let capped_cfg = ExploreConfig {
            max_fanout: Some(1),
            ..ExploreConfig::default()
        };
        let capped = explore_dfg(&dfg, &hw(), &capped_cfg);
        assert!(capped.stats.examined <= full.stats.examined);
    }

    #[test]
    fn max_nodes_limits_candidate_size() {
        let dfg = kernel_dfg();
        let cfg = ExploreConfig {
            max_nodes: 2,
            ..ExploreConfig::default()
        };
        let r = explore_dfg(&dfg, &hw(), &cfg);
        assert!(r.candidates.iter().all(|c| c.nodes.len() <= 2));
    }

    #[test]
    fn memo_hits_on_repeated_shapes_and_agrees_with_fresh_metrics() {
        // Two structurally identical xor→shl pairs at different node
        // indices: the second lookup of the shape must come from the
        // cache and still agree with a fresh computation byte for byte.
        let mut fb = FunctionBuilder::new("m", 4);
        let a = fb.param(0);
        let b = fb.param(1);
        let c = fb.param(2);
        let d = fb.param(3);
        let t1 = fb.xor(a, b); // 0
        let s1 = fb.shl(t1, 3i64); // 1
        let t2 = fb.xor(c, d); // 2
        let s2 = fb.shl(t2, 3i64); // 3
        let j = fb.or(s1, s2); // 4
        fb.ret(&[j.into()]);
        let dfg = function_dfgs(&fb.finish()).remove(0);
        let hw = hw();
        let mut memo = MetricsMemo::default();
        let first: BitSet = [0usize, 1].into_iter().collect();
        let second: BitSet = [2usize, 3].into_iter().collect();
        let m1 = memo.metrics_of(&dfg, &first, &hw).unwrap();
        assert_eq!((memo.hits, memo.misses), (0, 1));
        let m2 = memo.metrics_of(&dfg, &second, &hw).unwrap();
        assert_eq!((memo.hits, memo.misses), (1, 1), "same shape must hit");
        // The cached answer is exactly what a fresh computation gives.
        assert_eq!(m2, metrics_of(&dfg, &second, &hw).unwrap());
        assert_eq!(m1.delay, m2.delay);
        assert_eq!(m1.area, m2.area);
        // Re-asking for the first set hits as well.
        let m1_again = memo.metrics_of(&dfg, &first, &hw).unwrap();
        assert_eq!((memo.hits, memo.misses), (2, 1));
        assert_eq!(m1_again, m1);
    }

    #[test]
    fn memo_ports_stay_per_node_set() {
        // Same pattern shape, different embedding: node 1's value also
        // feeds node 3, so {0,1} has an extra output compared to {2,3}.
        // The memo must not leak port counts across occurrences.
        let mut fb = FunctionBuilder::new("p", 2);
        let a = fb.param(0);
        let b = fb.param(1);
        let t1 = fb.xor(a, b); // 0
        let s1 = fb.add(t1, b); // 1
        let t2 = fb.xor(s1, a); // 2   (consumes node 1 → node 1 escapes)
        let s2 = fb.add(t2, b); // 3
        fb.ret(&[s2.into()]);
        let dfg = function_dfgs(&fb.finish()).remove(0);
        let hw = hw();
        let mut memo = MetricsMemo::default();
        let first: BitSet = [0usize, 1].into_iter().collect();
        let second: BitSet = [2usize, 3].into_iter().collect();
        let m1 = memo.metrics_of(&dfg, &first, &hw).unwrap();
        let m2 = memo.metrics_of(&dfg, &second, &hw).unwrap();
        assert_eq!(memo.hits, 1, "shapes are canonically equal");
        assert_eq!(m1.delay, m2.delay);
        assert_eq!(m1.area, m2.area);
        assert_eq!(m1, metrics_of(&dfg, &first, &hw).unwrap());
        assert_eq!(m2, metrics_of(&dfg, &second, &hw).unwrap());
    }

    #[test]
    fn memo_caches_unimplementable_shapes() {
        let mut fb = FunctionBuilder::new("u", 2);
        let p = fb.param(0);
        let q = fb.param(1);
        let v = fb.div(p, q); // 0: no hardware implementation
        fb.ret(&[v.into()]);
        let dfg = function_dfgs(&fb.finish()).remove(0);
        let hw = hw();
        let mut memo = MetricsMemo::default();
        let nodes: BitSet = [0usize].into_iter().collect();
        assert!(memo.metrics_of(&dfg, &nodes, &hw).is_none());
        assert!(memo.metrics_of(&dfg, &nodes, &hw).is_none());
        assert_eq!((memo.hits, memo.misses), (1, 1), "None is cached too");
    }

    #[test]
    fn explore_reports_memo_counters() {
        let dfg = kernel_dfg();
        let r = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        assert!(r.stats.memo_misses > 0, "fresh shapes were computed");
        assert!(
            r.stats.memo_hits > 0,
            "the grow loop revisits shapes via different paths"
        );
    }

    #[test]
    fn metered_explore_stops_after_exactly_budget_candidates() {
        let dfg = kernel_dfg();
        let full = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        assert!(!full.stats.truncated);
        let budget = full.stats.examined / 2;
        let mut meter = Meter::with_limit(Stage::Explore, 0, budget);
        let partial = explore_dfg_metered(&dfg, &hw(), &ExploreConfig::default(), &mut meter);
        assert!(partial.stats.truncated);
        assert_eq!(partial.stats.examined, budget);
        assert_eq!(meter.spent(), budget);
        // The partial candidate set is a subset of the full one.
        let full_sets: HashSet<_> = full.candidates.iter().map(|c| c.nodes.clone()).collect();
        for c in &partial.candidates {
            assert!(full_sets.contains(&c.nodes));
        }
    }

    #[test]
    fn inactive_guard_takes_the_legacy_path_and_reports_nothing() {
        let dfgs = vec![kernel_dfg(), kernel_dfg()];
        let plain = explore_app(&dfgs, &hw(), &ExploreConfig::default());
        let (guarded, degradations) =
            explore_app_guarded(&dfgs, &hw(), &ExploreConfig::default(), &Guard::unlimited());
        assert!(degradations.is_empty());
        assert_eq!(plain.candidates, guarded.candidates);
        assert_eq!(plain.stats, guarded.stats);
    }

    #[test]
    fn active_guard_with_huge_budget_matches_the_legacy_path() {
        let dfgs = vec![kernel_dfg(), kernel_dfg()];
        let plain = explore_app(&dfgs, &hw(), &ExploreConfig::default());
        let guard = Guard::unlimited().with_units(u64::MAX / 2);
        let (guarded, degradations) =
            explore_app_guarded(&dfgs, &hw(), &ExploreConfig::default(), &guard);
        assert!(degradations.is_empty());
        assert_eq!(plain.candidates, guarded.candidates);
        assert_eq!(plain.stats, guarded.stats);
    }

    #[test]
    fn guarded_explore_reports_per_dfg_budget_degradations_in_order() {
        let dfgs = vec![kernel_dfg(), kernel_dfg(), kernel_dfg()];
        let guard = Guard::unlimited().with_units(3);
        let (r, degradations) = explore_app_guarded(&dfgs, &hw(), &ExploreConfig::default(), &guard);
        assert!(r.stats.truncated);
        assert_eq!(degradations.len(), 3, "every dfg exhausted its meter");
        for (i, d) in degradations.iter().enumerate() {
            assert_eq!(d.stage, Stage::Explore);
            assert_eq!(d.item, i as u64);
            assert_eq!(d.units_spent, 3);
            assert_eq!(d.limit, Some(3));
        }
        assert_eq!(r.stats.examined, 9, "3 units per dfg, charged pre-examination");
    }

    #[test]
    fn guide_prunes_against_naive_on_wide_graphs() {
        // A long cheap critical chain with expensive, high-slack multiply
        // fingers hanging off it: growing into the multiplies loses on
        // every guide category, so the guided walk examines fewer
        // candidates than the exhaustive search.
        let mut fb = FunctionBuilder::new("wide", 6);
        let mut acc = fb.param(0);
        let mut tap = None;
        for i in 0..30 {
            let p = fb.param(i % 6);
            acc = fb.xor(acc, p);
            if i == 2 {
                tap = Some(acc);
            }
        }
        // A chain of multiplies off an early tap: every entry into a
        // multi-multiply subgraph loses badly on latency and area, and the
        // long xor chain gives the multiplies plenty of slack.
        let mut m = tap.unwrap();
        for j in 0..4 {
            let p = fb.param(2 + j);
            m = fb.mul(m, p);
        }
        let merged = fb.xor(acc, m);
        fb.ret(&[merged.into()]);
        let dfg = function_dfgs(&fb.finish()).remove(0);
        let guided = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        let naive = crate::naive::explore_dfg_naive(&dfg, &hw(), &ExploreConfig::default(), None);
        assert!(
            guided.stats.examined < naive.stats.examined,
            "guided {} !< naive {}",
            guided.stats.examined,
            naive.stats.examined
        );
        assert!(guided.stats.directions_pruned > 0);
        // And guided candidates are a subset of naive's.
        let naive_sets: std::collections::HashSet<_> =
            naive.candidates.iter().map(|c| c.nodes.clone()).collect();
        for c in &guided.candidates {
            assert!(naive_sets.contains(&c.nodes));
        }
    }
}
