//! Guided candidate growth: the DFG space explorer proper.
//!
//! "Exploration starts by examining each node in the DFG and using it as a
//! seed for a candidate subgraph" (§3.1). From each seed the candidate
//! grows along data edges; every possible growth direction is scored by
//! the [guide function](crate::guide) and directions scoring under the
//! threshold are not explored. Pruning directions — not candidates —
//! leaves open "the possibility that a low ranking candidate will grow
//! into a useful one".
//!
//! # Hot-path design
//!
//! The inner loop used to rebuild a pattern graph and canonical WL
//! fingerprint for every `(candidate, direction)` pair, with a
//! fingerprint-keyed memo in front of the delay/area computation. Both
//! are gone from the hot path:
//!
//! * [`SubgraphEval`] precomputes per-node costs, label keys and
//!   adjacency bitsets once per DFG, then evaluates any candidate in one
//!   O(nodes) pass over those arrays — bit-identical to the from-scratch
//!   [`metrics_of`] (pinned by the equivalence proptests), with no graph
//!   materialization and no hashing.
//! * Canonical identity is two-tier: a **cheap structural key**
//!   ([`SubgraphEval::cheap_key`], an order-independent mix of label
//!   keys, internal edges and path depths) dedups provenance events, and
//!   the full `canon` fingerprint is computed only on the first
//!   encounter of each cheap key, via the cross-seed
//!   [`FingerprintMemo`]. With provenance disabled neither tier runs.
//!
//! Growth order is configurable: the default is the historical
//! depth-first walk; [`ExploreConfig::beam_width`] switches to a
//! level-synchronous best-first walk that expands the highest-scored
//! frontier entries first (see [`Walker::run_beam`]).

use crate::candidate::{extract_pattern, Candidate, ExploreResult};
use crate::config::ExploreConfig;
use crate::guide::{score, CandidateMetrics, GuideScore};
use isax_graph::{canon, par, BitSet, Fingerprint};
use isax_guard::{Degradation, Guard, Meter, Stage};
use isax_hwlib::HwLibrary;
use isax_ir::{Dfg, SlackInfo};
use std::collections::{HashMap, HashSet};

/// Full candidate metrics including the split port counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FullMetrics {
    /// Critical-path delay through the subgraph, in cycle fractions.
    pub delay: f64,
    /// Summed area, in adder units.
    pub area: f64,
    /// Register input ports required.
    pub inputs: usize,
    /// Register output ports required.
    pub outputs: usize,
}

impl FullMetrics {
    pub(crate) fn as_guide(&self) -> CandidateMetrics {
        CandidateMetrics {
            delay: self.delay,
            area: self.area,
            ports: self.inputs + self.outputs,
        }
    }
}

/// Computes delay/area/port metrics of a node set, or `None` when some
/// node is not implementable in hardware.
///
/// This is the from-scratch reference implementation (pattern extraction
/// plus the hardware library's aggregate queries); the explorer's hot
/// path uses the incremental [`SubgraphEval`], which must agree with this
/// function bit for bit on every node set.
pub fn metrics_of(dfg: &Dfg, nodes: &BitSet, hw: &HwLibrary) -> Option<FullMetrics> {
    let pattern = extract_pattern(dfg, nodes);
    // Pattern node `i` is the `i`-th member in ascending instruction
    // order, so the width slice lines up with the pattern by collecting
    // the members' inferred widths in iteration order.
    let widths: Vec<u8> = nodes.iter().map(|v| dfg.width(v)).collect();
    Some(FullMetrics {
        delay: hw.subgraph_delay_widths(&pattern, &widths)?,
        area: hw.subgraph_area_widths(&pattern, &widths)?,
        inputs: dfg.input_count(nodes),
        outputs: dfg.output_count(nodes),
    })
}

/// Per-DFG incremental candidate evaluator.
///
/// Built once per explored DFG, it caches everything a candidate
/// evaluation needs in flat per-node arrays — hardware cost, CFU
/// eligibility, label hash, commutativity, undirected data-adjacency
/// bitsets — so [`SubgraphEval::metrics`] is a single pass over the
/// candidate's members with no allocation, no pattern graph, and no
/// fingerprinting. Epoch-stamped scratch arrays make the distinct-count
/// I/O logic O(members + edges) without per-call clearing.
#[derive(Debug)]
pub struct SubgraphEval<'a> {
    dfg: &'a Dfg,
    /// `(delay, area)` per node via the library's label cost, `None` when
    /// the operation cannot join a CFU.
    cost: Vec<Option<(f64, f64)>>,
    /// [`node_eligible`] per node, precomputed.
    pub(crate) eligible: Vec<bool>,
    is_load: Vec<bool>,
    /// [`DfgLabel::key`] per node — the label string is hashed once per
    /// DFG instead of once per evaluation.
    pub(crate) label_key: Vec<u64>,
    pub(crate) commutative: Vec<bool>,
    /// Undirected data-edge neighbour mask per node; the union over a
    /// candidate's members (minus the members) is its growth frontier.
    pub(crate) adj: Vec<BitSet>,
    load_delay: Option<f64>,
    /// Longest-path finish time per member node, valid for the node set
    /// most recently passed to [`SubgraphEval::metrics`] or
    /// [`SubgraphEval::cheap_key`].
    finish: Vec<f64>,
    node_stamp: Vec<u32>,
    reg_stamp: Vec<u32>,
    epoch: u32,
}

impl<'a> SubgraphEval<'a> {
    /// Indexes `dfg` against `hw` for incremental evaluation.
    pub fn new(dfg: &'a Dfg, hw: &HwLibrary) -> Self {
        let n = dfg.len();
        let mut cost = Vec::with_capacity(n);
        let mut eligible = Vec::with_capacity(n);
        let mut is_load = Vec::with_capacity(n);
        let mut label_key = Vec::with_capacity(n);
        let mut commutative = Vec::with_capacity(n);
        let mut adj = vec![BitSet::with_capacity(n); n];
        let mut reg_cap = 0usize;
        for v in 0..n {
            let label = dfg.label(v);
            cost.push(
                hw.cost_of_label_scaled(&label, dfg.width(v))
                    .map(|c| (c.delay, c.area)),
            );
            eligible.push(node_eligible(dfg, v, hw));
            is_load.push(dfg.inst(v).opcode.is_load());
            label_key.push(label.key());
            commutative.push(label.opcode.is_commutative());
            for &(u, _) in dfg.data_preds(v) {
                adj[v].insert(u);
                adj[u].insert(v);
            }
            for &(_, r) in dfg.ext_inputs(v) {
                reg_cap = reg_cap.max(r.index() + 1);
            }
        }
        SubgraphEval {
            dfg,
            cost,
            eligible,
            is_load,
            label_key,
            commutative,
            adj,
            load_delay: hw.cfu_load.map(|c| c.delay),
            finish: vec![0.0; n],
            node_stamp: vec![0; n],
            reg_stamp: vec![0; reg_cap],
            epoch: 0,
        }
    }

    fn next_epoch(&mut self) -> u32 {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.node_stamp.fill(0);
                self.reg_stamp.fill(0);
                1
            }
        };
        self.epoch
    }

    /// Delay/area/port metrics of `nodes`, bit-identical to
    /// [`metrics_of`]: the longest-path fold visits members in ascending
    /// instruction order (a topological order of the pattern, since all
    /// data edges point forward in program order) and the area sum runs
    /// in the same ascending order the pattern's node list uses, so every
    /// `f64` operation replays the reference computation exactly.
    pub fn metrics(&mut self, nodes: &BitSet) -> Option<FullMetrics> {
        let e = self.next_epoch();
        let mut longest = 0.0f64;
        let mut area = 0.0f64;
        let mut loads = 0u64;
        let mut inputs = 0usize;
        let mut outputs = 0usize;
        for v in nodes.iter() {
            let (delay, node_area) = self.cost[v]?;
            let mut start = 0.0f64;
            for &(u, _) in self.dfg.data_preds(v) {
                if nodes.contains(u) {
                    start = start.max(self.finish[u]);
                } else if self.node_stamp[u] != e {
                    // Distinct external producer: one input port.
                    self.node_stamp[u] = e;
                    inputs += 1;
                }
            }
            for &(_, r) in self.dfg.ext_inputs(v) {
                let ri = r.index();
                if self.reg_stamp[ri] != e {
                    // Distinct external register: one input port.
                    self.reg_stamp[ri] = e;
                    inputs += 1;
                }
            }
            let f = start + delay;
            self.finish[v] = f;
            longest = longest.max(f);
            area += node_area;
            if self.is_load[v] {
                loads += 1;
            }
            if self.dfg.is_block_output(v)
                || self
                    .dfg
                    .data_succs(v)
                    .iter()
                    .any(|&(d, _)| !nodes.contains(d))
            {
                outputs += 1;
            }
        }
        // Loads inside a unit serialize through the single cache port.
        if let Some(ld) = self.load_delay {
            longest = longest.max(loads as f64 * ld);
        }
        Some(FullMetrics {
            delay: longest,
            area,
            inputs,
            outputs,
        })
    }

    /// Cheap isomorphism-invariant structural key of `nodes`: an
    /// order-independent (wrapping-sum) mix of per-node terms — label key
    /// xor longest-path finish time — and per-internal-edge terms —
    /// endpoint labels plus the destination port, collapsed to
    /// [`canon::COMMUTATIVE_PORT`] when the consumer is commutative —
    /// combined with the node and edge counts.
    ///
    /// Isomorphic embeddings of the same pattern share the key exactly
    /// (every term is a function of the labelled pattern alone), so it
    /// can dedup provenance events and front the canonical-fingerprint
    /// cache; distinct patterns collide with ordinary 64-bit-hash
    /// probability, which the golden provenance reports pin empirically.
    pub(crate) fn cheap_key(&mut self, nodes: &BitSet) -> u64 {
        let mut node_acc = 0u64;
        let mut edge_acc = 0u64;
        let mut edges = 0u64;
        for v in nodes.iter() {
            let delay = self.cost[v].map(|c| c.0).unwrap_or(0.0);
            let mut start = 0.0f64;
            for &(u, port) in self.dfg.data_preds(v) {
                if nodes.contains(u) {
                    start = start.max(self.finish[u]);
                    edges += 1;
                    let ptag = if self.commutative[v] {
                        canon::COMMUTATIVE_PORT
                    } else {
                        port as u64
                    };
                    edge_acc = edge_acc.wrapping_add(canon::mix(canon::combine(
                        canon::combine(self.label_key[u], self.label_key[v]),
                        ptag,
                    )));
                }
            }
            let f = start + delay;
            self.finish[v] = f;
            node_acc = node_acc.wrapping_add(canon::mix(self.label_key[v] ^ f.to_bits()));
        }
        canon::mix(canon::combine(
            canon::combine(nodes.len() as u64, edges),
            node_acc.wrapping_add(edge_acc),
        ))
    }
}

/// Cross-seed cache from cheap structural keys to canonical fingerprints.
///
/// The full WL fingerprint is needed only where a candidate's *identity*
/// leaves the explorer — provenance events keyed for the lifecycle
/// report. Each distinct cheap key pays for one pattern extraction and
/// one fingerprint; every repeat (the same shape at another seed or in
/// another growth order) is a hash-map hit. With provenance disabled the
/// memo is never consulted, so the hot path does zero fingerprint work.
#[derive(Debug, Default)]
pub(crate) struct FingerprintMemo {
    map: HashMap<u64, Fingerprint, canon::PremixedState>,
    scratch: canon::CanonScratch,
    /// Lookups answered from the cache.
    pub(crate) hits: u64,
    /// Lookups that had to extract and fingerprint a pattern.
    pub(crate) misses: u64,
}

impl FingerprintMemo {
    /// Canonical fingerprint of `nodes`, cached under its cheap key.
    /// `keys`/`comm` are the per-node label hashes and commutativity
    /// flags from the DFG's [`SubgraphEval`], so a miss skips the label
    /// string hashing too.
    pub(crate) fn lookup(
        &mut self,
        dfg: &Dfg,
        keys: &[u64],
        comm: &[bool],
        nodes: &BitSet,
        cheap: u64,
    ) -> Fingerprint {
        if let Some(&fp) = self.map.get(&cheap) {
            self.hits += 1;
            return fp;
        }
        self.misses += 1;
        let pattern = extract_pattern(dfg, nodes);
        for v in nodes.iter() {
            self.scratch.base.push(canon::mix(keys[v]));
            self.scratch.comm.push(comm[v]);
        }
        let fp =
            canon::fingerprint_keys(&pattern, &canon::CanonConfig::default(), &mut self.scratch);
        self.map.insert(cheap, fp);
        fp
    }
}

/// True if the instruction may participate in a custom function unit.
pub(crate) fn node_eligible(dfg: &Dfg, v: usize, hw: &HwLibrary) -> bool {
    let inst = dfg.inst(v);
    !inst.opcode.is_custom() && hw.cost_of_inst(inst).is_some()
}

/// True if a candidate with these metrics may be *recorded* as a CFU
/// (structural constraints are strict at record time even when growth is
/// allowed to overshoot).
pub(crate) fn recordable(m: &FullMetrics, cfg: &ExploreConfig) -> bool {
    m.inputs <= cfg.max_inputs
        && m.outputs <= cfg.max_outputs
        && m.outputs >= 1
        && cfg.max_area.is_none_or(|cap| m.area <= cap)
}

/// True if growth may pass through a candidate with these metrics.
pub(crate) fn growable(m: &FullMetrics, cfg: &ExploreConfig) -> bool {
    m.inputs <= cfg.max_inputs.saturating_add(cfg.io_overshoot)
        && m.outputs <= cfg.max_outputs.saturating_add(cfg.io_overshoot)
        && cfg.max_area.is_none_or(|cap| m.area <= cap)
}

/// Explores one dataflow graph with the guided heuristic and returns the
/// deduplicated viable candidates plus search statistics.
///
/// # Example
///
/// ```
/// use isax_explore::{explore_dfg, ExploreConfig};
/// use isax_hwlib::HwLibrary;
/// use isax_ir::{function_dfgs, FunctionBuilder};
///
/// let mut fb = FunctionBuilder::new("f", 2);
/// let a = fb.param(0);
/// let b = fb.param(1);
/// let t = fb.and(a, b);
/// let u = fb.add(t, b);
/// fb.ret(&[u.into()]);
/// let dfg = &function_dfgs(&fb.finish())[0];
///
/// let r = explore_dfg(dfg, &HwLibrary::micron_018(), &ExploreConfig::default());
/// assert!(r.stats.examined >= 3); // two seeds + at least one grown candidate
/// ```
pub fn explore_dfg(dfg: &Dfg, hw: &HwLibrary, cfg: &ExploreConfig) -> ExploreResult {
    let mut meter = Meter::unlimited(Stage::Explore, 0);
    explore_dfg_metered(dfg, hw, cfg, &mut meter)
}

/// [`explore_dfg`] under a work-unit meter: one unit per candidate
/// examined, charged *before* the examination (so a budget of `B`
/// examines exactly `B` candidates). On exhaustion the walk stops and
/// the result — a sound subset of the unbudgeted result — is tagged
/// `truncated` in its stats. This is the single accounting path shared
/// by the guided walker, the naive walker's examination budget, and the
/// pipeline-wide [`Guard`].
pub fn explore_dfg_metered(
    dfg: &Dfg,
    hw: &HwLibrary,
    cfg: &ExploreConfig,
    meter: &mut Meter,
) -> ExploreResult {
    meter.touch();
    let slack_info = dfg.schedule_info(|i| hw.sw_latency_of(i));
    let n = dfg.len();
    let mut walker = Walker {
        dfg,
        cfg,
        slack_info: &slack_info,
        eval: SubgraphEval::new(dfg, hw),
        seen: HashSet::new(),
        fps: FingerprintMemo::default(),
        result: ExploreResult::default(),
        meter,
        prov_on: isax_prov::enabled(),
        prov_noted: HashSet::new(),
        nbrs: BitSet::with_capacity(n),
        nbr_buf: Vec::new(),
    };
    match cfg.beam_width {
        None => {
            for seed in 0..n {
                if walker.result.stats.truncated {
                    break;
                }
                if !walker.eval.eligible[seed] {
                    continue;
                }
                let nodes: BitSet = [seed].into_iter().collect();
                if let Some(m) = walker.eval.metrics(&nodes) {
                    walker.grow(nodes, m, None);
                }
            }
        }
        Some(width) => {
            let mut frontier = Vec::new();
            let mut seq = 0u64;
            for seed in 0..n {
                if !walker.eval.eligible[seed] {
                    continue;
                }
                let nodes: BitSet = [seed].into_iter().collect();
                if let Some(m) = walker.eval.metrics(&nodes) {
                    // Seeds are examined before any grown candidate, in
                    // seed order: they carry an infinite score and a
                    // sequence-number tiebreak.
                    frontier.push(BeamEntry {
                        score: f64::INFINITY,
                        seq,
                        nodes,
                        m,
                        via: None,
                    });
                    seq += 1;
                }
            }
            walker.run_beam(frontier, width, seq);
        }
    }
    walker.result.stats.memo_hits = walker.fps.hits;
    walker.result.stats.memo_misses = walker.fps.misses;
    walker.result
}

/// Explores every DFG of an application (e.g. all blocks of all
/// functions), stamping each candidate with the index of the DFG it was
/// found in and merging the statistics.
///
/// DFGs are independent, so they are explored in parallel (see
/// [`isax_graph::par`]); results are merged in DFG index order, so the
/// output is identical to the serial loop for any thread count.
pub fn explore_app(dfgs: &[Dfg], hw: &HwLibrary, cfg: &ExploreConfig) -> ExploreResult {
    let per_dfg = par::par_map_indexed(dfgs.len(), |i| {
        let _s = isax_trace::span("explore.dfg");
        let mut r = explore_dfg(&dfgs[i], hw, cfg);
        for c in &mut r.candidates {
            c.dfg = i;
        }
        r.prov.set_dfg(i);
        r
    });
    let mut out = ExploreResult::default();
    for r in per_dfg {
        out.merge(r);
    }
    out
}

/// [`explore_app`] under a [`Guard`]: each DFG gets its own meter (item
/// ordinal = DFG index), worker panics are contained per item, and any
/// truncation or contained fault comes back as a [`Degradation`] record
/// aggregated in DFG order.
///
/// With an inactive guard this dispatches straight to [`explore_app`] —
/// the historical code path, byte for byte.
pub fn explore_app_guarded(
    dfgs: &[Dfg],
    hw: &HwLibrary,
    cfg: &ExploreConfig,
    guard: &Guard,
) -> (ExploreResult, Vec<Degradation>) {
    if !guard.is_active() {
        return (explore_app(dfgs, hw, cfg), Vec::new());
    }
    let per_dfg = par::par_try_map_indexed(dfgs.len(), |i| {
        let _s = isax_trace::span("explore.dfg");
        let mut meter = guard.meter(Stage::Explore, i as u64);
        let mut r = explore_dfg_metered(&dfgs[i], hw, cfg, &mut meter);
        for c in &mut r.candidates {
            c.dfg = i;
        }
        r.prov.set_dfg(i);
        let degradation = meter.degradation(format!(
            "kept {} candidates from {} examined in dfg {}",
            r.candidates.len(),
            r.stats.examined,
            i
        ));
        (r, degradation)
    });
    let mut out = ExploreResult::default();
    let mut degradations = Vec::new();
    for (i, item) in per_dfg.into_iter().enumerate() {
        match item {
            Ok((r, d)) => {
                out.merge(r);
                degradations.extend(d);
            }
            Err(e) => {
                out.stats.truncated = true;
                degradations.push(if e.cancelled {
                    Degradation::cancelled(Stage::Explore, i as u64, e.message)
                } else {
                    Degradation::panicked(Stage::Explore, i as u64, e.message)
                });
            }
        }
    }
    (out, degradations)
}

/// One unexamined candidate waiting in a beam frontier.
struct BeamEntry {
    /// Guide-score total of the direction that produced it (seeds:
    /// `f64::INFINITY`, so they are always expanded first).
    score: f64,
    /// Creation order, the deterministic tiebreak for equal scores.
    seq: u64,
    nodes: BitSet,
    m: FullMetrics,
    via: Option<GuideScore>,
}

struct Walker<'a> {
    dfg: &'a Dfg,
    cfg: &'a ExploreConfig,
    slack_info: &'a SlackInfo,
    eval: SubgraphEval<'a>,
    seen: HashSet<BitSet>,
    fps: FingerprintMemo,
    result: ExploreResult,
    meter: &'a mut Meter,
    /// [`isax_prov::enabled`], hoisted once per walk.
    prov_on: bool,
    /// Cheap structural keys already given a provenance event of a given
    /// kind (`true` = discovered, `false` = pruned) in this walk.
    /// Provenance reports one event per shape per DFG; the repeat
    /// encounters stay counted in the stats, which the differential
    /// tests pin.
    prov_noted: HashSet<(u64, bool)>,
    /// Scratch mask for the growth frontier of the current candidate.
    nbrs: BitSet,
    /// Scratch list of frontier node indices, ascending.
    nbr_buf: Vec<usize>,
}

/// Copies a guide score into the provenance crate's dependency-free
/// mirror of it.
fn breakdown(s: &crate::guide::GuideScore) -> isax_prov::ScoreBreakdown {
    isax_prov::ScoreBreakdown {
        criticality: s.criticality,
        latency: s.latency,
        area: s.area,
        io: s.io,
    }
}

impl Walker<'_> {
    /// Depth-first growth, the historical traversal order: examine the
    /// candidate, then recurse into its surviving directions best first.
    fn grow(&mut self, nodes: BitSet, m: FullMetrics, via: Option<GuideScore>) {
        let Some(dirs) = self.examine(&nodes, m, via.as_ref()) else {
            return;
        };
        for (_, dir, nm, s) in dirs {
            self.grow(nodes.with(dir), nm, Some(s));
        }
    }

    /// Level-synchronous best-first growth: each round sorts the frontier
    /// of unexamined candidates by guide score (descending, creation
    /// order as tiebreak), drops everything beyond the beam width as
    /// pruned directions, and examines the survivors, collecting their
    /// children into the next frontier.
    ///
    /// With `width = usize::MAX` nothing is ever dropped and the walk
    /// examines exactly the candidate set of the depth-first order
    /// (reachability with seen-dedup is traversal-order independent) —
    /// pinned by the beam-equivalence proptest.
    fn run_beam(&mut self, mut frontier: Vec<BeamEntry>, width: usize, mut seq: u64) {
        while !frontier.is_empty() && !self.result.stats.truncated {
            frontier.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.seq.cmp(&b.seq))
            });
            if frontier.len() > width {
                self.result.stats.directions_pruned += (frontier.len() - width) as u64;
                if self.prov_on {
                    for e in frontier.iter().skip(width) {
                        // Seeds carry no guide score; a dropped seed is
                        // counted but not reported (there is no score to
                        // explain the cut with).
                        if let Some(s) = &e.via {
                            self.note_pruned(&e.nodes, s, isax_prov::PruneReason::BeamDropped);
                        }
                    }
                }
                frontier.truncate(width);
            }
            let mut next: Vec<BeamEntry> = Vec::new();
            for e in frontier {
                if self.result.stats.truncated {
                    break;
                }
                let Some(dirs) = self.examine(&e.nodes, e.m, e.via.as_ref()) else {
                    continue;
                };
                for (total, dir, nm, s) in dirs {
                    next.push(BeamEntry {
                        score: total,
                        seq,
                        nodes: e.nodes.with(dir),
                        m: nm,
                        via: Some(s),
                    });
                    seq += 1;
                }
            }
            frontier = next;
        }
    }

    /// Examines one candidate: dedup against `seen`, charge the meter,
    /// record it if viable, then score every growth direction. Returns
    /// `None` when the candidate was skipped (already seen, or the walk
    /// is out of budget), otherwise the surviving directions best first
    /// as `(total, direction node, grown metrics, score)`.
    fn examine(
        &mut self,
        nodes: &BitSet,
        m: FullMetrics,
        via: Option<&GuideScore>,
    ) -> Option<Vec<(f64, usize, FullMetrics, GuideScore)>> {
        if self.result.stats.truncated {
            return None;
        }
        if !self.seen.insert(nodes.clone()) {
            return None;
        }
        // One work unit per candidate examined, charged before the
        // examination: a budget of B stops after exactly B candidates.
        if !self.meter.charge(1) {
            self.result.stats.truncated = true;
            return None;
        }
        self.result.stats.note_examined(nodes.len());
        if recordable(&m, self.cfg) && self.dfg.is_convex(nodes) {
            self.result.stats.recorded += 1;
            if self.prov_on {
                let ck = self.eval.cheap_key(nodes);
                if self.prov_noted.insert((ck, true)) {
                    let fp = self.fps.lookup(
                        self.dfg,
                        &self.eval.label_key,
                        &self.eval.commutative,
                        nodes,
                        ck,
                    );
                    self.result.prov.record(
                        fp.0,
                        isax_prov::ProvEvent::Discovered {
                            dfg: 0, // stamped with the real index at the join point
                            size: nodes.len(),
                            delay: m.delay,
                            area: m.area,
                            inputs: m.inputs,
                            outputs: m.outputs,
                            score: via.map(breakdown),
                        },
                    );
                }
            }
            self.result.candidates.push(Candidate {
                dfg: 0,
                nodes: nodes.clone(),
                delay: m.delay,
                area: m.area,
                inputs: m.inputs,
                outputs: m.outputs,
            });
        }
        if nodes.len() >= self.cfg.max_nodes {
            return Some(Vec::new());
        }
        // Growth frontier: union of the members' adjacency masks, minus
        // the members — ascending, as `Dfg::neighbours` used to return.
        let mut nbr_buf = std::mem::take(&mut self.nbr_buf);
        nbr_buf.clear();
        self.nbrs.clear();
        for v in nodes.iter() {
            self.nbrs.union_with(&self.eval.adj[v]);
        }
        nbr_buf.extend(
            self.nbrs
                .iter()
                .filter(|&d| !nodes.contains(d) && self.eval.eligible[d]),
        );
        // Score every eligible direction.
        let old = m.as_guide();
        let mut dirs: Vec<(f64, usize, FullMetrics, GuideScore)> = Vec::new();
        for &dir in &nbr_buf {
            let grown = nodes.with(dir);
            let Some(nm) = self.eval.metrics(&grown) else {
                continue;
            };
            if !growable(&nm, self.cfg) {
                continue;
            }
            let s = score(&old, &nm.as_guide(), self.slack_info.slack[dir], self.cfg);
            if s.total() < self.cfg.threshold {
                self.result.stats.directions_pruned += 1;
                if self.prov_on {
                    self.note_pruned(&grown, &s, isax_prov::PruneReason::BelowThreshold);
                }
                continue;
            }
            dirs.push((s.total(), dir, nm, s));
        }
        self.nbr_buf = nbr_buf;
        // Best directions first; optionally cap the fanout — with the
        // adaptive taper tightening the cap once candidates grow large.
        dirs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut cap = self.cfg.max_fanout;
        if let Some(ts) = self.cfg.taper_size {
            if nodes.len() >= ts {
                cap = Some(cap.unwrap_or(usize::MAX).min(self.cfg.taper_fanout));
            }
        }
        if let Some(cap) = cap {
            if dirs.len() > cap {
                self.result.stats.directions_pruned += (dirs.len() - cap) as u64;
                if self.prov_on {
                    for &(_, dir, _, s) in dirs.iter().skip(cap) {
                        let grown = nodes.with(dir);
                        self.note_pruned(&grown, &s, isax_prov::PruneReason::FanoutCap);
                    }
                }
                dirs.truncate(cap);
            }
        }
        Some(dirs)
    }

    /// Records a `Pruned` event for a dropped growth direction, at most
    /// once per (shape, kind) per walk. Callers gate on `prov_on`, so a
    /// disabled run never computes the cheap key.
    fn note_pruned(&mut self, grown: &BitSet, s: &GuideScore, reason: isax_prov::PruneReason) {
        let ck = self.eval.cheap_key(grown);
        if self.prov_noted.insert((ck, false)) {
            let fp = self.fps.lookup(
                self.dfg,
                &self.eval.label_key,
                &self.eval.commutative,
                grown,
                ck,
            );
            self.result.prov.record(
                fp.0,
                isax_prov::ProvEvent::Pruned {
                    dfg: 0, // stamped with the real index at the join point
                    threshold: self.cfg.threshold,
                    score: breakdown(s),
                    reason,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::{function_dfgs, DfgLabel, FunctionBuilder};

    fn hw() -> HwLibrary {
        HwLibrary::micron_018()
    }

    /// A small encryption-flavoured kernel: two xor-shift-or "rotate"
    /// diamonds joined by an add.
    fn kernel_dfg() -> Dfg {
        let mut fb = FunctionBuilder::new("k", 3);
        let a = fb.param(0);
        let b = fb.param(1);
        let k = fb.param(2);
        let t = fb.xor(a, k); // 0
        let l = fb.shl(t, 5i64); // 1
        let r = fb.shr(t, 27i64); // 2
        let rot = fb.or(l, r); // 3
        let s = fb.add(rot, b); // 4
        let u = fb.and(s, 0xFFFFi64); // 5
        fb.ret(&[u.into()]);
        function_dfgs(&fb.finish()).remove(0)
    }

    #[test]
    fn finds_the_full_chain() {
        let dfg = kernel_dfg();
        let r = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        assert!(
            r.candidates.iter().any(|c| c.nodes.len() == 6),
            "the whole 6-node kernel is a viable 3-in/1-out candidate"
        );
        // Everything recorded satisfies the port constraints.
        for c in &r.candidates {
            assert!(c.inputs <= 5 && c.outputs <= 3);
            assert!(c.outputs >= 1);
        }
    }

    #[test]
    fn candidates_are_deduplicated() {
        let dfg = kernel_dfg();
        let r = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        let mut sets: Vec<_> = r.candidates.iter().map(|c| c.nodes.clone()).collect();
        let before = sets.len();
        sets.sort();
        sets.dedup();
        assert_eq!(sets.len(), before, "no duplicate node sets");
        assert_eq!(r.stats.recorded, before as u64);
    }

    #[test]
    fn memory_nodes_are_never_included() {
        let mut fb = FunctionBuilder::new("m", 2);
        let p = fb.param(0);
        let k = fb.param(1);
        let v = fb.ldw(p); // 0: load
        let t = fb.xor(v, k); // 1
        let u = fb.add(t, 1i64); // 2
        fb.stw(p, u); // 3: store
        fb.ret(&[]);
        let dfg = function_dfgs(&fb.finish()).remove(0);
        let r = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        for c in &r.candidates {
            assert!(!c.nodes.contains(0), "load excluded");
            assert!(!c.nodes.contains(3), "store excluded");
        }
        assert!(r.candidates.iter().any(|c| c.nodes.len() == 2));
    }

    #[test]
    fn area_cap_is_respected() {
        let dfg = kernel_dfg();
        let cfg = ExploreConfig {
            max_area: Some(0.3),
            ..ExploreConfig::default()
        };
        let r = explore_dfg(&dfg, &hw(), &cfg);
        assert!(!r.candidates.is_empty());
        for c in &r.candidates {
            assert!(c.area <= 0.3, "candidate area {} exceeds cap", c.area);
        }
    }

    #[test]
    fn fanout_cap_reduces_exploration() {
        let dfg = kernel_dfg();
        let full = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        let capped_cfg = ExploreConfig {
            max_fanout: Some(1),
            ..ExploreConfig::default()
        };
        let capped = explore_dfg(&dfg, &hw(), &capped_cfg);
        assert!(capped.stats.examined <= full.stats.examined);
    }

    #[test]
    fn max_nodes_limits_candidate_size() {
        let dfg = kernel_dfg();
        let cfg = ExploreConfig {
            max_nodes: 2,
            ..ExploreConfig::default()
        };
        let r = explore_dfg(&dfg, &hw(), &cfg);
        assert!(r.candidates.iter().all(|c| c.nodes.len() <= 2));
    }

    #[test]
    fn incremental_metrics_agree_with_fresh_metrics() {
        // Two structurally identical xor→shl pairs at different node
        // indices: the incremental evaluator must agree with the
        // from-scratch reference byte for byte on both embeddings.
        let mut fb = FunctionBuilder::new("m", 4);
        let a = fb.param(0);
        let b = fb.param(1);
        let c = fb.param(2);
        let d = fb.param(3);
        let t1 = fb.xor(a, b); // 0
        let s1 = fb.shl(t1, 3i64); // 1
        let t2 = fb.xor(c, d); // 2
        let s2 = fb.shl(t2, 3i64); // 3
        let j = fb.or(s1, s2); // 4
        fb.ret(&[j.into()]);
        let dfg = function_dfgs(&fb.finish()).remove(0);
        let hw = hw();
        let mut eval = SubgraphEval::new(&dfg, &hw);
        let first: BitSet = [0usize, 1].into_iter().collect();
        let second: BitSet = [2usize, 3].into_iter().collect();
        let m1 = eval.metrics(&first).unwrap();
        let m2 = eval.metrics(&second).unwrap();
        assert_eq!(m1, metrics_of(&dfg, &first, &hw).unwrap());
        assert_eq!(m2, metrics_of(&dfg, &second, &hw).unwrap());
        assert_eq!(m1.delay, m2.delay);
        assert_eq!(m1.area, m2.area);
        // Isomorphic embeddings share the cheap structural key, so the
        // fingerprint memo computes one fingerprint and serves the rest.
        let k1 = eval.cheap_key(&first);
        let k2 = eval.cheap_key(&second);
        assert_eq!(k1, k2, "same shape must share the cheap key");
        let mut memo = FingerprintMemo::default();
        let f1 = memo.lookup(&dfg, &eval.label_key, &eval.commutative, &first, k1);
        let f2 = memo.lookup(&dfg, &eval.label_key, &eval.commutative, &second, k2);
        assert_eq!((memo.hits, memo.misses), (1, 1), "same shape must hit");
        assert_eq!(f1, f2);
        // The cached fingerprint is the canonical one.
        let fresh = canon::fingerprint(
            &extract_pattern(&dfg, &second),
            DfgLabel::key,
            |l| l.opcode.is_commutative(),
            &canon::CanonConfig::default(),
        );
        assert_eq!(f2, fresh);
    }

    #[test]
    fn eval_ports_stay_per_node_set() {
        // Same pattern shape, different embedding: node 0 is also a block
        // output, so both members of {0,1} escape while only one member
        // of {2,3} does. The incremental evaluator computes ports per
        // embedding even though the shapes share delay/area and cheap key.
        let mut fb = FunctionBuilder::new("p", 2);
        let a = fb.param(0);
        let b = fb.param(1);
        let t1 = fb.xor(a, b); // 0   (escapes: block output)
        let s1 = fb.add(t1, b); // 1   (escapes: consumed by node 2)
        let t2 = fb.xor(s1, a); // 2
        let s2 = fb.add(t2, b); // 3   (escapes: block output)
        fb.ret(&[t1.into(), s2.into()]);
        let dfg = function_dfgs(&fb.finish()).remove(0);
        let hw = hw();
        let mut eval = SubgraphEval::new(&dfg, &hw);
        let first: BitSet = [0usize, 1].into_iter().collect();
        let second: BitSet = [2usize, 3].into_iter().collect();
        let m1 = eval.metrics(&first).unwrap();
        let m2 = eval.metrics(&second).unwrap();
        assert_eq!(
            eval.cheap_key(&first),
            eval.cheap_key(&second),
            "shapes are canonically equal"
        );
        assert_eq!(m1.delay, m2.delay);
        assert_eq!(m1.area, m2.area);
        assert_eq!(m1, metrics_of(&dfg, &first, &hw).unwrap());
        assert_eq!(m2, metrics_of(&dfg, &second, &hw).unwrap());
        assert_ne!(m1.outputs, m2.outputs, "embedding-specific ports");
    }

    #[test]
    fn width_aware_metrics_agree_and_shrink() {
        let mut dfg = kernel_dfg();
        // Pretend the analysis proved nodes 0..=3 are 8-bit and the rest
        // full width.
        let widths = [8u8, 8, 8, 8, 32, 32];
        dfg.set_widths(&widths);
        let hw = hw().with_width_aware(true);
        let mut eval = SubgraphEval::new(&dfg, &hw);
        let all: BitSet = (0usize..6).collect();
        let m = eval.metrics(&all).unwrap();
        assert_eq!(m, metrics_of(&dfg, &all, &hw).unwrap());
        // The narrow nodes shrink the totals versus the full-width query.
        let full = metrics_of(&dfg, &all, &HwLibrary::micron_018()).unwrap();
        assert!(m.area < full.area, "{} !< {}", m.area, full.area);
        // A width-aware library over a default (all-32) DFG changes
        // nothing: scaling only sees widths the analysis attached.
        let plain = kernel_dfg();
        let mut eval32 = SubgraphEval::new(&plain, &hw);
        assert_eq!(eval32.metrics(&all).unwrap(), full);
    }

    #[test]
    fn eval_rejects_unimplementable_shapes() {
        let mut fb = FunctionBuilder::new("u", 2);
        let p = fb.param(0);
        let q = fb.param(1);
        let v = fb.div(p, q); // 0: no hardware implementation
        fb.ret(&[v.into()]);
        let dfg = function_dfgs(&fb.finish()).remove(0);
        let hw = hw();
        let mut eval = SubgraphEval::new(&dfg, &hw);
        let nodes: BitSet = [0usize].into_iter().collect();
        assert!(eval.metrics(&nodes).is_none());
        assert!(eval.metrics(&nodes).is_none());
        assert!(metrics_of(&dfg, &nodes, &hw).is_none());
    }

    #[test]
    fn memo_counters_are_zero_without_provenance() {
        // The fingerprint memo fronts provenance identity only: a
        // prov-off exploration must never touch it.
        let dfg = kernel_dfg();
        let r = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        assert_eq!(r.stats.memo_hits, 0, "no fingerprint work on hot path");
        assert_eq!(r.stats.memo_misses, 0);
    }

    #[test]
    fn infinite_beam_examines_the_exhaustive_candidate_set() {
        let dfg = kernel_dfg();
        let dfs = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        let beam_cfg = ExploreConfig {
            beam_width: Some(usize::MAX),
            ..ExploreConfig::default()
        };
        let beam = explore_dfg(&dfg, &hw(), &beam_cfg);
        let mut a: Vec<_> = dfs.candidates.iter().map(|c| c.nodes.clone()).collect();
        let mut b: Vec<_> = beam.candidates.iter().map(|c| c.nodes.clone()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "beam ∞ must reach the same candidates");
        assert_eq!(dfs.stats.examined, beam.stats.examined);
        assert_eq!(dfs.stats.recorded, beam.stats.recorded);
        assert_eq!(dfs.stats.directions_pruned, beam.stats.directions_pruned);
        assert_eq!(dfs.stats.examined_by_size, beam.stats.examined_by_size);
    }

    #[test]
    fn narrow_beam_reduces_exploration_and_stays_sound() {
        let dfg = kernel_dfg();
        let full = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        let narrow_cfg = ExploreConfig {
            beam_width: Some(2),
            ..ExploreConfig::default()
        };
        let narrow = explore_dfg(&dfg, &hw(), &narrow_cfg);
        assert!(narrow.stats.examined <= full.stats.examined);
        let full_sets: HashSet<_> = full.candidates.iter().map(|c| c.nodes.clone()).collect();
        for c in &narrow.candidates {
            assert!(full_sets.contains(&c.nodes), "beam invented a candidate");
        }
    }

    #[test]
    fn metered_explore_stops_after_exactly_budget_candidates() {
        let dfg = kernel_dfg();
        let full = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        assert!(!full.stats.truncated);
        let budget = full.stats.examined / 2;
        let mut meter = Meter::with_limit(Stage::Explore, 0, budget);
        let partial = explore_dfg_metered(&dfg, &hw(), &ExploreConfig::default(), &mut meter);
        assert!(partial.stats.truncated);
        assert_eq!(partial.stats.examined, budget);
        assert_eq!(meter.spent(), budget);
        // The partial candidate set is a subset of the full one.
        let full_sets: HashSet<_> = full.candidates.iter().map(|c| c.nodes.clone()).collect();
        for c in &partial.candidates {
            assert!(full_sets.contains(&c.nodes));
        }
    }

    #[test]
    fn metered_beam_stops_after_exactly_budget_candidates() {
        let dfg = kernel_dfg();
        let cfg = ExploreConfig {
            beam_width: Some(usize::MAX),
            ..ExploreConfig::default()
        };
        let full = explore_dfg(&dfg, &hw(), &cfg);
        assert!(!full.stats.truncated);
        let budget = full.stats.examined / 2;
        let mut meter = Meter::with_limit(Stage::Explore, 0, budget);
        let partial = explore_dfg_metered(&dfg, &hw(), &cfg, &mut meter);
        assert!(partial.stats.truncated);
        assert_eq!(partial.stats.examined, budget);
        assert_eq!(meter.spent(), budget);
    }

    #[test]
    fn inactive_guard_takes_the_legacy_path_and_reports_nothing() {
        let dfgs = vec![kernel_dfg(), kernel_dfg()];
        let plain = explore_app(&dfgs, &hw(), &ExploreConfig::default());
        let (guarded, degradations) =
            explore_app_guarded(&dfgs, &hw(), &ExploreConfig::default(), &Guard::unlimited());
        assert!(degradations.is_empty());
        assert_eq!(plain.candidates, guarded.candidates);
        assert_eq!(plain.stats, guarded.stats);
    }

    #[test]
    fn active_guard_with_huge_budget_matches_the_legacy_path() {
        let dfgs = vec![kernel_dfg(), kernel_dfg()];
        let plain = explore_app(&dfgs, &hw(), &ExploreConfig::default());
        let guard = Guard::unlimited().with_units(u64::MAX / 2);
        let (guarded, degradations) =
            explore_app_guarded(&dfgs, &hw(), &ExploreConfig::default(), &guard);
        assert!(degradations.is_empty());
        assert_eq!(plain.candidates, guarded.candidates);
        assert_eq!(plain.stats, guarded.stats);
    }

    #[test]
    fn guarded_explore_reports_per_dfg_budget_degradations_in_order() {
        let dfgs = vec![kernel_dfg(), kernel_dfg(), kernel_dfg()];
        let guard = Guard::unlimited().with_units(3);
        let (r, degradations) =
            explore_app_guarded(&dfgs, &hw(), &ExploreConfig::default(), &guard);
        assert!(r.stats.truncated);
        assert_eq!(degradations.len(), 3, "every dfg exhausted its meter");
        for (i, d) in degradations.iter().enumerate() {
            assert_eq!(d.stage, Stage::Explore);
            assert_eq!(d.item, i as u64);
            assert_eq!(d.units_spent, 3);
            assert_eq!(d.limit, Some(3));
        }
        assert_eq!(
            r.stats.examined, 9,
            "3 units per dfg, charged pre-examination"
        );
    }

    #[test]
    fn guide_prunes_against_naive_on_wide_graphs() {
        // A long cheap critical chain with expensive, high-slack multiply
        // fingers hanging off it: growing into the multiplies loses on
        // every guide category, so the guided walk examines fewer
        // candidates than the exhaustive search.
        let mut fb = FunctionBuilder::new("wide", 6);
        let mut acc = fb.param(0);
        let mut tap = None;
        for i in 0..30 {
            let p = fb.param(i % 6);
            acc = fb.xor(acc, p);
            if i == 2 {
                tap = Some(acc);
            }
        }
        // A chain of multiplies off an early tap: every entry into a
        // multi-multiply subgraph loses badly on latency and area, and the
        // long xor chain gives the multiplies plenty of slack.
        let mut m = tap.unwrap();
        for j in 0..4 {
            let p = fb.param(2 + j);
            m = fb.mul(m, p);
        }
        let merged = fb.xor(acc, m);
        fb.ret(&[merged.into()]);
        let dfg = function_dfgs(&fb.finish()).remove(0);
        let guided = explore_dfg(&dfg, &hw(), &ExploreConfig::default());
        let naive = crate::naive::explore_dfg_naive(&dfg, &hw(), &ExploreConfig::default(), None);
        assert!(
            guided.stats.examined < naive.stats.examined,
            "guided {} !< naive {}",
            guided.stats.examined,
            naive.stats.examined
        );
        assert!(guided.stats.directions_pruned > 0);
        // And guided candidates are a subset of naive's.
        let naive_sets: std::collections::HashSet<_> =
            naive.candidates.iter().map(|c| c.nodes.clone()).collect();
        for c in &guided.candidates {
            assert!(naive_sets.contains(&c.nodes));
        }
    }
}
