//! External constraints and tuning knobs for exploration.

/// Per-category guide-function weights. The paper: "each of the guide
/// function categories is allotted 10 points of weight ... Many
/// experiments have been performed varying the weights of each of these
/// factors and they point to the general conclusion that evenly balancing
/// the factors yields the best candidates" — the `guide_ablation` bench
/// regenerates that experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuideWeights {
    /// Points for on-critical-path directions.
    pub criticality: f64,
    /// Points for latency-preserving directions.
    pub latency: f64,
    /// Points for area-preserving directions.
    pub area: f64,
    /// Points for port-preserving directions.
    pub io: f64,
}

impl Default for GuideWeights {
    fn default() -> Self {
        GuideWeights {
            criticality: 10.0,
            latency: 10.0,
            area: 10.0,
            io: 10.0,
        }
    }
}

impl GuideWeights {
    /// Total points available.
    pub fn total(&self) -> f64 {
        self.criticality + self.latency + self.area + self.io
    }
}

/// Externally defined constraints plus guide-function tuning.
///
/// Defaults mirror the paper's evaluation setup: five input and three
/// output ports, ten points per guide category, and the half-of-total
/// acceptance threshold.
///
/// # Example
///
/// ```
/// use isax_explore::ExploreConfig;
///
/// let cfg = ExploreConfig::default();
/// assert_eq!(cfg.max_inputs, 5);
/// assert_eq!(cfg.max_outputs, 3);
/// assert_eq!(cfg.threshold, 20.0);
///
/// // The §3.2 validation experiment uses tighter constraints:
/// let tight = ExploreConfig {
///     max_inputs: 3,
///     max_outputs: 2,
///     max_area: Some(5.0),
///     ..ExploreConfig::default()
/// };
/// assert_eq!(tight.max_area, Some(5.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreConfig {
    /// Maximum register-file read ports a CFU may use (paper: 5).
    pub max_inputs: usize,
    /// Maximum register-file write ports a CFU may use (paper: 3).
    pub max_outputs: usize,
    /// Optional per-CFU area cap in adder units ("the maximum die area
    /// allowed for any custom function unit"). `None` leaves size to the
    /// selection budget — used by the limit study.
    pub max_area: Option<f64>,
    /// Safety cap on candidate node count.
    pub max_nodes: usize,
    /// Points allotted to each guide category (paper: 10 apiece).
    pub weights: GuideWeights,
    /// Minimum total score for a direction to be explored (paper: half of
    /// the total desirability points, i.e. 20 of 40).
    pub threshold: f64,
    /// Optional cap on how many directions are followed per growth step
    /// ("arbitrary control on the fanout from seeds"). `None` explores
    /// every direction that clears the threshold.
    pub max_fanout: Option<usize>,
    /// Adaptive fanout: once a candidate reaches this size, only the best
    /// [`ExploreConfig::taper_fanout`] directions are followed. This is
    /// the paper's "higher fanout ... at the initial levels of the search
    /// and then more tightly constrain the number of growth directions as
    /// the candidates increase in size" — the mechanism that keeps very
    /// large (e.g. unrolled) blocks tractable. `None` disables tapering.
    pub taper_size: Option<usize>,
    /// Directions followed per step once the taper engages.
    pub taper_fanout: usize,
    /// How far the inputs/outputs may transiently exceed the port limits
    /// *during* growth (candidates are only recorded within limits, but
    /// reconvergent shapes can dip back under after exceeding them).
    pub io_overshoot: usize,
    /// Beam-ordered growth: keep at most this many unexamined candidates
    /// per frontier level, expanding the best-scored ones first, so a
    /// bounded examination budget is spent on the most promising shapes.
    /// `None` (the default) is the exhaustive depth-first walk; a beam of
    /// `usize::MAX` examines the same candidate set as `None` (proven by
    /// the equivalence proptests), just in breadth-first order.
    pub beam_width: Option<usize>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_inputs: 5,
            max_outputs: 3,
            max_area: None,
            max_nodes: 48,
            weights: GuideWeights::default(),
            threshold: 20.0,
            max_fanout: None,
            taper_size: None,
            taper_fanout: 2,
            io_overshoot: 0,
            beam_width: None,
        }
    }
}

impl ExploreConfig {
    /// The unconstrained configuration of the paper's limit study:
    /// "infinite register file ports, an infinite area budget". A fanout
    /// taper keeps the unbounded space tractable, exactly as the paper's
    /// adaptive-fanout discussion prescribes.
    pub fn unconstrained() -> Self {
        ExploreConfig {
            max_inputs: usize::MAX,
            max_outputs: usize::MAX,
            max_area: None,
            max_nodes: 128,
            // Full enumeration up to four operations, then hill-climb the
            // single best direction: wide reconvergent blocks (the DCTs)
            // otherwise branch exponentially even under a small fanout.
            taper_size: Some(4),
            taper_fanout: 1,
            // Keep the guide; the limit is on constraints, not on search
            // intelligence.
            ..ExploreConfig::default()
        }
    }

    /// Total desirability points available (four categories).
    pub fn total_points(&self) -> f64 {
        self.weights.total()
    }

    /// Replaces the guide weights, rescaling the acceptance threshold to
    /// stay at the same fraction of the total.
    pub fn with_weights(mut self, weights: GuideWeights) -> Self {
        let fraction = self.threshold / self.total_points();
        self.weights = weights;
        self.threshold = fraction * self.weights.total();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ExploreConfig::default();
        assert_eq!(c.total_points(), 40.0);
        assert_eq!(c.threshold, c.total_points() / 2.0);
        assert!(c.max_fanout.is_none());
    }

    #[test]
    fn unconstrained_removes_port_limits() {
        let c = ExploreConfig::unconstrained();
        assert_eq!(c.max_inputs, usize::MAX);
        assert_eq!(c.max_outputs, usize::MAX);
        assert!(c.max_area.is_none());
        assert!(c.max_nodes > ExploreConfig::default().max_nodes);
    }
}
