//! Dataflow-graph design-space exploration: the paper's core contribution.
//!
//! Candidate discovery examines subgraphs of an application's dataflow
//! graph as potential custom function units. Done naively, each of the
//! `2^N` node subsets is a candidate; this crate implements the paper's
//! answer — grow candidates outward from every seed node, but rank each
//! possible growth **direction** with a [`guide`] function (criticality,
//! latency, area, input/output; ten points each) and refuse directions
//! scoring below half the total. Pruning *directions* rather than
//! *candidates* keeps alive low-ranked candidates that may yet grow into
//! useful ones, which is the paper's stated improvement over Sun et al.
//!
//! The [`naive`] module implements the unguided exponential search used as
//! the comparison baseline in Figure 3 and as the oracle in the §3.2
//! validation experiment ("both approaches selected identical sets of
//! candidates").
//!
//! # Example
//!
//! ```
//! use isax_explore::{explore_dfg, ExploreConfig};
//! use isax_hwlib::HwLibrary;
//! use isax_ir::{function_dfgs, FunctionBuilder};
//!
//! let mut fb = FunctionBuilder::new("kernel", 2);
//! let a = fb.param(0);
//! let b = fb.param(1);
//! let t = fb.xor(a, b);
//! let u = fb.shl(t, 3i64);
//! let v = fb.add(u, b);
//! fb.ret(&[v.into()]);
//! let f = fb.finish();
//! let dfg = &function_dfgs(&f)[0];
//!
//! let hw = HwLibrary::micron_018();
//! let result = explore_dfg(dfg, &hw, &ExploreConfig::default());
//! // The full xor-shl-add chain is among the candidates.
//! assert!(result.candidates.iter().any(|c| c.nodes.len() == 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidate;
pub mod config;
pub mod grow;
pub mod guide;
pub mod naive;

pub use candidate::{Candidate, ExploreResult, ExploreStats};
pub use config::{ExploreConfig, GuideWeights};
pub use grow::{
    explore_app, explore_app_guarded, explore_dfg, explore_dfg_metered, metrics_of, FullMetrics,
    SubgraphEval,
};
pub use guide::{score_direction, GuideScore};
pub use naive::explore_dfg_naive;
