//! Candidate subgraphs and exploration results.

use isax_graph::{BitSet, DiGraph};
use isax_hwlib::HwLibrary;
use isax_ir::{Dfg, DfgLabel};

/// A candidate subgraph discovered in one dataflow graph, annotated with
/// the hardware-library estimates the later stages need.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Index of the DFG (block) this candidate lives in, in the order the
    /// caller supplied the DFGs.
    pub dfg: usize,
    /// The instruction indices forming the subgraph.
    pub nodes: BitSet,
    /// Critical-path delay through the subgraph, in cycle fractions.
    pub delay: f64,
    /// Summed area, in adder units.
    pub area: f64,
    /// Register input ports required.
    pub inputs: usize,
    /// Register output ports required.
    pub outputs: usize,
}

impl Candidate {
    /// Builds the candidate's pattern graph: nodes in ascending
    /// instruction order, data edges only, labelled with opcode and
    /// hardwired immediates.
    pub fn pattern(&self, dfg: &Dfg) -> DiGraph<DfgLabel> {
        extract_pattern(dfg, &self.nodes)
    }

    /// Software-side cycle estimate for one execution of the subgraph:
    /// the non-memory operations issue one per cycle through the single
    /// integer slot, so their baseline latencies sum. Loads (present only
    /// under the §6 memory relaxation) contribute **nothing**: in the
    /// baseline they occupy the parallel memory slot, and a load-bearing
    /// unit still reserves that port for the same number of cycles — the
    /// port balance is neutral, so counting load latency as savings would
    /// systematically overvalue memory units (measured: it costs blowfish
    /// a third of its speedup).
    pub fn sw_cycles(&self, dfg: &Dfg, hw: &HwLibrary) -> u32 {
        self.nodes
            .iter()
            .map(|v| {
                let inst = dfg.inst(v);
                if inst.opcode.is_load() {
                    0
                } else {
                    hw.sw_latency_of(inst)
                }
            })
            .sum()
    }

    /// Hardware cycles when implemented as a pipelined CFU.
    pub fn hw_cycles(&self, hw: &HwLibrary) -> u32 {
        hw.cfu_cycles(self.delay)
    }
}

/// Builds the pattern graph of an arbitrary node set.
pub fn extract_pattern(dfg: &Dfg, nodes: &BitSet) -> DiGraph<DfgLabel> {
    let order: Vec<usize> = nodes.iter().collect();
    let mut g = DiGraph::with_capacity(order.len());
    for &v in &order {
        g.add_node(dfg.label(v));
    }
    let pos = |v: usize| order.iter().position(|&x| x == v).map(|i| i as u32);
    for &v in &order {
        for &(u, port) in dfg.data_preds(v) {
            if let (Some(su), Some(sv)) = (pos(u), pos(v)) {
                g.add_edge(isax_graph::NodeId(su), isax_graph::NodeId(sv), port);
            }
        }
    }
    g
}

/// Counters reported by an exploration run; the raw material of Figure 3.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct candidate subgraphs examined (the y-axis of Figure 3).
    pub examined: u64,
    /// Candidates recorded as viable CFUs (within I/O and area limits,
    /// convex).
    pub recorded: u64,
    /// `examined_by_size[k]` = candidates of `k` nodes examined.
    pub examined_by_size: Vec<u64>,
    /// Growth directions rejected by the guide function.
    pub directions_pruned: u64,
    /// Canonical-fingerprint lookups answered by the cheap-key memo
    /// (only provenance identity consults it; 0 with provenance off).
    pub memo_hits: u64,
    /// Canonical-fingerprint lookups that had to extract and fingerprint
    /// a pattern — one per distinct candidate shape encountered.
    pub memo_misses: u64,
    /// True if the search hit its examination budget and stopped early.
    pub truncated: bool,
}

impl ExploreStats {
    pub(crate) fn note_examined(&mut self, size: usize) {
        self.examined += 1;
        if self.examined_by_size.len() <= size {
            self.examined_by_size.resize(size + 1, 0);
        }
        self.examined_by_size[size] += 1;
    }

    /// Merges another run's counters into this one (used to aggregate over
    /// the blocks of a program).
    pub fn merge(&mut self, other: &ExploreStats) {
        self.examined += other.examined;
        self.recorded += other.recorded;
        self.directions_pruned += other.directions_pruned;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.truncated |= other.truncated;
        if self.examined_by_size.len() < other.examined_by_size.len() {
            self.examined_by_size
                .resize(other.examined_by_size.len(), 0);
        }
        for (i, &v) in other.examined_by_size.iter().enumerate() {
            self.examined_by_size[i] += v;
        }
    }
}

/// Everything an exploration run produces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExploreResult {
    /// The viable candidates, deduplicated by node set.
    pub candidates: Vec<Candidate>,
    /// Search statistics.
    pub stats: ExploreStats,
    /// Provenance events (`Discovered`/`Pruned`), non-empty only when
    /// [`isax_prov::enabled`] was set during the walk. Merged at join
    /// points in input order, like the stats.
    pub prov: isax_prov::ProvLog,
}

impl ExploreResult {
    /// Merges another result (e.g. from the next block) into this one.
    pub fn merge(&mut self, mut other: ExploreResult) {
        self.candidates.append(&mut other.candidates);
        self.stats.merge(&other.stats);
        self.prov.merge(other.prov);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::{function_dfgs, FunctionBuilder, Opcode};

    fn sample_dfg() -> Dfg {
        let mut fb = FunctionBuilder::new("f", 2);
        let a = fb.param(0);
        let b = fb.param(1);
        let t = fb.xor(a, b); // 0
        let u = fb.shl(t, 3i64); // 1
        let v = fb.add(u, b); // 2
        fb.ret(&[v.into()]);
        function_dfgs(&fb.finish()).remove(0)
    }

    #[test]
    fn pattern_extraction_preserves_ports_and_imms() {
        let dfg = sample_dfg();
        let nodes: BitSet = [0usize, 1, 2].into_iter().collect();
        let g = extract_pattern(&dfg, &nodes);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g[isax_graph::NodeId(1)].opcode, Opcode::Shl);
        assert_eq!(g[isax_graph::NodeId(1)].imms, vec![(1, 3)]);
        assert!(g.has_edge_on_port(isax_graph::NodeId(1), isax_graph::NodeId(2), 0));
    }

    #[test]
    fn sw_and_hw_cycles() {
        let dfg = sample_dfg();
        let hw = HwLibrary::micron_018();
        let nodes: BitSet = [0usize, 1, 2].into_iter().collect();
        let g = extract_pattern(&dfg, &nodes);
        let c = Candidate {
            dfg: 0,
            delay: hw.subgraph_delay(&g).unwrap(),
            area: hw.subgraph_area(&g).unwrap(),
            inputs: dfg.input_count(&nodes),
            outputs: dfg.output_count(&nodes),
            nodes,
        };
        assert_eq!(c.sw_cycles(&dfg, &hw), 3);
        assert_eq!(c.hw_cycles(&hw), 1, "xor+wire-shift+add fits in a cycle");
        assert_eq!(c.inputs, 2);
        assert_eq!(c.outputs, 1);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = ExploreStats::default();
        a.note_examined(1);
        a.note_examined(2);
        let mut b = ExploreStats::default();
        b.note_examined(2);
        b.recorded = 5;
        a.merge(&b);
        assert_eq!(a.examined, 3);
        assert_eq!(a.recorded, 5);
        assert_eq!(a.examined_by_size[2], 2);
    }
}
