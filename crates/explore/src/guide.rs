//! The guide function: heuristic ranking of candidate growth directions.
//!
//! "The guide function essentially tries to replace the architect by making
//! design decisions" (§3.2). Four categories score each direction, each
//! worth `category_weight` (ten) points:
//!
//! * **criticality** — `10 / (slack + 1)`: reward directions on or near the
//!   critical path;
//! * **latency** — `old/new × 10` over the candidate's critical-path
//!   delay: reward cheap (combinable) operations;
//! * **area** — `old/new × 10` with both areas rounded **up** to the
//!   nearest half adder, so tiny seeds are not penalized unfairly;
//! * **input/output** — `min(old/new × 10, 10)` over the port sum: reward
//!   directions that do not consume scarce register ports (reconvergence
//!   can even reduce ports, hence the `min`).

use crate::config::ExploreConfig;
use isax_hwlib::{round_up_half_adder, HwLibrary};
use isax_ir::{Dfg, SlackInfo};

/// The per-category and total score of one growth direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuideScore {
    /// Criticality points (`10/(slack+1)`).
    pub criticality: f64,
    /// Latency points (`old/new × 10`).
    pub latency: f64,
    /// Area points (`old/new × 10`, half-adder rounded).
    pub area: f64,
    /// I/O points (`min(old/new × 10, 10)`).
    pub io: f64,
}

impl GuideScore {
    /// Sum of the four categories.
    pub fn total(&self) -> f64 {
        self.criticality + self.latency + self.area + self.io
    }
}

/// Pre-computed candidate metrics the scorer compares against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateMetrics {
    /// Critical-path delay (cycle fractions).
    pub delay: f64,
    /// Area (adders).
    pub area: f64,
    /// Input + output port count.
    pub ports: usize,
}

/// Scores growing the candidate (described by `old`) toward direction
/// node metrics `new`; `slack` is the direction node's schedule slack.
///
/// # Example
///
/// ```
/// use isax_explore::guide::{score, CandidateMetrics};
/// use isax_explore::ExploreConfig;
///
/// let cfg = ExploreConfig::default();
/// let old = CandidateMetrics { delay: 0.15, area: 0.24, ports: 3 };
/// // Growing toward a zero-slack, zero-delay wire shift that adds no port:
/// let new = CandidateMetrics { delay: 0.15, area: 0.26, ports: 3 };
/// let s = score(&old, &new, 0, &cfg);
/// assert_eq!(s.criticality, 10.0);
/// assert_eq!(s.latency, 10.0);
/// assert_eq!(s.io, 10.0);
/// assert!(s.total() > cfg.threshold);
/// ```
pub fn score(
    old: &CandidateMetrics,
    new: &CandidateMetrics,
    slack: u32,
    cfg: &ExploreConfig,
) -> GuideScore {
    let w = &cfg.weights;
    let criticality = w.criticality / (slack as f64 + 1.0);
    let latency = if new.delay <= 0.0 {
        w.latency
    } else {
        (old.delay / new.delay) * w.latency
    };
    let (oa, na) = (round_up_half_adder(old.area), round_up_half_adder(new.area));
    let area = if na <= 0.0 {
        w.area
    } else {
        (oa / na) * w.area
    };
    let io = ((old.ports as f64 / new.ports.max(1) as f64) * w.io).min(w.io);
    GuideScore {
        criticality,
        latency,
        area,
        io,
    }
}

/// Convenience wrapper: scores growing candidate `nodes` (with metrics
/// `old`) toward DFG node `dir`, computing the new metrics from the
/// hardware library. Returns `None` if the grown subgraph is not
/// implementable (should not happen for eligible directions).
#[allow(clippy::too_many_arguments)]
pub fn score_direction(
    dfg: &Dfg,
    nodes: &isax_graph::BitSet,
    old: &CandidateMetrics,
    dir: usize,
    slack_info: &SlackInfo,
    hw: &HwLibrary,
    cfg: &ExploreConfig,
) -> Option<(GuideScore, CandidateMetrics)> {
    let grown = nodes.with(dir);
    let pattern = crate::candidate::extract_pattern(dfg, &grown);
    let delay = hw.subgraph_delay(&pattern)?;
    let area = hw.subgraph_area(&pattern)?;
    let ports = dfg.input_count(&grown) + dfg.output_count(&grown);
    let new = CandidateMetrics { delay, area, ports };
    Some((score(old, &new, slack_info.slack[dir], cfg), new))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExploreConfig {
        ExploreConfig::default()
    }

    #[test]
    fn criticality_follows_paper_examples() {
        // "node 1 would get 10/(0+1) = 10 points and node 9 would get
        //  10/(2+1) = 3.33 points"
        let m = CandidateMetrics {
            delay: 0.1,
            area: 0.1,
            ports: 2,
        };
        let s0 = score(&m, &m, 0, &cfg());
        assert!((s0.criticality - 10.0).abs() < 1e-9);
        let s2 = score(&m, &m, 2, &cfg());
        assert!((s2.criticality - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn latency_follows_paper_examples() {
        // "candidate 4-6 ... 0.15 cycles. Exploring the direction of node
        //  1, which has a latency of 0.3 cycles, would get
        //  0.15/(0.15+0.30)*10 = 3.3 points"
        let old = CandidateMetrics {
            delay: 0.15,
            area: 0.5,
            ports: 2,
        };
        let new = CandidateMetrics {
            delay: 0.45,
            area: 1.5,
            ports: 2,
        };
        let s = score(&old, &new, 0, &cfg());
        assert!((s.latency - 10.0 * 0.15 / 0.45).abs() < 1e-9);
        // "growing toward node 10 we would get nearly all
        //  (0.15/(0.15+0)*10 = 10) the points"
        let free = CandidateMetrics {
            delay: 0.15,
            area: 0.52,
            ports: 2,
        };
        let s = score(&old, &free, 0, &cfg());
        assert!((s.latency - 10.0).abs() < 1e-9);
    }

    #[test]
    fn area_rounding_protects_small_seeds() {
        // Without rounding 0.02/0.18 would score 1.1; with rounding both
        // round to 0.5 and the direction gets full area points.
        let old = CandidateMetrics {
            delay: 0.0,
            area: 0.02,
            ports: 2,
        };
        let new = CandidateMetrics {
            delay: 0.05,
            area: 0.18,
            ports: 2,
        };
        let s = score(&old, &new, 0, &cfg());
        assert!((s.area - 10.0).abs() < 1e-9);
        // Larger candidates do feel area growth.
        let old = CandidateMetrics {
            delay: 0.3,
            area: 1.0,
            ports: 2,
        };
        let new = CandidateMetrics {
            delay: 0.6,
            area: 2.0,
            ports: 2,
        };
        let s = score(&old, &new, 0, &cfg());
        assert!((s.area - 5.0).abs() < 1e-9);
    }

    #[test]
    fn io_follows_paper_examples() {
        // "growing toward node 14 would not increase the number of inputs
        //  or outputs, yielding ... points" — the paper's 2/(2+1) example
        // counts the port total before/after; reproducing the formula:
        let old = CandidateMetrics {
            delay: 0.1,
            area: 0.2,
            ports: 2,
        };
        let worse = CandidateMetrics {
            delay: 0.1,
            area: 0.2,
            ports: 3,
        };
        let s = score(&old, &worse, 0, &cfg());
        assert!((s.io - 10.0 * 2.0 / 3.0).abs() < 1e-9);
        let much_worse = CandidateMetrics {
            delay: 0.1,
            area: 0.2,
            ports: 5,
        };
        let s = score(&old, &much_worse, 0, &cfg());
        assert!((s.io - 4.0).abs() < 1e-9);
    }

    #[test]
    fn io_is_capped_when_ports_shrink() {
        // Reconvergence can reduce ports; the score is capped at 10.
        let old = CandidateMetrics {
            delay: 0.1,
            area: 0.2,
            ports: 4,
        };
        let better = CandidateMetrics {
            delay: 0.1,
            area: 0.2,
            ports: 2,
        };
        let s = score(&old, &better, 0, &cfg());
        assert_eq!(s.io, 10.0);
    }

    #[test]
    fn total_sums_categories() {
        let old = CandidateMetrics {
            delay: 0.1,
            area: 0.4,
            ports: 2,
        };
        let new = CandidateMetrics {
            delay: 0.2,
            area: 0.9,
            ports: 3,
        };
        let s = score(&old, &new, 1, &cfg());
        let expect = s.criticality + s.latency + s.area + s.io;
        assert!((s.total() - expect).abs() < 1e-12);
    }

    #[test]
    fn off_path_expensive_directions_fail_threshold() {
        // A high-slack, delay-doubling, port-increasing direction should
        // fall below the half-of-total threshold.
        let old = CandidateMetrics {
            delay: 0.3,
            area: 1.0,
            ports: 3,
        };
        let new = CandidateMetrics {
            delay: 0.9,
            area: 3.0,
            ports: 6,
        };
        let s = score(&old, &new, 5, &cfg());
        assert!(s.total() < cfg().threshold, "total {}", s.total());
    }
}
