//! Provenance-mode counter contracts for the explorer.
//!
//! The canonical-fingerprint memo exists *only* for provenance identity:
//! with recording enabled it answers one miss per distinct candidate
//! shape and hits on every repeat encounter, and those counters must not
//! depend on the traversal order (depth-first vs beam). The provenance
//! enable flag is process-global, so everything lives in one `#[test]`
//! in its own integration binary — unit tests in the library (which run
//! concurrently) never enable it.

use isax_explore::{explore_dfg, ExploreConfig};
use isax_hwlib::HwLibrary;
use isax_ir::{function_dfgs, Dfg, FunctionBuilder};

fn kernel_dfg() -> Dfg {
    let mut fb = FunctionBuilder::new("k", 3);
    let a = fb.param(0);
    let b = fb.param(1);
    let k = fb.param(2);
    let t = fb.xor(a, k);
    let l = fb.shl(t, 5i64);
    let r = fb.shr(t, 27i64);
    let rot = fb.or(l, r);
    let s = fb.add(rot, b);
    let u = fb.and(s, 0xFFFFi64);
    fb.ret(&[u.into()]);
    function_dfgs(&fb.finish()).remove(0)
}

#[test]
fn prov_mode_memo_counters_are_live_and_order_independent() {
    let dfg = kernel_dfg();
    let hw = HwLibrary::micron_018();
    let cfg = ExploreConfig::default();

    // Baseline: provenance off, the memo is never consulted.
    let off = explore_dfg(&dfg, &hw, &cfg);
    assert_eq!((off.stats.memo_hits, off.stats.memo_misses), (0, 0));
    assert!(off.prov.events().is_empty());

    let _guard = isax_prov::enable();

    // Provenance on: one miss per distinct shape given an event, hits on
    // the repeat encounters, and one Discovered event per recorded shape.
    let dfs = explore_dfg(&dfg, &hw, &cfg);
    assert!(dfs.stats.memo_misses > 0, "distinct shapes must miss once");
    let discovered = dfs
        .prov
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, isax_prov::ProvEvent::Discovered { .. }))
        .count();
    assert!(discovered > 0);
    assert!(
        discovered as u64 <= dfs.stats.memo_misses,
        "every Discovered shape paid exactly one fingerprint miss"
    );
    // The candidate payloads themselves are unchanged by recording.
    assert_eq!(dfs.candidates, off.candidates);
    assert_eq!(dfs.stats.examined, off.stats.examined);
    assert_eq!(dfs.stats.recorded, off.stats.recorded);

    // Memo counters are functions of the *set* of encounters, not the
    // traversal order: an infinite beam (breadth-first) reproduces them.
    let beam = explore_dfg(
        &dfg,
        &hw,
        &ExploreConfig {
            beam_width: Some(usize::MAX),
            ..ExploreConfig::default()
        },
    );
    assert_eq!(beam.stats.memo_hits, dfs.stats.memo_hits);
    assert_eq!(beam.stats.memo_misses, dfs.stats.memo_misses);
    let beam_discovered = beam
        .prov
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, isax_prov::ProvEvent::Discovered { .. }))
        .count();
    assert_eq!(beam_discovered, discovered);
    // And the discovered fingerprints are the same set.
    let fps = |r: &isax_explore::ExploreResult| {
        let mut v: Vec<u64> = r
            .prov
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, isax_prov::ProvEvent::Discovered { .. }))
            .map(|&(fp, _)| fp)
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(fps(&dfs), fps(&beam));

    // A finite beam records BeamDropped prune events for what it cuts.
    let narrow = explore_dfg(
        &dfg,
        &hw,
        &ExploreConfig {
            beam_width: Some(1),
            ..ExploreConfig::default()
        },
    );
    assert!(narrow.stats.examined <= dfs.stats.examined);
    let dropped = narrow
        .prov
        .events()
        .iter()
        .filter(|(_, e)| {
            matches!(
                e,
                isax_prov::ProvEvent::Pruned {
                    reason: isax_prov::PruneReason::BeamDropped,
                    ..
                }
            )
        })
        .count();
    assert!(
        dropped > 0,
        "a width-1 beam on a branching kernel must drop directions"
    );
}
