//! Exploration invariants on random dataflow graphs.

use isax_explore::{explore_dfg, explore_dfg_naive, ExploreConfig};
use isax_hwlib::HwLibrary;
use isax_ir::{function_dfgs, Dfg, FunctionBuilder, VReg};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn random_dfg(ops: &[(usize, usize, i64)]) -> Dfg {
    let mut fb = FunctionBuilder::new("r", 4);
    let mut pool: Vec<VReg> = (0..4).map(|i| fb.param(i)).collect();
    for &(which, pick, imm) in ops {
        let a = pool[pick % pool.len()];
        let b = pool[(pick + 1) % pool.len()];
        let d = match which % 8 {
            0 => fb.add(a, b),
            1 => fb.xor(a, b),
            2 => fb.shl(a, (imm & 31).abs()),
            3 => fb.and(a, imm),
            4 => fb.sub(a, b),
            5 => fb.or(a, b),
            6 => fb.ldw(a),
            _ => fb.mul(a, b),
        };
        pool.push(d);
    }
    let last = *pool.last().unwrap();
    fb.ret(&[last.into()]);
    function_dfgs(&fb.finish()).remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(64))]

    /// The guided search never invents candidates: its recorded set is a
    /// subset of the exhaustive oracle's, and everything it records obeys
    /// the structural constraints.
    #[test]
    fn guided_is_a_sound_subset(
        ops in proptest::collection::vec((0usize..8, 0usize..6, -64i64..64), 2..22),
    ) {
        let dfg = random_dfg(&ops);
        let hw = HwLibrary::micron_018();
        let cfg = ExploreConfig::default();
        let guided = explore_dfg(&dfg, &hw, &cfg);
        let naive = explore_dfg_naive(&dfg, &hw, &cfg, Some(500_000));
        prop_assume!(!naive.stats.truncated);
        let nset: BTreeSet<Vec<usize>> = naive
            .candidates
            .iter()
            .map(|c| c.nodes.iter().collect())
            .collect();
        for c in &guided.candidates {
            let key: Vec<usize> = c.nodes.iter().collect();
            prop_assert!(nset.contains(&key), "guided-only candidate {key:?}");
            prop_assert!(c.inputs <= cfg.max_inputs);
            prop_assert!(c.outputs >= 1 && c.outputs <= cfg.max_outputs);
            prop_assert!(dfg.is_convex(&c.nodes), "non-convex candidate recorded");
            prop_assert!(c.delay >= 0.0 && c.area >= 0.0);
            // Connected: the pattern must be one piece.
            prop_assert!(c.pattern(&dfg).is_weakly_connected());
        }
        prop_assert!(guided.stats.examined <= naive.stats.examined);
    }

    /// Tapered exploration stays a subset of untapered exploration.
    #[test]
    fn taper_only_removes_candidates(
        ops in proptest::collection::vec((0usize..8, 0usize..6, -64i64..64), 2..22),
    ) {
        let dfg = random_dfg(&ops);
        let hw = HwLibrary::micron_018();
        let full = explore_dfg(&dfg, &hw, &ExploreConfig::default());
        let tapered_cfg = ExploreConfig {
            taper_size: Some(3),
            taper_fanout: 1,
            ..ExploreConfig::default()
        };
        let tapered = explore_dfg(&dfg, &hw, &tapered_cfg);
        let fset: BTreeSet<Vec<usize>> = full
            .candidates
            .iter()
            .map(|c| c.nodes.iter().collect())
            .collect();
        for c in &tapered.candidates {
            let key: Vec<usize> = c.nodes.iter().collect();
            prop_assert!(fset.contains(&key));
        }
        prop_assert!(tapered.stats.examined <= full.stats.examined);
    }
}
