//! Exploration invariants on random dataflow graphs.

use isax_explore::{explore_dfg, explore_dfg_naive, metrics_of, ExploreConfig, SubgraphEval};
use isax_graph::BitSet;
use isax_hwlib::HwLibrary;
use isax_ir::{function_dfgs, Dfg, FunctionBuilder, VReg};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn random_dfg(ops: &[(usize, usize, i64)]) -> Dfg {
    let mut fb = FunctionBuilder::new("r", 4);
    let mut pool: Vec<VReg> = (0..4).map(|i| fb.param(i)).collect();
    for &(which, pick, imm) in ops {
        let a = pool[pick % pool.len()];
        let b = pool[(pick + 1) % pool.len()];
        let d = match which % 8 {
            0 => fb.add(a, b),
            1 => fb.xor(a, b),
            2 => fb.shl(a, (imm & 31).abs()),
            3 => fb.and(a, imm),
            4 => fb.sub(a, b),
            5 => fb.or(a, b),
            6 => fb.ldw(a),
            _ => fb.mul(a, b),
        };
        pool.push(d);
    }
    let last = *pool.last().unwrap();
    fb.ret(&[last.into()]);
    function_dfgs(&fb.finish()).remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(64))]

    /// The guided search never invents candidates: its recorded set is a
    /// subset of the exhaustive oracle's, and everything it records obeys
    /// the structural constraints.
    #[test]
    fn guided_is_a_sound_subset(
        ops in proptest::collection::vec((0usize..8, 0usize..6, -64i64..64), 2..22),
    ) {
        let dfg = random_dfg(&ops);
        let hw = HwLibrary::micron_018();
        let cfg = ExploreConfig::default();
        let guided = explore_dfg(&dfg, &hw, &cfg);
        let naive = explore_dfg_naive(&dfg, &hw, &cfg, Some(500_000));
        prop_assume!(!naive.stats.truncated);
        let nset: BTreeSet<Vec<usize>> = naive
            .candidates
            .iter()
            .map(|c| c.nodes.iter().collect())
            .collect();
        for c in &guided.candidates {
            let key: Vec<usize> = c.nodes.iter().collect();
            prop_assert!(nset.contains(&key), "guided-only candidate {key:?}");
            prop_assert!(c.inputs <= cfg.max_inputs);
            prop_assert!(c.outputs >= 1 && c.outputs <= cfg.max_outputs);
            prop_assert!(dfg.is_convex(&c.nodes), "non-convex candidate recorded");
            prop_assert!(c.delay >= 0.0 && c.area >= 0.0);
            // Connected: the pattern must be one piece.
            prop_assert!(c.pattern(&dfg).is_weakly_connected());
        }
        prop_assert!(guided.stats.examined <= naive.stats.examined);
    }

    /// Tapered exploration stays a subset of untapered exploration.
    #[test]
    fn taper_only_removes_candidates(
        ops in proptest::collection::vec((0usize..8, 0usize..6, -64i64..64), 2..22),
    ) {
        let dfg = random_dfg(&ops);
        let hw = HwLibrary::micron_018();
        let full = explore_dfg(&dfg, &hw, &ExploreConfig::default());
        let tapered_cfg = ExploreConfig {
            taper_size: Some(3),
            taper_fanout: 1,
            ..ExploreConfig::default()
        };
        let tapered = explore_dfg(&dfg, &hw, &tapered_cfg);
        let fset: BTreeSet<Vec<usize>> = full
            .candidates
            .iter()
            .map(|c| c.nodes.iter().collect())
            .collect();
        for c in &tapered.candidates {
            let key: Vec<usize> = c.nodes.iter().collect();
            prop_assert!(fset.contains(&key));
        }
        prop_assert!(tapered.stats.examined <= full.stats.examined);
    }

    /// The incremental evaluator agrees with the from-scratch reference
    /// bit for bit on **every prefix of every growth sequence**: starting
    /// from each node, grow one data-neighbour at a time and compare
    /// [`SubgraphEval::metrics`] against [`metrics_of`] at every step.
    /// (`Option::None` — some member unimplementable — must agree too.)
    #[test]
    fn incremental_metrics_match_reference_on_growth_prefixes(
        ops in proptest::collection::vec((0usize..8, 0usize..6, -64i64..64), 2..22),
    ) {
        let dfg = random_dfg(&ops);
        let hw = HwLibrary::micron_018();
        let mut eval = SubgraphEval::new(&dfg, &hw);
        for seed in 0..dfg.len() {
            let mut nodes: BitSet = [seed].into_iter().collect();
            loop {
                let fast = eval.metrics(&nodes);
                let slow = metrics_of(&dfg, &nodes, &hw);
                prop_assert_eq!(
                    fast, slow,
                    "divergence on {:?}", nodes.iter().collect::<Vec<_>>()
                );
                if let (Some(f), Some(s)) = (fast, slow) {
                    // Bit-level equality of the floats, not just PartialEq.
                    prop_assert_eq!(f.delay.to_bits(), s.delay.to_bits());
                    prop_assert_eq!(f.area.to_bits(), s.area.to_bits());
                }
                // Grow along the first unused data neighbour.
                let next = dfg.neighbours(&nodes).into_iter().next();
                match next {
                    Some(d) if nodes.len() < 12 => { nodes.insert(d); }
                    _ => break,
                }
            }
        }
    }

    /// An infinite beam examines exactly the candidate set of the default
    /// depth-first walk — same candidates (as a set), same examined /
    /// recorded / pruned / per-size statistics.
    #[test]
    fn infinite_beam_is_equivalent_to_depth_first(
        ops in proptest::collection::vec((0usize..8, 0usize..6, -64i64..64), 2..22),
    ) {
        let dfg = random_dfg(&ops);
        let hw = HwLibrary::micron_018();
        let dfs = explore_dfg(&dfg, &hw, &ExploreConfig::default());
        let beam_cfg = ExploreConfig {
            beam_width: Some(usize::MAX),
            ..ExploreConfig::default()
        };
        let beam = explore_dfg(&dfg, &hw, &beam_cfg);
        let key = |r: &isax_explore::ExploreResult| -> Vec<(Vec<usize>, u64, u64, usize, usize)> {
            let mut v: Vec<_> = r
                .candidates
                .iter()
                .map(|c| {
                    (
                        c.nodes.iter().collect::<Vec<_>>(),
                        c.delay.to_bits(),
                        c.area.to_bits(),
                        c.inputs,
                        c.outputs,
                    )
                })
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(key(&dfs), key(&beam));
        prop_assert_eq!(dfs.stats.examined, beam.stats.examined);
        prop_assert_eq!(dfs.stats.recorded, beam.stats.recorded);
        prop_assert_eq!(dfs.stats.directions_pruned, beam.stats.directions_pruned);
        prop_assert_eq!(&dfs.stats.examined_by_size, &beam.stats.examined_by_size);
        prop_assert!(!beam.stats.truncated);
    }

    /// A finite beam's candidates are always a subset of the exhaustive
    /// walk's, and narrower beams examine no more than wider ones.
    #[test]
    fn beam_candidates_are_a_sound_subset(
        ops in proptest::collection::vec((0usize..8, 0usize..6, -64i64..64), 2..22),
        width in 1usize..6,
    ) {
        let dfg = random_dfg(&ops);
        let hw = HwLibrary::micron_018();
        let full = explore_dfg(&dfg, &hw, &ExploreConfig::default());
        let narrow = explore_dfg(&dfg, &hw, &ExploreConfig {
            beam_width: Some(width),
            ..ExploreConfig::default()
        });
        let fset: BTreeSet<Vec<usize>> = full
            .candidates
            .iter()
            .map(|c| c.nodes.iter().collect())
            .collect();
        for c in &narrow.candidates {
            let key: Vec<usize> = c.nodes.iter().collect();
            prop_assert!(fset.contains(&key), "beam invented candidate {key:?}");
        }
        prop_assert!(narrow.stats.examined <= full.stats.examined);
    }
}
