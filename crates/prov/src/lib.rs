//! Decision provenance for the isax pipeline.
//!
//! The customization pipeline makes thousands of micro-decisions — the
//! guide function prunes a growth direction, subsumption folds one CFU
//! candidate into another, greedy selection charges area for a unit, the
//! matcher replaces a subgraph and banks the cycles — and by the time an
//! MDES or a speedup number comes out, the *why* has been discarded at
//! every stage boundary. This crate keeps it: each candidate subgraph is
//! identified by its canonical fingerprint (`isax_graph::canon`) and
//! accumulates a small stream of [`ProvEvent`]s as it flows through
//! explore → subsume/wildcard → select → match → replace.
//!
//! # Determinism contract
//!
//! Recording follows the same discipline as `MatchStats` and the trace
//! counters: events are collected *per work item* in thread-local return
//! values ([`ProvLog`]s riding on `ExploreResult`, `Selection`,
//! `CompiledProgram`) and merged at the existing parallel join points in
//! input order. There is no global sink, so a report built from a merged
//! log is byte-identical at any thread count.
//!
//! # Zero-cost contract
//!
//! Recording is off by default behind one relaxed atomic
//! ([`enabled`]), mirroring `isax-trace`: a disabled run pays a single
//! relaxed load per potential event site and allocates nothing. Callers
//! must never let recording influence results — enforced by the
//! enabled-vs-disabled differential in `tests/prov.rs`.
//!
//! # Report
//!
//! [`build_report`] turns a merged log into a versioned JSON document
//! (via `isax-json`): per-candidate event streams grouped by fingerprint
//! in first-appearance order, each with a computed terminal [`Fate`],
//! plus an aggregate summary (counts per fate and per stage). The
//! `isax explain` subcommand renders it for humans.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};

/// Report format version stamped into every emitted document.
pub const REPORT_VERSION: u64 = 1;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is provenance recording enabled? One relaxed load — callers on hot
/// paths should hoist this into a local before a loop.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Enables recording for the lifetime of the returned guard.
///
/// The flag is global: overlapping guards in concurrent tests should be
/// serialized by the caller (the same caveat as `isax_trace`).
#[must_use = "recording stops when the guard is dropped"]
pub fn enable() -> EnableGuard {
    set_enabled(true);
    EnableGuard(())
}

/// RAII guard from [`enable`]; disables recording on drop.
pub struct EnableGuard(());

impl Drop for EnableGuard {
    fn drop(&mut self) {
        set_enabled(false);
    }
}

/// The shared observability env-var grammar (`ISAX_PROV` here,
/// `ISAX_TRACE` and `ISAX_SERVE_STATS` elsewhere), re-exported from its
/// one canonical home in `isax-trace`.
///
/// ```
/// use isax_prov::{parse_env_value, EnvMode};
/// assert_eq!(parse_env_value(" off "), EnvMode::Off);
/// assert_eq!(parse_env_value("1"), EnvMode::Summary);
/// assert_eq!(parse_env_value("report.json"), EnvMode::Path("report.json".into()));
/// ```
pub use isax_trace::{parse_env_value, EnvMode};

/// Reads `ISAX_PROV` and parses it; unset means [`EnvMode::Off`].
pub fn env_mode() -> EnvMode {
    match std::env::var("ISAX_PROV") {
        Ok(v) => parse_env_value(&v),
        Err(_) => EnvMode::Off,
    }
}

/// The four-axis guide-function score of §3.2, one point total per axis
/// group: criticality, latency gain, area cost, I/O feasibility.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScoreBreakdown {
    /// Criticality points: `10 / (slack + 1)`.
    pub criticality: f64,
    /// Latency points: `old_delay / new_delay × 10`.
    pub latency: f64,
    /// Area points: `old_area / new_area × 10`.
    pub area: f64,
    /// I/O points: `min(old_ports / new_ports × 10, 10)`.
    pub io: f64,
}

impl ScoreBreakdown {
    /// Sum over the four axes — what the half-of-total threshold tests.
    pub fn total(&self) -> f64 {
        self.criticality + self.latency + self.area + self.io
    }

    /// Name of the lowest-scoring axis — "which axis killed it".
    pub fn weakest_axis(&self) -> &'static str {
        let axes = [
            ("criticality", self.criticality),
            ("latency", self.latency),
            ("area", self.area),
            ("io", self.io),
        ];
        let mut weakest = axes[0];
        for a in &axes[1..] {
            if a.1 < weakest.1 {
                weakest = *a;
            }
        }
        weakest.0
    }

    fn to_json(self) -> isax_json::Value {
        isax_json::object([
            ("criticality", isax_json::Value::from(self.criticality)),
            ("latency", self.latency.into()),
            ("area", self.area.into()),
            ("io", self.io.into()),
            ("total", self.total().into()),
        ])
    }
}

/// Why exploration dropped a grown subgraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// Guide score fell below the half-of-total threshold.
    BelowThreshold,
    /// Direction scored above threshold but lost the fanout/taper cut.
    FanoutCap,
    /// Direction scored above threshold but fell outside the beam width
    /// when the frontier of a beam-ordered walk was truncated.
    BeamDropped,
}

impl PruneReason {
    /// Stable identifier used in the JSON report.
    pub fn as_str(&self) -> &'static str {
        match self {
            PruneReason::BelowThreshold => "below_threshold",
            PruneReason::FanoutCap => "fanout_cap",
            PruneReason::BeamDropped => "beam_dropped",
        }
    }
}

/// One decision about one candidate, in pipeline order.
#[derive(Debug, Clone, PartialEq)]
pub enum ProvEvent {
    /// Exploration recorded this subgraph as a candidate.
    Discovered {
        /// Index of the DFG (basic block) it was found in.
        dfg: usize,
        /// Operation count.
        size: usize,
        /// Combinational delay in cycles.
        delay: f64,
        /// Area in adder units.
        area: f64,
        /// Live-in count.
        inputs: usize,
        /// Live-out count.
        outputs: usize,
        /// Guide score of the growth direction that produced it; `None`
        /// for single-operation seeds, which are admitted unscored.
        score: Option<ScoreBreakdown>,
    },
    /// Exploration scored this subgraph and dropped the direction.
    Pruned {
        /// Index of the DFG it would have been grown in.
        dfg: usize,
        /// The half-of-total threshold in force.
        threshold: f64,
        /// The score that lost.
        score: ScoreBreakdown,
        /// Which cut dropped it.
        reason: PruneReason,
    },
    /// A selected CFU's pattern contains this candidate's pattern.
    SubsumedBy {
        /// MDES id of the subsuming CFU.
        cfu: u16,
    },
    /// A selected CFU is this candidate's wildcard partner (same shape,
    /// one opcode apart).
    Wildcarded {
        /// MDES id of the partner CFU.
        partner: u16,
    },
    /// Selection chose this candidate as a custom function unit.
    SelectedAsCfu {
        /// MDES id (== replacement priority).
        cfu: u16,
        /// Area charged against the budget (discounted if subsumed or
        /// wildcarded by an earlier pick).
        area: f64,
        /// Pattern delay in cycles.
        delay: f64,
        /// Interaction-aware cycles-saved estimate at selection time.
        estimated_value: u64,
    },
    /// The matcher found legal occurrences of this CFU's pattern.
    Matched {
        /// Function the matches were found in.
        function: String,
        /// Basic-block index within the function.
        block: usize,
        /// Number of legal (pre-prioritization) matches in that block.
        count: u64,
    },
    /// Replacement rewrote a subgraph with this CFU and banked cycles.
    Replaced {
        /// Function the replacement happened in.
        function: String,
        /// Basic-block index within the function.
        block: usize,
        /// Weighted cycles the replaced operations cost in software.
        cycles_before: u64,
        /// Weighted cycles the CFU costs for the same work.
        cycles_after: u64,
    },
}

impl ProvEvent {
    /// Pipeline stage that produced the event.
    pub fn stage(&self) -> &'static str {
        match self {
            ProvEvent::Discovered { .. } | ProvEvent::Pruned { .. } => "explore",
            ProvEvent::SubsumedBy { .. }
            | ProvEvent::Wildcarded { .. }
            | ProvEvent::SelectedAsCfu { .. } => "select",
            ProvEvent::Matched { .. } | ProvEvent::Replaced { .. } => "compile",
        }
    }

    /// Stable event-kind identifier used in the JSON report.
    pub fn kind(&self) -> &'static str {
        match self {
            ProvEvent::Discovered { .. } => "discovered",
            ProvEvent::Pruned { .. } => "pruned",
            ProvEvent::SubsumedBy { .. } => "subsumed_by",
            ProvEvent::Wildcarded { .. } => "wildcarded",
            ProvEvent::SelectedAsCfu { .. } => "selected_as_cfu",
            ProvEvent::Matched { .. } => "matched",
            ProvEvent::Replaced { .. } => "replaced",
        }
    }

    fn to_json(&self) -> isax_json::Value {
        let mut fields: Vec<(String, isax_json::Value)> = vec![
            ("event".into(), self.kind().into()),
            ("stage".into(), self.stage().into()),
        ];
        match self {
            ProvEvent::Discovered {
                dfg,
                size,
                delay,
                area,
                inputs,
                outputs,
                score,
            } => {
                fields.push(("dfg".into(), (*dfg as u64).into()));
                fields.push(("size".into(), (*size as u64).into()));
                fields.push(("delay".into(), (*delay).into()));
                fields.push(("area".into(), (*area).into()));
                fields.push(("inputs".into(), (*inputs as u64).into()));
                fields.push(("outputs".into(), (*outputs as u64).into()));
                if let Some(s) = score {
                    fields.push(("score".into(), s.to_json()));
                }
            }
            ProvEvent::Pruned {
                dfg,
                threshold,
                score,
                reason,
            } => {
                fields.push(("dfg".into(), (*dfg as u64).into()));
                fields.push(("threshold".into(), (*threshold).into()));
                fields.push(("score".into(), score.to_json()));
                fields.push(("reason".into(), reason.as_str().into()));
            }
            ProvEvent::SubsumedBy { cfu } => {
                fields.push(("cfu".into(), (*cfu as u64).into()));
            }
            ProvEvent::Wildcarded { partner } => {
                fields.push(("partner".into(), (*partner as u64).into()));
            }
            ProvEvent::SelectedAsCfu {
                cfu,
                area,
                delay,
                estimated_value,
            } => {
                fields.push(("cfu".into(), (*cfu as u64).into()));
                fields.push(("area".into(), (*area).into()));
                fields.push(("delay".into(), (*delay).into()));
                fields.push(("estimated_value".into(), (*estimated_value).into()));
            }
            ProvEvent::Matched {
                function,
                block,
                count,
            } => {
                fields.push(("function".into(), function.as_str().into()));
                fields.push(("block".into(), (*block as u64).into()));
                fields.push(("count".into(), (*count).into()));
            }
            ProvEvent::Replaced {
                function,
                block,
                cycles_before,
                cycles_after,
            } => {
                fields.push(("function".into(), function.as_str().into()));
                fields.push(("block".into(), (*block as u64).into()));
                fields.push(("cycles_before".into(), (*cycles_before).into()));
                fields.push(("cycles_after".into(), (*cycles_after).into()));
            }
        }
        isax_json::Value::Object(fields)
    }
}

/// An ordered stream of `(fingerprint, event)` pairs.
///
/// Logs ride in per-stage return values and are merged at parallel join
/// points in input order — never through shared state — so a fully
/// merged log (and anything derived from it) is thread-count-invariant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProvLog {
    events: Vec<(u64, ProvEvent)>,
}

impl ProvLog {
    /// Appends one event for the candidate with the given canonical
    /// fingerprint. Callers gate on [`enabled`] *before* constructing
    /// the event, so a disabled run allocates nothing.
    pub fn record(&mut self, fingerprint: u64, event: ProvEvent) {
        self.events.push((fingerprint, event));
    }

    /// Appends all of `other`'s events after this log's — the join-point
    /// merge, called in input order.
    pub fn merge(&mut self, mut other: ProvLog) {
        self.events.append(&mut other.events);
    }

    /// The events, in pipeline arrival order.
    pub fn events(&self) -> &[(u64, ProvEvent)] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Re-stamps the DFG index on every explore-stage event. Exploration
    /// walks one DFG at a time and records index 0; the fan-out caller
    /// knows the real index and stamps it at the join point (mirroring
    /// how `Candidate::dfg` is stamped).
    pub fn set_dfg(&mut self, dfg: usize) {
        for (_, ev) in &mut self.events {
            match ev {
                ProvEvent::Discovered { dfg: d, .. } | ProvEvent::Pruned { dfg: d, .. } => {
                    *d = dfg;
                }
                _ => {}
            }
        }
    }
}

/// A candidate's terminal fate, computed from its event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Became (part of) a custom function unit: has a `SelectedAsCfu`,
    /// `Matched` or `Replaced` event.
    Selected,
    /// Survived exploration but lost selection: `Discovered` only
    /// (possibly annotated `SubsumedBy`/`Wildcarded`).
    NotSelected,
    /// Never became a candidate: `Pruned` events only.
    Pruned,
}

impl Fate {
    /// Stable identifier used in the JSON report.
    pub fn as_str(&self) -> &'static str {
        match self {
            Fate::Selected => "selected",
            Fate::NotSelected => "not_selected",
            Fate::Pruned => "pruned",
        }
    }

    /// Computes the fate from a candidate's events. Precedence: any
    /// select/compile success event wins, then discovery, then pruning —
    /// so every candidate has exactly one terminal fate.
    pub fn of(events: &[&ProvEvent]) -> Fate {
        if events.iter().any(|e| {
            matches!(
                e,
                ProvEvent::SelectedAsCfu { .. }
                    | ProvEvent::Matched { .. }
                    | ProvEvent::Replaced { .. }
            )
        }) {
            Fate::Selected
        } else if events
            .iter()
            .any(|e| matches!(e, ProvEvent::Discovered { .. }))
        {
            Fate::NotSelected
        } else {
            Fate::Pruned
        }
    }
}

/// Aggregate counts over a merged log: the `provenance` section of
/// `BENCH_pipeline.json` and the `ISAX_PROV=1` summary line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Distinct candidate fingerprints.
    pub candidates: u64,
    /// Total events.
    pub events: u64,
    /// Candidates whose fate is [`Fate::Selected`].
    pub selected: u64,
    /// Candidates whose fate is [`Fate::NotSelected`].
    pub not_selected: u64,
    /// Candidates whose fate is [`Fate::Pruned`].
    pub pruned: u64,
    /// Events recorded by the explore stage.
    pub explore_events: u64,
    /// Events recorded by the select stage.
    pub select_events: u64,
    /// Events recorded by the compile stage.
    pub compile_events: u64,
}

impl Summary {
    /// One-line human rendering for stderr summaries.
    pub fn one_line(&self) -> String {
        format!(
            "{} candidates ({} selected, {} not selected, {} pruned), \
             {} events (explore {}, select {}, compile {})",
            self.candidates,
            self.selected,
            self.not_selected,
            self.pruned,
            self.events,
            self.explore_events,
            self.select_events,
            self.compile_events
        )
    }

    /// JSON rendering: the report's `summary` object.
    pub fn to_json(&self) -> isax_json::Value {
        isax_json::object([
            ("candidates", isax_json::Value::from(self.candidates)),
            ("events", self.events.into()),
            (
                "fates",
                isax_json::object([
                    ("selected", isax_json::Value::from(self.selected)),
                    ("not_selected", self.not_selected.into()),
                    ("pruned", self.pruned.into()),
                ]),
            ),
            (
                "stages",
                isax_json::object([
                    ("explore", isax_json::Value::from(self.explore_events)),
                    ("select", self.select_events.into()),
                    ("compile", self.compile_events.into()),
                ]),
            ),
        ])
    }
}

/// Renders a fingerprint the way reports and `explain` queries spell it.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Groups a merged log by fingerprint in first-appearance order.
fn group(log: &ProvLog) -> Vec<(u64, Vec<&ProvEvent>)> {
    let mut order: Vec<(u64, Vec<&ProvEvent>)> = Vec::new();
    let mut index: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (fp, ev) in log.events() {
        match index.get(fp) {
            Some(&i) => order[i].1.push(ev),
            None => {
                index.insert(*fp, order.len());
                order.push((*fp, vec![ev]));
            }
        }
    }
    order
}

/// Computes aggregate counts from a merged log.
pub fn summarize(log: &ProvLog) -> Summary {
    let mut s = Summary::default();
    for (_, ev) in log.events() {
        s.events += 1;
        match ev.stage() {
            "explore" => s.explore_events += 1,
            "select" => s.select_events += 1,
            _ => s.compile_events += 1,
        }
    }
    for (_, events) in group(log) {
        s.candidates += 1;
        match Fate::of(&events) {
            Fate::Selected => s.selected += 1,
            Fate::NotSelected => s.not_selected += 1,
            Fate::Pruned => s.pruned += 1,
        }
    }
    s
}

/// Builds the versioned provenance report for one application run.
///
/// Candidates appear in first-appearance order (which is pipeline
/// order, hence deterministic); each carries its fingerprint, computed
/// fate, convenience aggregates (`cfu` id when selected, total matches,
/// total cycles saved) and its full event stream.
pub fn build_report(app: &str, log: &ProvLog) -> isax_json::Value {
    let candidates: Vec<isax_json::Value> = group(log)
        .into_iter()
        .map(|(fp, events)| {
            let fate = Fate::of(&events);
            let mut fields: Vec<(String, isax_json::Value)> = vec![
                ("fingerprint".into(), fingerprint_hex(fp).into()),
                ("fate".into(), fate.as_str().into()),
            ];
            let cfu = events.iter().find_map(|e| match e {
                ProvEvent::SelectedAsCfu { cfu, .. } => Some(*cfu),
                _ => None,
            });
            if let Some(id) = cfu {
                fields.push(("cfu".into(), (id as u64).into()));
            }
            let matches: u64 = events
                .iter()
                .filter_map(|e| match e {
                    ProvEvent::Matched { count, .. } => Some(*count),
                    _ => None,
                })
                .sum();
            let cycles_saved: u64 = events
                .iter()
                .filter_map(|e| match e {
                    ProvEvent::Replaced {
                        cycles_before,
                        cycles_after,
                        ..
                    } => Some(cycles_before.saturating_sub(*cycles_after)),
                    _ => None,
                })
                .sum();
            if matches > 0 {
                fields.push(("matches".into(), matches.into()));
            }
            if cycles_saved > 0 {
                fields.push(("cycles_saved".into(), cycles_saved.into()));
            }
            fields.push((
                "events".into(),
                isax_json::array(events.iter().map(|e| e.to_json())),
            ));
            isax_json::Value::Object(fields)
        })
        .collect();
    isax_json::object([
        ("version", isax_json::Value::from(REPORT_VERSION)),
        ("app", app.into()),
        ("summary", summarize(log).to_json()),
        ("candidates", isax_json::array(candidates)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn discovered(dfg: usize) -> ProvEvent {
        ProvEvent::Discovered {
            dfg,
            size: 2,
            delay: 0.5,
            area: 1.0,
            inputs: 2,
            outputs: 1,
            score: Some(ScoreBreakdown {
                criticality: 10.0,
                latency: 8.0,
                area: 5.0,
                io: 10.0,
            }),
        }
    }

    #[test]
    fn disabled_by_default() {
        assert!(!enabled());
    }

    #[test]
    fn enable_guard_restores() {
        {
            let _g = enable();
            assert!(enabled());
        }
        assert!(!enabled());
    }

    #[test]
    fn env_value_forms() {
        for v in ["", " ", "0", "off", "OFF", "false", "no", " Off "] {
            assert_eq!(parse_env_value(v), EnvMode::Off, "{v:?}");
        }
        for v in ["1", "on", "ON", "true", "yes", " yes "] {
            assert_eq!(parse_env_value(v), EnvMode::Summary, "{v:?}");
        }
        assert_eq!(
            parse_env_value("out/report.json"),
            EnvMode::Path("out/report.json".into())
        );
        // A path that happens to be named like a keyword with extra
        // context is still a path.
        assert_eq!(parse_env_value("./on"), EnvMode::Path("./on".into()));
    }

    #[test]
    fn merge_preserves_input_order() {
        let mut a = ProvLog::default();
        a.record(1, discovered(0));
        let mut b = ProvLog::default();
        b.record(2, discovered(0));
        let mut c = a.clone();
        c.merge(b.clone());
        assert_eq!(c.events()[0].0, 1);
        assert_eq!(c.events()[1].0, 2);
        // Merge is order-sensitive by design.
        b.merge(a);
        assert_eq!(b.events()[0].0, 2);
    }

    #[test]
    fn set_dfg_touches_only_explore_events() {
        let mut log = ProvLog::default();
        log.record(1, discovered(0));
        log.record(
            1,
            ProvEvent::Pruned {
                dfg: 0,
                threshold: 20.0,
                score: ScoreBreakdown::default(),
                reason: PruneReason::BelowThreshold,
            },
        );
        log.record(1, ProvEvent::SubsumedBy { cfu: 3 });
        log.set_dfg(7);
        match &log.events()[0].1 {
            ProvEvent::Discovered { dfg, .. } => assert_eq!(*dfg, 7),
            other => panic!("unexpected {other:?}"),
        }
        match &log.events()[1].1 {
            ProvEvent::Pruned { dfg, .. } => assert_eq!(*dfg, 7),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(log.events()[2].1, ProvEvent::SubsumedBy { cfu: 3 });
    }

    #[test]
    fn fate_precedence() {
        let d = discovered(0);
        let p = ProvEvent::Pruned {
            dfg: 0,
            threshold: 20.0,
            score: ScoreBreakdown::default(),
            reason: PruneReason::FanoutCap,
        };
        let sel = ProvEvent::SelectedAsCfu {
            cfu: 0,
            area: 1.0,
            delay: 0.5,
            estimated_value: 100,
        };
        assert_eq!(Fate::of(&[&p]), Fate::Pruned);
        assert_eq!(Fate::of(&[&d]), Fate::NotSelected);
        assert_eq!(Fate::of(&[&d, &p]), Fate::NotSelected);
        assert_eq!(Fate::of(&[&d, &sel]), Fate::Selected);
        assert_eq!(
            Fate::of(&[&d, &ProvEvent::SubsumedBy { cfu: 1 }]),
            Fate::NotSelected,
            "annotation events do not promote a candidate"
        );
    }

    #[test]
    fn weakest_axis() {
        let s = ScoreBreakdown {
            criticality: 10.0,
            latency: 1.0,
            area: 5.0,
            io: 10.0,
        };
        assert_eq!(s.weakest_axis(), "latency");
        assert!((s.total() - 26.0).abs() < 1e-12);
    }

    #[test]
    fn report_shape_and_first_appearance_order() {
        let mut log = ProvLog::default();
        log.record(0xbeef, discovered(1));
        log.record(0xcafe, discovered(2));
        log.record(
            0xbeef,
            ProvEvent::SelectedAsCfu {
                cfu: 0,
                area: 1.0,
                delay: 0.5,
                estimated_value: 100,
            },
        );
        log.record(
            0xbeef,
            ProvEvent::Replaced {
                function: "f".into(),
                block: 0,
                cycles_before: 300,
                cycles_after: 100,
            },
        );
        let report = build_report("demo", &log);
        assert_eq!(report.get("version").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(report.get("app").and_then(|v| v.as_str()), Some("demo"));
        let cands = report
            .get("candidates")
            .and_then(|v| v.as_array())
            .expect("candidates array");
        assert_eq!(cands.len(), 2);
        assert_eq!(
            cands[0].get("fingerprint").and_then(|v| v.as_str()),
            Some("000000000000beef")
        );
        assert_eq!(
            cands[0].get("fate").and_then(|v| v.as_str()),
            Some("selected")
        );
        assert_eq!(cands[0].get("cfu").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(
            cands[0].get("cycles_saved").and_then(|v| v.as_u64()),
            Some(200)
        );
        assert_eq!(
            cands[1].get("fate").and_then(|v| v.as_str()),
            Some("not_selected")
        );
        let summary = report.get("summary").expect("summary");
        assert_eq!(
            summary
                .get("fates")
                .and_then(|f| f.get("selected"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        // Round-trips through the parser.
        let text = report.to_string_pretty();
        let reparsed = isax_json::parse(&text).expect("report parses");
        assert_eq!(reparsed.to_string_pretty(), text);
    }

    #[test]
    fn summary_line_counts() {
        let mut log = ProvLog::default();
        log.record(1, discovered(0));
        log.record(
            2,
            ProvEvent::Pruned {
                dfg: 0,
                threshold: 20.0,
                score: ScoreBreakdown::default(),
                reason: PruneReason::BelowThreshold,
            },
        );
        let s = summarize(&log);
        assert_eq!(s.candidates, 2);
        assert_eq!(s.events, 2);
        assert_eq!(s.explore_events, 2);
        assert_eq!((s.selected, s.not_selected, s.pruned), (0, 1, 1));
        assert!(s.one_line().contains("2 candidates"));
    }
}
