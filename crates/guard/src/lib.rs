//! Deterministic resource governance for the customization pipeline.
//!
//! The discovery pipeline is worst-case exponential: full subgraph
//! enumeration is infeasible (paper §3.1) and even the guided walker can
//! be stalled by pathological DFGs — deep dependence chains, dense
//! commutative cliques, wide fanout. This crate provides the budget
//! machinery every stage shares:
//!
//! * A [`Budget`] is a **work-unit** meter, not a wall clock. Work units
//!   are things the pipeline counts anyway — explorer candidates
//!   examined, VF2 state-space nodes visited, scheduler list steps — so
//!   a budgeted run produces byte-identical results regardless of thread
//!   count or machine speed. An optional wall-clock deadline exists as an
//!   off-by-default safety net; tripping it marks the run
//!   non-reproducible in its [`Degradation`] record.
//! * A [`Guard`] hands out one [`Meter`] per *deterministic work item*
//!   (a DFG, a matcher job, a function to schedule). Meters are
//!   per-item, never shared across threads, which is what keeps the
//!   accounting independent of scheduling order.
//! * On exhaustion a stage returns its best-so-far result tagged with a
//!   structured [`Degradation`] record: which stage, how many units were
//!   spent, and what was truncated. Partial results stay *sound* — they
//!   are smaller, never wrong — so `isax-check` accepts them.
//! * A [`FaultPlan`] (`ISAX_FAULT=stage:panic|exhaust:nth`) is a
//!   compiled-in, inert-unless-set fault-injection hook that lets tests
//!   drive every degradation path end to end.
//!
//! With no budget, no deadline, and no fault configured, a [`Guard`] is
//! inactive and the pipeline takes its historical code paths unchanged —
//! governance is zero-cost by default.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Pipeline stages that accept a work-unit budget.
///
/// The stage names are stable: they appear in `ISAX_FAULT` specs, in
/// [`Degradation`] reports printed by the CLI, and in
/// `BENCH_pipeline.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Candidate discovery (`isax_explore`): one unit per candidate
    /// subgraph examined.
    Explore,
    /// Pattern matching (`isax_compiler::find_matches`): one unit per
    /// VF2 state-space node visited.
    Match,
    /// List scheduling (`isax_compiler::schedule`): one unit per
    /// instruction issued and per cycle advanced.
    Schedule,
    /// CFU selection (`isax_select`): one unit per candidate evaluated
    /// by the greedy scan.
    Select,
}

impl Stage {
    /// Stable lowercase name used in env specs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Explore => "explore",
            Stage::Match => "match",
            Stage::Schedule => "schedule",
            Stage::Select => "select",
        }
    }

    /// Parses a stable stage name (case-sensitive, lowercase).
    pub fn parse(s: &str) -> Option<Stage> {
        match s {
            "explore" => Some(Stage::Explore),
            "match" => Some(Stage::Match),
            "schedule" => Some(Stage::Schedule),
            "select" => Some(Stage::Select),
            _ => None,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What kind of fault to inject at a [`FaultPlan`]'s target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the stage's worker, exercising containment.
    Panic,
    /// Force the target item's meter to an immediate budget exhaustion,
    /// exercising graceful degradation.
    Exhaust,
}

/// A fault-injection target: `stage:kind:nth`.
///
/// `nth` is the deterministic ordinal of the work item within the stage
/// (DFG index for explore, job index for match, function index for
/// schedule, always 0 for select), so injection hits the same item
/// regardless of thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Stage whose meter the fault is attached to.
    pub stage: Stage,
    /// Panic or forced exhaustion.
    pub kind: FaultKind,
    /// Deterministic item ordinal the fault fires on.
    pub nth: u64,
}

impl FaultPlan {
    /// Parses a spec of the form `stage:panic:nth` or
    /// `stage:exhaust:nth`, e.g. `explore:panic:0` or `match:exhaust:3`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut parts = spec.split(':');
        let (stage, kind, nth) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(s), Some(k), Some(n), None) => (s, k, n),
            _ => {
                return Err(format!(
                    "fault spec `{spec}` is not of the form stage:panic|exhaust:nth"
                ))
            }
        };
        let stage = Stage::parse(stage)
            .ok_or_else(|| format!("unknown fault stage `{stage}` in `{spec}`"))?;
        let kind = match kind {
            "panic" => FaultKind::Panic,
            "exhaust" => FaultKind::Exhaust,
            other => return Err(format!("unknown fault kind `{other}` in `{spec}`")),
        };
        let nth: u64 = nth
            .parse()
            .map_err(|_| format!("fault ordinal `{nth}` in `{spec}` is not a number"))?;
        Ok(FaultPlan { stage, kind, nth })
    }

    /// Reads `ISAX_FAULT`. Unset or invalid specs yield `None`; the CLI
    /// validates the variable separately so typos are reported there.
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("ISAX_FAULT").ok()?;
        FaultPlan::parse(spec.trim()).ok()
    }
}

/// The resource limits a [`Guard`] enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Work-unit limit applied to *each* (stage, item) meter. `None`
    /// means unlimited. Deterministic: identical across thread counts.
    pub units: Option<u64>,
    /// Optional wall-clock safety net. Off by default because tripping
    /// it makes the result depend on machine speed; a deadline
    /// degradation is marked non-reproducible.
    pub deadline: Option<Duration>,
}

impl Budget {
    /// A budget with no limits at all.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A pure work-unit budget of `units` per (stage, item) meter.
    pub fn with_units(units: u64) -> Budget {
        Budget {
            units: Some(units),
            deadline: None,
        }
    }

    /// Reads `ISAX_BUDGET` (work units) and `ISAX_DEADLINE_MS`
    /// (wall-clock safety net). Unset or unparsable values mean "no
    /// limit".
    pub fn from_env() -> Budget {
        let units = std::env::var("ISAX_BUDGET")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok());
        let deadline = std::env::var("ISAX_DEADLINE_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_millis);
        Budget { units, deadline }
    }

    /// True when neither a unit limit nor a deadline is set.
    pub fn is_unlimited(&self) -> bool {
        self.units.is_none() && self.deadline.is_none()
    }
}

/// Why a [`Meter`] stopped accepting work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopReason {
    Budget,
    Deadline,
}

/// A pipeline-wide governance handle, threaded by reference through
/// `Customizer` into every stage. Cloning is cheap; clones share the
/// same start instant (for the optional deadline) but meters are always
/// independent per work item.
#[derive(Debug, Clone)]
pub struct Guard {
    budget: Budget,
    fault: Option<FaultPlan>,
    started: Instant,
}

impl Default for Guard {
    fn default() -> Guard {
        Guard::unlimited()
    }
}

impl Guard {
    /// A guard that never limits anything. [`Guard::is_active`] is false
    /// and governed entry points take their historical code paths.
    pub fn unlimited() -> Guard {
        Guard::new(Budget::unlimited())
    }

    /// A guard enforcing `budget`, with no fault plan.
    pub fn new(budget: Budget) -> Guard {
        Guard {
            budget,
            fault: None,
            started: Instant::now(),
        }
    }

    /// Builds a guard from `ISAX_BUDGET`, `ISAX_DEADLINE_MS` and
    /// `ISAX_FAULT`. With none of those set the guard is inactive.
    pub fn from_env() -> Guard {
        let mut g = Guard::new(Budget::from_env());
        g.fault = FaultPlan::from_env();
        g
    }

    /// Replaces the per-meter work-unit limit.
    pub fn with_units(mut self, units: u64) -> Guard {
        self.budget.units = Some(units);
        self
    }

    /// Attaches a fault-injection plan (tests; `ISAX_FAULT` in prod).
    pub fn with_fault(mut self, fault: FaultPlan) -> Guard {
        self.fault = Some(fault);
        self
    }

    /// The configured budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The configured fault plan, if any.
    pub fn fault(&self) -> Option<FaultPlan> {
        self.fault
    }

    /// True when any governance is configured — a unit budget, a
    /// deadline, or a fault plan. Inactive guards cost nothing: governed
    /// entry points dispatch straight to the historical code paths.
    pub fn is_active(&self) -> bool {
        !self.budget.is_unlimited() || self.fault.is_some()
    }

    /// Creates the meter for one deterministic work item. `item` is the
    /// item's stable ordinal within the stage (input order, never
    /// scheduling order).
    pub fn meter(&self, stage: Stage, item: u64) -> Meter {
        let mut limit = self.budget.units.unwrap_or(u64::MAX);
        let mut inject_panic = false;
        let mut injected_exhaust = false;
        if let Some(f) = self.fault {
            if f.stage == stage && f.nth == item {
                match f.kind {
                    FaultKind::Panic => inject_panic = true,
                    FaultKind::Exhaust => {
                        limit = 0;
                        injected_exhaust = true;
                    }
                }
            }
        }
        Meter {
            stage,
            item,
            limit,
            spent: 0,
            calls: 0,
            // An injected exhaustion starts the meter already stopped:
            // stages that pre-check `remaining()` before charging must
            // still see (and report) the forced truncation.
            stop: injected_exhaust.then_some(StopReason::Budget),
            inject_panic,
            injected_exhaust,
            deadline_at: self.budget.deadline.map(|d| self.started + d),
        }
    }
}

/// A work-unit meter for one (stage, item) pair.
///
/// Meters are self-contained (no borrow of the [`Guard`]) so they can
/// move into parallel workers; each worker item gets its own meter and
/// the accounting is aggregated at the join point in input order.
#[derive(Debug)]
pub struct Meter {
    stage: Stage,
    item: u64,
    limit: u64,
    spent: u64,
    calls: u64,
    stop: Option<StopReason>,
    inject_panic: bool,
    injected_exhaust: bool,
    deadline_at: Option<Instant>,
}

impl Meter {
    /// A free-standing meter with no limit — used by legacy entry
    /// points so metered and unmetered code share one accounting path.
    pub fn unlimited(stage: Stage, item: u64) -> Meter {
        Meter::with_limit(stage, item, u64::MAX)
    }

    /// A free-standing meter with an explicit unit limit.
    pub fn with_limit(stage: Stage, item: u64, limit: u64) -> Meter {
        Meter {
            stage,
            item,
            limit,
            spent: 0,
            calls: 0,
            stop: None,
            inject_panic: false,
            injected_exhaust: false,
            deadline_at: None,
        }
    }

    /// Accounts `units` of work. Returns `true` and records the units
    /// iff the whole charge fits under the limit; the first refused
    /// charge marks the meter exhausted and every later charge returns
    /// `false` immediately. A budget of `B` therefore admits exactly `B`
    /// unit charges — "stop after `B` candidates examined", not `B + 1`.
    #[inline]
    pub fn charge(&mut self, units: u64) -> bool {
        if self.stop.is_some() {
            return false;
        }
        if self.inject_panic {
            self.inject_panic = false;
            panic!(
                "isax-guard: injected panic (stage {}, item {})",
                self.stage.name(),
                self.item
            );
        }
        if let Some(at) = self.deadline_at {
            // Poll the clock every 1024 charge calls (and on the first),
            // keeping the syscall off the per-unit fast path.
            if self.calls & 0x3ff == 0 && Instant::now() >= at {
                self.stop = Some(StopReason::Deadline);
                return false;
            }
        }
        self.calls += 1;
        let next = self.spent.saturating_add(units);
        if next > self.limit {
            self.stop = Some(StopReason::Budget);
            return false;
        }
        self.spent = next;
        true
    }

    /// Runs the fault/deadline checkpoints without spending any units.
    /// Stages call this once on item entry so an injected panic fires
    /// even when the item would do no chargeable work.
    pub fn touch(&mut self) {
        let _ = self.charge(0);
    }

    /// Units accounted so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Units still available, zero once stopped.
    pub fn remaining(&self) -> u64 {
        if self.stop.is_some() {
            0
        } else {
            self.limit - self.spent
        }
    }

    /// The configured limit, `None` when unlimited.
    pub fn limit(&self) -> Option<u64> {
        (self.limit != u64::MAX).then_some(self.limit)
    }

    /// True once a charge has been refused.
    pub fn exhausted(&self) -> bool {
        self.stop.is_some()
    }

    /// The stage this meter governs.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The deterministic item ordinal this meter governs.
    pub fn item(&self) -> u64 {
        self.item
    }

    /// Builds the degradation record for this meter: `Some` iff the
    /// meter stopped. `detail` describes what was truncated — the
    /// caller knows ("kept 120 of an unknown number of candidates").
    pub fn degradation(&self, detail: impl Into<String>) -> Option<Degradation> {
        let reason = self.stop?;
        let kind = match reason {
            StopReason::Budget => DegradationKind::BudgetExhausted,
            StopReason::Deadline => DegradationKind::DeadlineExpired,
        };
        let mut detail = detail.into();
        if self.injected_exhaust {
            detail = format!("fault-injected exhaustion: {detail}");
        }
        Some(Degradation {
            stage: self.stage,
            item: self.item,
            kind,
            units_spent: self.spent,
            limit: self.limit(),
            detail,
        })
    }
}

/// Why a stage degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationKind {
    /// The deterministic work-unit budget ran out. Reproducible: the
    /// same budget yields the same truncation on any machine at any
    /// thread count.
    BudgetExhausted,
    /// The wall-clock deadline expired. **Non-reproducible** — where the
    /// truncation lands depends on machine speed.
    DeadlineExpired,
    /// A worker panicked; the item's result was dropped and the panic
    /// converted to this record at the join point.
    Panicked,
    /// The item never ran: the fan-out was cooperatively cancelled after
    /// a sibling panicked. Non-reproducible across thread counts — which
    /// items were still queued depends on scheduling.
    Cancelled,
}

impl DegradationKind {
    /// Whether a run carrying this degradation is still byte-for-byte
    /// reproducible at any thread count. A contained panic is itself
    /// deterministic (it fires on a fixed item ordinal); only the
    /// `Cancelled` records around it and wall-clock deadlines depend on
    /// scheduling or machine speed.
    pub fn reproducible(self) -> bool {
        matches!(
            self,
            DegradationKind::BudgetExhausted | DegradationKind::Panicked
        )
    }

    /// Stable lowercase name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            DegradationKind::BudgetExhausted => "budget-exhausted",
            DegradationKind::DeadlineExpired => "deadline-expired",
            DegradationKind::Panicked => "panicked",
            DegradationKind::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for DegradationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured record of one stage returning less than it was asked
/// for. Degradations ride on `CompiledProgram`/`Analysis`/`Selection`,
/// surface in `BENCH_pipeline.json`, and are printed by the CLI. They
/// trip `isax-check` only if the partial result is *unsound* — never
/// merely incomplete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// Stage that degraded.
    pub stage: Stage,
    /// Deterministic item ordinal within the stage.
    pub item: u64,
    /// Why the stage degraded.
    pub kind: DegradationKind,
    /// Work units the item had spent when it stopped.
    pub units_spent: u64,
    /// The unit limit in force, if any.
    pub limit: Option<u64>,
    /// What was truncated, in the stage's own vocabulary.
    pub detail: String,
}

impl Degradation {
    /// Record for a contained worker panic.
    pub fn panicked(stage: Stage, item: u64, message: impl Into<String>) -> Degradation {
        Degradation {
            stage,
            item,
            kind: DegradationKind::Panicked,
            units_spent: 0,
            limit: None,
            detail: message.into(),
        }
    }

    /// Record for an item cancelled after a sibling's panic.
    pub fn cancelled(stage: Stage, item: u64, message: impl Into<String>) -> Degradation {
        Degradation {
            stage,
            item,
            kind: DegradationKind::Cancelled,
            units_spent: 0,
            limit: None,
            detail: message.into(),
        }
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[item {}]: {} after {} units",
            self.stage, self.item, self.kind, self.units_spent
        )?;
        if let Some(limit) = self.limit {
            write!(f, " (limit {limit})")?;
        }
        if !self.detail.is_empty() {
            write!(f, ": {}", self.detail)?;
        }
        if !self.kind.reproducible() {
            write!(f, " [non-reproducible]")?;
        }
        Ok(())
    }
}

/// Best-effort text of a caught panic payload, for [`Degradation`]
/// records built at `catch_unwind` join points.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_admits_exactly_limit_unit_charges() {
        let mut m = Meter::with_limit(Stage::Explore, 0, 5);
        for _ in 0..5 {
            assert!(m.charge(1));
        }
        assert!(!m.exhausted());
        assert!(!m.charge(1), "sixth unit must be refused");
        assert!(m.exhausted());
        assert_eq!(m.spent(), 5, "refused charge is not accounted");
        assert!(!m.charge(1), "meter stays exhausted");
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn bulk_charge_that_does_not_fit_is_refused_whole() {
        let mut m = Meter::with_limit(Stage::Match, 3, 10);
        assert!(m.charge(7));
        assert!(!m.charge(4), "7 + 4 > 10");
        assert_eq!(m.spent(), 7);
        let d = m.degradation("stopped early").unwrap();
        assert_eq!(d.kind, DegradationKind::BudgetExhausted);
        assert_eq!(d.stage, Stage::Match);
        assert_eq!(d.item, 3);
        assert_eq!(d.units_spent, 7);
        assert_eq!(d.limit, Some(10));
    }

    #[test]
    fn unlimited_meter_never_stops_and_yields_no_degradation() {
        let mut m = Meter::unlimited(Stage::Select, 0);
        for _ in 0..10_000 {
            assert!(m.charge(3));
        }
        assert_eq!(m.spent(), 30_000);
        assert!(m.degradation("n/a").is_none());
        assert_eq!(m.limit(), None);
    }

    #[test]
    fn touch_cannot_exhaust_a_zero_limit_meter() {
        let mut m = Meter::with_limit(Stage::Explore, 2, 0);
        m.touch();
        assert!(!m.exhausted(), "touch spends nothing");
        assert!(!m.charge(1), "zero-limit meter refuses real work");
        let d = m.degradation("no candidates kept").unwrap();
        assert_eq!(d.kind, DegradationKind::BudgetExhausted);
        assert_eq!(d.units_spent, 0);
    }

    #[test]
    fn injected_exhaustion_starts_the_meter_stopped() {
        let g = Guard::unlimited().with_fault(FaultPlan {
            stage: Stage::Explore,
            kind: FaultKind::Exhaust,
            nth: 2,
        });
        let mut m = g.meter(Stage::Explore, 2);
        // Born stopped: stages that pre-check `remaining()` and never
        // issue a charge must still observe and report the truncation.
        assert!(m.exhausted());
        assert_eq!(m.remaining(), 0);
        assert!(!m.charge(1), "fault-exhausted meter refuses real work");
        let d = m.degradation("no candidates kept").unwrap();
        assert!(d.detail.starts_with("fault-injected exhaustion:"));
        assert_eq!(d.units_spent, 0);
    }

    #[test]
    fn fault_panic_fires_on_first_checkpoint_of_the_matching_item_only() {
        let g = Guard::unlimited().with_fault(FaultPlan::parse("select:panic:0").unwrap());
        assert!(g.is_active());
        let mut other = g.meter(Stage::Select, 1);
        other.touch();
        let mut wrong_stage = g.meter(Stage::Explore, 0);
        wrong_stage.touch();
        let result = std::panic::catch_unwind(move || {
            let mut m = g.meter(Stage::Select, 0);
            m.touch();
        });
        let payload = result.expect_err("fault must panic");
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("injected panic"), "got: {msg}");
        assert!(msg.contains("stage select"), "got: {msg}");
    }

    #[test]
    fn fault_plan_parsing_round_trips_and_rejects_garbage() {
        assert_eq!(
            FaultPlan::parse("match:exhaust:7"),
            Ok(FaultPlan {
                stage: Stage::Match,
                kind: FaultKind::Exhaust,
                nth: 7
            })
        );
        assert_eq!(
            FaultPlan::parse("schedule:panic:0"),
            Ok(FaultPlan {
                stage: Stage::Schedule,
                kind: FaultKind::Panic,
                nth: 0
            })
        );
        assert!(FaultPlan::parse("explore:panic").is_err());
        assert!(FaultPlan::parse("frobnicate:panic:0").is_err());
        assert!(FaultPlan::parse("explore:abort:0").is_err());
        assert!(FaultPlan::parse("explore:panic:many").is_err());
        assert!(FaultPlan::parse("explore:panic:0:extra").is_err());
    }

    #[test]
    fn inactive_guard_is_the_default_and_active_states_are_detected() {
        assert!(!Guard::unlimited().is_active());
        assert!(Guard::unlimited().with_units(100).is_active());
        assert!(Guard::new(Budget {
            units: None,
            deadline: Some(Duration::from_secs(1)),
        })
        .is_active());
        assert!(Guard::unlimited()
            .with_fault(FaultPlan::parse("explore:exhaust:0").unwrap())
            .is_active());
    }

    #[test]
    fn deadline_in_the_past_stops_on_the_first_charge() {
        let g = Guard::new(Budget {
            units: None,
            deadline: Some(Duration::ZERO),
        });
        let mut m = g.meter(Stage::Schedule, 0);
        assert!(!m.charge(1));
        let d = m.degradation("one block scheduled").unwrap();
        assert_eq!(d.kind, DegradationKind::DeadlineExpired);
        assert!(!d.kind.reproducible());
        assert!(d.to_string().contains("[non-reproducible]"));
    }

    #[test]
    fn degradation_display_is_stable() {
        let d = Degradation {
            stage: Stage::Explore,
            item: 2,
            kind: DegradationKind::BudgetExhausted,
            units_spent: 500,
            limit: Some(500),
            detail: "kept 41 candidates".into(),
        };
        assert_eq!(
            d.to_string(),
            "explore[item 2]: budget-exhausted after 500 units (limit 500): kept 41 candidates"
        );
        let p = Degradation::panicked(Stage::Match, 1, "boom");
        assert_eq!(p.to_string(), "match[item 1]: panicked after 0 units: boom");
    }

    #[test]
    fn stage_names_round_trip() {
        for s in [Stage::Explore, Stage::Match, Stage::Schedule, Stage::Select] {
            assert_eq!(Stage::parse(s.name()), Some(s));
        }
        assert_eq!(Stage::parse("Explore"), None);
    }
}
