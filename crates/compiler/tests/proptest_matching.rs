//! Property tests for the VF2 compat-key prefilter: the multiset
//! prefilter is an *optimization*, so it must be sound — it may only
//! skip (pattern, target) pairs for which no embedding can exist. A
//! prefilter that ever rejects a pair full VF2 would match silently
//! drops legal CFU matches and corrupts every downstream figure.
//!
//! Two angles:
//!
//! * **constructive** — plant a copy of the pattern inside a larger
//!   target (optionally mutated to same-class opcodes), so an embedding
//!   exists by construction, and assert the prefilter admits the pair;
//! * **differential** — generate pattern and target independently, run
//!   the real VF2 engine with the matcher's compatibility predicate,
//!   and assert the prefilter admitted every pair where VF2 succeeded.

use isax_compiler::{prefilter_admits, MatchMode};
use isax_graph::{vf2, DiGraph};
use isax_ir::{DfgLabel, Opcode};
use proptest::prelude::*;

/// Non-custom opcodes a generated node may carry. Includes a load so the
/// memory-requires-exact-opcode rule is exercised; stores are injected
/// separately as target-only noise (they can never be matched).
const POOL: [Opcode; 13] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Sar,
    Opcode::Eq,
    Opcode::Lt,
    Opcode::Mov,
    Opcode::LdW,
];

/// One generated node: an opcode index into [`POOL`], whether it carries
/// a hardwired immediate, and how it attaches to an earlier node.
#[derive(Debug, Clone)]
struct NodeSpec {
    op: usize,
    imm_kind: usize,
    imm_val: i64,
    parent: usize,
    port: usize,
}

fn specs(max_len: usize) -> impl Strategy<Value = Vec<NodeSpec>> {
    proptest::collection::vec(
        (
            0usize..POOL.len(),
            0usize..3,
            -4i64..4,
            0usize..16,
            0usize..2,
        )
            .prop_map(|(op, imm_kind, imm_val, parent, port)| NodeSpec {
                op,
                imm_kind,
                imm_val,
                parent,
                port,
            }),
        1..max_len,
    )
}

fn label_of(s: &NodeSpec) -> DfgLabel {
    DfgLabel {
        opcode: POOL[s.op % POOL.len()],
        imms: if s.imm_kind == 0 {
            vec![(1u8, s.imm_val)]
        } else {
            Vec::new()
        },
    }
}

/// Builds a connected DAG: node `i > 0` consumes an edge from node
/// `parent % i`, so every spec list yields a well-formed label graph.
fn build_graph(specs: &[NodeSpec]) -> DiGraph<DfgLabel> {
    let mut g = DiGraph::new();
    let mut ids = Vec::with_capacity(specs.len());
    for (i, s) in specs.iter().enumerate() {
        let n = g.add_node(label_of(s));
        if i > 0 {
            g.add_edge(ids[s.parent % i], n, s.port as u8);
        }
        ids.push(n);
    }
    g
}

/// A different opcode from the same wildcard class when one exists in
/// the pool (memory ops are left alone: they never generalize).
fn same_class_variant(op: Opcode, salt: usize) -> Opcode {
    if op.is_memory() {
        return op;
    }
    let peers: Vec<Opcode> = POOL
        .iter()
        .copied()
        .filter(|o| o.class() == op.class())
        .collect();
    peers[salt % peers.len()]
}

/// Plants `pattern` verbatim at the front of a larger target, then hangs
/// `extras` off it. `mutate` swaps planted opcodes for same-class peers
/// and perturbs immediate values (ports preserved), producing a target
/// that only a *wildcard* match can cover. Extras with `imm_kind == 2`
/// become stores — target-only noise the prefilter must ignore.
fn plant(pattern: &[NodeSpec], extras: &[NodeSpec], mutate: bool) -> DiGraph<DfgLabel> {
    let mut g = DiGraph::new();
    let mut ids = Vec::new();
    for (i, s) in pattern.iter().enumerate() {
        let mut l = label_of(s);
        if mutate {
            l.opcode = same_class_variant(l.opcode, s.parent.wrapping_add(i));
            for imm in &mut l.imms {
                imm.1 = imm.1.wrapping_add(17); // value generalizes away
            }
        }
        let n = g.add_node(l);
        if i > 0 {
            g.add_edge(ids[s.parent % i], n, s.port as u8);
        }
        ids.push(n);
    }
    for s in extras {
        let l = if s.imm_kind == 2 {
            DfgLabel {
                opcode: Opcode::StW,
                imms: Vec::new(),
            }
        } else {
            label_of(s)
        };
        let n = g.add_node(l);
        g.add_edge(ids[s.parent % ids.len()], n, s.port as u8);
        ids.push(n);
    }
    g
}

/// The matcher's node-compatibility predicate (mirrors the private
/// `compatible` in `matching.rs`): stores and custom ops never match,
/// memory requires exact opcode equality in every mode.
fn compatible(mode: MatchMode, p: &DfgLabel, t: &DfgLabel) -> bool {
    if t.opcode.is_custom() || t.opcode.is_store() {
        return false;
    }
    if p.opcode.is_memory() || t.opcode.is_memory() {
        return p.opcode == t.opcode;
    }
    match mode {
        MatchMode::Exact => p.matches_exact(t),
        MatchMode::Wildcard => p.matches_class(t),
    }
}

fn vf2_finds(mode: MatchMode, pattern: &DiGraph<DfgLabel>, target: &DiGraph<DfgLabel>) -> bool {
    vf2::Matcher::new(pattern, target)
        .node_compat(|p, t| compatible(mode, p, t))
        .commutative(|p: &DfgLabel| p.opcode.is_commutative())
        .find_first()
        .is_some()
}

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(256))]

    /// A verbatim planted copy embeds in every mode, so the prefilter
    /// must admit the pair in every mode (exact keys refine class keys).
    #[test]
    fn prefilter_admits_planted_exact_copy(
        p in specs(6),
        extras in specs(10),
    ) {
        let pattern = build_graph(&p);
        let target = plant(&p, &extras, false);
        prop_assert!(
            prefilter_admits(MatchMode::Exact, &pattern, &target),
            "exact prefilter rejected a target containing a verbatim copy"
        );
        prop_assert!(
            prefilter_admits(MatchMode::Wildcard, &pattern, &target),
            "wildcard prefilter rejected a target containing a verbatim copy"
        );
    }

    /// A same-class mutated plant is exactly what wildcard matching is
    /// for: the coarser class-key multiset must still be contained.
    #[test]
    fn prefilter_admits_class_mutated_plant_in_wildcard_mode(
        p in specs(6),
        extras in specs(10),
    ) {
        let pattern = build_graph(&p);
        let target = plant(&p, &extras, true);
        prop_assert!(
            vf2_finds(MatchMode::Wildcard, &pattern, &target),
            "construction broken: the mutated plant should still class-match"
        );
        prop_assert!(
            prefilter_admits(MatchMode::Wildcard, &pattern, &target),
            "wildcard prefilter rejected a class-mutated plant VF2 matches"
        );
    }

    /// The property verbatim: on *independent* pattern/target pairs, run
    /// real VF2 — whenever it finds an embedding the prefilter must have
    /// admitted the pair. (Completeness is not required: the prefilter
    /// may admit pairs VF2 then fails; that only costs time.)
    #[test]
    fn prefilter_never_rejects_a_pair_vf2_matches(
        p in specs(5),
        t in specs(12),
        mode_pick in 0usize..2,
    ) {
        let mode = if mode_pick == 0 { MatchMode::Exact } else { MatchMode::Wildcard };
        let pattern = build_graph(&p);
        let target = build_graph(&t);
        if vf2_finds(mode, &pattern, &target) {
            prop_assert!(
                prefilter_admits(mode, &pattern, &target),
                "prefilter ({mode:?}) rejected a pair with a real VF2 embedding"
            );
        }
    }
}
