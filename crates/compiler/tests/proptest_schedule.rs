//! Property tests for the VLIW scheduler and register allocator:
//! every schedule must satisfy dependences and resource limits; every
//! allocation must keep overlapping live ranges apart.

use isax_compiler::{allocate_registers, schedule_block, VliwModel};
use isax_hwlib::HwLibrary;
use isax_ir::{function_dfgs, FuKind, FunctionBuilder, VReg};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Step {
    which: usize,
    pick: usize,
    imm: i64,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (0usize..10, 0usize..8, -64i64..64).prop_map(|(which, pick, imm)| Step {
            which,
            pick,
            imm,
        }),
        1..40,
    )
}

fn build(steps: &[Step]) -> isax_ir::Function {
    let mut fb = FunctionBuilder::new("sched", 3);
    let mut pool: Vec<VReg> = (0..3).map(|i| fb.param(i)).collect();
    for s in steps {
        let r = pool[s.pick % pool.len()];
        let q = pool[(s.pick + 3) % pool.len()];
        let d = match s.which {
            0 => fb.add(r, q),
            1 => fb.mul(r, s.imm),
            2 => fb.ldw(r),
            3 => {
                fb.stw(r, q);
                continue;
            }
            4 => fb.xor(r, s.imm),
            5 => fb.shl(r, (s.imm & 31).abs()),
            6 => {
                // Redefinition: creates anti/output dependences.
                fb.copy_to(r, q);
                continue;
            }
            7 => fb.sub(r, q),
            8 => fb.ldbu(r),
            _ => fb.select(r, q, s.imm),
        };
        pool.push(d);
    }
    let last = *pool.last().unwrap();
    fb.ret(&[last.into()]);
    fb.finish()
}

/// Reconstruction of the recorded regression
/// (`proptest_schedule.proptest-regressions`, case 19a889f5):
/// `steps = [Step { which: 0, pick: 2, imm: 0 }; 2]` builds
/// `add v3 = v2, v2; add v4 = v2, v1` — two adds reading the same
/// params. Kept as a deterministic unit test because the vendored
/// proptest cannot replay upstream seeds.
#[test]
fn recorded_regression_identical_adds() {
    let steps = vec![
        Step {
            which: 0,
            pick: 2,
            imm: 0,
        },
        Step {
            which: 0,
            pick: 2,
            imm: 0,
        },
    ];
    let f = build(&steps);
    let hw = HwLibrary::micron_018();
    let dfgs = function_dfgs(&f);
    let dfg = &dfgs[0];
    let s = schedule_block(
        dfg,
        &f.blocks[0].term,
        &hw,
        &BTreeMap::new(),
        &VliwModel::default(),
    );
    let lat = |v: usize| hw.sw_latency_of(dfg.inst(v));
    let mut per_cycle: BTreeMap<(u32, FuKind), u32> = BTreeMap::new();
    for v in 0..dfg.len() {
        assert_ne!(s.issue[v], u32::MAX, "{v} never issued");
        for &(u, _) in dfg.data_preds(v) {
            assert!(
                s.issue[v] >= s.issue[u] + lat(u),
                "data dep {u}->{v} violated"
            );
        }
        assert!(
            s.issue[v] + lat(v) <= s.cycles,
            "{v} lands after the block ends"
        );
        *per_cycle
            .entry((s.issue[v], dfg.inst(v).opcode.fu()))
            .or_insert(0) += 1;
    }
    for ((cycle, fu), count) in per_cycle {
        assert!(count <= 1, "{count} ops of {fu:?} in cycle {cycle}");
    }
    // The allocator half of the regression: intervals computed the same
    // way `allocations_never_alias` does must not share a physical
    // register while overlapping.
    let ra = allocate_registers(&f);
    assert!(ra.spilled.is_empty());
    let mut touch: BTreeMap<VReg, (usize, usize)> = BTreeMap::new();
    for &p in &f.params {
        touch.insert(p, (0, 0));
    }
    let mut pos = 0usize;
    for b in &f.blocks {
        for inst in &b.insts {
            for (_, r) in inst.reg_srcs() {
                touch
                    .entry(r)
                    .and_modify(|iv| iv.1 = pos)
                    .or_insert((pos, pos));
            }
            for &d in &inst.dsts {
                touch
                    .entry(d)
                    .and_modify(|iv| iv.1 = pos)
                    .or_insert((pos, pos));
            }
            pos += 1;
        }
        for r in b.term.uses() {
            touch
                .entry(r)
                .and_modify(|iv| iv.1 = pos)
                .or_insert((pos, pos));
        }
        pos += 1;
    }
    let assigned: Vec<(VReg, u32)> = ra.assignment.iter().map(|(&r, &p)| (r, p)).collect();
    for (i, &(r1, p1)) in assigned.iter().enumerate() {
        for &(r2, p2) in assigned.iter().skip(i + 1) {
            if p1 != p2 {
                continue;
            }
            let (a, b) = (touch[&r1], touch[&r2]);
            assert!(
                !(a.0 <= b.1 && b.0 <= a.1),
                "{r1} and {r2} share p{p1} but live ranges overlap"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(192))]

    /// Schedules respect dependences (data with latency, memory order with
    /// latency, anti same-cycle) and never oversubscribe an issue slot.
    #[test]
    fn schedules_are_legal(steps in steps()) {
        let f = build(&steps);
        let hw = HwLibrary::micron_018();
        let dfgs = function_dfgs(&f);
        let dfg = &dfgs[0];
        let s = schedule_block(dfg, &f.blocks[0].term, &hw, &BTreeMap::new(), &VliwModel::default());
        let lat = |v: usize| hw.sw_latency_of(dfg.inst(v));
        for v in 0..dfg.len() {
            prop_assert!(s.issue[v] != u32::MAX, "everything issued");
            for &(u, _) in dfg.data_preds(v) {
                prop_assert!(s.issue[v] >= s.issue[u] + lat(u),
                    "data dep {u}->{v} violated");
            }
            for &u in dfg.order_preds(v) {
                prop_assert!(s.issue[v] >= s.issue[u] + lat(u),
                    "order dep {u}->{v} violated");
            }
            for &u in dfg.anti_preds(v) {
                prop_assert!(s.issue[v] >= s.issue[u],
                    "anti dep {u}->{v} violated");
            }
            prop_assert!(s.issue[v] + lat(v) <= s.cycles,
                "result lands after the block ends");
        }
        // Slot capacity: one int + one mem per cycle.
        let mut per_cycle: BTreeMap<(u32, FuKind), u32> = BTreeMap::new();
        for v in 0..dfg.len() {
            *per_cycle.entry((s.issue[v], dfg.inst(v).opcode.fu())).or_insert(0) += 1;
        }
        for ((cycle, fu), count) in per_cycle {
            prop_assert!(count <= 1, "{count} ops of {fu:?} in cycle {cycle}");
        }
    }

    /// Linear-scan never assigns one physical register to two virtual
    /// registers whose uses interleave in the linear stream.
    #[test]
    fn allocations_never_alias(steps in steps()) {
        let f = build(&steps);
        let ra = allocate_registers(&f);
        // Recompute naive intervals the same way the allocator defines
        // them and assert the invariant directly.
        let mut touch: BTreeMap<VReg, (usize, usize)> = BTreeMap::new();
        for &p in &f.params {
            touch.insert(p, (0, 0));
        }
        let mut pos = 0usize;
        for b in &f.blocks {
            for inst in &b.insts {
                for (_, r) in inst.reg_srcs() {
                    touch.entry(r).and_modify(|iv| iv.1 = pos).or_insert((pos, pos));
                }
                for &d in &inst.dsts {
                    touch.entry(d).and_modify(|iv| iv.1 = pos).or_insert((pos, pos));
                }
                pos += 1;
            }
            for r in b.term.uses() {
                touch.entry(r).and_modify(|iv| iv.1 = pos).or_insert((pos, pos));
            }
            pos += 1;
        }
        let assigned: Vec<(VReg, u32)> = ra.assignment.iter().map(|(&r, &p)| (r, p)).collect();
        for (i, &(r1, p1)) in assigned.iter().enumerate() {
            for &(r2, p2) in assigned.iter().skip(i + 1) {
                if p1 != p2 {
                    continue;
                }
                let (a, b) = (touch[&r1], touch[&r2]);
                let overlap = a.0 <= b.1 && b.0 <= a.1;
                prop_assert!(!overlap,
                    "{r1} and {r2} share p{p1} but live ranges overlap");
            }
        }
        // Single straight-line block with 3 params: pressure stays sane.
        prop_assert!(ra.spilled.is_empty());
    }
}
