//! Register allocation: virtual → physical mapping after scheduling.
//!
//! The pipeline deliberately customizes *before* register allocation so
//! that "false dependences within the DFG are not created"; allocation
//! then runs last, as in the paper's Figure 5 ("Register allocate /
//! Schedule"). The target has an HPL-PD-style large register file (64
//! integer registers), so the benchmark kernels never spill; the allocator
//! nevertheless detects over-pressure and reports the registers it had to
//! spill so the cycle estimator can charge for them.
//!
//! The algorithm is linear scan over a whole-function linearization of the
//! scheduled code, with cross-block lifetimes widened to whole blocks via
//! liveness (standard for non-SSA linear scan).

use isax_ir::{Function, VReg};
use std::collections::{BTreeMap, BTreeSet};

/// Number of physical integer registers ("similar to ... HPL-PD").
pub const PHYS_REGS: usize = 64;

/// Result of register allocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegAlloc {
    /// Physical register assigned to each virtual register.
    pub assignment: BTreeMap<VReg, u32>,
    /// Virtual registers that did not fit and were assigned stack slots.
    pub spilled: Vec<VReg>,
    /// Maximum number of simultaneously live virtual registers observed.
    pub max_pressure: usize,
}

/// Allocates physical registers for a function.
///
/// Lifetimes are computed over the linearized instruction stream
/// (block order, instruction order), extended by block-level liveness:
/// a register live across blocks is live from its first definition to the
/// end of the last block that lists it live-in or live-out.
///
/// # Example
///
/// ```
/// use isax_compiler::allocate_registers;
/// use isax_ir::FunctionBuilder;
///
/// let mut fb = FunctionBuilder::new("f", 2);
/// let (a, b) = (fb.param(0), fb.param(1));
/// let t = fb.add(a, b);
/// let u = fb.xor(t, a);
/// fb.ret(&[u.into()]);
/// let ra = allocate_registers(&fb.finish());
/// assert!(ra.spilled.is_empty());
/// assert!(ra.max_pressure <= 4);
/// ```
pub fn allocate_registers(f: &Function) -> RegAlloc {
    // Linear positions: (block, inst) -> global index. The terminator of
    // block b sits at the position after its last instruction.
    let mut pos = 0usize;
    let mut block_start = Vec::with_capacity(f.blocks.len());
    let mut block_end = Vec::with_capacity(f.blocks.len());
    for b in &f.blocks {
        block_start.push(pos);
        pos += b.insts.len() + 1; // +1 for the terminator
        block_end.push(pos - 1);
    }
    let lv = f.liveness();
    // Live interval per vreg: (first point, last point).
    let mut interval: BTreeMap<VReg, (usize, usize)> = BTreeMap::new();
    let touch = |r: VReg, p: usize, interval: &mut BTreeMap<VReg, (usize, usize)>| {
        interval
            .entry(r)
            .and_modify(|iv| {
                iv.0 = iv.0.min(p);
                iv.1 = iv.1.max(p);
            })
            .or_insert((p, p));
    };
    for &p in &f.params {
        touch(p, 0, &mut interval);
    }
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            let p = block_start[bi] + ii;
            for (_, r) in inst.reg_srcs() {
                touch(r, p, &mut interval);
            }
            for &d in &inst.dsts {
                touch(d, p, &mut interval);
            }
        }
        for r in b.term.uses() {
            touch(r, block_end[bi], &mut interval);
        }
        // Widen cross-block lifetimes to block boundaries.
        for &r in &lv.live_in[bi] {
            touch(r, block_start[bi], &mut interval);
        }
        for &r in &lv.live_out[bi] {
            touch(r, block_end[bi], &mut interval);
        }
    }
    // Linear scan.
    let mut by_start: Vec<(VReg, (usize, usize))> = interval.into_iter().collect();
    by_start.sort_by_key(|&(r, (s, _))| (s, r));
    let mut free: BTreeSet<u32> = (0..PHYS_REGS as u32).collect();
    let mut active: Vec<(usize, VReg, u32)> = Vec::new(); // (end, vreg, preg)
    let mut out = RegAlloc::default();
    for (r, (start, end)) in by_start {
        // Expire old intervals.
        active.retain(|&(aend, _, preg)| {
            if aend < start {
                free.insert(preg);
                false
            } else {
                true
            }
        });
        out.max_pressure = out.max_pressure.max(active.len() + 1);
        if let Some(&preg) = free.iter().next() {
            free.remove(&preg);
            out.assignment.insert(r, preg);
            active.push((end, r, preg));
        } else {
            // Spill the interval that ends last (Poletto-Sarkar).
            active.sort_by_key(|&(aend, _, _)| aend);
            let (last_end, last_r, last_p) = *active.last().expect("active nonempty");
            if last_end > end {
                active.pop();
                out.assignment.remove(&last_r);
                out.spilled.push(last_r);
                out.assignment.insert(r, last_p);
                active.push((end, r, last_p));
            } else {
                out.spilled.push(r);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::FunctionBuilder;

    #[test]
    fn disjoint_lifetimes_share_registers() {
        let mut fb = FunctionBuilder::new("f", 1);
        let a = fb.param(0);
        let mut prev = a;
        // 100 sequential temporaries, each dead after one use.
        for _ in 0..100 {
            prev = fb.add(prev, 1i64);
        }
        fb.ret(&[prev.into()]);
        let ra = allocate_registers(&fb.finish());
        assert!(ra.spilled.is_empty(), "chain reuses registers");
        assert!(ra.max_pressure <= 3);
    }

    #[test]
    fn pressure_above_file_size_spills() {
        let mut fb = FunctionBuilder::new("f", 1);
        let a = fb.param(0);
        // 80 values all live until the end.
        let vals: Vec<_> = (0..80).map(|i| fb.add(a, i as i64)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = fb.xor(acc, v);
        }
        fb.ret(&[acc.into()]);
        let ra = allocate_registers(&fb.finish());
        // 80 simultaneously live + accumulators > 64.
        assert!(!ra.spilled.is_empty());
        assert!(ra.max_pressure > PHYS_REGS);
    }

    #[test]
    fn cross_block_values_stay_allocated() {
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let next = fb.new_block(10);
        let t = fb.add(a, b);
        fb.jump(next);
        fb.switch_to(next);
        let u = fb.xor(t, b);
        fb.ret(&[u.into()]);
        let ra = allocate_registers(&fb.finish());
        assert!(ra.assignment.contains_key(&t));
        assert!(ra.spilled.is_empty());
    }

    #[test]
    fn assignments_never_alias_live_ranges() {
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let t = fb.add(a, b); // t and u live together
        let u = fb.sub(a, b);
        let v = fb.xor(t, u);
        fb.ret(&[v.into()]);
        let f = fb.finish();
        let ra = allocate_registers(&f);
        let pt = ra.assignment[&t];
        let pu = ra.assignment[&u];
        assert_ne!(pt, pu, "overlapping lifetimes need distinct registers");
    }
}
