//! The retargetable compiler back end of the `isax` suite (Figure 5 of
//! the paper).
//!
//! Given an application in `isax-ir` form and a machine description
//! ([`Mdes`]) produced by the hardware compiler, this crate:
//!
//! 1. [matches](matching) every CFU pattern (exactly, via subsumed
//!    contractions, or via opcode-class wildcards) in the application's
//!    dataflow graphs with a VF2 engine,
//! 2. [prioritizes](prioritize) the matches in CFU selection order so
//!    each operation joins the most valuable unit,
//! 3. [replaces](replace) the chosen subgraphs with custom instructions,
//!    reordering code safely (convexity + anti-dependence aware),
//! 4. [schedules](schedule) each block onto the 4-wide VLIW (one int /
//!    fp / mem / branch slot; CFUs share the integer slot) and
//!    [allocates registers](regalloc).
//!
//! The top-level [`compile`] driver produces cycle estimates whose ratios
//! are the speedups reported throughout the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod ifconvert;
pub mod matching;
pub mod mdes;
pub mod prioritize;
pub mod regalloc;
pub mod replace;
pub mod schedule;

pub use compile::{
    baseline_cycles, compile, compile_guarded, speedup, CompileOptions, CompiledProgram,
};
pub use ifconvert::{if_convert_function, if_convert_program, IfConvertConfig, IfConvertStats};
pub use matching::{
    find_matches, find_matches_guarded_with_stats, find_matches_with_stats, prefilter_admits,
    MatchMode, MatchOptions, MatchStats, PatternMatch,
};
pub use mdes::{CfuSpec, Mdes};
pub use prioritize::prioritize;
pub use regalloc::{allocate_registers, RegAlloc, PHYS_REGS};
pub use replace::{apply_matches, AppliedMatch, CustomizedFunction};
pub use schedule::{
    function_cycles, function_cycles_metered, inst_latency, schedule_block, schedule_block_metered,
    sequential_function_cycles, sequential_schedule_block, BlockSchedule, CustomInfo, CustomOpInfo,
    VliwModel,
};
